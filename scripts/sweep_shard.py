#!/usr/bin/env python3
"""Multi-process sweep driver: shard, run, merge.

Runs a sweep binary (examples/sweep_cli.cpp) N times with
``--shard i/N``, one process per shard, then merges the per-shard
JSON outputs with the binary's own ``--merge`` implementation
(sim/shard.cc) so there is exactly one merge code path and the merged
file is byte-identical to an unsharded run.

Examples:
    # 4-way sharded mini study, merged into study.json:
    scripts/sweep_shard.py --bin build/sweep_cli --shards 4 \\
        --out study.json -- --mode study --benchmarks 8

    # Prove byte-identity against the unsharded run:
    scripts/sweep_shard.py --bin build/sweep_cli --shards 4 \\
        --out study.json --check -- --mode study --benchmarks 8

    # Same, through the content-addressed result store: the shards
    # run cold and checkpoint every point; the --check reference run
    # is then warm (pure cache hits) and must still merge
    # byte-identical -- this is the CI warm-cache gate:
    scripts/sweep_shard.py --bin build/sweep_cli --shards 4 \\
        --cache-dir /tmp/gals-cache --out study.json --check \\
        -- --mode study --benchmarks 8

``--cache-dir`` enables the content-addressed result store
(sim/result_store.hh) in every shard process *and* in the ``--check``
reference run. Because each shard checkpoints every completed point
into the store, a killed driver invocation resumes from where it died
when rerun with the same cache dir (``--resume`` makes that intent
explicit and fails fast if the cache is unusable).

The ``--preserve-baselines`` option grafts any ``seed_baseline``
values found in an existing JSON file into the merged output before
writing (used when a sweep refresh must not touch a frozen baseline
column, e.g. BENCH_sim_throughput.json-style trackers). It
re-serializes through Python's json module, so it is mutually
exclusive with byte-identity checking.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path


def graft_baselines(old, new):
    """Copy every seed_baseline value from old into new, recursively."""
    if isinstance(old, dict) and isinstance(new, dict):
        for key, value in old.items():
            if key == "seed_baseline":
                new[key] = value
            elif key in new:
                graft_baselines(value, new[key])
    elif isinstance(old, list) and isinstance(new, list):
        for a, b in zip(old, new):
            graft_baselines(a, b)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--bin", required=True,
                        help="sweep binary (build/sweep_cli)")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of processes (default 4)")
    parser.add_argument("--out", required=True,
                        help="merged output JSON path")
    parser.add_argument("--check", action="store_true",
                        help="also run unsharded and require the "
                             "merged output to be byte-identical")
    parser.add_argument("--preserve-baselines", metavar="FILE",
                        help="graft seed_baseline values from FILE "
                             "into the merged output")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="enable the content-addressed result "
                             "store on DIR for every shard process "
                             "and the --check reference run; killed "
                             "runs rerun with the same DIR resume "
                             "from their checkpointed points")
    parser.add_argument("--resume", action="store_true",
                        help="pass --resume to each shard: fail fast "
                             "unless a usable result cache is "
                             "configured (--cache-dir here or "
                             "GALS_RESULT_CACHE in the environment)")
    parser.add_argument("--threads-per-shard", type=int, default=0,
                        help="GALS_THREADS for each shard process "
                             "(default: cpu_count // shards, so "
                             "concurrent shards on one host do not "
                             "oversubscribe; 0 on a multi-host setup "
                             "means pass -1 to leave it unset)")
    parser.add_argument("extra", nargs="*",
                        help="arguments passed through to the binary "
                             "(after --)")
    args = parser.parse_args()

    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.check and args.preserve_baselines:
        parser.error("--check and --preserve-baselines are mutually "
                     "exclusive (grafting re-serializes the JSON)")

    binary = Path(args.bin)
    if not binary.exists():
        parser.error(f"binary not found: {binary}")

    # Each shard process spawns its own GALS_THREADS-capped pool;
    # without a cap, N concurrent shards would each take the whole
    # machine and oversubscribe it N-fold.
    env = dict(os.environ)
    threads = args.threads_per_shard
    if threads == 0:
        threads = max(1, (os.cpu_count() or 1) // args.shards)
    if threads > 0:
        env["GALS_THREADS"] = str(threads)

    # Result-store plumbing: the same flags go to every shard and to
    # the --check reference run, so with a cache dir the reference is
    # a warm rerun over the shards' checkpointed points -- --check
    # then proves warm-cache byte-identity, not just merge identity.
    cache_args = []
    if args.cache_dir:
        cache_args += ["--cache-dir", args.cache_dir]
    if args.resume:
        cache_args += ["--resume"]

    with tempfile.TemporaryDirectory(prefix="sweep_shard_") as tmp:
        tmpdir = Path(tmp)
        shard_files = []
        procs = []
        for i in range(args.shards):
            out = tmpdir / f"shard_{i}.json"
            shard_files.append(out)
            cmd = [str(binary), *args.extra, *cache_args,
                   "--shard", f"{i}/{args.shards}",
                   "--out", str(out)]
            procs.append((i, subprocess.Popen(cmd, env=env)))
        failed = [i for i, p in procs if p.wait() != 0]
        if failed:
            sys.exit(f"shard process(es) failed: {failed}")

        merge_cmd = [str(binary), "--merge", args.out,
                     *(str(f) for f in shard_files)]
        subprocess.run(merge_cmd, check=True)

        if args.check:
            ref = tmpdir / "unsharded.json"
            # With a cache dir the reference run replays the shards'
            # checkpointed points, so its stderr stats line must show
            # a 100% hit rate -- capture it and gate on "0 misses".
            proc = subprocess.run(
                [str(binary), *args.extra, *cache_args,
                 "--shard", "0/1", "--out", str(ref)],
                check=True, stderr=subprocess.PIPE, text=True)
            sys.stderr.write(proc.stderr)
            merged_bytes = Path(args.out).read_bytes()
            ref_bytes = ref.read_bytes()
            if merged_bytes != ref_bytes:
                sys.exit("FAIL: merged output differs from the "
                         "unsharded run")
            if args.cache_dir:
                stats = [line for line in proc.stderr.splitlines()
                         if line.startswith("result-store:")]
                if not stats:
                    sys.exit("FAIL: no result-store stats line from "
                             "the warm reference run")
                if " 0 misses" not in stats[-1]:
                    sys.exit("FAIL: warm reference run was not 100% "
                             f"cache hits: {stats[-1]}")
                print("warm-cache check OK: reference run served "
                      "entirely from the result store")
            print(f"check OK: {args.out} is byte-identical to the "
                  f"unsharded sweep ({len(merged_bytes)} bytes)")

    if args.preserve_baselines:
        old = json.loads(Path(args.preserve_baselines).read_text())
        merged_path = Path(args.out)
        new = json.loads(merged_path.read_text())
        graft_baselines(old, new)
        merged_path.write_text(json.dumps(new, indent=2) + "\n")
        print(f"grafted seed_baseline values from "
              f"{args.preserve_baselines}")


if __name__ == "__main__":
    main()
