#!/usr/bin/env bash
# Port-layer confinement gate (registered with ctest): the
# publication-order rule's entry points — consumableAt and the raw
# domain-wake primitive — may appear only in the port layer
# (src/core/ports.hh / ports.cc). Any other call site could publish
# or wake around the rule, which is exactly the divergence class the
# port layer exists to make unrepresentable.
set -u

src_root="${1:?usage: check_port_confinement.sh <repo root>}"

violations=$(grep -rn --include='*.hh' --include='*.cc' \
                  --include='*.cpp' -e 'wakeDomain' -e 'consumableAt' \
                  -e 'wakeRaw' \
                  "$src_root/src" "$src_root/tests" \
                  "$src_root/bench" "$src_root/examples" 2>/dev/null |
             grep -v '/src/core/ports\.hh:' |
             grep -v '/src/core/ports\.cc:' || true)

if [ -n "$violations" ]; then
    echo "publication-order entry points used outside the port layer:"
    echo "$violations"
    exit 1
fi
echo "port confinement OK"
