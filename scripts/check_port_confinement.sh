#!/usr/bin/env bash
# Port-layer confinement gate (registered with ctest): the
# publication-order rule's entry points — consumableAt and the raw
# domain-wake primitive — may appear only in the port layer
# (src/core/ports.hh / ports.cc). Any other call site could publish
# or wake around the rule, which is exactly the divergence class the
# port layer exists to make unrepresentable.
#
# The cross-core interconnect extends the same rule over the shared
# L2 (src/cmp, src/cache/shared_l2): its raw entry points — the bank
# publication tripwire (bankPublish) and the wake primitive behind
# the per-core WakeHub windows (wakeRaw) — are port-layer-only too.
# The shared L2's arbitration state is additionally confined by the
# compiler (private members, friend InterconnectPort); this grep is
# the textual backstop for the names that must never grow call sites
# outside the layer.
set -u

src_root="${1:?usage: check_port_confinement.sh <repo root>}"

violations=$(grep -rn --include='*.hh' --include='*.cc' \
                  --include='*.cpp' -e 'wakeDomain' -e 'consumableAt' \
                  -e 'wakeRaw' -e 'bankPublish' \
                  "$src_root/src" "$src_root/tests" \
                  "$src_root/bench" "$src_root/examples" 2>/dev/null |
             grep -v '/src/core/ports\.hh:' |
             grep -v '/src/core/ports\.cc:' || true)

if [ -n "$violations" ]; then
    echo "publication-order entry points used outside the port layer:"
    echo "$violations"
    exit 1
fi
echo "port confinement OK"
