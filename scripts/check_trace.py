#!/usr/bin/env python3
"""Validate a GALS Chrome trace-event export (docs/observability.md).

Checks that the file the tracer wrote under ``GALS_TRACE`` /
``--trace-out`` is what a trace viewer (Perfetto, chrome://tracing)
and the CI acceptance gate expect:

 - it parses as one JSON object with the ``gals-trace-v1`` schema
   marker and a ``traceEvents`` array;
 - every event carries the required keys for its phase (``M``
   metadata, ``X`` complete spans with ``dur``, ``i`` instants);
 - timestamps are nondecreasing per (pid, tid) track in file order —
   the exported mirror of the tracer's publication-order assert;
 - with ``--cores N``: the first simulated process exposes all
   ``N * 4`` per-(core, domain) tracks plus the ``chip`` track;
 - with ``--workers W``: at least ``W`` host worker tracks exist;
 - each ``--require-event NAME`` occurs at least once (the CI run
   requires ``coh_invalidate`` and ``reconfig``).

Exit status 0 on success, 1 with a message on the first failure.
"""

import argparse
import collections
import json
import re
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument("--cores", type=int, default=0,
                    help="expect N*4 domain tracks + a chip track "
                         "in the first simulated process")
    ap.add_argument("--workers", type=int, default=0,
                    help="expect at least W host worker tracks")
    ap.add_argument("--require-event", action="append", default=[],
                    metavar="NAME",
                    help="require >=1 occurrence of this event name "
                         "(repeatable)")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load '{args.trace}': {e}")

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    schema = doc.get("otherData", {}).get("schema")
    if schema != "gals-trace-v1":
        fail(f"schema is {schema!r}, want 'gals-trace-v1'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents is missing or empty")

    # Per-event shape + per-track monotonicity, in file order.
    last_ts = {}
    track_names = collections.defaultdict(dict)  # pid -> tid -> name
    name_counts = collections.Counter()
    for i, e in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in e:
                fail(f"event {i} lacks '{key}': {e}")
        ph = e["ph"]
        if ph == "M":
            if e["name"] in ("process_name", "thread_name"):
                if "name" not in e.get("args", {}):
                    fail(f"metadata event {i} lacks args.name")
                if e["name"] == "thread_name":
                    track_names[e["pid"]][e["tid"]] = \
                        e["args"]["name"]
            continue
        if ph not in ("X", "i"):
            fail(f"event {i} has unknown phase {ph!r}")
        if "ts" not in e:
            fail(f"event {i} lacks 'ts'")
        if ph == "X" and "dur" not in e:
            fail(f"span event {i} lacks 'dur'")
        name_counts[e["name"]] += 1
        track = (e["pid"], e["tid"])
        if e["ts"] < last_ts.get(track, float("-inf")):
            fail(f"event {i} ({e['name']}) breaks per-track ts "
                 f"monotonicity on pid={track[0]} tid={track[1]}: "
                 f"{e['ts']} after {last_ts[track]}")
        last_ts[track] = e["ts"]

    if args.cores > 0:
        sim_pids = sorted(pid for pid, tids in track_names.items()
                          if "chip" in tids.values() or
                          any(re.fullmatch(r"core\d+/\w+", n)
                              for n in tids.values()))
        if not sim_pids:
            fail("no simulated-lane process found")
        tracks = set(track_names[sim_pids[0]].values())
        for c in range(args.cores):
            for dom in ("fe", "int", "fp", "ls"):
                want = f"core{c}/{dom}"
                if want not in tracks:
                    fail(f"first sim process lacks track '{want}' "
                         f"(has {sorted(tracks)})")
        if "chip" not in tracks:
            fail("first sim process lacks the 'chip' track")

    if args.workers > 0:
        workers = {n for tids in track_names.values()
                   for n in tids.values()
                   if re.fullmatch(r"worker\d+", n)}
        if len(workers) < args.workers:
            fail(f"want >= {args.workers} worker tracks, "
                 f"found {sorted(workers)}")

    for name in args.require_event:
        if name_counts[name] < 1:
            fail(f"required event '{name}' never occurs "
                 f"(names seen: {sorted(name_counts)})")

    ntracks = sum(len(t) for t in track_names.values())
    print(f"check_trace: OK: {len(events)} events, {ntracks} named "
          f"tracks, {len(name_counts)} event kinds")


if __name__ == "__main__":
    main()
