#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# Exits non-zero on the first failure; suitable for CI.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
