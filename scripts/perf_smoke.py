#!/usr/bin/env python3
"""Perf-smoke gate: fail CI when simulator throughput regresses.

Runs ``bench_sim_throughput`` (which measures committed instructions
per host CPU-second with CLOCK_PROCESS_CPUTIME_ID and writes
``BENCH_sim_throughput.json`` in the working directory) and compares
the fresh ``current`` values against the ones committed to the repo.
A config may not drop below ``--min-ratio`` (default 0.8, i.e. a >20%%
regression fails). CI machines differ from the container the repo
numbers were recorded on, so this is a smoke gate against large
regressions, not a benchmark.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Columns the gate must always see in the committed reference file.
# Dropping one there would silently un-gate its throughput (the
# per-row loop below only covers what the reference lists), so the
# set is pinned here and extended whenever a bench column is added:
# cmp2 arrived with the CMP subsystem, cmp4 with the horizon-parallel
# chip stepper, cmp2_shared with cross-core L1 coherence, sweep_warm
# with the content-addressed result store, cmp8 with the many-core
# scale-up.
REQUIRED_CONFIGS = frozenset({
    "synchronous",
    "mcdProgram",
    "mcdPhaseAdaptive",
    "cmp2",
    "cmp4",
    "cmp8",
    "cmp2_shared",
    "sweep_warm",
})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to bench_sim_throughput")
    parser.add_argument("--ref", required=True,
                        help="committed BENCH_sim_throughput.json")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="minimum measured/committed ratio "
                             "(default 0.8)")
    args = parser.parse_args()

    bench = Path(args.bench).resolve()
    ref = json.loads(Path(args.ref).read_text())

    missing = REQUIRED_CONFIGS - set(ref["configs"])
    if missing:
        sys.exit("committed reference lost tracked columns: "
                 f"{', '.join(sorted(missing))}")

    with tempfile.TemporaryDirectory(prefix="perf_smoke_") as tmp:
        # --benchmark_filter=NONE skips the google-benchmark timings;
        # the JSON measurement pass always runs first.
        subprocess.run([str(bench), "--benchmark_filter=NONE"],
                       cwd=tmp, check=True,
                       stdout=subprocess.DEVNULL)
        fresh = json.loads(
            (Path(tmp) / "BENCH_sim_throughput.json").read_text())

    # Per-config delta table: the job log shows, for every tracked
    # config, where this build stands against both the committed
    # `current` column (the gate) and the frozen seed baseline (the
    # trajectory), not just a pass/fail verdict.
    failures = []
    header = (f"{'config':<18} {'seed':>10} {'committed':>12} "
              f"{'measured':>12} {'delta':>8} {'vs seed':>8}")
    print(header)
    print("-" * len(header))
    for name, row in ref["configs"].items():
        seed = float(row["seed_baseline"])
        committed = float(row["current"])
        if name not in fresh["configs"]:
            # A tracked column (e.g. the cmp2 multi-core chip) must
            # never silently vanish from the bench output — that
            # would un-gate its throughput.
            failures.append(f"{name} (missing from bench output)")
            print(f"{name:<18} {'-':>10} {committed:>12.0f} "
                  f"{'MISSING':>12}  << FAIL")
            continue
        measured = float(fresh["configs"][name]["current"])
        ratio = measured / committed
        delta = 100.0 * (ratio - 1.0)
        speedup = measured / seed if seed > 0 else float("inf")
        flag = "" if ratio >= args.min_ratio else "  << FAIL"
        print(f"{name:<18} {seed:>10.0f} {committed:>12.0f} "
              f"{measured:>12.0f} {delta:>+7.1f}% {speedup:>7.2f}x"
              f"{flag}")
        if ratio < args.min_ratio:
            failures.append(name)

    if failures:
        sys.exit(f"throughput dropped >{(1 - args.min_ratio):.0%} on: "
                 f"{', '.join(failures)}")
    print("perf smoke OK")


if __name__ == "__main__":
    main()
