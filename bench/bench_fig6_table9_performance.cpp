/**
 * @file
 * The headline experiment: Figure 6 (per-benchmark runtime
 * improvement of the Program-Adaptive and Phase-Adaptive MCD
 * machines over the best fully synchronous design) and Table 9 (the
 * distribution of Program-Adaptive configuration choices).
 *
 * By default the Program-Adaptive search is the staged-greedy sweep
 * (~17 runs per benchmark); set GALS_SWEEP=exhaustive for the paper's
 * full 256-configuration sweep per benchmark. GALS_BENCHMARKS=n
 * limits the study to the first n benchmark runs.
 *
 * The registered benchmarks report the cached study results as
 * counters so the numbers appear in machine-readable benchmark
 * output.
 */

#include "bench_util.hh"

#include <cstdlib>

#include "sim/report.hh"
#include "sim/study.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

const StudyResult &
study()
{
    static const StudyResult result = [] {
        std::vector<WorkloadParams> suite = benchmarkSuite();
        if (const char *env = std::getenv("GALS_BENCHMARKS")) {
            size_t n = static_cast<size_t>(std::atoi(env));
            if (n > 0 && n < suite.size())
                suite.resize(n);
        }
        SweepMode mode = sweepModeFromEnv();
        std::printf("running %zu benchmarks, %s program-adaptive "
                    "sweep...\n",
                    suite.size(),
                    mode == SweepMode::Exhaustive ? "exhaustive (256)"
                                                  : "staged (~17)");
        std::fflush(stdout);
        return runStudy(suite, mode, false);
    }();
    return result;
}

void
printFigure6AndTable9()
{
    benchBanner("Figure 6 + Table 9: Program- and Phase-Adaptive "
                "performance",
                "paper Section 5, Figure 6 and Table 9 (paper "
                "averages: +17.6% program, +20.4% phase)");

    const StudyResult &r = study();
    std::printf("%s\n", renderFigure6(r).c_str());
    std::printf("%s\n", renderTable9(r).c_str());
    std::printf("total simulation runs: %llu\n\n",
                static_cast<unsigned long long>(r.total_runs));
}

void
BM_StudyAverages(benchmark::State &state)
{
    const StudyResult &r = study();
    for (auto _ : state)
        benchmark::DoNotOptimize(r.avgProgramImprovement());
    state.counters["program_avg_pct"] =
        100.0 * r.avgProgramImprovement();
    state.counters["phase_avg_pct"] = 100.0 * r.avgPhaseImprovement();
    state.counters["benchmarks"] =
        static_cast<double>(r.benchmarks.size());
}
BENCHMARK(BM_StudyAverages)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    printFigure6AndTable9();
    return runRegisteredBenchmarks(argc, argv);
}
