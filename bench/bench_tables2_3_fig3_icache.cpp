/**
 * @file
 * Reproduces Table 2 (adaptive I-cache + branch predictor
 * configurations), Table 3 (the sixteen optimized synchronous
 * options), and Figure 3 (I-cache frequency versus size, adaptive vs
 * optimal). The registered benchmark measures predictor throughput.
 */

#include "bench_util.hh"

#include "common/random.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "predictor/hybrid_predictor.hh"
#include "timing/frequency_model.hh"

using namespace gals;

namespace
{

std::vector<std::string>
predictorRow(const PredictorOrg &p)
{
    return {csprintf("%d bits", p.gshare_hist_bits),
            csprintf("%d", p.gshare_entries),
            csprintf("%d", p.meta_entries),
            csprintf("%d bits", p.local_hist_bits),
            csprintf("%d", p.local_bht_entries),
            csprintf("%d", p.local_pht_entries)};
}

void
printTables()
{
    benchBanner("Tables 2 and 3 + Figure 3: I-cache / branch predictor "
                "configurations",
                "paper Section 2.2, Tables 2-3, Figure 3");

    TextTable t2("Table 2: adaptive I-cache / branch predictor "
                 "configurations");
    t2.setHeader({"size", "assoc", "sub-banks", "hg", "gshare PHT",
                  "meta", "hl", "local BHT", "local PHT", "GHz"});
    for (int i = 0; i < kNumAdaptiveConfigs; ++i) {
        const ICacheConfig &c = icacheConfig(i);
        std::vector<std::string> row = {
            csprintf("%llu KB", static_cast<unsigned long long>(
                                    c.org.size_bytes / 1024)),
            csprintf("%d", c.org.assoc),
            csprintf("%d", c.org.subbanks)};
        for (auto &cell : predictorRow(c.predictor))
            row.push_back(cell);
        row.push_back(csprintf("%.3f", c.freq_ghz));
        t2.addRow(row);
    }
    t2.print();
    std::printf("\n");

    TextTable t3("Table 3: optimized synchronous I-cache / predictor "
                 "configurations");
    t3.setHeader({"size", "assoc", "sub-banks", "hg", "gshare PHT",
                  "meta", "hl", "local BHT", "local PHT", "GHz"});
    for (int i = 0; i < kNumOptICacheConfigs; ++i) {
        const OptICacheConfig &c = optICacheConfig(i);
        std::vector<std::string> row = {
            csprintf("%llu KB", static_cast<unsigned long long>(
                                    c.org.size_bytes / 1024)),
            csprintf("%d", c.org.assoc),
            csprintf("%d", c.org.subbanks)};
        for (auto &cell : predictorRow(c.predictor))
            row.push_back(cell);
        row.push_back(csprintf("%.3f", c.freq_ghz));
        t3.addRow(row);
    }
    t3.print();
    std::printf("\n");

    // Figure 3: adaptive curve vs best direct-mapped optimal curve at
    // the same total sizes.
    std::vector<std::string> labels;
    std::vector<double> values;
    const int opt_dm[4] = {2, 3, 14, 4}; // 16k1W, 32k1W, 48k3W, 64k1W.
    for (int i = 0; i < kNumAdaptiveConfigs; ++i) {
        const ICacheConfig &c = icacheConfig(i);
        labels.push_back(c.name + " adaptive");
        values.push_back(c.freq_ghz);
        const OptICacheConfig &o = optICacheConfig(opt_dm[i]);
        labels.push_back(o.name + " optimal");
        values.push_back(o.freq_ghz);
    }
    std::printf("%s\n",
                renderBarChart("Figure 3: I-cache frequency vs "
                               "configuration (GHz)",
                               labels, values, 1.8, 44, " GHz")
                    .c_str());

    std::printf("direct-mapped -> 2-way frequency drop: %.1f%% "
                "(paper: ~31%%)\n",
                100.0 * (1.0 - icacheConfig(1).freq_ghz /
                                   icacheConfig(0).freq_ghz));
    std::printf("optimal 64KB DM vs adaptive 64KB 4-way: +%.1f%% "
                "(paper: ~27%%)\n\n",
                100.0 * (optICacheConfig(4).freq_ghz /
                             icacheConfig(3).freq_ghz - 1.0));
}

void
BM_PredictorLookupTrain(benchmark::State &state)
{
    HybridPredictor bp(
        icacheConfig(static_cast<int>(state.range(0))).predictor);
    Pcg32 rng(7);
    std::uint64_t n = 0;
    for (auto _ : state) {
        Addr pc = 0x10000 + (n % 512) * 64;
        auto p = bp.predict(pc);
        bp.update(pc, p, rng.chance(0.9));
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PredictorLookupTrain)->Arg(0)->Arg(3);

} // namespace

int
main(int argc, char **argv)
{
    printTables();
    return runRegisteredBenchmarks(argc, argv);
}
