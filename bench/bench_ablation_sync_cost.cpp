/**
 * @file
 * Ablation: the cost of inter-domain synchronization alone. The MCD
 * machine is run with every domain forced to (approximately) the
 * synchronous machine's frequency — slightly detuned per domain so
 * relative clock phases rotate as they would between independent
 * PLLs — and compared against the fully synchronous machine. The
 * residual slowdown is the price of the synchronizer guard bands and
 * the deeper adaptive pipeline (the paper, citing [28], reports an
 * average synchronization cost under 3%; our deeper-pipe machine also
 * charges the 10+9 vs 9+7 mispredict penalty here).
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
printAblation()
{
    benchBanner("Ablation: inter-domain synchronization cost",
                "paper Section 2 (citing [28]: <3% average slowdown)");

    const char *names[] = {"adpcm encode", "g721 decode", "power",
                           "gzip", "mesa texgen", "twolf"};
    MachineConfig sync = MachineConfig::bestSynchronous();
    double base_f = sync.synchronousFreqGHz();

    TextTable t("MCD at matched frequency vs fully synchronous");
    t.setHeader({"benchmark", "sync ns", "mcd-matched ns",
                 "slowdown"});
    double sum = 0.0;
    int n = 0;
    for (const char *name : names) {
        WorkloadParams wl = findBenchmark(name);
        RunStats s = simulate(sync, wl);

        MachineConfig mcd =
            MachineConfig::mcdProgram(AdaptiveConfig{3, 0, 0, 0});
        // Detune by -0.3% so domain phases rotate.
        mcd.force_freq_ghz = base_f * 0.997;
        RunStats m = simulate(mcd, wl);

        // Normalize out the deliberate 0.3% detune.
        double slowdown =
            runtimeNs(m) * 0.997 / runtimeNs(s) - 1.0;
        sum += slowdown;
        ++n;
        t.addRow({name, csprintf("%.0f", runtimeNs(s)),
                  csprintf("%.0f", runtimeNs(m)),
                  csprintf("%+.1f%%", 100.0 * slowdown)});
    }
    t.addRule();
    t.addRow({"AVERAGE", "", "", csprintf("%+.1f%%", 100.0 * sum / n)});
    t.print();
    std::printf("\n");
}

void
BM_McdMatchedRun(benchmark::State &state)
{
    WorkloadParams wl = findBenchmark("g721 decode");
    wl.sim_instrs = 20'000;
    wl.warmup_instrs = 4'000;
    MachineConfig mcd =
            MachineConfig::mcdProgram(AdaptiveConfig{3, 0, 0, 0});
    mcd.force_freq_ghz = 1.271;
    for (auto _ : state) {
        RunStats s = simulate(mcd, wl);
        benchmark::DoNotOptimize(s.time_ps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 24'000);
}
BENCHMARK(BM_McdMatchedRun);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    return runRegisteredBenchmarks(argc, argv);
}
