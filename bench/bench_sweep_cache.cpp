/**
 * @file
 * Cold-versus-warm wall clock for the 256-point exhaustive
 * Program-Adaptive sweep through the content-addressed result store
 * (sim/result_store.hh). The cold pass simulates every point and
 * checkpoints it; the warm pass replays the identical sweep from the
 * store. Both produce byte-identical shard JSON (asserted here), and
 * the cold/warm ratio is the speedup a resumed or repeated sweep
 * actually sees — the store's reason to exist. Infrastructure
 * measurement, not a paper experiment.
 *
 * main() writes BENCH_sweep_cache.json with both wall-clock times,
 * the ratio, and the store's hit/miss counters, so the trajectory
 * file pins that the warm pass was 100% hits.
 */

#include "bench_util.hh"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "sim/report.hh"
#include "sim/result_store.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

namespace fs = std::filesystem;
using clk = std::chrono::steady_clock;

WorkloadParams
sweepWorkload()
{
    // Full 256-point sweep at a reduced (but still phase-exercising)
    // window: cold takes O(10s) on the reference container, which is
    // enough signal for a wall-clock ratio without bloating CI.
    WorkloadParams wl = findBenchmark("gzip");
    wl.sim_instrs = 20'000;
    wl.warmup_instrs = 2'000;
    return wl;
}

double
seconds(clk::time_point a, clk::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

void
BM_WarmSweepPoint(benchmark::State &state)
{
    // Steady-state warm lookups (store prefilled by main() below or
    // by the first iteration here): one 256-point sweep per
    // iteration, items = points served from the store.
    WorkloadParams wl = sweepWorkload();
    std::uint64_t points = 0;
    for (auto _ : state) {
        auto rows = sweepAdaptiveRaw(wl, ShardSpec{});
        benchmark::DoNotOptimize(rows.data());
        points += rows.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(points));
}
BENCHMARK(BM_WarmSweepPoint);

int
report()
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("gals_bench_sweep_cache_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    configureResultStore(dir.string());
    if (!resultStore().enabled()) {
        std::fprintf(stderr, "cannot open result store under %s\n",
                     dir.string().c_str());
        return 1;
    }

    WorkloadParams wl = sweepWorkload();

    clk::time_point t0 = clk::now();
    std::string cold_json = adaptiveSweepShardJson(
        sweepAdaptiveRaw(wl, ShardSpec{}), wl.name, ShardSpec{});
    clk::time_point t1 = clk::now();
    std::string warm_json = adaptiveSweepShardJson(
        sweepAdaptiveRaw(wl, ShardSpec{}), wl.name, ShardSpec{});
    clk::time_point t2 = clk::now();

    const double cold_s = seconds(t0, t1);
    const double warm_s = seconds(t1, t2);
    const double ratio = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    const ResultStore::Counters c = resultStore().counters();
    const bool identical = cold_json == warm_json;

    std::printf("cold sweep: %8.3f s (256 points simulated)\n",
                cold_s);
    std::printf("warm sweep: %8.3f s (%llu hits, %llu misses)\n",
                warm_s, static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses));
    std::printf("speedup:    %8.1fx, JSON byte-identical: %s\n",
                ratio, identical ? "yes" : "NO");

    std::FILE *f = std::fopen("BENCH_sweep_cache.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr,
                     "warning: cannot write BENCH_sweep_cache.json\n");
    } else {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"sweep_cache\",\n");
        std::fprintf(f,
                     "  \"workload\": \"gzip 20k+2k instructions, "
                     "256-point adaptive sweep\",\n");
        std::fprintf(f, "  \"cold_seconds\": %.3f,\n", cold_s);
        std::fprintf(f, "  \"warm_seconds\": %.3f,\n", warm_s);
        std::fprintf(f, "  \"speedup\": %.1f,\n", ratio);
        std::fprintf(f, "  \"warm_hits\": %llu,\n",
                     static_cast<unsigned long long>(c.hits));
        std::fprintf(f, "  \"warm_misses\": %llu,\n",
                     static_cast<unsigned long long>(
                         c.misses - 256)); // cold pass owns 256.
        std::fprintf(f, "  \"json_byte_identical\": %s\n",
                     identical ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
    }

    // Leave the store warm for BM_WarmSweepPoint; the dir dies with
    // the process's temp cleanup or the next run's remove_all.
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    gals::benchBanner("Sweep result-store cold vs warm",
                      "infrastructure measurement (content-addressed "
                      "result store, sim/result_store.hh)");
    if (int rc = report(); rc != 0)
        return rc;
    return runRegisteredBenchmarks(argc, argv);
}
