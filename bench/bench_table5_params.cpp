/**
 * @file
 * Reproduces Table 5: the architectural parameters of the simulated
 * processor, including the per-mode branch mispredict penalties and
 * the resolved clock frequencies of the machines under comparison.
 * The registered benchmark measures processor construction cost.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "core/machine_config.hh"
#include "core/processor.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
printTable5()
{
    benchBanner("Table 5: architectural parameters",
                "paper Section 4, Table 5");

    MachineConfig sync = MachineConfig::bestSynchronous();
    MachineConfig mcd = MachineConfig::mcdProgram({});

    TextTable t("Table 5: architectural parameters for the simulated "
                "processor");
    t.setHeader({"parameter", "value"});
    t.addRow({"Fetch queue", csprintf("%d entries",
                                      sync.fetch_queue_entries)});
    t.addRow({"Branch mispredict penalty (synchronous)",
              csprintf("%d front-end + %d integer cycles",
                       sync.feDepth(), sync.dispatchDepth())});
    t.addRow({"Branch mispredict penalty (adaptive MCD)",
              csprintf("%d front-end + %d integer cycles",
                       mcd.feDepth(), mcd.dispatchDepth())});
    t.addRow({"Decode, issue, retire widths",
              csprintf("%d, %d, %d instructions", sync.decode_width,
                       sync.issue_width, sync.retire_width)});
    t.addRow({"L1 cache latency (A/B)", "2/8, 2/5, 2/2 or 2/- cycles"});
    t.addRow({"L2 cache latency (A/B)",
              "12/43, 12/27, 12/12 or 12/- cycles"});
    t.addRow({"Memory latency",
              "80 ns (first chunk), 2 ns (subsequent)"});
    t.addRow({"Integer ALUs", csprintf("%d + 1 mult/div unit",
                                       sync.int_alus)});
    t.addRow({"FP ALUs", csprintf("%d + 1 mult/div/sqrt unit",
                                  sync.fp_alus)});
    t.addRow({"Load/store queue", csprintf("%d entries",
                                           sync.lsq_entries)});
    t.addRow({"Physical register file",
              csprintf("%d integer, %d FP", sync.phys_int_regs,
                       sync.phys_fp_regs)});
    t.addRow({"Reorder buffer", csprintf("%d entries",
                                         sync.rob_entries)});
    t.print();

    TextTable f("Resolved clocks");
    f.setHeader({"machine", "front-end", "integer", "FP",
                 "load/store"});
    f.addRow({"best synchronous",
              csprintf("%.3f GHz", sync.synchronousFreqGHz()),
              csprintf("%.3f GHz", sync.synchronousFreqGHz()),
              csprintf("%.3f GHz", sync.synchronousFreqGHz()),
              csprintf("%.3f GHz", sync.synchronousFreqGHz())});
    f.addRow({"MCD base (minimal structures)",
              csprintf("%.3f GHz",
                       mcd.domainFreqGHz(DomainId::FrontEnd,
                                         mcd.adaptive)),
              csprintf("%.3f GHz",
                       mcd.domainFreqGHz(DomainId::Integer,
                                         mcd.adaptive)),
              csprintf("%.3f GHz",
                       mcd.domainFreqGHz(DomainId::FloatingPoint,
                                         mcd.adaptive)),
              csprintf("%.3f GHz",
                       mcd.domainFreqGHz(DomainId::LoadStore,
                                         mcd.adaptive))});
    AdaptiveConfig largest{3, 3, 3, 3};
    MachineConfig big = MachineConfig::mcdProgram(largest);
    f.addRow({"MCD largest structures",
              csprintf("%.3f GHz",
                       big.domainFreqGHz(DomainId::FrontEnd, largest)),
              csprintf("%.3f GHz",
                       big.domainFreqGHz(DomainId::Integer, largest)),
              csprintf("%.3f GHz",
                       big.domainFreqGHz(DomainId::FloatingPoint,
                                         largest)),
              csprintf("%.3f GHz",
                       big.domainFreqGHz(DomainId::LoadStore,
                                         largest))});
    f.print();
    std::printf("\n");
}

void
BM_ProcessorConstruction(benchmark::State &state)
{
    const WorkloadParams &wl = findBenchmark("gcc");
    for (auto _ : state) {
        Processor cpu(MachineConfig::mcdPhaseAdaptive(), wl);
        benchmark::DoNotOptimize(&cpu);
    }
}
BENCHMARK(BM_ProcessorConstruction);

} // namespace

int
main(int argc, char **argv)
{
    printTable5();
    return runRegisteredBenchmarks(argc, argv);
}
