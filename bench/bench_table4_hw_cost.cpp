/**
 * @file
 * Reproduces Table 4: the equivalent-gate estimate of the
 * phase-adaptive cache controller's decision hardware, and the ~32
 * cycle decision latency. The registered benchmark measures the cost
 * computation the hardware performs, run in software.
 */

#include "bench_util.hh"

#include "cache/cache_cost.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "control/cache_controller.hh"
#include "timing/frequency_model.hh"
#include "timing/gate_cost.hh"

using namespace gals;

namespace
{

void
printTable4()
{
    benchBanner("Table 4: hardware cost of the phase-adaptive cache "
                "controller",
                "paper Section 3.1, Table 4");

    GateCostModel model;
    TextTable t("Table 4: estimate of hardware resources (per "
                "adaptable cache / cache pair)");
    t.setHeader({"Component", "Estimate", "Equivalent Gates"});
    for (const GateCostRow &row : model.rows()) {
        t.addRow({row.component, row.estimate,
                  csprintf("%d", row.equivalent_gates)});
    }
    t.addRule();
    t.addRow({"Total", "", csprintf("%d", model.totalGates())});
    t.print();

    std::printf("\nreconfiguration decision latency: %d cycles "
                "(paper: ~32)\n",
                model.decisionCycles());
    std::printf("two controllers (I-cache, L1/L2 pair): ~%d gates "
                "total (paper: ~10K)\n\n",
                2 * model.totalGates());
}

void
BM_CacheDecision(benchmark::State &state)
{
    IntervalCounts l1;
    l1.mru_hits = {4000, 1200, 800, 500, 420, 300, 200, 100};
    l1.misses = 250;
    IntervalCounts l2;
    l2.mru_hits = {200, 100, 80, 60, 40, 30, 20, 10};
    l2.misses = 120;
    for (auto _ : state) {
        CacheDecision d =
            chooseDCachePair(l1, l2, memoryLineFillPs());
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_CacheDecision);

} // namespace

int
main(int argc, char **argv)
{
    printTable4();
    return runRegisteredBenchmarks(argc, argv);
}
