/**
 * @file
 * Shared helpers for the bench binaries: every binary prints its
 * paper table/figure reproduction in main() and then runs its
 * registered google-benchmark measurements.
 */

#ifndef GALS_BENCH_BENCH_UTIL_HH
#define GALS_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <ctime>

namespace gals
{

/** Process CPU seconds (sums across threads; immune to co-runner
 * contention, which makes it the stable column on shared hosts). */
inline double
cpuProcessSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Banner separating the reproduction report from the micro-bench. */
inline void
benchBanner(const char *experiment, const char *paper_note)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n", experiment);
    std::printf("paper reference: %s\n", paper_note);
    std::printf("==================================================="
                "=========================\n");
}

/** Standard tail: run registered google-benchmark measurements. */
inline int
runRegisteredBenchmarks(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace gals

#endif // GALS_BENCH_BENCH_UTIL_HH
