/**
 * @file
 * Reproduces Table 1 (L1D/L2 configurations, adaptive vs optimal
 * sub-banking) and Figure 2 (D-cache/L2 pair frequency versus
 * configuration). The registered benchmark measures the analytical
 * timing model's evaluation cost.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "timing/cacti_model.hh"
#include "timing/frequency_model.hh"

using namespace gals;

namespace
{

void
printTable1AndFigure2()
{
    benchBanner("Table 1 + Figure 2: L1 data / L2 cache configurations "
                "and frequencies",
                "paper Section 2.1, Table 1, Figure 2");

    TextTable t("Table 1: L1 data and L2 cache configurations");
    t.setHeader({"L1-D size", "assoc", "sb adapt", "sb opt", "L2 size",
                 "sb adapt", "sb opt", "A/B lat L1", "A/B lat L2"});
    for (int i = 0; i < kNumAdaptiveConfigs; ++i) {
        const DCachePairConfig &c = dcachePairConfig(i);
        auto lat = [](int a, int b) {
            return b >= 0 ? csprintf("%d/%d", a, b)
                          : csprintf("%d/-", a);
        };
        t.addRow({csprintf("%llu KB",
                           static_cast<unsigned long long>(
                               c.l1_adapt.size_bytes / 1024)),
                  csprintf("%d", c.l1_adapt.assoc),
                  csprintf("%d", c.l1_adapt.subbanks),
                  csprintf("%d", c.l1_opt.subbanks),
                  csprintf("%llu KB",
                           static_cast<unsigned long long>(
                               c.l2_adapt.size_bytes / 1024)),
                  csprintf("%d", c.l2_adapt.subbanks),
                  csprintf("%d", c.l2_opt.subbanks),
                  lat(c.l1_a_lat, c.l1_b_lat),
                  lat(c.l2_a_lat, c.l2_b_lat)});
    }
    t.print();
    std::printf("\n");

    std::vector<std::string> labels;
    std::vector<double> values;
    for (int i = 0; i < kNumAdaptiveConfigs; ++i) {
        const DCachePairConfig &c = dcachePairConfig(i);
        labels.push_back(c.name + " adaptive");
        values.push_back(c.freq_adaptive_ghz);
        labels.push_back(c.name + " optimal");
        values.push_back(c.freq_optimal_ghz);
    }
    std::printf("%s\n",
                renderBarChart(
                    "Figure 2: D-cache/L2 frequency vs configuration "
                    "(GHz)",
                    labels, values, 1.8, 44, " GHz")
                    .c_str());

    double gap =
        dcachePairConfig(3).freq_optimal_ghz /
            dcachePairConfig(3).freq_adaptive_ghz - 1.0;
    std::printf("adaptive-vs-optimal gap at largest config: %.1f%% "
                "(paper: ~5%%)\n\n",
                100.0 * gap);
}

void
BM_CactiEvaluation(benchmark::State &state)
{
    const CactiModel &m = CactiModel::dataCache();
    SramOrg org{static_cast<std::uint64_t>(state.range(0)) * 1024, 8,
                32, 64};
    for (auto _ : state) {
        double t = m.accessNs(org);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_CactiEvaluation)->Arg(32)->Arg(256)->Arg(2048);

} // namespace

int
main(int argc, char **argv)
{
    printTable1AndFigure2();
    return runRegisteredBenchmarks(argc, argv);
}
