/**
 * @file
 * Host-side throughput of multi-core chip simulation versus core
 * count, plus the interconnect-pressure counters of each point.
 * Useful for budgeting CMP sweep sizes and watching the shared-L2
 * arbitration cost; not a paper experiment.
 *
 * Items == total committed instructions across all cores, so the
 * items/s column shows how much of the added simulation work the
 * event kernel absorbs as cores (and interconnect arbitration
 * traffic) grow.
 */

#include "bench_util.hh"

#include <cstdio>

#include "cmp/chip.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

std::vector<WorkloadParams>
mixFor(int cores)
{
    std::vector<WorkloadParams> suite = benchmarkSuite();
    std::vector<WorkloadParams> mix =
        multiprogrammedMix(suite, cores, 0);
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 20'000;
        wl.warmup_instrs = 2'000;
    }
    return mix;
}

void
BM_ChipRun(benchmark::State &state)
{
    int cores = static_cast<int>(state.range(0));
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = cores;
    std::vector<WorkloadParams> mix = mixFor(cores);

    std::uint64_t instrs = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t merges = 0;
    for (auto _ : state) {
        Chip chip(cc, mix);
        ChipRunStats s = chip.run();
        benchmark::DoNotOptimize(s.makespan_ps);
        instrs += s.total_committed;
        conflicts += s.bank_conflicts;
        merges += s.fill_merges;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["bank_conflicts"] = benchmark::Counter(
        static_cast<double>(conflicts),
        benchmark::Counter::kAvgIterations);
    state.counters["fill_merges"] = benchmark::Counter(
        static_cast<double>(merges),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ChipRun)->Arg(1)->Arg(2)->Arg(4);

/** The contended corner: one bank, one fill slot per bank. */
void
BM_ChipRunContended(benchmark::State &state)
{
    int cores = static_cast<int>(state.range(0));
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = cores;
    cc.l2_banks = 1;
    cc.l2_bank_mshrs = 1;
    cc.l2_bank_occupancy_ps = 900;
    std::vector<WorkloadParams> mix = mixFor(cores);

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Chip chip(cc, mix);
        ChipRunStats s = chip.run();
        benchmark::DoNotOptimize(s.makespan_ps);
        instrs += s.total_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_ChipRunContended)->Arg(2)->Arg(4);

} // namespace

int
main(int argc, char **argv)
{
    gals::benchBanner("Chip-multiprocessor host throughput",
                      "infrastructure measurement (items == total "
                      "committed instructions)");
    return runRegisteredBenchmarks(argc, argv);
}
