/**
 * @file
 * Host-side throughput of multi-core chip simulation versus core
 * count and worker-thread count, plus the interconnect-pressure
 * counters of each point. Useful for budgeting CMP sweep sizes and
 * watching the shared-L2 arbitration cost; not a paper experiment.
 *
 * Items == total committed instructions across all cores, so the
 * items/s column shows how much of the added simulation work the
 * event kernel absorbs as cores (and interconnect arbitration
 * traffic) grow.
 *
 * The second benchmark argument is GALS_CHIP_THREADS: 1 is the
 * sequential event kernel, >1 the horizon-parallel stepper (always
 * bit-identical; the differential suite enforces that). Wall-clock
 * ("Time") is the column to read for thread scaling — CPU time sums
 * across workers. Speedup requires at least as many host CPUs as
 * workers; on a single-CPU host the parallel points show the
 * protocol's overhead floor instead.
 */

#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cmp/chip.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

std::vector<WorkloadParams>
mixFor(int cores)
{
    std::vector<WorkloadParams> suite = benchmarkSuite();
    std::vector<WorkloadParams> mix =
        multiprogrammedMix(suite, cores, 0);
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 20'000;
        wl.warmup_instrs = 2'000;
    }
    return mix;
}

/** Scoped GALS_CHIP_THREADS setting (read per chip run). */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(int threads)
    {
        setenv("GALS_CHIP_THREADS", std::to_string(threads).c_str(),
               1);
    }
    ~ThreadsEnv() { unsetenv("GALS_CHIP_THREADS"); }
};

void
BM_ChipRun(benchmark::State &state)
{
    int cores = static_cast<int>(state.range(0));
    int threads = static_cast<int>(state.range(1));
    ThreadsEnv env(threads);
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = cores;
    std::vector<WorkloadParams> mix = mixFor(cores);

    std::uint64_t instrs = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t merges = 0;
    std::uint64_t rounds = 0;
    double cpu0 = cpuProcessSeconds();
    for (auto _ : state) {
        Chip chip(cc, mix);
        ChipRunStats s = chip.run();
        benchmark::DoNotOptimize(s.makespan_ps);
        instrs += s.total_committed;
        conflicts += s.bank_conflicts;
        merges += s.fill_merges;
        rounds += s.parallel_rounds;
    }
    double cpu = cpuProcessSeconds() - cpu0;
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["bank_conflicts"] = benchmark::Counter(
        static_cast<double>(conflicts),
        benchmark::Counter::kAvgIterations);
    state.counters["fill_merges"] = benchmark::Counter(
        static_cast<double>(merges),
        benchmark::Counter::kAvgIterations);
    state.counters["rounds"] = benchmark::Counter(
        static_cast<double>(rounds),
        benchmark::Counter::kAvgIterations);
    // Process CPU time split per worker, per iteration: on a 1-CPU
    // host (the reference container) the wall-clock column cannot
    // show thread scaling, but this one can — a parallel point whose
    // per-worker CPU time beats the threads=1 row's means each
    // worker does genuinely less work per run (the spin/settle
    // overhead is more than covered), so it would scale on a wider
    // host.
    state.counters["cpu_per_worker_s"] = benchmark::Counter(
        cpu / static_cast<double>(threads),
        benchmark::Counter::kAvgIterations);
}
// {cores, worker threads}: the threads=1 rows are the sequential
// kernel (the default path); each core count then adds its parallel
// points up to threads == cores.
BENCHMARK(BM_ChipRun)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 16})
    ->UseRealTime();

/** The contended corner: one bank, one fill slot per bank. Frequent
 * in-flight fills clamp the parallel stepper's horizon to fill
 * granularity, so this is its worst case (maximum rounds per unit of
 * simulated time). */
void
BM_ChipRunContended(benchmark::State &state)
{
    int cores = static_cast<int>(state.range(0));
    int threads = static_cast<int>(state.range(1));
    ThreadsEnv env(threads);
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = cores;
    cc.l2_banks = 1;
    cc.l2_bank_mshrs = 1;
    cc.l2_bank_occupancy_ps = 900;
    std::vector<WorkloadParams> mix = mixFor(cores);

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Chip chip(cc, mix);
        ChipRunStats s = chip.run();
        benchmark::DoNotOptimize(s.makespan_ps);
        instrs += s.total_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_ChipRunContended)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({4, 1})
    ->Args({4, 4})
    ->UseRealTime();

} // namespace

int
main(int argc, char **argv)
{
    gals::benchBanner("Chip-multiprocessor host throughput",
                      "infrastructure measurement (items == total "
                      "committed instructions)");
    std::printf("host CPUs: %u (parallel wall-clock speedup needs "
                ">= as many as worker threads)\n",
                std::thread::hardware_concurrency());
    return runRegisteredBenchmarks(argc, argv);
}
