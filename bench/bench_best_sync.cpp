/**
 * @file
 * Reproduces the paper's Section 4 search for the "best overall"
 * fully synchronous processor. The paper sweeps 1,024 synchronous
 * design points (16 I-cache/predictor organizations x 4 cache pairs
 * x 4 integer IQ x 4 FP IQ sizes) over the whole suite; here the
 * default sweeps the 64-point I-cache x cache-pair cross (the full
 * sweep confirms 16-entry queues win; enable it with
 * GALS_SWEEP=exhaustive). GALS_BENCHMARKS=n limits the suite.
 */

#include "bench_util.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "timing/frequency_model.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
printSweep()
{
    benchBanner("Best-overall synchronous design search",
                "paper Section 4 (expected winner: 64KB 1W I-cache, "
                "32KB/256KB 1W caches, 16-entry queues)");

    std::vector<WorkloadParams> suite = benchmarkSuite();
    size_t limit = 12;
    if (const char *env = std::getenv("GALS_BENCHMARKS"))
        limit = static_cast<size_t>(std::atoi(env));
    if (limit > 0 && limit < suite.size()) {
        // Default: an evenly spaced subset keeps the bench quick
        // while covering all three suites.
        std::vector<WorkloadParams> subset;
        for (size_t i = 0; i < suite.size();
             i += suite.size() / limit) {
            subset.push_back(suite[i]);
        }
        suite = std::move(subset);
    }
    bool full = sweepModeFromEnv() == SweepMode::Exhaustive;
    std::printf("sweeping %s design points over %zu benchmarks...\n",
                full ? "all 1,024" : "64 (I-cache x cache pair)",
                suite.size());
    std::fflush(stdout);

    auto points = sweepSynchronous(suite, full);

    TextTable t("Synchronous design points, best first (geometric-mean "
                "runtime normalized to the winner)");
    t.setHeader({"rank", "I-cache", "D/L2", "int IQ", "fp IQ", "GHz",
                 "norm runtime"});
    for (size_t i = 0; i < points.size() && i < 10; ++i) {
        const SyncDesignPoint &p = points[i];
        t.addRow({csprintf("%zu", i + 1),
                  optICacheConfig(p.icache_opt).name,
                  dcachePairConfig(p.dcache).name,
                  csprintf("%d", kIssueQueueSizes[p.iq_int]),
                  csprintf("%d", kIssueQueueSizes[p.iq_fp]),
                  csprintf("%.3f",
                           synchronousFreq(p.icache_opt, p.dcache,
                                           p.iq_int, p.iq_fp)),
                  csprintf("%.4f", p.norm_runtime)});
    }
    t.print();

    const SyncDesignPoint &best = points.front();
    std::printf("\nwinner: %s I-cache + %s caches + %d/%d-entry "
                "queues at %.3f GHz\n\n",
                optICacheConfig(best.icache_opt).name.c_str(),
                dcachePairConfig(best.dcache).name.c_str(),
                kIssueQueueSizes[best.iq_int],
                kIssueQueueSizes[best.iq_fp],
                synchronousFreq(best.icache_opt, best.dcache,
                                best.iq_int, best.iq_fp));
}

void
BM_SyncSweepPoint(benchmark::State &state)
{
    WorkloadParams wl = findBenchmark("g721 encode");
    wl.sim_instrs = 20'000;
    wl.warmup_instrs = 4'000;
    for (auto _ : state) {
        RunStats s =
            simulate(MachineConfig::synchronous(4, 0, 0, 0), wl);
        benchmark::DoNotOptimize(s.time_ps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 24'000);
}
BENCHMARK(BM_SyncSweepPoint);

} // namespace

int
main(int argc, char **argv)
{
    printSweep();
    return runRegisteredBenchmarks(argc, argv);
}
