/**
 * @file
 * Reproduces Figure 7: sample reconfiguration traces of the
 * Phase-Adaptive machine — (a) apsi's D/L2 cache configuration
 * following its periodic data-working-set phases, (b) art's integer
 * issue queue following its ILP-distance regimes.
 */

#include "bench_util.hh"

#include "sim/report.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
printTrace(const char *bench, Structure s, const char *title,
           const std::vector<std::string> &labels)
{
    WorkloadParams wl = findBenchmark(bench);
    RunStats stats = simulate(MachineConfig::mcdPhaseAdaptive(), wl);
    std::printf("%s\n",
                renderReconfigTrace(title, stats.trace, s, 0,
                                    wl.warmup_instrs + wl.sim_instrs,
                                    labels)
                    .c_str());
    std::printf("  residency (committed instrs per config):");
    const auto &res = s == Structure::DCachePair
                          ? stats.dcache_residency
                          : stats.iq_int_residency;
    for (size_t i = 0; i < res.size(); ++i) {
        std::printf(" [%zu]=%llu", i,
                    static_cast<unsigned long long>(res[i]));
    }
    std::printf("\n\n");
}

void
printFigure7()
{
    benchBanner("Figure 7: sample reconfiguration traces",
                "paper Section 5.1, Figure 7 (a: apsi D/L2 phases, "
                "b: art integer IQ phases)");

    printTrace("apsi", Structure::DCachePair,
               "(a) apsi D/L2 cache configurations vs committed "
               "instructions",
               {"32k1W/256k1W", "64k2W/512k2W", "128k4W/1024k4W",
                "256k8W/2048k8W"});
    printTrace("art", Structure::IntIssueQueue,
               "(b) art integer issue-queue configurations vs "
               "committed instructions",
               {"16 entries", "32 entries", "48 entries",
                "64 entries"});
}

void
BM_PhaseAdaptiveRun(benchmark::State &state)
{
    WorkloadParams wl = findBenchmark("apsi");
    wl.sim_instrs = 40'000;
    wl.warmup_instrs = 5'000;
    for (auto _ : state) {
        RunStats s = simulate(MachineConfig::mcdPhaseAdaptive(), wl);
        benchmark::DoNotOptimize(s.time_ps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 45'000);
}
BENCHMARK(BM_PhaseAdaptiveRun);

} // namespace

int
main(int argc, char **argv)
{
    printFigure7();
    return runRegisteredBenchmarks(argc, argv);
}
