/**
 * @file
 * Ablation: the over-pipelining cost of adaptability. The adaptive
 * MCD pays a 10+9-cycle branch mispredict penalty against the
 * synchronous machine's 9+7 (paper Section 2). This bench sweeps the
 * branch-noise knob — raising the mispredict rate — and reports how
 * both machines degrade; the MCD line degrades faster, quantifying
 * the penalty of running over-pipelined at lower frequencies.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
printAblation()
{
    benchBanner("Ablation: branch mispredict penalty (9+7 sync vs "
                "10+9 adaptive MCD)",
                "paper Section 2 (over-pipelining cost of "
                "adaptability)");

    WorkloadParams base = findBenchmark("adpcm encode");
    base.sim_instrs = 60'000;
    base.warmup_instrs = 8'000;

    MachineConfig sync = MachineConfig::bestSynchronous();
    MachineConfig mcd = MachineConfig::mcdProgram({});

    TextTable t("Runtime vs injected branch noise");
    t.setHeader({"branch noise", "sync ns", "sync mispredict", "mcd ns",
                 "mcd mispredict", "mcd advantage"});
    for (double noise : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        WorkloadParams wl = base;
        for (PhaseParams &p : wl.phases)
            p.branch_noise = noise;
        RunStats s = simulate(sync, wl);
        RunStats m = simulate(mcd, wl);
        t.addRow({csprintf("%.2f", noise),
                  csprintf("%.0f", runtimeNs(s)),
                  csprintf("%.1f%%",
                           s.branches ? 100.0 * s.mispredicts /
                                            s.branches : 0.0),
                  csprintf("%.0f", runtimeNs(m)),
                  csprintf("%.1f%%",
                           m.branches ? 100.0 * m.mispredicts /
                                            m.branches : 0.0),
                  csprintf("%+.1f%%",
                           100.0 * (runtimeNs(s) / runtimeNs(m) -
                                    1.0))});
    }
    t.print();
    std::printf("\nreading: the MCD clock advantage shrinks as flushes "
                "dominate, because each flush refills a deeper pipe "
                "(10+9 vs 9+7 stages plus a synchronizer crossing).\n"
                "\n");
}

void
BM_HighNoiseRun(benchmark::State &state)
{
    WorkloadParams wl = findBenchmark("adpcm decode");
    wl.sim_instrs = 20'000;
    wl.warmup_instrs = 4'000;
    for (auto _ : state) {
        RunStats s = simulate(MachineConfig::mcdProgram({}), wl);
        benchmark::DoNotOptimize(s.time_ps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 24'000);
}
BENCHMARK(BM_HighNoiseRun);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    return runRegisteredBenchmarks(argc, argv);
}
