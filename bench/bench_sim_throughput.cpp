/**
 * @file
 * Host-side throughput of the simulator itself (committed
 * instructions per host second) for the three machine types. Useful
 * for budgeting sweep sizes; not a paper experiment.
 */

#include "bench_util.hh"

#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
BM_Simulate(benchmark::State &state, MachineConfig config)
{
    WorkloadParams wl = findBenchmark("gzip");
    wl.sim_instrs = 50'000;
    wl.warmup_instrs = 5'000;
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        RunStats s = simulate(config, wl);
        benchmark::DoNotOptimize(s.time_ps);
        instrs += 55'000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}

void
BM_Synchronous(benchmark::State &state)
{
    BM_Simulate(state, MachineConfig::bestSynchronous());
}
BENCHMARK(BM_Synchronous);

void
BM_McdProgram(benchmark::State &state)
{
    BM_Simulate(state, MachineConfig::mcdProgram({}));
}
BENCHMARK(BM_McdProgram);

void
BM_McdPhaseAdaptive(benchmark::State &state)
{
    BM_Simulate(state, MachineConfig::mcdPhaseAdaptive());
}
BENCHMARK(BM_McdPhaseAdaptive);

} // namespace

int
main(int argc, char **argv)
{
    gals::benchBanner("Simulator host throughput",
                      "infrastructure measurement (items == committed "
                      "instructions)");
    return runRegisteredBenchmarks(argc, argv);
}
