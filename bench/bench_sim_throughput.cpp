/**
 * @file
 * Host-side throughput of the simulator itself (committed
 * instructions per host second) for the three machine types. Useful
 * for budgeting sweep sizes; not a paper experiment.
 *
 * Besides the google-benchmark measurements, main() writes
 * BENCH_sim_throughput.json with the same metric so the performance
 * trajectory can be tracked across PRs. The file carries the frozen
 * seed-kernel baseline measured on the reference container alongside
 * the current numbers; the ratio column is the event-kernel speedup.
 */

#include "bench_util.hh"

#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <string>
#include <vector>

#include "cmp/chip.hh"
#include "obs/trace.hh"
#include "sim/result_store.hh"
#include "sim/shard.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

/**
 * Committed-instructions/second baselines, frozen so later PRs can
 * report speedup against the same origin: the three single-core
 * configs were measured with the seed kernel at the seed commit on
 * the reference container (1 CPU); the cmp2 column (a two-core
 * multiprogrammed chip, metric = total committed instructions across
 * both cores) was introduced with the CMP subsystem in PR 5 and its
 * baseline is that introduction's measurement on the same container,
 * rounded; cmp4 (a four-core multiprogrammed chip) was introduced
 * with the horizon-parallel stepper in PR 6, same policy; cmp2_shared
 * (a two-core producer/consumer sharing mix — the coherence
 * directory, invalidation and inbox paths on the hot loop) was
 * introduced with cross-core L1 coherence in PR 7, same policy;
 * cmp8 (an eight-core multiprogrammed chip) was introduced with the
 * many-core scale-up in PR 9, same policy; sweep_warm (a 64-point
 * adaptive sweep served entirely from the content-addressed result
 * store — metric is the warm-cache *equivalent* committed
 * instructions per second, i.e. the simulation work a hit avoids, so
 * it gates record lookup + deserialization throughput) was
 * introduced with the result store in PR 8, same policy. The
 * container's run-to-run noise is ±5-15%, so current/baseline ratios
 * near 1.0 are parity, not regressions.
 */
constexpr int kNumConfigs = 8;
constexpr double kSeedBaseline[kNumConfigs] = {
    1.62e6, // synchronous
    1.36e6, // mcdProgram
    1.37e6, // mcdPhaseAdaptive
    2.00e6, // cmp2 (PR 5 introduction baseline)
    2.50e6, // cmp4 (PR 6 introduction baseline)
    2.10e6, // cmp8 (PR 9 introduction baseline)
    1.93e6, // cmp2_shared (PR 7 introduction baseline)
    2.00e8, // sweep_warm (PR 8 introduction baseline)
};

const char *kConfigNames[kNumConfigs] = {
    "synchronous", "mcdProgram",  "mcdPhaseAdaptive",
    "cmp2",        "cmp4",        "cmp8",
    "cmp2_shared", "sweep_warm"};

MachineConfig
configFor(int i)
{
    switch (i) {
      case 0:  return MachineConfig::bestSynchronous();
      case 1:  return MachineConfig::mcdProgram({});
      default: return MachineConfig::mcdPhaseAdaptive();
    }
}

WorkloadParams
benchWorkload()
{
    WorkloadParams wl = findBenchmark("gzip");
    wl.sim_instrs = 50'000;
    wl.warmup_instrs = 5'000;
    return wl;
}

void
BM_Simulate(benchmark::State &state, MachineConfig config)
{
    WorkloadParams wl = benchWorkload();
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        RunStats s = simulate(config, wl);
        benchmark::DoNotOptimize(s.time_ps);
        instrs += 55'000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}

void
BM_Synchronous(benchmark::State &state)
{
    BM_Simulate(state, MachineConfig::bestSynchronous());
}
BENCHMARK(BM_Synchronous);

void
BM_McdProgram(benchmark::State &state)
{
    BM_Simulate(state, MachineConfig::mcdProgram({}));
}
BENCHMARK(BM_McdProgram);

void
BM_McdPhaseAdaptive(benchmark::State &state)
{
    BM_Simulate(state, MachineConfig::mcdPhaseAdaptive());
}
BENCHMARK(BM_McdPhaseAdaptive);

/** Process CPU seconds (immune to co-runner contention). */
double
cpuSeconds()
{
    return cpuProcessSeconds();
}

/** items per CPU-second over ~1.2s for one machine type. */
double
measureItemsPerSec(const MachineConfig &config)
{
    WorkloadParams wl = benchWorkload();
    simulate(config, wl); // warm caches and the thread arena.

    std::uint64_t instrs = 0;
    double elapsed = 0.0;
    double t0 = cpuSeconds();
    do {
        RunStats s = simulate(config, wl);
        benchmark::DoNotOptimize(s.time_ps);
        instrs += 55'000;
        elapsed = cpuSeconds() - t0;
    } while (elapsed < 1.2);
    return static_cast<double>(instrs) / elapsed;
}

/** The tracked two-core multiprogrammed chip (gzip + em3d#c1). */
std::vector<WorkloadParams>
cmpBenchMix()
{
    WorkloadParams a = benchWorkload();
    WorkloadParams b = findBenchmark("em3d");
    b.sim_instrs = 50'000;
    b.warmup_instrs = 5'000;
    return {perCoreWorkload(a, 0), perCoreWorkload(b, 1)};
}

/** The tracked four-core multiprogrammed chip (suite rotation). */
std::vector<WorkloadParams>
cmp4BenchMix()
{
    std::vector<WorkloadParams> mix =
        multiprogrammedMix(benchmarkSuite(), 4, 0);
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 50'000;
        wl.warmup_instrs = 5'000;
    }
    return mix;
}

/** The tracked eight-core multiprogrammed chip (suite rotation). */
std::vector<WorkloadParams>
cmp8BenchMix()
{
    std::vector<WorkloadParams> mix =
        multiprogrammedMix(benchmarkSuite(), 8, 0);
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 50'000;
        wl.warmup_instrs = 5'000;
    }
    return mix;
}

/** The tracked two-core sharing chip: both cores run gzip into a
 * common 16KB coherent window, core 0 store-heavy (the producer). */
std::vector<WorkloadParams>
cmp2SharedBenchMix()
{
    std::vector<WorkloadParams> mix =
        sharingMix(benchWorkload(), 2, "producer-consumer");
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 50'000;
        wl.warmup_instrs = 5'000;
    }
    return mix;
}

/** Total committed instructions per CPU-second for an N-core chip
 * (sequential kernel: the default GALS_CHIP_THREADS=1 path is what
 * the tracked columns gate). */
double
measureCmpItemsPerSec(int cores,
                      const std::vector<WorkloadParams> &mix)
{
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = cores;
    std::uint64_t per_run = 0;
    for (const WorkloadParams &wl : mix)
        per_run += wl.sim_instrs + wl.warmup_instrs;
    Chip(cc, mix).run(); // warm caches and the thread arena.

    std::uint64_t instrs = 0;
    double elapsed = 0.0;
    double t0 = cpuSeconds();
    do {
        Chip chip(cc, mix);
        ChipRunStats s = chip.run();
        benchmark::DoNotOptimize(s.makespan_ps);
        instrs += per_run;
        elapsed = cpuSeconds() - t0;
    } while (elapsed < 1.2);
    return static_cast<double>(instrs) / elapsed;
}

/**
 * Warm-cache equivalent committed instructions per CPU-second: a
 * 64-point slice of the adaptive sweep is prefilled into a result
 * store once (cold, untimed), then swept repeatedly warm. Each warm
 * point is one record lookup + RunStats deserialization standing in
 * for (sim+warmup) instructions of simulation, so the column tracks
 * the store's hit path; a regression here means lookups got slower.
 */
double
measureWarmSweepItemsPerSec()
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("gals_bench_cache_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    configureResultStore(dir.string());

    WorkloadParams wl = benchWorkload();
    wl.sim_instrs = 4'000;
    wl.warmup_instrs = 800;
    const ShardSpec shard{0, 4}; // 64 of the 256 adaptive points.
    sweepAdaptiveRaw(wl, shard); // cold prefill (untimed).

    const std::uint64_t per_sweep =
        64 * (wl.sim_instrs + wl.warmup_instrs);
    std::uint64_t instrs = 0;
    double elapsed = 0.0;
    double t0 = cpuSeconds();
    do {
        auto rows = sweepAdaptiveRaw(wl, shard);
        benchmark::DoNotOptimize(rows.data());
        instrs += per_sweep;
        elapsed = cpuSeconds() - t0;
    } while (elapsed < 1.2);

    configureResultStore("");
    fs::remove_all(dir);
    return static_cast<double>(instrs) / elapsed;
}

/**
 * Informational (NOT gated by perf_smoke, which only iterates the
 * "configs" map): single-core gzip throughput with the event tracer
 * armed, per-run buffers dropped between iterations so every run
 * records a full trace instead of saturating the run cap. The
 * tracing_off/tracing_on ratio documents the opt-in cost of
 * GALS_TRACE; the untraced columns above are measured with the
 * tracer disarmed, exactly like production runs.
 */
double
measureTracedItemsPerSec(const MachineConfig &config)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() /
        ("gals_bench_trace_" + std::to_string(::getpid()) + ".json");
    obs::Tracer &tr = obs::Tracer::instance();
    if (!tr.configure(path.string()))
        return 0.0;

    WorkloadParams wl = benchWorkload();
    simulate(config, wl); // warm caches and the thread arena.
    tr.reset();

    std::uint64_t instrs = 0;
    double elapsed = 0.0;
    double t0 = cpuSeconds();
    do {
        RunStats s = simulate(config, wl);
        benchmark::DoNotOptimize(s.time_ps);
        tr.reset();
        instrs += 55'000;
        elapsed = cpuSeconds() - t0;
    } while (elapsed < 1.2);

    tr.disable();
    fs::remove(path);
    return static_cast<double>(instrs) / elapsed;
}

void
writeJson()
{
    std::FILE *f = std::fopen("BENCH_sim_throughput.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr,
                     "warning: cannot write "
                     "BENCH_sim_throughput.json\n");
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"sim_throughput\",\n");
    std::fprintf(f,
                 "  \"metric\": "
                 "\"committed_instructions_per_host_second\",\n");
    std::fprintf(f,
                 "  \"workload\": \"gzip 50k+5k instructions\",\n");
    std::fprintf(f, "  \"configs\": {\n");
    for (int i = 0; i < kNumConfigs; ++i) {
        double now;
        if (i < 3)
            now = measureItemsPerSec(configFor(i));
        else if (i == 3)
            now = measureCmpItemsPerSec(2, cmpBenchMix());
        else if (i == 4)
            now = measureCmpItemsPerSec(4, cmp4BenchMix());
        else if (i == 5)
            now = measureCmpItemsPerSec(8, cmp8BenchMix());
        else if (i == 6)
            now = measureCmpItemsPerSec(2, cmp2SharedBenchMix());
        else
            now = measureWarmSweepItemsPerSec();
        std::fprintf(f,
                     "    \"%s\": {\"seed_baseline\": %.0f, "
                     "\"current\": %.0f, \"speedup\": %.2f}%s\n",
                     kConfigNames[i], kSeedBaseline[i], now,
                     now / kSeedBaseline[i],
                     i + 1 < kNumConfigs ? "," : "");
        std::printf("JSON %-16s %8.0f items/s (seed %8.0f, %.2fx)\n",
                    kConfigNames[i], now, kSeedBaseline[i],
                    now / kSeedBaseline[i]);
    }
    std::fprintf(f, "  },\n");
    // Tracing-on overhead, informational only (untracked in the
    // committed reference: perf_smoke gates the "configs" map alone,
    // and the ratio moves with trace volume, not simulator speed).
    double off = measureItemsPerSec(configFor(1));
    double on = measureTracedItemsPerSec(configFor(1));
    std::fprintf(f,
                 "  \"informational\": {\n"
                 "    \"tracing_overhead\": {\"config\": "
                 "\"mcdProgram\", \"tracing_off\": %.0f, "
                 "\"tracing_on\": %.0f, \"on_off_ratio\": %.3f}\n"
                 "  }\n}\n",
                 off, on, on > 0.0 ? on / off : 0.0);
    std::printf("JSON tracing overhead (mcdProgram): off %.0f, "
                "on %.0f items/s (%.1f%% of untraced)\n",
                off, on, off > 0.0 ? 100.0 * on / off : 0.0);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    gals::benchBanner("Simulator host throughput",
                      "infrastructure measurement (items == committed "
                      "instructions)");
    writeJson();
    return runRegisteredBenchmarks(argc, argv);
}
