/**
 * @file
 * Reproduces Figure 4: issue-queue frequency versus queue size,
 * showing the log4 selection-tree cliff between 16 and 20 entries.
 * The registered benchmarks measure the ILP tracker (the hardware the
 * paper budgets in Section 3.2) in software.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "control/ilp_tracker.hh"
#include "timing/frequency_model.hh"
#include "timing/palacharla_model.hh"
#include "workload/generator.hh"

using namespace gals;

namespace
{

void
printFigure4()
{
    benchBanner("Figure 4: issue queue frequency analysis",
                "paper Section 2.3, Figure 4");

    IssueQueueTiming timing;
    std::vector<std::string> labels;
    std::vector<double> values;
    TextTable t("Issue-queue timing (Palacharla-style model)");
    t.setHeader({"entries", "select levels", "wakeup ns", "select ns",
                 "cycle ns", "GHz"});
    for (int n = 16; n <= 64; n += 4) {
        t.addRow({csprintf("%d", n),
                  csprintf("%d", IssueQueueTiming::selectionLevels(n)),
                  csprintf("%.3f", timing.wakeupNs(n)),
                  csprintf("%.3f", timing.selectNs(n)),
                  csprintf("%.3f", timing.cycleNs(n)),
                  csprintf("%.3f", issueQueueFreqGHzForEntries(n))});
        labels.push_back(csprintf("%2d entries", n));
        values.push_back(issueQueueFreqGHzForEntries(n));
    }
    t.print();
    std::printf("\n%s\n",
                renderBarChart("Figure 4: issue queue frequency (GHz)",
                               labels, values, 1.6, 44, " GHz")
                    .c_str());
    std::printf("16 -> 20 entry cliff: %.1f%% (2 -> 3 selection "
                "levels)\n\n",
                100.0 * (1.0 - issueQueueFreqGHzForEntries(20) /
                                   issueQueueFreqGHzForEntries(16)));
}

void
BM_IlpTracker(benchmark::State &state)
{
    WorkloadParams w;
    w.name = "bench";
    w.suite = "bench";
    w.seed = 11;
    w.phases = {PhaseParams{}};
    SyntheticWorkload gen(w);
    IlpTracker tracker;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        tracker.onRename(gen.next());
        if (tracker.sampleReady())
            benchmark::DoNotOptimize(tracker.takeSample());
        ++ops;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_IlpTracker);

} // namespace

int
main(int argc, char **argv)
{
    printFigure4();
    return runRegisteredBenchmarks(argc, argv);
}
