/**
 * @file
 * Reproduces Tables 6, 7 and 8: the benchmark suites (MediaBench,
 * Olden, SPEC2000) with the paper's simulation windows and the scaled
 * windows used here, plus the synthetic character of each analog.
 * The registered benchmark measures workload-generation throughput.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "workload/generator.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
printSuite(const char *title, const char *suite_name)
{
    TextTable t(title);
    t.setHeader({"benchmark", "paper window", "window here", "warmup",
                 "hot code", "stream", "rand pool", "fp", "phases"});
    for (const WorkloadParams &w : benchmarkSuite()) {
        if (w.suite != suite_name)
            continue;
        const PhaseParams &p = w.phases.front();
        t.addRow({w.name, w.paper_window,
                  csprintf("%lluK", static_cast<unsigned long long>(
                                        w.sim_instrs / 1000)),
                  csprintf("%lluK", static_cast<unsigned long long>(
                                        w.warmup_instrs / 1000)),
                  csprintf("%lluKB", static_cast<unsigned long long>(
                                         p.code_hot_bytes / 1024)),
                  csprintf("%lluKB", static_cast<unsigned long long>(
                                         p.stream_bytes / 1024)),
                  csprintf("%lluKB", static_cast<unsigned long long>(
                                         p.rand_bytes / 1024)),
                  csprintf("%.0f%%", 100.0 * p.fp_frac),
                  csprintf("%zu", w.phases.size())});
    }
    t.print();
    std::printf("\n");
}

void
printTables()
{
    benchBanner("Tables 6-8: benchmark applications",
                "paper Section 4, Tables 6, 7, 8 (synthetic analogs; "
                "windows scaled ~1000x, see DESIGN.md)");
    printSuite("Table 6: MediaBench applications", "MediaBench");
    printSuite("Table 7: Olden applications", "Olden");
    printSuite("Table 8a: SPEC2000 integer applications",
               "SPEC2000-Int");
    printSuite("Table 8b: SPEC2000 floating-point applications",
               "SPEC2000-Fp");
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    SyntheticWorkload gen(findBenchmark("gcc"));
    std::uint64_t n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.next());
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

int
main(int argc, char **argv)
{
    printTables();
    return runRegisteredBenchmarks(argc, argv);
}
