/**
 * @file
 * Quickstart: run one benchmark on the three machines the paper
 * compares — best synchronous, whole-program adaptive MCD (base
 * configuration), and phase-adaptive MCD — and print what happened.
 *
 * Usage: quickstart [benchmark-name]   (default: gcc)
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
report(const char *label, const RunStats &s)
{
    std::printf("%-22s %8.0f ns  %5.2f instr/ns  "
                "L1I miss %5.2f%%  L1D miss %5.2f%%  L2 miss %5.2f%%  "
                "bp-miss %4.1f%%  cfg %s\n",
                label, runtimeNs(s), s.instrsPerNs(),
                s.l1i_accesses
                    ? 100.0 * s.l1i_misses / s.l1i_accesses : 0.0,
                s.l1d_accesses
                    ? 100.0 * s.l1d_misses / s.l1d_accesses : 0.0,
                s.l2_accesses
                    ? 100.0 * s.l2_misses / s.l2_accesses : 0.0,
                s.branches ? 100.0 * s.mispredicts / s.branches : 0.0,
                s.config.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gcc";
    const WorkloadParams &wl = findBenchmark(name);

    std::printf("benchmark: %s (%s), %llu measured instructions\n\n",
                wl.name.c_str(), wl.suite.c_str(),
                static_cast<unsigned long long>(wl.sim_instrs));

    RunStats sync = simulate(MachineConfig::bestSynchronous(), wl);
    report("best synchronous", sync);

    RunStats base = simulate(
        MachineConfig::mcdProgram(AdaptiveConfig{}), wl);
    report("MCD base (minimal)", base);

    ProgramAdaptiveResult pa = findBestAdaptive(wl, SweepMode::Staged);
    report("MCD program-adaptive", pa.best_stats);

    RunStats phase = simulate(MachineConfig::mcdPhaseAdaptive(), wl);
    report("MCD phase-adaptive", phase);

    std::printf("\nimprovement over synchronous: program %+0.1f%%, "
                "phase %+0.1f%% (phase reconfigs: %zu)\n",
                100.0 * (runtimeNs(sync) / runtimeNs(pa.best_stats) -
                         1.0),
                100.0 * (runtimeNs(sync) / runtimeNs(phase) - 1.0),
                phase.trace.events().size());
    return 0;
}
