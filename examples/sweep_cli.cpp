/**
 * @file
 * Sharded design-space sweep driver.
 *
 * One process computes one shard of a sweep and writes its rows as
 * line-oriented JSON; `scripts/sweep_shard.py` fans N such processes
 * out (across cores or hosts) and merges the outputs byte-exactly
 * into what an unsharded run would have written (sim/shard.hh).
 *
 * Usage:
 *   sweep_cli [--mode study|sync|adaptive|cmp] [--shard i/n]
 *             [--out FILE] [--benchmarks N] [--bench NAME]
 *             [--cores LIST] [--sim INSTRS] [--warmup INSTRS]
 *             [--cache-dir DIR] [--resume] [--full] [--verbose]
 *   sweep_cli --merge OUT IN1 IN2 ...
 *
 * `--mode adaptive` runs the 256-point exhaustive Program-Adaptive
 * sweep for one benchmark (`--bench`, default the suite's first),
 * sharded over the configuration points.
 *
 * `--mode cmp` runs the multiprogrammed chip-multiprocessor sweep:
 * one chip per (core count, suite rotation) pair, sharded over those
 * points. `--cores` is a comma-separated core-count list (default
 * "1,2,4,8,16" — the power-of-two ladder up to kMaxCores).
 *
 * `--shard` falls back to the GALS_SHARDS environment variable
 * ("i/n"); unset means the whole sweep. `--benchmarks N` restricts
 * the suite to its first N entries and `--sim/--warmup` shrink the
 * measured window (defaults keep the suite's own windows) — both are
 * deterministic, so sharded and unsharded runs stay comparable.
 *
 * `--cache-dir DIR` enables the content-addressed result store
 * (sim/result_store.hh) on DIR, overriding GALS_RESULT_CACHE:
 * previously computed points — by any earlier run, shard or code
 * version-compatible PR — are served from the store, and each fresh
 * point is checkpointed there the moment it completes, so a killed
 * shard resumes instead of recomputing. Cached rows are value-exact,
 * so output stays byte-identical to a cache-off run. A stats line
 * ("result-store: H hits, M misses ...") goes to stderr when the
 * store is active. `--resume` is an explicit resume request: it
 * fails fast when no usable cache directory is configured (without
 * it, a dead cache dir degrades to a cold run with a warning).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/ports.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/report.hh"
#include "sim/result_store.hh"
#include "sim/shard.hh"
#include "sim/study.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sweep_cli [--mode study|sync|adaptive|cmp]\n"
        "                 [--shard i/n] [--out FILE]\n"
        "                 [--benchmarks N] [--bench NAME]\n"
        "                 [--cores LIST] [--sim INSTRS]\n"
        "                 [--warmup INSTRS] [--cache-dir DIR]\n"
        "                 [--trace-out FILE] [--metrics-out FILE]\n"
        "                 [--resume] [--full] [--verbose]\n"
        "       sweep_cli --merge OUT IN1 IN2 ...\n");
    return 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        panic("cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        panic("cannot write '%s'", path.c_str());
    out << text;
}

/** Parse a comma-separated core-count list ("1,2,4"). */
std::vector<int>
parseIntList(const std::string &text)
{
    std::vector<int> out;
    std::istringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        int v = std::atoi(item.c_str());
        if (v < 1 || v > kMaxCores) {
            panic("bad core count '%s' (must be 1..%d)", item.c_str(),
                  kMaxCores);
        }
        out.push_back(v);
    }
    if (out.empty())
        panic("empty core-count list");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = "study";
    std::string bench;
    std::string cores = "1,2,4,8,16";
    std::string out_path;
    std::string cache_dir;
    std::string trace_out;
    std::string metrics_out;
    ShardSpec shard = shardFromEnv();
    size_t benchmarks = 0; // 0 = whole suite.
    std::uint64_t sim_instrs = 0;
    std::uint64_t warmup_instrs = ~0ULL;
    bool full = false;
    bool verbose = false;
    bool resume = false;

    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        auto value = [&]() -> const char * {
            if (a + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--merge") {
            // --merge OUT IN1 IN2 ...
            if (a + 2 >= argc)
                return usage();
            std::string merged_path = argv[a + 1];
            std::vector<std::string> inputs;
            for (int k = a + 2; k < argc; ++k)
                inputs.push_back(readFile(argv[k]));
            writeFile(merged_path, mergeShardJson(inputs));
            std::printf("merged %zu shards into %s\n", inputs.size(),
                        merged_path.c_str());
            return 0;
        } else if (arg == "--mode") {
            mode = value();
        } else if (arg == "--shard") {
            if (!parseShard(value(), shard)) {
                std::fprintf(stderr, "bad --shard (want i/n)\n");
                return 2;
            }
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--benchmarks") {
            benchmarks = static_cast<size_t>(std::atoi(value()));
        } else if (arg == "--bench") {
            bench = value();
        } else if (arg == "--cores") {
            cores = value();
        } else if (arg == "--sim") {
            sim_instrs =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--warmup") {
            warmup_instrs =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--trace-out") {
            trace_out = value();
        } else if (arg == "--metrics-out") {
            metrics_out = value();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--full") {
            full = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            return usage();
        }
    }

    // --cache-dir overrides GALS_RESULT_CACHE; either enables the
    // content-addressed result store for every leaf simulation below.
    if (!cache_dir.empty())
        configureResultStore(cache_dir);
    // --trace-out overrides GALS_TRACE (same logged-fallback
    // contract: a bad path warns once and tracing stays off). The
    // trace itself is written by the tracer's at-exit exporter.
    if (!trace_out.empty())
        obs::Tracer::instance().configure(trace_out);
    if (resume && !resultStore().enabled()) {
        fatal("--resume needs a usable result cache (give --cache-dir "
              "or set GALS_RESULT_CACHE)");
    }

    std::vector<WorkloadParams> suite = benchmarkSuite();
    if (benchmarks != 0 && benchmarks < suite.size())
        suite.resize(benchmarks);
    for (WorkloadParams &wl : suite) {
        if (sim_instrs != 0)
            wl.sim_instrs = sim_instrs;
        if (warmup_instrs != ~0ULL)
            wl.warmup_instrs = warmup_instrs;
    }

    std::string json;
    if (mode == "study") {
        StudyResult study =
            runStudy(suite, sweepModeFromEnv(), verbose, shard);
        json = studyShardJson(study, shard);
    } else if (mode == "sync") {
        std::vector<SyncPointRuntimes> rows =
            sweepSynchronousRaw(suite, full, shard);
        json = syncSweepShardJson(rows, suite.size(), full, shard);
    } else if (mode == "adaptive") {
        // One benchmark, sharded over the 256 adaptive configuration
        // points (the suite restrictions/window overrides above apply
        // to it like to any other sweep).
        WorkloadParams wl = suite.front();
        if (!bench.empty()) {
            wl = findBenchmark(bench);
            if (sim_instrs != 0)
                wl.sim_instrs = sim_instrs;
            if (warmup_instrs != ~0ULL)
                wl.warmup_instrs = warmup_instrs;
        }
        std::vector<AdaptivePointRuntime> rows =
            sweepAdaptiveRaw(wl, shard);
        json = adaptiveSweepShardJson(rows, wl.name, shard);
    } else if (mode == "cmp") {
        std::vector<int> core_counts = parseIntList(cores);
        std::vector<CmpPointResult> rows =
            sweepCmpRaw(suite, core_counts, shard);
        if (verbose && !shard.sharded())
            std::fputs(renderCmpSummary(rows).c_str(), stdout);
        json = cmpSweepShardJson(rows, suite.size(), core_counts,
                                 shard);
    } else {
        return usage();
    }

    if (out_path.empty()) {
        std::fputs(json.c_str(), stdout);
    } else {
        writeFile(out_path, json);
        std::printf("shard %d/%d -> %s\n", shard.index, shard.count,
                    out_path.c_str());
    }

    // Hit/miss telemetry on stderr (stdout carries the JSON): the CI
    // warm-cache gate parses this line for "0 misses".
    if (resultStore().enabled()) {
        std::fprintf(stderr, "%s\n",
                     resultStore().statsLine().c_str());
    }

    // --metrics-out: the machine-readable telemetry surface — chip
    // and sweep counters accumulated above plus the result store's
    // folded stats (obs/metrics.hh).
    if (!metrics_out.empty()) {
        resultStore().publishMetrics();
        obs::MetricsRegistry::instance().writeTo(metrics_out);
    }
    return 0;
}
