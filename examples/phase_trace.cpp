/**
 * @file
 * Phase-adaptation explorer: run a benchmark with periodic phases on
 * the Phase-Adaptive MCD machine and dump every reconfiguration event
 * plus Figure-7-style traces for all four adaptive structures.
 *
 * Usage: phase_trace [benchmark-name]   (default: apsi)
 */

#include <cstdio>
#include <string>

#include "sim/report.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "apsi";
    const WorkloadParams &wl = findBenchmark(name);

    std::printf("benchmark: %s (%zu phase(s) per cycle)\n\n",
                wl.name.c_str(), wl.phases.size());

    RunStats s = simulate(MachineConfig::mcdPhaseAdaptive(), wl);
    std::uint64_t total = wl.warmup_instrs + wl.sim_instrs;

    std::printf("reconfiguration events (%zu total):\n",
                s.trace.events().size());
    for (const ReconfigEvent &e : s.trace.events()) {
        std::printf("  @%9llu instrs  %-10s %d -> %d\n",
                    static_cast<unsigned long long>(
                        e.committed_instrs),
                    structureName(e.structure), e.from_index,
                    e.to_index);
    }
    std::printf("\n");

    std::printf("%s\n",
                renderReconfigTrace("D/L2 cache configuration",
                                    s.trace, Structure::DCachePair, 0,
                                    total,
                                    {"32k1W/256k1W", "64k2W/512k2W",
                                     "128k4W/1024k4W",
                                     "256k8W/2048k8W"})
                    .c_str());
    std::printf("%s\n",
                renderReconfigTrace("I-cache configuration", s.trace,
                                    Structure::ICache, 0, total,
                                    {"16k1W", "32k2W", "48k3W",
                                     "64k4W"})
                    .c_str());
    std::printf("%s\n",
                renderReconfigTrace("integer issue queue", s.trace,
                                    Structure::IntIssueQueue, 0, total,
                                    {"16", "32", "48", "64"})
                    .c_str());
    std::printf("%s\n",
                renderReconfigTrace("fp issue queue", s.trace,
                                    Structure::FpIssueQueue, 0, total,
                                    {"16", "32", "48", "64"})
                    .c_str());

    std::printf("PLL re-locks: %llu, runtime %.0f ns, %.2f instr/ns\n",
                static_cast<unsigned long long>(s.relocks),
                runtimeNs(s), s.instrsPerNs());
    return 0;
}
