/**
 * @file
 * Minimal chip-multiprocessor demo: run a multiprogrammed mix on a
 * 2-core GALS chip and print per-core windows plus the chip-level
 * interconnect behavior; then show the N=1 equivalence that anchors
 * the CMP subsystem (a single-core chip reproduces the Processor
 * bit-exactly).
 *
 *   cmp_quickstart [cores] [banks] [mix]
 *
 * `mix` is "multi" (default: the multiprogrammed suite rotation) or
 * "sharing" (a producer/consumer sharing mix over the coherent
 * window on a phase-adaptive machine — the configuration the traced
 * observability quickstart exercises: it produces coherence
 * invalidations AND reconfiguration decisions, so a GALS_TRACE run
 * carries every event family for scripts/check_trace.py).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cmp/chip.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

int
main(int argc, char **argv)
{
    int cores = argc > 1 ? std::atoi(argv[1]) : 2;
    int banks = argc > 2 ? std::atoi(argv[2]) : 4;
    const bool sharing =
        argc > 3 && std::strcmp(argv[3], "sharing") == 0;

    ChipConfig cc;
    cc.machine = sharing ? MachineConfig::mcdPhaseAdaptive()
                         : MachineConfig::mcdProgram({});
    cc.cores = cores;
    cc.l2_banks = banks;

    std::vector<WorkloadParams> mix =
        sharing ? sharingMix(benchmarkSuite().front(), cores,
                             "producer-consumer")
                : multiprogrammedMix(benchmarkSuite(), cores, 0);
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 30'000;
        wl.warmup_instrs = 3'000;
    }

    Chip chip(cc, mix);
    ChipRunStats s = chip.run();

    std::printf("%d-core GALS chip, %d-bank shared L2 (%s)\n\n",
                cores, banks, s.cores[0].config.c_str());
    for (size_t c = 0; c < s.cores.size(); ++c) {
        const RunStats &r = s.cores[c];
        std::printf("  core %zu  %-12s %8llu instrs  %9.0f ns  "
                    "%.2f instr/ns\n",
                    c, r.benchmark.c_str(),
                    static_cast<unsigned long long>(r.committed),
                    static_cast<double>(r.time_ps) / 1000.0,
                    r.instrsPerNs());
    }
    std::printf("\n  chip    %8llu instrs  makespan %9.0f ns  "
                "%.2f instr/ns\n",
                static_cast<unsigned long long>(s.total_committed),
                static_cast<double>(s.makespan_ps) / 1000.0,
                s.throughputInstrsPerNs());
    std::printf("  shared L2: %llu accesses, %llu misses; "
                "%llu bank conflicts, %llu fill-slot waits, "
                "%llu in-flight merges\n",
                static_cast<unsigned long long>(s.l2_accesses),
                static_cast<unsigned long long>(s.l2_misses),
                static_cast<unsigned long long>(s.bank_conflicts),
                static_cast<unsigned long long>(s.bank_mshr_waits),
                static_cast<unsigned long long>(s.fill_merges));

    // The N=1 anchor: a single-core chip is the Processor, bit-exact.
    ChipConfig one = cc;
    one.cores = 1;
    Chip single(one, {mix[0]});
    ChipRunStats ss = single.run();
    RunStats direct = simulate(cc.machine, mix[0]);
    bool same = ss.cores[0].committed == direct.committed &&
                ss.cores[0].time_ps == direct.time_ps;
    std::printf("\n  N=1 equivalence: chip %llu instrs / %llu ps vs "
                "processor %llu instrs / %llu ps -> %s\n",
                static_cast<unsigned long long>(ss.cores[0].committed),
                static_cast<unsigned long long>(ss.cores[0].time_ps),
                static_cast<unsigned long long>(direct.committed),
                static_cast<unsigned long long>(direct.time_ps),
                same ? "bit-identical" : "MISMATCH");
    return same ? 0 : 1;
}
