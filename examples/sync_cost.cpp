/**
 * @file
 * Synchronization-cost explorer: show where the GALS machine pays
 * for its domain decoupling. Runs one benchmark on (a) the fully
 * synchronous machine, (b) MCD with all domains forced to the same
 * frequency (synchronizer costs only), and (c) MCD with native
 * per-domain clocks, then breaks the differences down.
 *
 * Usage: sync_cost [benchmark-name]   (default: g721 encode)
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "g721 encode";
    const WorkloadParams &wl = findBenchmark(name);

    MachineConfig sync = MachineConfig::bestSynchronous();
    double f_sync = sync.synchronousFreqGHz();
    RunStats a = simulate(sync, wl);

    // Match the synchronous structures as closely as the adaptive
    // tables allow (64KB I-cache, minimal caches and queues).
    MachineConfig matched =
        MachineConfig::mcdProgram(AdaptiveConfig{3, 0, 0, 0});
    matched.force_freq_ghz = f_sync * 0.997; // rotate domain phases.
    RunStats b = simulate(matched, wl);

    MachineConfig native = MachineConfig::mcdProgram({});
    RunStats c = simulate(native, wl);

    std::printf("benchmark: %s\n\n", wl.name.c_str());
    TextTable t("Where the GALS design pays and wins");
    t.setHeader({"machine", "clocks", "runtime ns", "vs sync"});
    t.addRow({"fully synchronous", csprintf("%.3f GHz all", f_sync),
              csprintf("%.0f", runtimeNs(a)), "--"});
    t.addRow({"MCD, matched clocks",
              csprintf("%.3f GHz all (detuned 0.3%%)",
                       matched.force_freq_ghz),
              csprintf("%.0f", runtimeNs(b)),
              csprintf("%+.1f%%",
                       100.0 * (runtimeNs(a) / runtimeNs(b) - 1.0))});
    t.addRow({"MCD, native clocks",
              csprintf("FE %.2f / INT %.2f / FP %.2f / LS %.2f",
                       native.domainFreqGHz(DomainId::FrontEnd, {}),
                       native.domainFreqGHz(DomainId::Integer, {}),
                       native.domainFreqGHz(DomainId::FloatingPoint,
                                            {}),
                       native.domainFreqGHz(DomainId::LoadStore, {})),
              csprintf("%.0f", runtimeNs(c)),
              csprintf("%+.1f%%",
                       100.0 * (runtimeNs(a) / runtimeNs(c) - 1.0))});
    t.print();

    std::printf("\nreading: row 2 isolates the synchronizer guard "
                "bands and the deeper adaptive pipe (a cost); row 3 "
                "adds the per-domain frequency advantage of the "
                "minimal structures (the win).\n");
    return 0;
}
