/**
 * @file
 * Design-space explorer: for one benchmark, evaluate every
 * configuration of one adaptive structure (others held at the
 * minimum) and print the frequency/IPC/runtime tradeoff — the
 * per-application view behind the paper's Program-Adaptive sweep.
 *
 * Usage: design_space [benchmark-name]   (default: gcc)
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "sim/simulation.hh"
#include "timing/frequency_model.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{

void
sweepStructure(const WorkloadParams &wl, const char *title,
               int AdaptiveConfig::*field,
               const char *(*label)(int))
{
    TextTable t(title);
    t.setHeader({"config", "domain GHz", "runtime ns", "instr/ns",
                 "vs base"});
    double base_ns = 0.0;
    for (int idx = 0; idx < kNumAdaptiveConfigs; ++idx) {
        AdaptiveConfig cfg{};
        cfg.*field = idx;
        MachineConfig m = MachineConfig::mcdProgram(cfg);
        RunStats s = simulate(m, wl);
        double ns = runtimeNs(s);
        if (idx == 0)
            base_ns = ns;
        DomainId dom =
            field == &AdaptiveConfig::icache ? DomainId::FrontEnd
            : field == &AdaptiveConfig::dcache
                ? DomainId::LoadStore
                : field == &AdaptiveConfig::iq_int
                      ? DomainId::Integer
                      : DomainId::FloatingPoint;
        t.addRow({label(idx),
                  csprintf("%.3f", m.domainFreqGHz(dom, cfg)),
                  csprintf("%.0f", ns),
                  csprintf("%.2f", s.instrsPerNs()),
                  csprintf("%+.1f%%", 100.0 * (base_ns / ns - 1.0))});
    }
    t.print();
    std::printf("\n");
}

const char *
icacheLabel(int i)
{
    static const char *names[] = {"16k1W", "32k2W", "48k3W", "64k4W"};
    return names[i];
}

const char *
dcacheLabel(int i)
{
    static const char *names[] = {"32k/256k 1W", "64k/512k 2W",
                                  "128k/1M 4W", "256k/2M 8W"};
    return names[i];
}

const char *
iqLabel(int i)
{
    static const char *names[] = {"16 entries", "32 entries",
                                  "48 entries", "64 entries"};
    return names[i];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gcc";
    const WorkloadParams &wl = findBenchmark(name);
    std::printf("per-structure design space for '%s' (other "
                "structures at minimum)\n\n",
                wl.name.c_str());

    sweepStructure(wl, "I-cache / branch predictor (front-end domain)",
                   &AdaptiveConfig::icache, icacheLabel);
    sweepStructure(wl, "L1D/L2 cache pair (load/store domain)",
                   &AdaptiveConfig::dcache, dcacheLabel);
    sweepStructure(wl, "integer issue queue (integer domain)",
                   &AdaptiveConfig::iq_int, iqLabel);
    sweepStructure(wl, "fp issue queue (floating-point domain)",
                   &AdaptiveConfig::iq_fp, iqLabel);

    RunStats sync =
        simulate(MachineConfig::bestSynchronous(), wl);
    std::printf("best synchronous reference: %.0f ns (%.2f instr/ns "
                "at %.3f GHz)\n",
                runtimeNs(sync), sync.instrsPerNs(),
                MachineConfig::bestSynchronous().synchronousFreqGHz());
    return 0;
}
