# Empty dependencies file for bench_table5_params.
# This may be replaced when dependencies are built.
