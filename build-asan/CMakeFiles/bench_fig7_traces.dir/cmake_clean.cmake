file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_traces.dir/bench/bench_fig7_traces.cpp.o"
  "CMakeFiles/bench_fig7_traces.dir/bench/bench_fig7_traces.cpp.o.d"
  "bench_fig7_traces"
  "bench_fig7_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
