# Empty dependencies file for bench_fig7_traces.
# This may be replaced when dependencies are built.
