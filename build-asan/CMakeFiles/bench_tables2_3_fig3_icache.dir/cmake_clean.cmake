file(REMOVE_RECURSE
  "CMakeFiles/bench_tables2_3_fig3_icache.dir/bench/bench_tables2_3_fig3_icache.cpp.o"
  "CMakeFiles/bench_tables2_3_fig3_icache.dir/bench/bench_tables2_3_fig3_icache.cpp.o.d"
  "bench_tables2_3_fig3_icache"
  "bench_tables2_3_fig3_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables2_3_fig3_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
