# Empty dependencies file for bench_tables2_3_fig3_icache.
# This may be replaced when dependencies are built.
