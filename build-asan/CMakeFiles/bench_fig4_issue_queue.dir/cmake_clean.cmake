file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_issue_queue.dir/bench/bench_fig4_issue_queue.cpp.o"
  "CMakeFiles/bench_fig4_issue_queue.dir/bench/bench_fig4_issue_queue.cpp.o.d"
  "bench_fig4_issue_queue"
  "bench_fig4_issue_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_issue_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
