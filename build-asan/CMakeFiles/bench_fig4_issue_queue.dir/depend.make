# Empty dependencies file for bench_fig4_issue_queue.
# This may be replaced when dependencies are built.
