# Empty dependencies file for bench_tables6to8_workloads.
# This may be replaced when dependencies are built.
