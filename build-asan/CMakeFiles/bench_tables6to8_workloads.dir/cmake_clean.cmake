file(REMOVE_RECURSE
  "CMakeFiles/bench_tables6to8_workloads.dir/bench/bench_tables6to8_workloads.cpp.o"
  "CMakeFiles/bench_tables6to8_workloads.dir/bench/bench_tables6to8_workloads.cpp.o.d"
  "bench_tables6to8_workloads"
  "bench_tables6to8_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables6to8_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
