file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_table9_performance.dir/bench/bench_fig6_table9_performance.cpp.o"
  "CMakeFiles/bench_fig6_table9_performance.dir/bench/bench_fig6_table9_performance.cpp.o.d"
  "bench_fig6_table9_performance"
  "bench_fig6_table9_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_table9_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
