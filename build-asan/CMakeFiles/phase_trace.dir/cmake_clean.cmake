file(REMOVE_RECURSE
  "CMakeFiles/phase_trace.dir/examples/phase_trace.cpp.o"
  "CMakeFiles/phase_trace.dir/examples/phase_trace.cpp.o.d"
  "phase_trace"
  "phase_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
