# Empty dependencies file for phase_trace.
# This may be replaced when dependencies are built.
