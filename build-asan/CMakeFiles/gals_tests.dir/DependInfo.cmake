
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accounting_cache.cc" "CMakeFiles/gals_tests.dir/tests/test_accounting_cache.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_accounting_cache.cc.o.d"
  "/root/repo/tests/test_arena.cc" "CMakeFiles/gals_tests.dir/tests/test_arena.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_arena.cc.o.d"
  "/root/repo/tests/test_cache_cost.cc" "CMakeFiles/gals_tests.dir/tests/test_cache_cost.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_cache_cost.cc.o.d"
  "/root/repo/tests/test_clocking.cc" "CMakeFiles/gals_tests.dir/tests/test_clocking.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_clocking.cc.o.d"
  "/root/repo/tests/test_control.cc" "CMakeFiles/gals_tests.dir/tests/test_control.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_control.cc.o.d"
  "/root/repo/tests/test_core_structures.cc" "CMakeFiles/gals_tests.dir/tests/test_core_structures.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_core_structures.cc.o.d"
  "/root/repo/tests/test_determinism.cc" "CMakeFiles/gals_tests.dir/tests/test_determinism.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_determinism.cc.o.d"
  "/root/repo/tests/test_differential.cc" "CMakeFiles/gals_tests.dir/tests/test_differential.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_differential.cc.o.d"
  "/root/repo/tests/test_predictor.cc" "CMakeFiles/gals_tests.dir/tests/test_predictor.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_predictor.cc.o.d"
  "/root/repo/tests/test_processor.cc" "CMakeFiles/gals_tests.dir/tests/test_processor.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_processor.cc.o.d"
  "/root/repo/tests/test_random.cc" "CMakeFiles/gals_tests.dir/tests/test_random.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_random.cc.o.d"
  "/root/repo/tests/test_sim.cc" "CMakeFiles/gals_tests.dir/tests/test_sim.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_sim.cc.o.d"
  "/root/repo/tests/test_stats.cc" "CMakeFiles/gals_tests.dir/tests/test_stats.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_stats.cc.o.d"
  "/root/repo/tests/test_timing.cc" "CMakeFiles/gals_tests.dir/tests/test_timing.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_timing.cc.o.d"
  "/root/repo/tests/test_workload.cc" "CMakeFiles/gals_tests.dir/tests/test_workload.cc.o" "gcc" "CMakeFiles/gals_tests.dir/tests/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/gals.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
