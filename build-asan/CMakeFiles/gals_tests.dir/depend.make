# Empty dependencies file for gals_tests.
# This may be replaced when dependencies are built.
