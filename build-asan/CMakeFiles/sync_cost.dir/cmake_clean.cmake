file(REMOVE_RECURSE
  "CMakeFiles/sync_cost.dir/examples/sync_cost.cpp.o"
  "CMakeFiles/sync_cost.dir/examples/sync_cost.cpp.o.d"
  "sync_cost"
  "sync_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
