# Empty dependencies file for sync_cost.
# This may be replaced when dependencies are built.
