
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/accounting_cache.cc" "CMakeFiles/gals.dir/src/cache/accounting_cache.cc.o" "gcc" "CMakeFiles/gals.dir/src/cache/accounting_cache.cc.o.d"
  "/root/repo/src/cache/cache_cost.cc" "CMakeFiles/gals.dir/src/cache/cache_cost.cc.o" "gcc" "CMakeFiles/gals.dir/src/cache/cache_cost.cc.o.d"
  "/root/repo/src/cache/main_memory.cc" "CMakeFiles/gals.dir/src/cache/main_memory.cc.o" "gcc" "CMakeFiles/gals.dir/src/cache/main_memory.cc.o.d"
  "/root/repo/src/clock/clock.cc" "CMakeFiles/gals.dir/src/clock/clock.cc.o" "gcc" "CMakeFiles/gals.dir/src/clock/clock.cc.o.d"
  "/root/repo/src/clock/pll.cc" "CMakeFiles/gals.dir/src/clock/pll.cc.o" "gcc" "CMakeFiles/gals.dir/src/clock/pll.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/gals.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/gals.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/gals.dir/src/common/random.cc.o" "gcc" "CMakeFiles/gals.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/gals.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/gals.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/gals.dir/src/common/table.cc.o" "gcc" "CMakeFiles/gals.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/types.cc" "CMakeFiles/gals.dir/src/common/types.cc.o" "gcc" "CMakeFiles/gals.dir/src/common/types.cc.o.d"
  "/root/repo/src/control/cache_controller.cc" "CMakeFiles/gals.dir/src/control/cache_controller.cc.o" "gcc" "CMakeFiles/gals.dir/src/control/cache_controller.cc.o.d"
  "/root/repo/src/control/ilp_tracker.cc" "CMakeFiles/gals.dir/src/control/ilp_tracker.cc.o" "gcc" "CMakeFiles/gals.dir/src/control/ilp_tracker.cc.o.d"
  "/root/repo/src/control/queue_controller.cc" "CMakeFiles/gals.dir/src/control/queue_controller.cc.o" "gcc" "CMakeFiles/gals.dir/src/control/queue_controller.cc.o.d"
  "/root/repo/src/control/reconfig_trace.cc" "CMakeFiles/gals.dir/src/control/reconfig_trace.cc.o" "gcc" "CMakeFiles/gals.dir/src/control/reconfig_trace.cc.o.d"
  "/root/repo/src/core/machine_config.cc" "CMakeFiles/gals.dir/src/core/machine_config.cc.o" "gcc" "CMakeFiles/gals.dir/src/core/machine_config.cc.o.d"
  "/root/repo/src/core/processor.cc" "CMakeFiles/gals.dir/src/core/processor.cc.o" "gcc" "CMakeFiles/gals.dir/src/core/processor.cc.o.d"
  "/root/repo/src/core/regfile.cc" "CMakeFiles/gals.dir/src/core/regfile.cc.o" "gcc" "CMakeFiles/gals.dir/src/core/regfile.cc.o.d"
  "/root/repo/src/predictor/hybrid_predictor.cc" "CMakeFiles/gals.dir/src/predictor/hybrid_predictor.cc.o" "gcc" "CMakeFiles/gals.dir/src/predictor/hybrid_predictor.cc.o.d"
  "/root/repo/src/sim/report.cc" "CMakeFiles/gals.dir/src/sim/report.cc.o" "gcc" "CMakeFiles/gals.dir/src/sim/report.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "CMakeFiles/gals.dir/src/sim/simulation.cc.o" "gcc" "CMakeFiles/gals.dir/src/sim/simulation.cc.o.d"
  "/root/repo/src/sim/study.cc" "CMakeFiles/gals.dir/src/sim/study.cc.o" "gcc" "CMakeFiles/gals.dir/src/sim/study.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "CMakeFiles/gals.dir/src/sim/sweep.cc.o" "gcc" "CMakeFiles/gals.dir/src/sim/sweep.cc.o.d"
  "/root/repo/src/timing/cacti_model.cc" "CMakeFiles/gals.dir/src/timing/cacti_model.cc.o" "gcc" "CMakeFiles/gals.dir/src/timing/cacti_model.cc.o.d"
  "/root/repo/src/timing/frequency_model.cc" "CMakeFiles/gals.dir/src/timing/frequency_model.cc.o" "gcc" "CMakeFiles/gals.dir/src/timing/frequency_model.cc.o.d"
  "/root/repo/src/timing/gate_cost.cc" "CMakeFiles/gals.dir/src/timing/gate_cost.cc.o" "gcc" "CMakeFiles/gals.dir/src/timing/gate_cost.cc.o.d"
  "/root/repo/src/timing/palacharla_model.cc" "CMakeFiles/gals.dir/src/timing/palacharla_model.cc.o" "gcc" "CMakeFiles/gals.dir/src/timing/palacharla_model.cc.o.d"
  "/root/repo/src/workload/generator.cc" "CMakeFiles/gals.dir/src/workload/generator.cc.o" "gcc" "CMakeFiles/gals.dir/src/workload/generator.cc.o.d"
  "/root/repo/src/workload/suite.cc" "CMakeFiles/gals.dir/src/workload/suite.cc.o" "gcc" "CMakeFiles/gals.dir/src/workload/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
