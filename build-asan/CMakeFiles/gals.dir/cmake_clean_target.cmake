file(REMOVE_RECURSE
  "libgals.a"
)
