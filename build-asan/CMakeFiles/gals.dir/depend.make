# Empty dependencies file for gals.
# This may be replaced when dependencies are built.
