file(REMOVE_RECURSE
  "CMakeFiles/bench_best_sync.dir/bench/bench_best_sync.cpp.o"
  "CMakeFiles/bench_best_sync.dir/bench/bench_best_sync.cpp.o.d"
  "bench_best_sync"
  "bench_best_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_best_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
