# Empty dependencies file for bench_best_sync.
# This may be replaced when dependencies are built.
