# Empty dependencies file for bench_ablation_sync_cost.
# This may be replaced when dependencies are built.
