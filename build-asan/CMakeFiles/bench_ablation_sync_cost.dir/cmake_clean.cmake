file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sync_cost.dir/bench/bench_ablation_sync_cost.cpp.o"
  "CMakeFiles/bench_ablation_sync_cost.dir/bench/bench_ablation_sync_cost.cpp.o.d"
  "bench_ablation_sync_cost"
  "bench_ablation_sync_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sync_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
