file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_penalties.dir/bench/bench_ablation_penalties.cpp.o"
  "CMakeFiles/bench_ablation_penalties.dir/bench/bench_ablation_penalties.cpp.o.d"
  "bench_ablation_penalties"
  "bench_ablation_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
