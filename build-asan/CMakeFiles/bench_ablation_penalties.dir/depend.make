# Empty dependencies file for bench_ablation_penalties.
# This may be replaced when dependencies are built.
