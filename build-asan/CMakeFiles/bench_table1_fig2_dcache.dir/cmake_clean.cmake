file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fig2_dcache.dir/bench/bench_table1_fig2_dcache.cpp.o"
  "CMakeFiles/bench_table1_fig2_dcache.dir/bench/bench_table1_fig2_dcache.cpp.o.d"
  "bench_table1_fig2_dcache"
  "bench_table1_fig2_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fig2_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
