# Empty dependencies file for bench_table1_fig2_dcache.
# This may be replaced when dependencies are built.
