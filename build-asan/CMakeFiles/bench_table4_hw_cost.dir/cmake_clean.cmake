file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hw_cost.dir/bench/bench_table4_hw_cost.cpp.o"
  "CMakeFiles/bench_table4_hw_cost.dir/bench/bench_table4_hw_cost.cpp.o.d"
  "bench_table4_hw_cost"
  "bench_table4_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
