/**
 * @file
 * "CACTI-lite": an analytical SRAM/cache access-time model.
 *
 * The paper derives structure timings from CACTI 3.1. We rebuild the
 * model analytically with the same structural form — decoder depth,
 * bitline/wire delay growing with capacity, a tag-compare/way-select
 * term that direct-mapped caches avoid (speculative data read), and a
 * sub-bank routing term — and calibrate the coefficients per structure
 * class so the frequency ratios the paper quotes hold:
 *
 *  - D-cache/L2 pair: adaptive configurations ~5% slower than optimal
 *    organizations of equal capacity (Fig. 2);
 *  - I-cache: ~31% frequency drop from direct-mapped to 2-way on the
 *    adaptive curve; optimal 64KB direct-mapped ~27% faster than the
 *    adaptive 64KB 4-way (Fig. 3).
 *
 * Unit tests in tests/test_cacti.cc assert these calibration points.
 */

#ifndef GALS_TIMING_CACTI_MODEL_HH
#define GALS_TIMING_CACTI_MODEL_HH

#include <cstdint>

namespace gals
{

/** Physical organization of one SRAM structure. */
struct SramOrg
{
    /** Total capacity in bytes. */
    std::uint64_t size_bytes = 0;
    /** Set associativity (1 == direct-mapped). */
    int assoc = 1;
    /** Number of identical sub-banks. */
    int subbanks = 1;
    /** Line size in bytes (64 throughout the paper). */
    int line_bytes = 64;
};

/**
 * Calibrated coefficients for one structure class. All delays are in
 * nanoseconds; see cacti_model.cc for the derivation of the presets.
 */
struct CactiParams
{
    /** Fixed decode + sense overhead. */
    double base_ns;
    /** Coefficient on log2(capacity in KB) — decoder depth. */
    double log_size_ns;
    /** Coefficient on capacity/64KB — bitline/wire RC. */
    double linear_size_ns;
    /** Fixed tag-compare + way-mux cost once assoc > 1. */
    double assoc_base_ns;
    /** Additional cost per log2(assoc) level. */
    double assoc_log_ns;
    /** Sub-bank routing cost per log2(subbanks). */
    double subbank_log_ns;
    /**
     * Replication penalty multiplier applied to adaptive structures
     * sized above their minimal configuration (the adaptive design
     * must replicate the minimal sub-bank layout; see paper §2).
     */
    double adaptive_penalty;
};

/**
 * Access-time model for one structure class (L1D, L1I, L2...).
 *
 * The model is deliberately monotone: larger capacity, higher
 * associativity, and more sub-banks never make an access faster.
 */
class CactiModel
{
  public:
    explicit CactiModel(const CactiParams &params) : params_(params) {}

    /**
     * Access time of an optimally organized (non-resizable) structure.
     *
     * @param org physical organization.
     * @return access time in nanoseconds.
     */
    double accessNs(const SramOrg &org) const;

    /**
     * Access time of an adaptive structure: the organization replicates
     * the minimal configuration's sub-banking, and any configuration
     * larger than the minimal one pays the replication penalty.
     *
     * @param org physical organization (A partition only).
     * @param is_minimal true when this is the smallest configuration.
     */
    double adaptiveAccessNs(const SramOrg &org, bool is_minimal) const;

    /** Preset calibrated for the L1D/L2 data-cache class. */
    static const CactiModel &dataCache();

    /** Preset calibrated for the I-cache + branch-predictor path. */
    static const CactiModel &instCache();

  private:
    CactiParams params_;
};

} // namespace gals

#endif // GALS_TIMING_CACTI_MODEL_HH
