#include "timing/gate_cost.hh"

#include "common/logging.hh"

namespace gals
{

namespace
{
constexpr int kHalfAdderPerBit = 3;
constexpr int kFullAdderPerBit = 7;
constexpr int kFlipFlopPerBit = 4;
constexpr int kMultiplierCellPerBit = 1;
constexpr int kComparatorPerBit = 6;
} // namespace

std::vector<GateCostRow>
GateCostModel::rows() const
{
    std::vector<GateCostRow> out;

    // Counters: a half-adder increment stage plus a flip-flop per bit.
    int counter_gates = (kHalfAdderPerBit + kFlipFlopPerBit) *
                        dp_.counter_bits;
    out.push_back({csprintf("%d MRU and Hit Counters (%d-bit)",
                            dp_.num_counters, dp_.counter_bits),
                   "3n (Half-Adder) + 4n (D Flip-Flop) = 7n each",
                   counter_gates * dp_.num_counters});

    int adder_gates = kFullAdderPerBit * dp_.adder_bits;
    out.push_back({csprintf("%d Adders (%d-bit)", dp_.num_adders,
                            dp_.adder_bits),
                   "7n (Full-Adder) = 7n each",
                   adder_gates * dp_.num_adders});

    // Iterative multiplier: one multiplier cell plus a flip-flop per
    // result bit (one partial product per cycle).
    int mult_gates = (kMultiplierCellPerBit + kFlipFlopPerBit) *
                     dp_.multiplier_result_bits;
    out.push_back({csprintf("%d 8x28-bit Multipliers (%d-bit Result)",
                            dp_.num_multipliers,
                            dp_.multiplier_result_bits),
                   "1n (Multiplier) + 4n (D Flip-Flop) = 5n each",
                   mult_gates * dp_.num_multipliers});

    out.push_back({csprintf("1 Final Adder (%d-bit)",
                            dp_.final_adder_bits),
                   "7n (Full-adder) = 7n each",
                   kFullAdderPerBit * dp_.final_adder_bits});

    out.push_back({csprintf("Result Register (%d-bit)",
                            dp_.result_register_bits),
                   "4n (D Flip-Flop) = 4n each",
                   kFlipFlopPerBit * dp_.result_register_bits});

    out.push_back({csprintf("Comparator (%d-bit)", dp_.comparator_bits),
                   "6n (Comparator) = 6n each",
                   kComparatorPerBit * dp_.comparator_bits});

    return out;
}

int
GateCostModel::totalGates() const
{
    int total = 0;
    for (const GateCostRow &row : rows())
        total += row.equivalent_gates;
    return total;
}

int
GateCostModel::decisionCycles() const
{
    // One partial product per cycle for the multiplier operand width
    // (8 bits per the paper's 8x28 multipliers; the two multipliers
    // run in parallel, halving the passes), plus a binary addition
    // tree over the counter terms, evaluated once per candidate
    // configuration.
    constexpr int multiplier_passes = 8;
    int add_tree_depth = 0;
    int terms = dp_.num_adders;
    while (terms > 1) {
        terms = (terms + 1) / 2;
        ++add_tree_depth;
    }
    int per_config = multiplier_passes / dp_.num_multipliers +
                     add_tree_depth;
    constexpr int num_configs = 4;
    return per_config * num_configs;
}

} // namespace gals
