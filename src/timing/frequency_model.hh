/**
 * @file
 * The single source of truth for every resizable-structure
 * configuration in the adaptive MCD processor and for the clock
 * frequency each configuration supports.
 *
 * Covers:
 *  - Table 1: the four jointly resized L1D/L2 configurations, with
 *    adaptive and optimal sub-bank organizations;
 *  - Table 2: the four adaptive I-cache + branch predictor
 *    configurations;
 *  - Table 3: the sixteen optimized synchronous I-cache + predictor
 *    configurations explored for the best-overall baseline;
 *  - Figure 4: issue-queue frequency for 16/32/48/64 entries;
 *  - Table 5 cache latencies (A/B partition latencies per config).
 *
 * Frequencies are evaluated once from the analytical timing models
 * (CactiModel, IssueQueueTiming) and cached.
 */

#ifndef GALS_TIMING_FREQUENCY_MODEL_HH
#define GALS_TIMING_FREQUENCY_MODEL_HH

#include <cstdint>
#include <string>

#include "timing/cacti_model.hh"

namespace gals
{

/** Number of jointly resized configurations per adaptive structure. */
constexpr int kNumAdaptiveConfigs = 4;

/** Issue-queue sizes considered by the paper. */
constexpr int kIssueQueueSizes[kNumAdaptiveConfigs] = {16, 32, 48, 64};

/** Number of optimized synchronous I-cache options (Table 3). */
constexpr int kNumOptICacheConfigs = 16;

/** Branch predictor organization (McFarling hybrid, Tables 2 and 3). */
struct PredictorOrg
{
    int gshare_hist_bits;   //!< hg: global history length.
    int gshare_entries;     //!< 2^hg two-bit counters.
    int meta_entries;       //!< metapredictor two-bit counters.
    int local_hist_bits;    //!< hl: local history width.
    int local_bht_entries;  //!< 2^hl two-bit counters.
    int local_pht_entries;  //!< per-branch history table entries.
};

/** One jointly resized L1D/L2 configuration (a row of Table 1). */
struct DCachePairConfig
{
    int index;                //!< 0 (smallest/fastest) .. 3.
    SramOrg l1_adapt;         //!< adaptive L1D organization.
    SramOrg l1_opt;           //!< optimal L1D organization.
    SramOrg l2_adapt;         //!< adaptive L2 organization.
    SramOrg l2_opt;           //!< optimal L2 organization.
    int l1_a_lat;             //!< L1 A-partition latency (cycles).
    int l1_b_lat;             //!< L1 B-partition latency; <0 => no B.
    int l2_a_lat;             //!< L2 A-partition latency (cycles).
    int l2_b_lat;             //!< L2 B-partition latency; <0 => no B.
    double freq_adaptive_ghz; //!< load/store domain clock, adaptive.
    double freq_optimal_ghz;  //!< same capacity, optimal organization.
    std::string name;         //!< e.g. "32k1W/256k1W".
};

/** One adaptive I-cache + predictor configuration (a row of Table 2). */
struct ICacheConfig
{
    int index;                //!< 0 (smallest/fastest) .. 3.
    SramOrg org;              //!< I-cache organization (32 sub-banks).
    PredictorOrg predictor;   //!< matched branch predictor.
    int a_lat;                //!< A-partition latency (cycles).
    int b_lat;                //!< B-partition latency; <0 => no B.
    double freq_ghz;          //!< front-end domain clock.
    std::string name;         //!< e.g. "16k1W".
};

/** One optimized synchronous I-cache option (a row of Table 3). */
struct OptICacheConfig
{
    int index;                //!< 0 .. 15.
    SramOrg org;              //!< optimized organization.
    PredictorOrg predictor;   //!< matched branch predictor.
    double freq_ghz;          //!< frequency this option supports.
    std::string name;         //!< e.g. "64k1W".
};

/** Frequency of an issue queue of the given size index (Fig. 4). */
double issueQueueFreqGHz(int size_index);

/** Issue-queue frequency for an arbitrary entry count (Fig. 4 curve). */
double issueQueueFreqGHzForEntries(int entries);

/** Table 1 row for config index 0..3. */
const DCachePairConfig &dcachePairConfig(int index);

/** Table 2 row for config index 0..3. */
const ICacheConfig &icacheConfig(int index);

/** Table 3 row for option index 0..15. */
const OptICacheConfig &optICacheConfig(int index);

/**
 * Upper bound on any domain clock imposed by non-resizable core logic
 * (rename, bypass, register files). None of the structure frequencies
 * above reach it; it exists so sweeps cannot produce absurd clocks for
 * tiny structures.
 */
constexpr double kCoreLogicCapGHz = 1.75;

/** Front-end domain frequency for adaptive I-cache config 0..3. */
double frontEndFreqAdaptive(int icache_index);

/** Load/store domain frequency for adaptive D/L2 config 0..3. */
double loadStoreFreqAdaptive(int dcache_index);

/** Integer/FP domain frequency for IQ size index 0..3. */
double issueDomainFreqAdaptive(int iq_size_index);

/**
 * Global clock of a fully synchronous design: the minimum of the four
 * structure frequencies using the *optimal* (non-adaptive) timings.
 *
 * @param opt_icache_index Table 3 option, 0..15.
 * @param dcache_index     Table 1 capacity point, 0..3.
 * @param iq_int_index     integer IQ size index, 0..3.
 * @param iq_fp_index      FP IQ size index, 0..3.
 */
double synchronousFreq(int opt_icache_index, int dcache_index,
                       int iq_int_index, int iq_fp_index);

/** Main-memory timing (Table 5): 80 ns first chunk, 2 ns subsequent. */
constexpr double kMemFirstChunkNs = 80.0;
constexpr double kMemNextChunkNs = 2.0;
/** Chunks per 64-byte line on an 8-byte bus. */
constexpr int kMemChunksPerLine = 8;

/** Total main-memory latency for one full line fill, in picoseconds. */
std::uint64_t memoryLineFillPs();

} // namespace gals

#endif // GALS_TIMING_FREQUENCY_MODEL_HH
