#include "timing/palacharla_model.hh"

#include "common/logging.hh"

namespace gals
{

int
IssueQueueTiming::selectionLevels(int entries)
{
    GALS_ASSERT(entries >= 1, "queue must have at least one entry");
    int levels = 0;
    int reach = 1;
    while (reach < entries) {
        reach *= 4;
        ++levels;
    }
    return levels == 0 ? 1 : levels;
}

double
IssueQueueTiming::wakeupNs(int entries) const
{
    return params_.wakeup_base_ns +
           params_.wakeup_per_entry_ns * entries;
}

double
IssueQueueTiming::selectNs(int entries) const
{
    return params_.select_base_ns +
           params_.select_level_ns * selectionLevels(entries);
}

double
IssueQueueTiming::cycleNs(int entries) const
{
    return wakeupNs(entries) + selectNs(entries);
}

double
IssueQueueTiming::freqGHz(int entries) const
{
    return 1.0 / cycleNs(entries);
}

} // namespace gals
