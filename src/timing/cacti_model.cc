#include "timing/cacti_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace gals
{

namespace
{

double
log2d(double v)
{
    return std::log2(v);
}

/*
 * Coefficient derivation (see tests/test_cacti.cc for the asserted
 * calibration points).
 *
 * Data-cache class, adaptive curve with 32 sub-banks per way and a
 * 2-cycle pipelined access (f = 2 / t_ns):
 *   32KB/1w -> 1.58 GHz, 64KB/2w -> 1.30, 128KB/4w -> 1.17,
 *   256KB/8w -> 1.02   (paper Fig. 2)
 *
 * Instruction-cache class (the path includes the matched branch
 * predictor, hence the larger associativity penalty):
 *   16KB/1w -> ~1.62 GHz, 32KB/2w -> ~1.12 (the quoted ~31% drop),
 *   64KB/4w -> ~1.01; optimal 64KB/1w -> ~1.27 (the quoted ~27%
 *   advantage of the synchronous design's I-cache).  (paper Fig. 3)
 */
const CactiParams kDataCacheParams = {
    /* base_ns          */ 0.7505,
    /* log_size_ns      */ 0.06,
    /* linear_size_ns   */ 0.081,
    /* assoc_base_ns    */ 0.1415,
    /* assoc_log_ns     */ 0.03,
    /* subbank_log_ns   */ 0.035,
    /* adaptive_penalty */ 1.0,
};

const CactiParams kInstCacheParams = {
    /* base_ns          */ 0.8238,
    /* log_size_ns      */ 0.06,
    /* linear_size_ns   */ 0.285,
    /* assoc_base_ns    */ 0.41,
    /* assoc_log_ns     */ 0.0,
    /* subbank_log_ns   */ 0.02,
    /* adaptive_penalty */ 1.0,
};

} // namespace

double
CactiModel::accessNs(const SramOrg &org) const
{
    GALS_ASSERT(org.size_bytes >= 1024 && org.assoc >= 1 &&
                    org.subbanks >= 1,
                "implausible SRAM organization: %llu B, %d-way, %d banks",
                static_cast<unsigned long long>(org.size_bytes), org.assoc,
                org.subbanks);

    double size_kb = static_cast<double>(org.size_bytes) / 1024.0;
    double t = params_.base_ns;
    t += params_.log_size_ns * log2d(size_kb);
    t += params_.linear_size_ns * (size_kb / 64.0);
    if (org.assoc > 1) {
        t += params_.assoc_base_ns +
             params_.assoc_log_ns * log2d(static_cast<double>(org.assoc));
    }
    t += params_.subbank_log_ns *
         log2d(static_cast<double>(org.subbanks));
    return t;
}

double
CactiModel::adaptiveAccessNs(const SramOrg &org, bool is_minimal) const
{
    double t = accessNs(org);
    if (!is_minimal)
        t *= params_.adaptive_penalty;
    return t;
}

const CactiModel &
CactiModel::dataCache()
{
    static const CactiModel model(kDataCacheParams);
    return model;
}

const CactiModel &
CactiModel::instCache()
{
    static const CactiModel model(kInstCacheParams);
    return model;
}

} // namespace gals
