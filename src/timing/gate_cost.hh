/**
 * @file
 * Gate-count estimator for the phase-adaptive cache control hardware
 * (reproduces Table 4 of the paper). Equivalent-gate weights follow
 * Zimmermann's arithmetic-circuit notes as cited by the paper.
 */

#ifndef GALS_TIMING_GATE_COST_HH
#define GALS_TIMING_GATE_COST_HH

#include <string>
#include <vector>

namespace gals
{

/** One row of the hardware-cost estimate. */
struct GateCostRow
{
    std::string component;  //!< e.g. "24 MRU and Hit Counters (15-bit)".
    std::string estimate;   //!< the per-unit gate formula.
    int equivalent_gates;   //!< total equivalent gates for the row.
};

/** Parameters of the accounting-cache decision datapath. */
struct CacheControlDatapath
{
    int num_counters = 24;       //!< MRU + hit counters per cache pair.
    int counter_bits = 15;       //!< counter width.
    int num_adders = 11;         //!< cost-summation adders.
    int adder_bits = 15;         //!< adder width.
    int num_multipliers = 2;     //!< latency x count multipliers.
    int multiplier_result_bits = 36;
    int final_adder_bits = 36;
    int result_register_bits = 36;
    int comparator_bits = 36;
};

/**
 * Gate-cost model for one adaptable cache (or cache pair) controller.
 *
 * Weights (equivalent gates per bit): half-adder 3, full-adder 7,
 * D flip-flop 4, iterative multiplier cell 1, comparator 6.
 */
class GateCostModel
{
  public:
    explicit GateCostModel(const CacheControlDatapath &dp = {})
        : dp_(dp)
    {}

    /** The itemized rows of Table 4. */
    std::vector<GateCostRow> rows() const;

    /** Total equivalent gates (Table 4 bottom line: 4,647). */
    int totalGates() const;

    /**
     * Cycles needed for a full reconfiguration decision, assuming one
     * partial product per cycle plus the binary addition tree (the
     * paper estimates ~32 cycles).
     */
    int decisionCycles() const;

  private:
    CacheControlDatapath dp_;
};

} // namespace gals

#endif // GALS_TIMING_GATE_COST_HH
