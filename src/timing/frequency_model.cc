#include "timing/frequency_model.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"
#include "timing/palacharla_model.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

/** Pipeline depth of a cache access: f = stages / t_access. */
constexpr double kCachePipelineStages = 2.0;

double
cacheFreqGHz(const CactiModel &model, const SramOrg &org, bool adaptive,
             bool is_minimal)
{
    double t = adaptive ? model.adaptiveAccessNs(org, is_minimal)
                        : model.accessNs(org);
    return std::min(kCachePipelineStages / t, kCoreLogicCapGHz);
}

/** Predictor organizations shared by Tables 2 and 3, keyed by hg. */
PredictorOrg
predictorForHistory(int hg, int hl)
{
    PredictorOrg p;
    p.gshare_hist_bits = hg;
    p.gshare_entries = 1 << hg;
    p.meta_entries = 1 << hg;
    p.local_hist_bits = hl;
    p.local_bht_entries = 1 << hl;
    // Table 2/3: the local PHT holds 1024 branch histories for all but
    // the very smallest predictors (512 at hg=12).
    p.local_pht_entries = hg <= 12 ? 512 : 1024;
    return p;
}

std::array<DCachePairConfig, kNumAdaptiveConfigs>
buildDCacheTable()
{
    // Table 1. Adaptive: every additional L1 way is a replica of the
    // 32KB/32-sub-bank minimal way; every L2 way replicates the 8-bank
    // 256KB way. Optimal: CACTI's best org at each capacity.
    struct Row
    {
        std::uint64_t l1_kb;
        int assoc;
        int l1_sb_adapt, l1_sb_opt;
        std::uint64_t l2_kb;
        int l2_sb_adapt, l2_sb_opt;
        int l1_b_lat, l2_b_lat;
        const char *name;
    };
    const Row rows[kNumAdaptiveConfigs] = {
        {32, 1, 32, 32, 256, 8, 8, -1, -1, "32k1W/256k1W"},
        {64, 2, 32, 8, 512, 8, 4, 5, 27, "64k2W/512k2W"},
        {128, 4, 32, 16, 1024, 8, 4, 2, 12, "128k4W/1024k4W"},
        {256, 8, 32, 4, 2048, 8, 4, -1, -1, "256k8W/2048k8W"},
    };
    // B-partition latencies (Table 5): L1 2/8, 2/5, 2/2, 2/-;
    // L2 12/43, 12/27, 12/12, 12/-.  Config 0 has A == 1 way out of 8
    // physical ways; its B partition is the remaining 7 ways.
    const int l1_b[kNumAdaptiveConfigs] = {8, 5, 2, -1};
    const int l2_b[kNumAdaptiveConfigs] = {43, 27, 12, -1};

    std::array<DCachePairConfig, kNumAdaptiveConfigs> table{};
    for (int i = 0; i < kNumAdaptiveConfigs; ++i) {
        const Row &r = rows[i];
        DCachePairConfig &c = table[static_cast<size_t>(i)];
        c.index = i;
        c.l1_adapt = {r.l1_kb * KB, r.assoc, r.l1_sb_adapt, 64};
        c.l1_opt = {r.l1_kb * KB, r.assoc, r.l1_sb_opt, 64};
        c.l2_adapt = {r.l2_kb * KB, r.assoc, r.l2_sb_adapt, 64};
        c.l2_opt = {r.l2_kb * KB, r.assoc, r.l2_sb_opt, 64};
        c.l1_a_lat = 2;
        c.l1_b_lat = l1_b[i];
        c.l2_a_lat = 12;
        c.l2_b_lat = l2_b[i];
        c.freq_adaptive_ghz = cacheFreqGHz(CactiModel::dataCache(),
                                           c.l1_adapt, true, i == 0);
        c.freq_optimal_ghz = cacheFreqGHz(CactiModel::dataCache(),
                                          c.l1_opt, false, false);
        c.name = r.name;
    }
    return table;
}

std::array<ICacheConfig, kNumAdaptiveConfigs>
buildICacheTable()
{
    // Table 2: adaptive I-cache resizes by ways 1..4, 16KB per way,
    // 32 sub-banks, with the matched predictor organizations.
    const int hg[kNumAdaptiveConfigs] = {14, 15, 15, 16};
    const int hl[kNumAdaptiveConfigs] = {11, 12, 12, 13};
    // A/B partition latencies for the I-cache; the paper gives the
    // D-cache pairs only, so we use the analogous schedule (assumption
    // documented in DESIGN.md).
    const int b_lat[kNumAdaptiveConfigs] = {6, 4, 2, -1};
    const char *names[kNumAdaptiveConfigs] = {"16k1W", "32k2W", "48k3W",
                                              "64k4W"};

    std::array<ICacheConfig, kNumAdaptiveConfigs> table{};
    for (int i = 0; i < kNumAdaptiveConfigs; ++i) {
        ICacheConfig &c = table[static_cast<size_t>(i)];
        c.index = i;
        c.org = {16 * KB * static_cast<std::uint64_t>(i + 1), i + 1, 32,
                 64};
        c.predictor = predictorForHistory(hg[i], hl[i]);
        c.a_lat = 2;
        c.b_lat = b_lat[i];
        c.freq_ghz = cacheFreqGHz(CactiModel::instCache(), c.org, true,
                                  i == 0);
        c.name = names[i];
    }
    return table;
}

std::array<OptICacheConfig, kNumOptICacheConfigs>
buildOptICacheTable()
{
    // Table 3: the sixteen optimized synchronous options.
    struct Row
    {
        std::uint64_t kb;
        int assoc;
        int subbanks;
        int hg, hl;
    };
    const Row rows[kNumOptICacheConfigs] = {
        {4, 1, 2, 12, 10},   {8, 1, 4, 13, 10},   {16, 1, 16, 14, 11},
        {32, 1, 32, 15, 12}, {64, 1, 32, 16, 13}, {4, 2, 8, 12, 10},
        {8, 2, 16, 13, 10},  {16, 2, 32, 14, 11}, {32, 2, 32, 15, 12},
        {64, 2, 32, 16, 13}, {12, 3, 16, 13, 10}, {16, 4, 16, 14, 11},
        {24, 3, 32, 14, 11}, {32, 4, 2, 15, 12},  {48, 3, 32, 15, 12},
        {64, 4, 16, 16, 13},
    };
    std::array<OptICacheConfig, kNumOptICacheConfigs> table{};
    for (int i = 0; i < kNumOptICacheConfigs; ++i) {
        const Row &r = rows[i];
        OptICacheConfig &c = table[static_cast<size_t>(i)];
        c.index = i;
        c.org = {r.kb * KB, r.assoc, r.subbanks, 64};
        c.predictor = predictorForHistory(r.hg, r.hl);
        c.freq_ghz = cacheFreqGHz(CactiModel::instCache(), c.org, false,
                                  false);
        c.name = csprintf("%lluk%dW",
                          static_cast<unsigned long long>(r.kb), r.assoc);
    }
    return table;
}

const std::array<DCachePairConfig, kNumAdaptiveConfigs> &
dcacheTable()
{
    static const auto table = buildDCacheTable();
    return table;
}

const std::array<ICacheConfig, kNumAdaptiveConfigs> &
icacheTable()
{
    static const auto table = buildICacheTable();
    return table;
}

const std::array<OptICacheConfig, kNumOptICacheConfigs> &
optICacheTable()
{
    static const auto table = buildOptICacheTable();
    return table;
}

} // namespace

double
issueQueueFreqGHzForEntries(int entries)
{
    static const IssueQueueTiming timing;
    return std::min(timing.freqGHz(entries), kCoreLogicCapGHz);
}

double
issueQueueFreqGHz(int size_index)
{
    GALS_ASSERT(size_index >= 0 && size_index < kNumAdaptiveConfigs,
                "IQ size index %d out of range", size_index);
    return issueQueueFreqGHzForEntries(kIssueQueueSizes[size_index]);
}

const DCachePairConfig &
dcachePairConfig(int index)
{
    GALS_ASSERT(index >= 0 && index < kNumAdaptiveConfigs,
                "D-cache config index %d out of range", index);
    return dcacheTable()[static_cast<size_t>(index)];
}

const ICacheConfig &
icacheConfig(int index)
{
    GALS_ASSERT(index >= 0 && index < kNumAdaptiveConfigs,
                "I-cache config index %d out of range", index);
    return icacheTable()[static_cast<size_t>(index)];
}

const OptICacheConfig &
optICacheConfig(int index)
{
    GALS_ASSERT(index >= 0 && index < kNumOptICacheConfigs,
                "optimal I-cache index %d out of range", index);
    return optICacheTable()[static_cast<size_t>(index)];
}

double
frontEndFreqAdaptive(int icache_index)
{
    return std::min(icacheConfig(icache_index).freq_ghz,
                    kCoreLogicCapGHz);
}

double
loadStoreFreqAdaptive(int dcache_index)
{
    return std::min(dcachePairConfig(dcache_index).freq_adaptive_ghz,
                    kCoreLogicCapGHz);
}

double
issueDomainFreqAdaptive(int iq_size_index)
{
    return issueQueueFreqGHz(iq_size_index);
}

double
synchronousFreq(int opt_icache_index, int dcache_index, int iq_int_index,
                int iq_fp_index)
{
    double f = optICacheConfig(opt_icache_index).freq_ghz;
    f = std::min(f, dcachePairConfig(dcache_index).freq_optimal_ghz);
    f = std::min(f, issueQueueFreqGHz(iq_int_index));
    f = std::min(f, issueQueueFreqGHz(iq_fp_index));
    return std::min(f, kCoreLogicCapGHz);
}

std::uint64_t
memoryLineFillPs()
{
    double ns = kMemFirstChunkNs +
                kMemNextChunkNs * (kMemChunksPerLine - 1);
    return static_cast<std::uint64_t>(ns * kPsPerNs);
}

} // namespace gals
