/**
 * @file
 * Issue-queue timing model after Palacharla, Jouppi and Smith.
 *
 * The cycle time of the issue loop is the wakeup delay (tag drive and
 * match across all entries, linear in queue depth) plus the selection
 * delay (a log4 arbitration tree whose depth is ceil(log4(entries))).
 * Because selection dominates, growing from 16 entries (2 tree levels)
 * to anything up to 64 entries (3 levels) costs a large frequency step
 * — the cliff visible in the paper's Figure 4.
 */

#ifndef GALS_TIMING_PALACHARLA_MODEL_HH
#define GALS_TIMING_PALACHARLA_MODEL_HH

namespace gals
{

/** Calibrated delay coefficients for the issue-queue loop (ns). */
struct IssueQueueTimingParams
{
    /** Fixed wakeup overhead (tag drive). */
    double wakeup_base_ns = 0.05;
    /** Wakeup cost per queue entry (tag match fan-out). */
    double wakeup_per_entry_ns = 0.00405;
    /** Delay of one log4 selection-tree level. */
    double select_level_ns = 0.235;
    /** Fixed selection overhead (grant drive back). */
    double select_base_ns = 0.073;
};

/** Issue-queue wakeup+select timing as a function of queue depth. */
class IssueQueueTiming
{
  public:
    IssueQueueTiming() = default;
    explicit IssueQueueTiming(const IssueQueueTimingParams &p)
        : params_(p)
    {}

    /** Depth of the log4 selection tree for a queue of n entries. */
    static int selectionLevels(int entries);

    /** Wakeup delay in ns. */
    double wakeupNs(int entries) const;

    /** Selection delay in ns. */
    double selectNs(int entries) const;

    /** Full issue-loop delay in ns (wakeup + select, single cycle). */
    double cycleNs(int entries) const;

    /** Maximum issue-queue clock in GHz for the given depth. */
    double freqGHz(int entries) const;

  private:
    IssueQueueTimingParams params_;
};

} // namespace gals

#endif // GALS_TIMING_PALACHARLA_MODEL_HH
