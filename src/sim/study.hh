/**
 * @file
 * The paper's headline experiment (Figure 6 + Table 9): for every
 * benchmark, compare the best fully synchronous machine against the
 * Program-Adaptive MCD (best whole-program configuration found by
 * sweep) and the Phase-Adaptive MCD (on-line controllers).
 */

#ifndef GALS_SIM_STUDY_HH
#define GALS_SIM_STUDY_HH

#include <array>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/run_stats.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "workload/params.hh"

namespace gals
{

/** Per-benchmark outcome of the three-way comparison. */
struct BenchmarkResult
{
    std::string name;
    std::string suite;

    double sync_ns = 0.0;
    double program_ns = 0.0;
    double phase_ns = 0.0;
    AdaptiveConfig program_cfg;
    RunStats phase_stats;
    /** Simulations spent on this row (sweep + sync + phase). */
    std::uint64_t runs = 0;

    /** Runtime improvement of Program-Adaptive over synchronous. */
    double
    programImprovement() const
    {
        return program_ns > 0.0 ? sync_ns / program_ns - 1.0 : 0.0;
    }
    /** Runtime improvement of Phase-Adaptive over synchronous. */
    double
    phaseImprovement() const
    {
        return phase_ns > 0.0 ? sync_ns / phase_ns - 1.0 : 0.0;
    }
};

/** Whole-suite study outcome. */
struct StudyResult
{
    std::vector<BenchmarkResult> benchmarks;
    SweepMode mode = SweepMode::Staged;
    std::uint64_t total_runs = 0;

    double avgProgramImprovement() const;
    double avgPhaseImprovement() const;

    /**
     * Table 9: how many benchmarks chose each configuration index in
     * Program-Adaptive mode, per structure.
     */
    std::array<int, 4> distIcache() const;
    std::array<int, 4> distDcache() const;
    std::array<int, 4> distIqInt() const;
    std::array<int, 4> distIqFp() const;
};

/**
 * Run the full comparison over `suite`.
 *
 * @param suite   benchmarks to evaluate.
 * @param mode    Program-Adaptive search strategy.
 * @param verbose emit one progress line per benchmark.
 */
StudyResult runStudy(const std::vector<WorkloadParams> &suite,
                     SweepMode mode, bool verbose);

/**
 * Shard-restricted study: simulate only the benchmarks `shard` owns
 * (the benchmark is the shard unit; round-robin on its suite index).
 * `benchmarks` keeps the full suite size, with unowned rows left
 * default-constructed — per-row values are identical to the unsharded
 * run's, which is what makes the JSON merge byte-exact.
 */
StudyResult runStudy(const std::vector<WorkloadParams> &suite,
                     SweepMode mode, bool verbose, ShardSpec shard);

} // namespace gals

#endif // GALS_SIM_STUDY_HH
