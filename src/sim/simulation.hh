/**
 * @file
 * Single-run driver: execute one machine configuration against one
 * synthetic benchmark and return the measured-window statistics.
 */

#ifndef GALS_SIM_SIMULATION_HH
#define GALS_SIM_SIMULATION_HH

#include "core/machine_config.hh"
#include "core/processor.hh"
#include "core/run_stats.hh"
#include "workload/params.hh"

namespace gals
{

/** Run `workload` on `machine`; returns window statistics. */
RunStats simulate(const MachineConfig &machine,
                  const WorkloadParams &workload);

/** Measured window runtime in nanoseconds. */
double runtimeNs(const RunStats &stats);

} // namespace gals

#endif // GALS_SIM_SIMULATION_HH
