/**
 * @file
 * Single-run driver: execute one machine configuration against one
 * synthetic benchmark and return the measured-window statistics.
 */

#ifndef GALS_SIM_SIMULATION_HH
#define GALS_SIM_SIMULATION_HH

#include "core/machine_config.hh"
#include "core/processor.hh"
#include "core/run_stats.hh"
#include "workload/params.hh"

namespace gals
{

/** Run `workload` on `machine`; returns window statistics. */
RunStats simulate(const MachineConfig &machine,
                  const WorkloadParams &workload);

/**
 * Run with an explicit scheduler kernel (overrides GALS_KERNEL) and,
 * when `invariant_interval` is non-zero, deep structural invariant
 * checks every that many front-end steps. The differential harness
 * uses this to pin the event kernel bit-identical to the reference
 * oracle; see docs/testing.md.
 */
RunStats simulateWithKernel(const MachineConfig &machine,
                            const WorkloadParams &workload,
                            Processor::Kernel kernel,
                            std::uint32_t invariant_interval = 0);

/** Measured window runtime in nanoseconds. */
double runtimeNs(const RunStats &stats);

} // namespace gals

#endif // GALS_SIM_SIMULATION_HH
