#include "sim/study.hh"

#include "common/logging.hh"
#include "sim/parallel.hh"
#include "sim/result_store.hh"
#include "sim/simulation.hh"

namespace gals
{

namespace
{

std::array<int, 4>
distribution(const std::vector<BenchmarkResult> &results,
             int AdaptiveConfig::*field)
{
    std::array<int, 4> d{};
    for (const BenchmarkResult &r : results)
        ++d[static_cast<size_t>(r.program_cfg.*field)];
    return d;
}

} // namespace

double
StudyResult::avgProgramImprovement() const
{
    if (benchmarks.empty())
        return 0.0;
    double sum = 0.0;
    for (const BenchmarkResult &r : benchmarks)
        sum += r.programImprovement();
    return sum / static_cast<double>(benchmarks.size());
}

double
StudyResult::avgPhaseImprovement() const
{
    if (benchmarks.empty())
        return 0.0;
    double sum = 0.0;
    for (const BenchmarkResult &r : benchmarks)
        sum += r.phaseImprovement();
    return sum / static_cast<double>(benchmarks.size());
}

std::array<int, 4>
StudyResult::distIcache() const
{
    return distribution(benchmarks, &AdaptiveConfig::icache);
}

std::array<int, 4>
StudyResult::distDcache() const
{
    return distribution(benchmarks, &AdaptiveConfig::dcache);
}

std::array<int, 4>
StudyResult::distIqInt() const
{
    return distribution(benchmarks, &AdaptiveConfig::iq_int);
}

std::array<int, 4>
StudyResult::distIqFp() const
{
    return distribution(benchmarks, &AdaptiveConfig::iq_fp);
}

StudyResult
runStudy(const std::vector<WorkloadParams> &suite, SweepMode mode,
         bool verbose)
{
    return runStudy(suite, mode, verbose, ShardSpec{});
}

StudyResult
runStudy(const std::vector<WorkloadParams> &suite, SweepMode mode,
         bool verbose, ShardSpec shard)
{
    StudyResult out;
    out.mode = mode;
    out.benchmarks.resize(suite.size());

    MachineConfig sync = MachineConfig::bestSynchronous();
    MachineConfig phase = MachineConfig::mcdPhaseAdaptive();

    // Parallel across this shard's benchmarks; the per-benchmark
    // sweep inside findBestAdaptive stays serial to bound thread
    // fan-out. Each row is a deterministic function of its benchmark
    // alone, so shard boundaries never change any value.
    parallelForShard(suite.size(), shard, [&](size_t i) {
        const WorkloadParams &wl = suite[i];
        BenchmarkResult r;
        r.name = wl.name;
        r.suite = wl.suite;

        // All three study legs are result-store leaves (cache hits
        // with GALS_RESULT_CACHE set, plain simulate() otherwise).
        r.sync_ns = runtimeNs(cachedSimulate(sync, wl));

        ProgramAdaptiveResult pa = findBestAdaptive(wl, mode);
        r.program_ns = runtimeNs(pa.best_stats);
        r.program_cfg = pa.best;
        r.runs = pa.runs_performed + 2;

        r.phase_stats = cachedSimulate(phase, wl);
        r.phase_ns = runtimeNs(r.phase_stats);

        out.benchmarks[i] = std::move(r);
    });

    for (size_t i = 0; i < suite.size(); ++i) {
        if (!shard.owns(i))
            continue;
        const BenchmarkResult &r = out.benchmarks[i];
        out.total_runs += r.runs;
        if (verbose) {
            inform("%-18s sync %9.0fns  program %9.0fns (%+5.1f%%, %s)"
                   "  phase %9.0fns (%+5.1f%%)",
                   r.name.c_str(), r.sync_ns, r.program_ns,
                   100.0 * r.programImprovement(),
                   r.program_cfg.str().c_str(), r.phase_ns,
                   100.0 * r.phaseImprovement());
        }
    }
    return out;
}

} // namespace gals
