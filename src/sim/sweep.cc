#include "sim/sweep.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "cmp/chip.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/parallel.hh"
#include "sim/result_store.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

namespace gals
{

SweepMode
sweepModeFromEnv()
{
    const char *env = std::getenv("GALS_SWEEP");
    if (env && std::strcmp(env, "exhaustive") == 0)
        return SweepMode::Exhaustive;
    return SweepMode::Staged;
}

std::vector<AdaptiveConfig>
allAdaptiveConfigs()
{
    std::vector<AdaptiveConfig> out;
    out.reserve(256);
    for (int i = 0; i < 4; ++i)
        for (int d = 0; d < 4; ++d)
            for (int qi = 0; qi < 4; ++qi)
                for (int qf = 0; qf < 4; ++qf)
                    out.push_back(AdaptiveConfig{i, d, qi, qf});
    return out;
}

namespace
{

/** Run one whole-program adaptive config; returns window stats.
 * Routed through the result store (sim/result_store.hh): with
 * caching disabled — the default — this is exactly simulate(). */
RunStats
runAdaptive(const WorkloadParams &wl, const AdaptiveConfig &cfg)
{
    return cachedSimulate(MachineConfig::mcdProgram(cfg), wl);
}

ProgramAdaptiveResult
exhaustiveSearch(const WorkloadParams &wl)
{
    std::vector<AdaptiveConfig> configs = allAdaptiveConfigs();
    std::vector<double> times(configs.size(), 0.0);
    std::vector<RunStats> stats(configs.size());

    parallelFor(configs.size(), [&](size_t i) {
        stats[i] = runAdaptive(wl, configs[i]);
        times[i] = runtimeNs(stats[i]);
    });

    size_t best = 0;
    for (size_t i = 1; i < configs.size(); ++i) {
        if (times[i] < times[best])
            best = i;
    }
    return ProgramAdaptiveResult{configs[best], stats[best],
                                 configs.size()};
}

} // namespace

std::vector<AdaptivePointRuntime>
sweepAdaptiveRaw(const WorkloadParams &wl, ShardSpec shard)
{
    std::vector<AdaptiveConfig> configs = allAdaptiveConfigs();

    // The configuration is the shard unit; owned rows keep their
    // global point index so merged shard documents reassemble in
    // enumeration order.
    std::vector<AdaptivePointRuntime> out;
    for (size_t p = 0; p < configs.size(); ++p) {
        if (!shard.owns(p))
            continue;
        out.push_back(AdaptivePointRuntime{p, configs[p], 0.0});
    }

    // Every run is a deterministic function of (config, benchmark)
    // alone — neither the thread count nor the shard boundary changes
    // any value, which is what makes merged shard output
    // byte-identical to an unsharded sweep.
    parallelFor(out.size(), [&](size_t i) {
        out[i].runtime_ns =
            runtimeNs(runAdaptive(wl, out[i].cfg));
    });
    obs::MetricsRegistry::instance().add("sweep.adaptive_points",
                                         out.size());
    return out;
}

namespace
{

ProgramAdaptiveResult
stagedSearch(const WorkloadParams &wl)
{
    // Greedy per-structure optimization. Order matters: the cache
    // pair and I-cache dominate the frequency/miss tradeoffs, so they
    // are settled before the issue queues.
    AdaptiveConfig cur{};
    RunStats best_stats = runAdaptive(wl, cur);
    double best_time = runtimeNs(best_stats);
    std::uint64_t runs = 1;

    auto optimize = [&](auto set_field) {
        // Evaluate the three non-current candidates in parallel.
        std::vector<AdaptiveConfig> cands;
        for (int idx = 0; idx < 4; ++idx) {
            AdaptiveConfig c = cur;
            set_field(c, idx);
            if (!(c == cur))
                cands.push_back(c);
        }
        std::vector<RunStats> stats(cands.size());
        std::vector<double> times(cands.size());
        parallelFor(cands.size(), [&](size_t i) {
            stats[i] = runAdaptive(wl, cands[i]);
            times[i] = runtimeNs(stats[i]);
        });
        runs += cands.size();
        for (size_t i = 0; i < cands.size(); ++i) {
            if (times[i] < best_time) {
                best_time = times[i];
                best_stats = stats[i];
                cur = cands[i];
            }
        }
    };

    optimize([](AdaptiveConfig &c, int v) { c.dcache = v; });
    optimize([](AdaptiveConfig &c, int v) { c.icache = v; });
    optimize([](AdaptiveConfig &c, int v) { c.iq_int = v; });
    optimize([](AdaptiveConfig &c, int v) { c.iq_fp = v; });

    return ProgramAdaptiveResult{cur, best_stats, runs};
}

} // namespace

ProgramAdaptiveResult
findBestAdaptive(const WorkloadParams &wl, SweepMode mode)
{
    return mode == SweepMode::Exhaustive ? exhaustiveSearch(wl)
                                         : stagedSearch(wl);
}

std::vector<SyncPointRuntimes>
sweepSynchronousRaw(const std::vector<WorkloadParams> &suite,
                    bool full, ShardSpec shard)
{
    GALS_ASSERT(!suite.empty(), "empty suite for synchronous sweep");

    struct Point
    {
        int ic, dc, qi, qf;
    };
    std::vector<Point> points;
    if (full) {
        for (int ic = 0; ic < kNumOptICacheConfigs; ++ic)
            for (int dc = 0; dc < 4; ++dc)
                for (int qi = 0; qi < 4; ++qi)
                    for (int qf = 0; qf < 4; ++qf)
                        points.push_back(Point{ic, dc, qi, qf});
    } else {
        for (int ic = 0; ic < kNumOptICacheConfigs; ++ic)
            for (int dc = 0; dc < 4; ++dc)
                points.push_back(Point{ic, dc, 0, 0});
    }

    // The design point is the shard unit: every benchmark of an
    // owned point runs in this process.
    std::vector<SyncPointRuntimes> out;
    for (size_t p = 0; p < points.size(); ++p) {
        if (!shard.owns(p))
            continue;
        out.push_back(SyncPointRuntimes{
            p, points[p].ic, points[p].dc, points[p].qi,
            points[p].qf, std::vector<double>(suite.size(), 0.0)});
    }

    // Every (point, bench) run is deterministic and independent:
    // neither the thread count nor the shard boundary changes any
    // value, which is what makes merged shard output byte-identical
    // to an unsharded sweep.
    parallelFor(out.size() * suite.size(), [&](size_t k) {
        size_t r = k / suite.size();
        size_t b = k % suite.size();
        SyncPointRuntimes &row = out[r];
        MachineConfig mc = MachineConfig::synchronous(
            row.icache_opt, row.dcache, row.iq_int, row.iq_fp);
        row.runtime_ns[b] = runtimeNs(cachedSimulate(mc, suite[b]));
    });
    return out;
}

std::vector<CmpPointResult>
sweepCmpRaw(const std::vector<WorkloadParams> &suite,
            const std::vector<int> &core_counts, ShardSpec shard)
{
    GALS_ASSERT(!suite.empty(), "empty suite for CMP sweep");
    GALS_ASSERT(!core_counts.empty(), "CMP sweep needs core counts");
    for (int c : core_counts) {
        GALS_ASSERT(c >= 1 && c <= kMaxCores,
                    "CMP sweep core count %d out of range 1..%d", c,
                    kMaxCores);
    }

    // The (core count, rotation) pair is the shard unit.
    const size_t rotations = suite.size();
    std::vector<CmpPointResult> out;
    for (size_t ci = 0; ci < core_counts.size(); ++ci) {
        for (size_t rot = 0; rot < rotations; ++rot) {
            size_t p = ci * rotations + rot;
            if (!shard.owns(p))
                continue;
            CmpPointResult row;
            row.point_index = p;
            row.cores = core_counts[ci];
            row.rotation = static_cast<int>(rot);
            out.push_back(std::move(row));
        }
    }

    // Every chip run is deterministic and independent of thread and
    // shard boundaries (same contract as the other raw sweeps).
    parallelFor(out.size(), [&](size_t k) {
        CmpPointResult &row = out[k];
        ChipConfig cc;
        cc.machine = MachineConfig::mcdProgram({});
        cc.cores = row.cores;
        ChipRunStats s = cachedChipRun(
            cc, multiprogrammedMix(suite, row.cores, row.rotation));
        row.chip_ns =
            static_cast<double>(s.makespan_ps) / 1000.0;
        row.core_ns.reserve(s.cores.size());
        for (const RunStats &cs : s.cores) {
            row.core_ns.push_back(
                static_cast<double>(cs.time_ps) / 1000.0);
        }
        row.l2_misses = s.l2_misses;
        row.bank_conflicts = s.bank_conflicts;
    });
    return out;
}

std::vector<SyncDesignPoint>
sweepSynchronous(const std::vector<WorkloadParams> &suite, bool full)
{
    std::vector<SyncPointRuntimes> raw =
        sweepSynchronousRaw(suite, full, ShardSpec{});

    // Per-benchmark best for normalization.
    std::vector<double> best_per_bench(suite.size(), 0.0);
    for (size_t b = 0; b < suite.size(); ++b) {
        double best = raw[0].runtime_ns[b];
        for (size_t p = 1; p < raw.size(); ++p)
            best = std::min(best, raw[p].runtime_ns[b]);
        best_per_bench[b] = best;
    }

    std::vector<SyncDesignPoint> out;
    out.reserve(raw.size());
    for (const SyncPointRuntimes &row : raw) {
        double log_sum = 0.0;
        for (size_t b = 0; b < suite.size(); ++b)
            log_sum += std::log(row.runtime_ns[b] /
                                best_per_bench[b]);
        out.push_back(SyncDesignPoint{
            row.icache_opt, row.dcache, row.iq_int, row.iq_fp,
            std::exp(log_sum / static_cast<double>(suite.size()))});
    }
    std::sort(out.begin(), out.end(),
              [](const SyncDesignPoint &a, const SyncDesignPoint &b) {
                  return a.norm_runtime < b.norm_runtime;
              });
    // Re-normalize so the best point reads exactly 1.0.
    double best = out.front().norm_runtime;
    for (SyncDesignPoint &p : out)
        p.norm_runtime /= best;
    return out;
}

} // namespace gals
