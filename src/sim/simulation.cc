#include "sim/simulation.hh"

#include "obs/metrics.hh"

namespace gals
{

RunStats
simulate(const MachineConfig &machine, const WorkloadParams &workload)
{
    Processor cpu(machine, workload);
    RunStats stats = cpu.run();
    // Process-lifetime run telemetry (obs/metrics.hh): one counter
    // bump per completed run, far off the simulated hot path.
    obs::MetricsRegistry::instance().add("sim.runs", 1);
    return stats;
}

RunStats
simulateWithKernel(const MachineConfig &machine,
                   const WorkloadParams &workload,
                   Processor::Kernel kernel,
                   std::uint32_t invariant_interval)
{
    Processor cpu(machine, workload);
    cpu.setKernel(kernel);
    if (invariant_interval != 0)
        cpu.setInvariantCheckInterval(invariant_interval);
    return cpu.run();
}

double
runtimeNs(const RunStats &stats)
{
    return static_cast<double>(stats.time_ps) / 1000.0;
}

} // namespace gals
