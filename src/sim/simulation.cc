#include "sim/simulation.hh"

namespace gals
{

RunStats
simulate(const MachineConfig &machine, const WorkloadParams &workload)
{
    Processor cpu(machine, workload);
    return cpu.run();
}

RunStats
simulateWithKernel(const MachineConfig &machine,
                   const WorkloadParams &workload,
                   Processor::Kernel kernel,
                   std::uint32_t invariant_interval)
{
    Processor cpu(machine, workload);
    cpu.setKernel(kernel);
    if (invariant_interval != 0)
        cpu.setInvariantCheckInterval(invariant_interval);
    return cpu.run();
}

double
runtimeNs(const RunStats &stats)
{
    return static_cast<double>(stats.time_ps) / 1000.0;
}

} // namespace gals
