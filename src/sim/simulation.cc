#include "sim/simulation.hh"

namespace gals
{

RunStats
simulate(const MachineConfig &machine, const WorkloadParams &workload)
{
    Processor cpu(machine, workload);
    return cpu.run();
}

double
runtimeNs(const RunStats &stats)
{
    return static_cast<double>(stats.time_ps) / 1000.0;
}

} // namespace gals
