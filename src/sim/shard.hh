/**
 * @file
 * Deterministic sharding of sweeps across processes (and hosts).
 *
 * The in-process sweep pool (sim/parallel.hh) caps at one host's
 * hardware concurrency; design-space sweeps beyond that are split by
 * running the same binary N times with `--shard i/N` (or
 * GALS_SHARDS=i/N) and merging the per-shard JSON outputs. The
 * partition is a pure function of the work-item index (round-robin,
 * i.e. item k belongs to shard k mod N), so shards are disjoint,
 * cover the full sweep, and every shard's results are byte-identical
 * to the rows the unsharded run would have produced —
 * `scripts/sweep_shard.py` drives the processes and the merge.
 *
 * The merge operates on the line-oriented JSON the sweep writers
 * emit (one `"rows"` element per line, tagged with its work-item
 * index): row lines pass through verbatim, so merged output is
 * byte-identical to an unsharded run by construction, never
 * re-serialized through a float formatter.
 */

#ifndef GALS_SIM_SHARD_HH
#define GALS_SIM_SHARD_HH

#include <cstddef>
#include <string>
#include <vector>

namespace gals
{

/** One shard of a deterministically partitioned sweep. */
struct ShardSpec
{
    int index = 0; //!< 0-based shard id.
    int count = 1; //!< total shards; 1 = unsharded.

    bool sharded() const { return count > 1; }

    /** True when work item `k` belongs to this shard. */
    bool
    owns(std::size_t k) const
    {
        return static_cast<int>(k % static_cast<std::size_t>(count)) ==
               index;
    }

    bool operator==(const ShardSpec &) const = default;
};

/**
 * Parse "i/n" (0-based, 0 <= i < n, n >= 1) into `out`. Returns
 * false (leaving `out` untouched) on malformed text.
 */
bool parseShard(const char *text, ShardSpec &out);

/** GALS_SHARDS environment override; {0, 1} when unset or invalid. */
ShardSpec shardFromEnv();

/**
 * Merge per-shard sweep JSON documents into the document the
 * unsharded run would have written.
 *
 * Inputs must share identical headers apart from the `"shard"` line
 * and cover shards 0..count-1 exactly once; row indices must be
 * unique and contiguous from 0. Panics on malformed or incomplete
 * input (the merge gate is the last line of defense against silently
 * dropping sweep points).
 */
std::string mergeShardJson(const std::vector<std::string> &shards);

} // namespace gals

#endif // GALS_SIM_SHARD_HH
