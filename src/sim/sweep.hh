/**
 * @file
 * Configuration-space search.
 *
 * The paper finds Program-Adaptive configurations by exhaustively
 * simulating all 4x4x4x4 = 256 adaptive MCD configurations per
 * application, and the "best overall" synchronous baseline by
 * sweeping 1,024 synchronous design points across the suite (~300
 * CPU-months). We reproduce both sweeps at scaled windows; because
 * that is still thousands of runs, a staged-greedy mode (optimize one
 * structure at a time, in dependence order) is the default and the
 * exhaustive mode is selected with GALS_SWEEP=exhaustive.
 */

#ifndef GALS_SIM_SWEEP_HH
#define GALS_SIM_SWEEP_HH

#include <cstdint>
#include <vector>

#include "core/machine_config.hh"
#include "core/run_stats.hh"
#include "sim/shard.hh"
#include "workload/params.hh"

namespace gals
{

/** Search strategy for the per-application adaptive sweep. */
enum class SweepMode
{
    Staged,     //!< greedy per-structure search (~13 runs).
    Exhaustive, //!< all 256 configurations.
};

/** Read GALS_SWEEP (staged|exhaustive); default staged. */
SweepMode sweepModeFromEnv();

/** Every adaptive configuration (256 points). */
std::vector<AdaptiveConfig> allAdaptiveConfigs();

/** Outcome of the per-application Program-Adaptive search. */
struct ProgramAdaptiveResult
{
    AdaptiveConfig best;
    RunStats best_stats;
    std::uint64_t runs_performed = 0;
};

/**
 * Find the whole-program adaptive MCD configuration minimizing the
 * measured-window runtime for one benchmark.
 */
ProgramAdaptiveResult findBestAdaptive(const WorkloadParams &wl,
                                       SweepMode mode);

/** One synchronous design point and its suite-average slowdown. */
struct SyncDesignPoint
{
    int icache_opt;
    int dcache;
    int iq_int;
    int iq_fp;
    /**
     * Geometric-mean runtime across the evaluated suite, normalized
     * to the best design point (1.0 = best overall).
     */
    double norm_runtime;
};

/**
 * Sweep synchronous design points across a suite and rank them by
 * geometric-mean runtime (paper §4's "best overall" search).
 *
 * @param suite      benchmarks to average over.
 * @param full       all 1,024 points when true; a 64-point cross of
 *                   the 16 I-cache options and 4 cache pairs (issue
 *                   queues held at 16 entries, which the full sweep
 *                   confirms) otherwise.
 * @return design points sorted best-first.
 */
std::vector<SyncDesignPoint>
sweepSynchronous(const std::vector<WorkloadParams> &suite, bool full);

/**
 * One synchronous design point with its raw per-benchmark runtimes —
 * the shardable unit of the synchronous sweep. Normalization needs
 * every point, so sharded runs exchange raw runtimes and the merge
 * (or a post-pass over the merged rows) normalizes.
 */
struct SyncPointRuntimes
{
    std::size_t point_index = 0; //!< global sweep index (shard key).
    int icache_opt = 0;
    int dcache = 0;
    int iq_int = 0;
    int iq_fp = 0;
    std::vector<double> runtime_ns; //!< one entry per suite bench.
};

/**
 * The raw synchronous sweep, restricted to the design points owned
 * by `shard` (round-robin on the point index). Rows come back in
 * global point order and are byte-for-byte the rows the unsharded
 * run computes: every simulation is deterministic per design point,
 * so shard boundaries never change any value.
 */
std::vector<SyncPointRuntimes>
sweepSynchronousRaw(const std::vector<WorkloadParams> &suite,
                    bool full, ShardSpec shard = {});

/**
 * One point of the 256-configuration exhaustive Program-Adaptive
 * sweep — the shardable unit of findBestAdaptive's exhaustive mode.
 */
struct AdaptivePointRuntime
{
    std::size_t point_index = 0; //!< allAdaptiveConfigs index.
    AdaptiveConfig cfg;
    double runtime_ns = 0.0;
};

/**
 * The raw exhaustive Program-Adaptive sweep for one benchmark,
 * restricted to the configurations owned by `shard` (round-robin on
 * the point index, like the synchronous sweep). Rows come back in
 * global point order and are byte-for-byte the rows the unsharded
 * run computes; the argmin over the merged rows is exactly
 * findBestAdaptive(wl, SweepMode::Exhaustive)'s choice (ties resolve
 * to the lowest point index in both).
 */
std::vector<AdaptivePointRuntime>
sweepAdaptiveRaw(const WorkloadParams &wl, ShardSpec shard = {});

/**
 * One point of the chip-multiprocessor sweep: a core count x suite
 * rotation, run as one multiprogrammed chip (multiprogrammedMix
 * fills the cores round-robin from the rotation) — the shardable
 * unit of `sweep_cli --mode cmp`.
 */
struct CmpPointResult
{
    std::size_t point_index = 0;
    int cores = 1;
    int rotation = 0; //!< suite index the mix starts at.
    /** Chip makespan (longest per-core window), ns. */
    double chip_ns = 0.0;
    /** Per-core measured-window runtime, ns. */
    std::vector<double> core_ns;
    /** Shared-L2 misses and cross-core bank conflicts (lifetime). */
    std::uint64_t l2_misses = 0;
    std::uint64_t bank_conflicts = 0;
};

/**
 * The raw multiprogrammed CMP sweep over `suite`: one chip run per
 * (core count, rotation) pair, core counts from `core_counts`,
 * rotations over the whole suite, restricted to the points owned by
 * `shard` (round-robin on the point index). Every chip run is a
 * deterministic function of its point alone, so sharded rows are
 * byte-for-byte the unsharded rows — the same merge contract as the
 * other sweeps.
 */
std::vector<CmpPointResult>
sweepCmpRaw(const std::vector<WorkloadParams> &suite,
            const std::vector<int> &core_counts, ShardSpec shard = {});

} // namespace gals

#endif // GALS_SIM_SWEEP_HH
