#include "sim/report.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/table.hh"

namespace gals
{

namespace
{

/** The shard header line shared by every sweep JSON document. */
std::string
shardLine(ShardSpec shard)
{
    return csprintf("  \"shard\": {\"index\": %d, \"count\": %d},\n",
                    shard.index, shard.count);
}

} // namespace

std::string
studyShardJson(const StudyResult &study, ShardSpec shard)
{
    std::string out = "{\n";
    out += "  \"sweep\": \"study\",\n";
    out += csprintf("  \"mode\": \"%s\",\n",
                    study.mode == SweepMode::Exhaustive ? "exhaustive"
                                                        : "staged");
    out += csprintf("  \"benchmarks\": %zu,\n",
                    study.benchmarks.size());
    out += shardLine(shard);
    out += "  \"rows\": [\n";
    std::vector<std::string> lines;
    for (size_t i = 0; i < study.benchmarks.size(); ++i) {
        if (!shard.owns(i))
            continue;
        const BenchmarkResult &r = study.benchmarks[i];
        lines.push_back(csprintf(
            "    {\"index\": %zu, \"name\": \"%s\", \"suite\": "
            "\"%s\", \"sync_ns\": %.17g, \"program_ns\": %.17g, "
            "\"phase_ns\": %.17g, \"cfg\": \"%s\", \"runs\": %llu}",
            i, r.name.c_str(), r.suite.c_str(), r.sync_ns,
            r.program_ns, r.phase_ns, r.program_cfg.str().c_str(),
            static_cast<unsigned long long>(r.runs)));
    }
    for (size_t k = 0; k < lines.size(); ++k) {
        out += lines[k];
        out += k + 1 < lines.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
syncSweepShardJson(const std::vector<SyncPointRuntimes> &rows,
                   size_t suite_size, bool full, ShardSpec shard)
{
    std::string out = "{\n";
    out += "  \"sweep\": \"synchronous\",\n";
    out += csprintf("  \"full\": %s,\n", full ? "true" : "false");
    out += csprintf("  \"benchmarks\": %zu,\n", suite_size);
    out += shardLine(shard);
    out += "  \"rows\": [\n";
    for (size_t k = 0; k < rows.size(); ++k) {
        const SyncPointRuntimes &r = rows[k];
        out += csprintf("    {\"index\": %zu, \"icache_opt\": %d, "
                        "\"dcache\": %d, \"iq_int\": %d, "
                        "\"iq_fp\": %d, \"runtime_ns\": [",
                        r.point_index, r.icache_opt, r.dcache,
                        r.iq_int, r.iq_fp);
        for (size_t b = 0; b < r.runtime_ns.size(); ++b) {
            out += csprintf("%s%.17g", b == 0 ? "" : ", ",
                            r.runtime_ns[b]);
        }
        out += k + 1 < rows.size() ? "]},\n" : "]}\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
adaptiveSweepShardJson(const std::vector<AdaptivePointRuntime> &rows,
                       const std::string &benchmark, ShardSpec shard)
{
    std::string out = "{\n";
    out += "  \"sweep\": \"adaptive\",\n";
    out += csprintf("  \"benchmark\": \"%s\",\n", benchmark.c_str());
    out += csprintf("  \"points\": %zu,\n",
                    allAdaptiveConfigs().size());
    out += shardLine(shard);
    out += "  \"rows\": [\n";
    for (size_t k = 0; k < rows.size(); ++k) {
        const AdaptivePointRuntime &r = rows[k];
        out += csprintf("    {\"index\": %zu, \"cfg\": \"%s\", "
                        "\"runtime_ns\": %.17g}%s\n",
                        r.point_index, r.cfg.str().c_str(),
                        r.runtime_ns,
                        k + 1 < rows.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

std::string
cmpSweepShardJson(const std::vector<CmpPointResult> &rows,
                  size_t suite_size,
                  const std::vector<int> &core_counts, ShardSpec shard)
{
    std::string out = "{\n";
    out += "  \"sweep\": \"cmp\",\n";
    out += csprintf("  \"benchmarks\": %zu,\n", suite_size);
    out += "  \"core_counts\": [";
    for (size_t i = 0; i < core_counts.size(); ++i) {
        out += csprintf("%s%d", i == 0 ? "" : ", ", core_counts[i]);
    }
    out += "],\n";
    out += shardLine(shard);
    out += "  \"rows\": [\n";
    for (size_t k = 0; k < rows.size(); ++k) {
        const CmpPointResult &r = rows[k];
        out += csprintf("    {\"index\": %zu, \"cores\": %d, "
                        "\"rotation\": %d, \"chip_ns\": %.17g, "
                        "\"l2_misses\": %llu, "
                        "\"bank_conflicts\": %llu, \"core_ns\": [",
                        r.point_index, r.cores, r.rotation, r.chip_ns,
                        static_cast<unsigned long long>(r.l2_misses),
                        static_cast<unsigned long long>(
                            r.bank_conflicts));
        for (size_t c = 0; c < r.core_ns.size(); ++c) {
            out += csprintf("%s%.17g", c == 0 ? "" : ", ",
                            r.core_ns[c]);
        }
        out += k + 1 < rows.size() ? "]},\n" : "]}\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
renderCmpSummary(const std::vector<CmpPointResult> &rows)
{
    TextTable table("Chip multiprocessor scaling: multiprogrammed "
                    "mixes over the suite, per core count");
    table.setHeader({"cores", "mixes", "avg makespan", "avg L2 miss",
                     "avg bank conflicts"});
    // Rows arrive grouped by core count (point order).
    size_t i = 0;
    while (i < rows.size()) {
        int cores = rows[i].cores;
        size_t n = 0;
        double ns = 0.0;
        double misses = 0.0;
        double conflicts = 0.0;
        for (; i < rows.size() && rows[i].cores == cores; ++i, ++n) {
            ns += rows[i].chip_ns;
            misses += static_cast<double>(rows[i].l2_misses);
            conflicts +=
                static_cast<double>(rows[i].bank_conflicts);
        }
        double dn = static_cast<double>(n);
        table.addRow({csprintf("%d", cores), csprintf("%zu", n),
                      csprintf("%.0f ns", ns / dn),
                      csprintf("%.0f", misses / dn),
                      csprintf("%.0f", conflicts / dn)});
    }
    return table.render();
}

std::string
renderFigure6(const StudyResult &study)
{
    TextTable table(
        "Figure 6: performance improvement of Program- and "
        "Phase-Adaptive MCD over the best fully synchronous design");
    table.setHeader({"benchmark", "suite", "program", "phase",
                     "program cfg"});
    std::string cur_suite;
    for (const BenchmarkResult &r : study.benchmarks) {
        if (!cur_suite.empty() && r.suite != cur_suite)
            table.addRule();
        cur_suite = r.suite;
        table.addRow({r.name, r.suite,
                      csprintf("%+6.1f%%",
                               100.0 * r.programImprovement()),
                      csprintf("%+6.1f%%", 100.0 * r.phaseImprovement()),
                      r.program_cfg.str()});
    }
    table.addRule();
    table.addRow({"AVERAGE", "",
                  csprintf("%+6.1f%%",
                           100.0 * study.avgProgramImprovement()),
                  csprintf("%+6.1f%%",
                           100.0 * study.avgPhaseImprovement()),
                  ""});

    std::string out = table.render();
    out += "\n";

    std::vector<std::string> labels;
    std::vector<double> values;
    for (const BenchmarkResult &r : study.benchmarks) {
        labels.push_back(r.name + " [P]");
        values.push_back(100.0 * r.programImprovement());
        labels.push_back(r.name + " [F]");
        values.push_back(100.0 * r.phaseImprovement());
    }
    out += renderBarChart(
        "Improvement over best synchronous (%), [P]=Program-Adaptive "
        "[F]=Phase-Adaptive",
        labels, values, 50.0, 50, "%");
    return out;
}

std::string
renderTable9(const StudyResult &study)
{
    int n = static_cast<int>(study.benchmarks.size());
    if (n == 0)
        return "(empty study)\n";

    auto pct = [n](int count) {
        return csprintf("%d%%", (100 * count + n / 2) / n);
    };

    auto di = study.distIqInt();
    auto df = study.distIqFp();
    auto dd = study.distDcache();
    auto dc = study.distIcache();

    TextTable table("Table 9: distribution of adaptive architecture "
                    "choices for Program-Adaptive");
    table.setHeader({"Integer IQ", "%", "FP IQ", "%", "D-Cache", "%",
                     "I-Cache", "%"});
    const char *iq_names[4] = {"16", "32", "48", "64"};
    const char *d_names[4] = {"32k1W/256k1W", "64k2W/512k2W",
                              "128k4W/1024k4W", "256k8W/2048k8W"};
    const char *i_names[4] = {"16k1W", "32k2W", "48k3W", "64k4W"};
    for (int k = 0; k < 4; ++k) {
        table.addRow({iq_names[k], pct(di[static_cast<size_t>(k)]),
                      iq_names[k], pct(df[static_cast<size_t>(k)]),
                      d_names[k], pct(dd[static_cast<size_t>(k)]),
                      i_names[k], pct(dc[static_cast<size_t>(k)])});
    }
    return table.render();
}

std::string
renderReconfigTrace(const std::string &title, const ReconfigTrace &trace,
                    Structure s, int initial_index,
                    std::uint64_t total_instrs,
                    const std::vector<std::string> &labels)
{
    // Build the step function config(instrs) from the event log.
    std::vector<ReconfigEvent> events = trace.eventsFor(s);

    std::string out = title + "\n";
    constexpr int kBuckets = 64;
    std::uint64_t bucket =
        std::max<std::uint64_t>(1, total_instrs / kBuckets);

    // For each level (highest first), draw a row marking the buckets
    // in which that configuration was active.
    std::vector<int> level_at(kBuckets, initial_index);
    {
        int cur = initial_index;
        size_t e = 0;
        for (int b = 0; b < kBuckets; ++b) {
            std::uint64_t instrs = static_cast<std::uint64_t>(b) *
                                   bucket;
            while (e < events.size() &&
                   events[e].committed_instrs <= instrs) {
                cur = events[e].to_index;
                ++e;
            }
            level_at[static_cast<size_t>(b)] = cur;
        }
    }

    size_t label_w = 0;
    for (const std::string &l : labels)
        label_w = std::max(label_w, l.size());

    for (int lvl = static_cast<int>(labels.size()) - 1; lvl >= 0;
         --lvl) {
        const std::string &label = labels[static_cast<size_t>(lvl)];
        std::string line = "  " + label;
        line.append(label_w - label.size(), ' ');
        line += " |";
        for (int b = 0; b < kBuckets; ++b) {
            line += level_at[static_cast<size_t>(b)] == lvl ? '#' : ' ';
        }
        line += "|";
        out += line + "\n";
    }
    out += csprintf("  %*s +%s+\n", static_cast<int>(label_w), "",
                    std::string(kBuckets, '-').c_str());
    out += csprintf("  %*s 0 ... %llu committed instructions "
                    "(%d reconfigurations)\n",
                    static_cast<int>(label_w), "",
                    static_cast<unsigned long long>(total_instrs),
                    static_cast<int>(events.size()));
    return out;
}

} // namespace gals
