/**
 * @file
 * Minimal index-parallel helper for the sweep layer. Simulations are
 * independent and deterministic, so running them on a few host
 * threads changes nothing but wall-clock time.
 */

#ifndef GALS_SIM_PARALLEL_HH
#define GALS_SIM_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace gals
{

/**
 * Invoke fn(i) for every i in [0, count) across up to `max_threads`
 * host threads (0 = hardware concurrency). fn must be thread-safe
 * with respect to distinct indices.
 */
template <typename Fn>
void
parallelFor(size_t count, Fn fn, unsigned max_threads = 0)
{
    if (count == 0)
        return;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned n = max_threads == 0 ? hw : std::min(max_threads, hw);
    n = static_cast<unsigned>(
        std::min<size_t>(n, count));

    if (n <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        threads.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
}

} // namespace gals

#endif // GALS_SIM_PARALLEL_HH
