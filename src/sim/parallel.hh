/**
 * @file
 * Index-parallel helper for the sweep layer, plus the chip-stepping
 * worker pool of the horizon-parallel CMP kernel.
 *
 * Simulations are independent and deterministic, so running them on a
 * few host threads changes nothing but wall-clock time. Unlike the
 * original spawn-threads-per-call helper, the pool here is persistent:
 *  - worker threads are created once and reused, so each worker's
 *    thread-local arena (common/arena.hh) keeps serving recycled
 *    Processor buffers across the hundreds of runs of a sweep instead
 *    of being torn down with the thread after every parallelFor;
 *  - indices are handed out in chunks, so a 1,024-point sweep costs
 *    ~dozens of atomic operations instead of one per design point.
 *
 * GALS_THREADS caps the worker count (0/unset = hardware concurrency);
 * it is re-read on every call so tests can toggle it with setenv.
 * Nested parallelFor calls (a sweep inside a per-benchmark study task)
 * run inline on the calling worker, which both bounds the thread
 * fan-out and keeps the arena affinity.
 *
 * The ChipPool below is a second, smaller pool with a different
 * contract: a horizon-parallel chip run needs every core group
 * resident on its *own* thread simultaneously (the groups block on
 * each other's interconnect fronts), so its slots are not chunked
 * work items but co-scheduled peers. GALS_CHIP_THREADS picks the
 * intra-chip worker count (default 1 = the sequential kernel, which
 * leaves every existing golden byte-identical); a chip run that is
 * itself inside a sweep worker always runs sequentially, so the two
 * pools compose without nested fan-out.
 */

#ifndef GALS_SIM_PARALLEL_HH
#define GALS_SIM_PARALLEL_HH

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace gals
{

namespace detail
{

/** Lazily started, process-lifetime worker pool. */
class SweepPool
{
  public:
    static SweepPool &
    instance()
    {
        static SweepPool pool;
        return pool;
    }

    /** True on a pool worker thread (nested calls run inline). */
    static bool &
    onWorker()
    {
        thread_local bool flag = false;
        return flag;
    }

    /**
     * Run fn(i) for i in [0, count) on up to `workers` threads (the
     * caller participates too). Blocks until every index completed.
     */
    void
    run(size_t count, const std::function<void(size_t)> &fn,
        unsigned workers)
    {
        ensureThreads(workers - 1);

        Job job;
        job.fn = &fn;
        job.count = count;
        // Chunked claiming: large enough to amortize the atomic,
        // small enough to balance uneven run times.
        size_t chunk = count / (static_cast<size_t>(workers) * 8);
        job.chunk = chunk == 0 ? 1 : chunk;

        job.slots = workers - 1; // pool workers allowed to adopt.

        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &job;
            ++generation_;
        }
        cv_.notify_all();

        // The caller participates as one of the `workers`; while it
        // does, nested parallelFor calls on this thread run inline
        // (same rule as pool workers), so a per-benchmark sweep
        // inside a study task cannot re-enter the pool.
        bool was_worker = onWorker();
        onWorker() = true;
        work(job);
        onWorker() = was_worker;

        // Wait until every index ran AND no worker still holds a
        // pointer to the stack-allocated job.
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job.completed == count && adopters_ == 0;
        });
        job_ = nullptr;
    }

  private:
    struct Job
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t count = 0;
        size_t chunk = 1;
        std::atomic<size_t> next{0};
        size_t completed = 0; //!< guarded by mutex_.
        unsigned slots = 0;   //!< adoption budget; guarded by mutex_.
    };

    void
    ensureThreads(unsigned n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        while (threads_.size() < n) {
            threads_.emplace_back([this] {
                onWorker() = true;
                workerLoop();
            });
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            Job *job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return stop_ || (job_ && generation_ != seen);
                });
                if (stop_)
                    return;
                seen = generation_;
                // Honor the job's thread cap (GALS_THREADS or the
                // caller's max_threads): surplus workers sit this
                // generation out.
                if (job_->slots == 0)
                    continue;
                --job_->slots;
                job = job_;
                ++adopters_;
            }
            work(*job);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --adopters_;
            }
            done_cv_.notify_all();
        }
    }

    void
    work(Job &job)
    {
        size_t done = 0;
        for (;;) {
            size_t begin = job.next.fetch_add(job.chunk);
            if (begin >= job.count)
                break;
            size_t end = begin + job.chunk;
            if (end > job.count)
                end = job.count;
            for (size_t i = begin; i < end; ++i)
                (*job.fn)(i);
            done += end - begin;
        }
        if (done != 0) {
            std::lock_guard<std::mutex> lock(mutex_);
            job.completed += done;
        }
        done_cv_.notify_all();
    }

    SweepPool() = default;

    ~SweepPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> threads_;
    Job *job_ = nullptr;
    std::uint64_t generation_ = 0;
    unsigned adopters_ = 0; //!< workers holding the current job.
    bool stop_ = false;
};

/**
 * Co-scheduled peer pool for horizon-parallel chip stepping. Unlike
 * SweepPool's chunked indices, every slot of a run must occupy a
 * distinct thread for the whole call: the chip's core groups spin on
 * each other's interconnect fronts, so multiplexing two slots onto
 * one thread would deadlock. The caller participates as slot 0 and
 * the pool's persistent workers take the rest; workers flag
 * themselves as SweepPool workers so any parallelFor (or nested chip
 * run) issued from inside a slot runs inline.
 */
class ChipPool
{
  public:
    static ChipPool &
    instance()
    {
        static ChipPool pool;
        return pool;
    }

    /** Run fn(w) for every w in [0, count), each on its own thread,
     * concurrently; blocks until all slots returned. Runs are
     * serialized against each other (one chip at a time). */
    void
    run(size_t count, const std::function<void(size_t)> &fn)
    {
        if (count <= 1) {
            if (count == 1)
                fn(0);
            return;
        }
        std::lock_guard<std::mutex> run_lock(run_mutex_);
        ensureThreads(count - 1);

        {
            std::lock_guard<std::mutex> lock(mutex_);
            fn_ = &fn;
            slots_left_ = count - 1;
            next_slot_ = 1;
            running_ = count - 1;
            ++generation_;
        }
        cv_.notify_all();

        bool was_worker = SweepPool::onWorker();
        SweepPool::onWorker() = true;
        fn(0);
        SweepPool::onWorker() = was_worker;

        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return running_ == 0; });
        fn_ = nullptr;
    }

  private:
    void
    ensureThreads(size_t n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        while (threads_.size() < n) {
            threads_.emplace_back([this] {
                SweepPool::onWorker() = true;
                workerLoop();
            });
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(size_t)> *fn;
            size_t slot;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return stop_ || (fn_ && generation_ != seen);
                });
                if (stop_)
                    return;
                seen = generation_;
                if (slots_left_ == 0)
                    continue; // surplus worker: sit this run out.
                --slots_left_;
                slot = next_slot_++;
                fn = fn_;
            }
            (*fn)(slot);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --running_;
            }
            done_cv_.notify_all();
        }
    }

    ChipPool() = default;

    ~ChipPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    std::mutex run_mutex_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> threads_;
    const std::function<void(size_t)> *fn_ = nullptr;
    std::uint64_t generation_ = 0;
    size_t slots_left_ = 0;
    size_t next_slot_ = 0;
    size_t running_ = 0;
    bool stop_ = false;
};

} // namespace detail

/**
 * Largest worker count GALS_CHIP_THREADS may request. The chip pool
 * co-schedules its slots (they spin on each other's interconnect
 * fronts), so a count beyond the host's threads is legal — required,
 * even, to test the parallel kernel on small hosts — but only up to
 * the widest chip the build supports (kMaxCores in core/ports.hh;
 * chip.cc asserts the two stay in step). Anything larger is a
 * misconfiguration that would spawn useless co-resident threads.
 */
constexpr unsigned kMaxChipWorkers = 16;

/**
 * Strictly parse a thread-count environment variable. The entire
 * string must be a decimal integer in [1, ceiling]; empty, trailing
 * garbage, non-numeric, zero, negative, or out-of-range input falls
 * back (garbage to `fallback`, overlarge clamped to `ceiling`) with
 * a logged warning instead of silently misconfiguring the pool —
 * the old unchecked strtol read "8x" as 8 and "-3" as "unset".
 */
inline unsigned
threadCountFromEnv(const char *name, const char *text,
                   unsigned fallback, unsigned ceiling)
{
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || v < 1) {
        warn("%s=\"%s\" is not a positive integer; using %u", name,
             text, fallback);
        return fallback;
    }
    if (static_cast<unsigned long>(v) > ceiling) {
        warn("%s=%ld exceeds the supported maximum of %u; clamping",
             name, v, ceiling);
        return ceiling;
    }
    return static_cast<unsigned>(v);
}

/** Worker cap: GALS_THREADS when set (validated, clamped to the
 * hardware thread count), else hardware threads. */
inline unsigned
sweepThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (const char *env = std::getenv("GALS_THREADS")) {
        // Sweep work items are independent, so threads beyond the
        // hardware's only add scheduling overhead: clamp there.
        return threadCountFromEnv("GALS_THREADS", env, hw, hw);
    }
    return hw;
}

/**
 * Intra-chip stepping threads: GALS_CHIP_THREADS when set (validated;
 * garbage falls back to 1, the sequential kernel, so every existing
 * single-threaded gate is unchanged by default). Re-read on every
 * chip run so tests can toggle it with setenv.
 */
inline unsigned
chipThreads()
{
    if (const char *env = std::getenv("GALS_CHIP_THREADS")) {
        return threadCountFromEnv("GALS_CHIP_THREADS", env, 1,
                                  kMaxChipWorkers);
    }
    return 1;
}

/** True when the calling thread belongs to either pool: a chip run
 * here must take the sequential path (its peers could not get
 * dedicated threads without unbounded fan-out). */
inline bool
onPoolWorker()
{
    return detail::SweepPool::onWorker();
}

/**
 * Run fn(w) for w in [0, count) with every slot resident on its own
 * thread for the whole call (see detail::ChipPool). The horizon-
 * parallel chip stepper is the only intended caller.
 */
template <typename Fn>
void
chipParallelRun(size_t count, Fn fn)
{
    std::function<void(size_t)> erased = [&](size_t w) { fn(w); };
    detail::ChipPool::instance().run(count, erased);
}

/**
 * Invoke fn(i) for every i in [0, count) across up to `max_threads`
 * host threads (0 = GALS_THREADS / hardware concurrency). fn must be
 * thread-safe with respect to distinct indices. Results must not
 * depend on execution order; every simulation here is deterministic
 * per index, so thread count never changes any output.
 */
template <typename Fn>
void
parallelFor(size_t count, Fn fn, unsigned max_threads = 0)
{
    if (count == 0)
        return;
    unsigned limit = sweepThreads();
    unsigned n = max_threads == 0 ? limit
                                  : std::min(max_threads, limit);
    n = static_cast<unsigned>(std::min<size_t>(n, count));

    if (n <= 1 || detail::SweepPool::onWorker()) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::function<void(size_t)> erased = [&](size_t i) { fn(i); };
    detail::SweepPool::instance().run(count, erased, n);
}

/**
 * Invoke fn(i) in parallel for every i in [0, count) owned by
 * `shard` (round-robin partition, sim/shard.hh): the in-process pool
 * covers one host's cores, the shard covers this process's slice of
 * a multi-process sweep. `shard.count == 1` degenerates to
 * parallelFor over every index.
 */
template <typename Shard, typename Fn>
void
parallelForShard(size_t count, const Shard &shard, Fn fn,
                 unsigned max_threads = 0)
{
    if (count == 0)
        return;
    // Owned indices are shard.index, shard.index + count_, ...:
    // enumerate them densely so pool chunking stays balanced.
    size_t stride = static_cast<size_t>(shard.count);
    size_t first = static_cast<size_t>(shard.index);
    size_t owned =
        first < count ? (count - first + stride - 1) / stride : 0;
    parallelFor(
        owned, [&](size_t k) { fn(first + k * stride); },
        max_threads);
}

} // namespace gals

#endif // GALS_SIM_PARALLEL_HH
