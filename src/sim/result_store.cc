#include "sim/result_store.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/simulation.hh"

namespace fs = std::filesystem;

namespace gals
{

namespace
{

// ----------------------------------------------------------------------
// Hashing. FNV-1a over the key text, run as two independently seeded
// 64-bit streams for a 128-bit file name: cheap, dependency-free,
// and collisions are harmless anyway — every record carries the full
// key text and lookup compares it, so a colliding record is rejected
// as foreign, never trusted.
// ----------------------------------------------------------------------
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kFnvBasisA = 0xcbf29ce484222325ULL;
/** Second stream: the standard basis xor-folded with a salt so the
 * two streams never agree on nontrivial input. */
constexpr std::uint64_t kFnvBasisB = 0x9ae16a3b2f90404fULL;

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

constexpr std::uint32_t kMagic = 0x31535247; // "GRS1" little-endian.

// ----------------------------------------------------------------------
// Byte stream helpers (explicit little-endian, bounds-checked reads).
// ----------------------------------------------------------------------
void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/** Bounds-checked sequential reader; every get returns false once
 * the stream is exhausted or malformed. */
struct ByteReader
{
    const std::string &buf;
    std::size_t off = 0;

    bool
    getU32(std::uint32_t &v)
    {
        if (off + 4 > buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf[off + static_cast<std::size_t>(i)]))
                 << (8 * i);
        }
        off += 4;
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (off + 8 > buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[off + static_cast<std::size_t>(i)]))
                 << (8 * i);
        }
        off += 8;
        return true;
    }

    bool
    getString(std::string &s)
    {
        std::uint32_t n = 0;
        if (!getU32(n) || off + n > buf.size())
            return false;
        s.assign(buf, off, n);
        off += n;
        return true;
    }

    bool done() const { return off == buf.size(); }
};

// ----------------------------------------------------------------------
// Key text rendering. Stable, exact and unambiguous: integers in
// decimal, doubles in %a hexfloat, strings length-prefixed. The text
// is stored verbatim in each record, so it doubles as the collision
// check and as a human-readable record of what the row is.
//
// Rendered with snprintf into stack buffers appended in place: a key
// is ~30 fields per machine plus ~30 per workload phase, and the
// csprintf-temporary-per-field version dominated the warm-hit path
// of cached sweeps (the key is rebuilt on every probe, hit or miss).
// ----------------------------------------------------------------------
void
keyValue(std::string &out, const char *name, const char *fmt, ...)
{
    char buf[48];
    va_list args;
    va_start(args, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    GALS_ASSERT(n > 0 && n < static_cast<int>(sizeof(buf)),
                "result-store key field overflow");
    out += name;
    out += '=';
    out.append(buf, static_cast<std::size_t>(n));
    out += ';';
}

void
keyInt(std::string &out, const char *name, long long v)
{
    keyValue(out, name, "%lld", v);
}

void
keyU64(std::string &out, const char *name, std::uint64_t v)
{
    keyValue(out, name, "%llu", static_cast<unsigned long long>(v));
}

void
keyDouble(std::string &out, const char *name, double v)
{
    keyValue(out, name, "%a", v);
}

void
keyString(std::string &out, const char *name, const std::string &v)
{
    char buf[24];
    int n = std::snprintf(buf, sizeof(buf), "=%zu:", v.size());
    out += name;
    out.append(buf, static_cast<std::size_t>(n));
    out += v;
    out += ';';
}

void
appendMachineKey(std::string &out, const MachineConfig &m)
{
    out += "machine{";
    keyInt(out, "mode", static_cast<int>(m.mode));
    keyInt(out, "phase", m.phase_adaptive ? 1 : 0);
    keyInt(out, "ic", m.adaptive.icache);
    keyInt(out, "dc", m.adaptive.dcache);
    keyInt(out, "qi", m.adaptive.iq_int);
    keyInt(out, "qf", m.adaptive.iq_fp);
    keyInt(out, "sync_ic", m.sync_icache_opt);
    keyInt(out, "fq", m.fetch_queue_entries);
    keyInt(out, "fw", m.fetch_width);
    keyInt(out, "dw", m.decode_width);
    keyInt(out, "iw", m.issue_width);
    keyInt(out, "rw", m.retire_width);
    keyInt(out, "rob", m.rob_entries);
    keyInt(out, "pint", m.phys_int_regs);
    keyInt(out, "pfp", m.phys_fp_regs);
    keyInt(out, "lsq", m.lsq_entries);
    keyInt(out, "sb", m.store_buffer_entries);
    keyInt(out, "ialu", m.int_alus);
    keyInt(out, "falu", m.fp_alus);
    keyInt(out, "mp", m.mem_ports);
    keyInt(out, "mshr", m.mshrs);
    keyInt(out, "dfifo", m.dispatch_fifo_entries);
    keyDouble(out, "jit", m.jitter_sigma_ps);
    keyU64(out, "seed", m.seed);
    keyDouble(out, "ff", m.force_freq_ghz);
    keyU64(out, "ival", m.cache_interval_instrs);
    keyDouble(out, "pll_m", m.pll.mean_us);
    keyDouble(out, "pll_s", m.pll.sigma_us);
    keyDouble(out, "pll_lo", m.pll.min_us);
    keyDouble(out, "pll_hi", m.pll.max_us);
    keyDouble(out, "qhys", m.queue_hysteresis);
    keyDouble(out, "chys", m.cache_hysteresis);
    keyDouble(out, "ihys", m.icache_hysteresis);
    keyInt(out, "qper", m.queue_persistence);
    keyInt(out, "cper", m.cache_persistence);
    out += '}';
}

void
appendWorkloadKey(std::string &out, const WorkloadParams &wl)
{
    out += "workload{";
    keyString(out, "name", wl.name);
    keyString(out, "suite", wl.suite);
    keyU64(out, "sim", wl.sim_instrs);
    keyU64(out, "warm", wl.warmup_instrs);
    keyU64(out, "seed", wl.seed);
    keyU64(out, "shared", wl.shared_bytes);
    keyU64(out, "off", wl.addr_offset);
    for (const PhaseParams &p : wl.phases) {
        out += "phase{";
        keyU64(out, "len", p.length_instrs);
        keyInt(out, "blk", p.block_len);
        keyU64(out, "hot", p.code_hot_bytes);
        keyU64(out, "tot", p.code_total_bytes);
        keyDouble(out, "exf", p.excursion_frac);
        keyInt(out, "exl", p.excursion_len);
        keyInt(out, "llm", p.loop_lines_max);
        keyInt(out, "lim", p.loop_iters_max);
        keyInt(out, "nch", p.num_chains);
        keyInt(out, "seg", p.chain_segment_len);
        keyDouble(out, "xch", p.cross_chain_frac);
        keyDouble(out, "ld", p.load_frac);
        keyDouble(out, "st", p.store_frac);
        keyDouble(out, "ldc", p.load_chain_frac);
        keyDouble(out, "brd", p.branch_dep_frac);
        keyDouble(out, "fp", p.fp_frac);
        keyDouble(out, "mul", p.mul_frac);
        keyDouble(out, "div", p.div_frac);
        keyU64(out, "strb", p.stream_bytes);
        keyU64(out, "strs", p.stream_stride_bytes);
        keyU64(out, "rndb", p.rand_bytes);
        keyDouble(out, "rnd", p.rand_frac);
        keyDouble(out, "shf", p.shared_frac);
        keyDouble(out, "lsf", p.loop_site_frac);
        keyInt(out, "bpl", p.branch_pattern_len);
        keyDouble(out, "bn", p.branch_noise);
        out += '}';
    }
    out += '}';
}

/** Unique-enough temp suffix: pid + a process-wide counter, so
 * concurrent writers (threads or processes) never share a temp file. */
std::string
tempSuffix()
{
    static std::atomic<std::uint64_t> seq{0};
    return csprintf(".tmp.%d.%llu", static_cast<int>(::getpid()),
                    static_cast<unsigned long long>(
                        seq.fetch_add(1, std::memory_order_relaxed)));
}

} // namespace

// ----------------------------------------------------------------------
// Keys.
// ----------------------------------------------------------------------
std::string
resultKey(const MachineConfig &machine, const WorkloadParams &workload)
{
    std::string key = "grs-key-v1:single;";
    key.reserve(1536);
    appendMachineKey(key, machine);
    appendWorkloadKey(key, workload);
    return key;
}

std::string
resultKey(const ChipConfig &chip,
          const std::vector<WorkloadParams> &workloads)
{
    std::string key = "grs-key-v1:chip;";
    key.reserve(768 + 1024 * workloads.size());
    appendMachineKey(key, chip.machine);
    key += "chip{";
    keyInt(key, "cores", chip.cores);
    keyInt(key, "banks", chip.l2_banks);
    keyInt(key, "bmshr", chip.l2_bank_mshrs);
    keyU64(key, "occ", chip.l2_bank_occupancy_ps);
    keyU64(key, "coh", chip.coh_delay_ps);
    key += '}';
    for (const WorkloadParams &wl : workloads)
        appendWorkloadKey(key, wl);
    return key;
}

// ----------------------------------------------------------------------
// Payloads.
// ----------------------------------------------------------------------
std::string
serializeRunStats(const RunStats &stats)
{
    std::string out;
    putString(out, stats.benchmark);
    putString(out, stats.config);
    putU64(out, stats.committed);
    putU64(out, stats.time_ps);
    putU64(out, stats.l1i_accesses);
    putU64(out, stats.l1i_misses);
    putU64(out, stats.l1d_accesses);
    putU64(out, stats.l1d_misses);
    putU64(out, stats.l2_accesses);
    putU64(out, stats.l2_misses);
    putU64(out, stats.l1i_b_hits);
    putU64(out, stats.l1d_b_hits);
    putU64(out, stats.l2_b_hits);
    putU64(out, stats.branches);
    putU64(out, stats.mispredicts);
    putU64(out, stats.flushes);
    putU64(out, stats.relocks);
    for (const auto *res :
         {&stats.icache_residency, &stats.dcache_residency,
          &stats.iq_int_residency, &stats.iq_fp_residency}) {
        for (std::uint64_t v : *res)
            putU64(out, v);
    }
    const std::vector<ReconfigEvent> &events = stats.trace.events();
    putU32(out, static_cast<std::uint32_t>(events.size()));
    for (const ReconfigEvent &e : events) {
        putU64(out, e.committed_instrs);
        putU32(out, static_cast<std::uint32_t>(e.structure));
        putU32(out, static_cast<std::uint32_t>(e.from_index));
        putU32(out, static_cast<std::uint32_t>(e.to_index));
    }
    return out;
}

namespace
{

bool
readRunStats(ByteReader &r, RunStats &out)
{
    out = RunStats{};
    if (!r.getString(out.benchmark) || !r.getString(out.config) ||
        !r.getU64(out.committed) || !r.getU64(out.time_ps) ||
        !r.getU64(out.l1i_accesses) || !r.getU64(out.l1i_misses) ||
        !r.getU64(out.l1d_accesses) || !r.getU64(out.l1d_misses) ||
        !r.getU64(out.l2_accesses) || !r.getU64(out.l2_misses) ||
        !r.getU64(out.l1i_b_hits) || !r.getU64(out.l1d_b_hits) ||
        !r.getU64(out.l2_b_hits) || !r.getU64(out.branches) ||
        !r.getU64(out.mispredicts) || !r.getU64(out.flushes) ||
        !r.getU64(out.relocks)) {
        return false;
    }
    for (auto *res :
         {&out.icache_residency, &out.dcache_residency,
          &out.iq_int_residency, &out.iq_fp_residency}) {
        for (std::uint64_t &v : *res) {
            if (!r.getU64(v))
                return false;
        }
    }
    std::uint32_t n = 0;
    if (!r.getU32(n))
        return false;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t committed = 0;
        std::uint32_t structure = 0, from = 0, to = 0;
        if (!r.getU64(committed) || !r.getU32(structure) ||
            !r.getU32(from) || !r.getU32(to) || structure > 3) {
            return false;
        }
        out.trace.record(committed, static_cast<Structure>(structure),
                         static_cast<int>(from),
                         static_cast<int>(to));
    }
    return true;
}

} // namespace

bool
deserializeRunStats(const std::string &bytes, RunStats &out)
{
    ByteReader r{bytes};
    return readRunStats(r, out) && r.done();
}

std::string
serializeChipRunStats(const ChipRunStats &stats)
{
    std::string out;
    putU32(out, static_cast<std::uint32_t>(stats.cores.size()));
    for (const RunStats &s : stats.cores)
        putString(out, serializeRunStats(s));
    putU64(out, stats.total_committed);
    putU64(out, stats.makespan_ps);
    putU64(out, stats.l2_accesses);
    putU64(out, stats.l2_misses);
    putU64(out, stats.bank_conflicts);
    putU64(out, stats.bank_mshr_waits);
    putU64(out, stats.fill_merges);
    putU64(out, stats.invalidations);
    putU64(out, stats.ownership_transfers);
    return out;
}

bool
deserializeChipRunStats(const std::string &bytes, ChipRunStats &out)
{
    out = ChipRunStats{};
    ByteReader r{bytes};
    std::uint32_t cores = 0;
    if (!r.getU32(cores))
        return false;
    out.cores.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        std::string inner;
        if (!r.getString(inner) ||
            !deserializeRunStats(inner, out.cores[c])) {
            return false;
        }
    }
    return r.getU64(out.total_committed) &&
           r.getU64(out.makespan_ps) && r.getU64(out.l2_accesses) &&
           r.getU64(out.l2_misses) && r.getU64(out.bank_conflicts) &&
           r.getU64(out.bank_mshr_waits) &&
           r.getU64(out.fill_merges) && r.getU64(out.invalidations) &&
           r.getU64(out.ownership_transfers) && r.done();
}

// ----------------------------------------------------------------------
// Store.
// ----------------------------------------------------------------------
bool
ResultStore::open(const std::string &dir,
                  const std::string &version_tag)
{
    close();
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec || !fs::is_directory(dir)) {
        warn("result cache directory \"%s\" cannot be created (%s); "
             "result cache disabled",
             dir.c_str(), ec ? ec.message().c_str() : "not a directory");
        return false;
    }
    // Probe writability now, so an unwritable directory costs one
    // warning instead of one per record.
    std::string probe =
        (fs::path(dir) / ("probe" + tempSuffix())).string();
    {
        std::ofstream out(probe, std::ios::binary);
        if (!out) {
            warn("result cache directory \"%s\" is not writable; "
                 "result cache disabled",
                 dir.c_str());
            return false;
        }
    }
    fs::remove(probe, ec);
    dir_ = fs::absolute(dir).string();
    tag_ = version_tag;
    return true;
}

void
ResultStore::close()
{
    dir_.clear();
    tag_ = kResultStoreVersion;
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    stores_.store(0, std::memory_order_relaxed);
    rejects_.store(0, std::memory_order_relaxed);
    write_warned_.store(false, std::memory_order_relaxed);
}

std::string
ResultStore::recordPath(const std::string &key) const
{
    std::string name =
        csprintf("%016llx%016llx.grs",
                 static_cast<unsigned long long>(
                     fnv1a(key.data(), key.size(), kFnvBasisA)),
                 static_cast<unsigned long long>(
                     fnv1a(key.data(), key.size(), kFnvBasisB)));
    return (fs::path(dir_) / name).string();
}

bool
ResultStore::lookup(const std::string &key, std::string &payload) const
{
    if (!enabled())
        return false;

    // One sized read straight into the buffer: the stream-insertion
    // idiom (rdbuf into an ostringstream, then str()) copied every
    // record twice through chunked virtual calls, which dominated
    // the warm-sweep hit path.
    std::string bytes;
    {
        std::ifstream in(recordPath(key),
                         std::ios::binary | std::ios::ate);
        if (!in) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        std::streamoff size = in.tellg();
        if (size < 0) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        bytes.resize(static_cast<std::size_t>(size));
        in.seekg(0);
        in.read(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        if (!in) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
    }

    // Validate everything; any failure is a reject (recompute, never
    // trust). The checksum covers every byte before it, so a
    // truncated or bit-flipped record cannot pass.
    auto reject = [&] {
        rejects_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    };
    if (bytes.size() < 8)
        return reject();
    std::uint64_t want = 0;
    {
        ByteReader tail{bytes};
        tail.off = bytes.size() - 8;
        tail.getU64(want);
    }
    if (fnv1a(bytes.data(), bytes.size() - 8, kFnvBasisA) != want)
        return reject();

    ByteReader r{bytes};
    std::uint32_t magic = 0;
    std::string tag, stored_key;
    if (!r.getU32(magic) || magic != kMagic || !r.getString(tag) ||
        !r.getString(stored_key) || !r.getString(payload) ||
        r.off + 8 != bytes.size()) {
        return reject();
    }
    if (tag != tag_ || stored_key != key)
        return reject(); // stale code version or hash collision.

    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ResultStore::store(const std::string &key,
                   const std::string &payload) const
{
    if (!enabled())
        return;

    std::string bytes;
    putU32(bytes, kMagic);
    putString(bytes, tag_);
    putString(bytes, key);
    putString(bytes, payload);
    putU64(bytes, fnv1a(bytes.data(), bytes.size(), kFnvBasisA));

    // Atomic publish: write a private temp file, then rename() onto
    // the record name. Readers either see the old record or the new
    // complete one; racing writers publish identical bytes (the
    // payload is a deterministic function of the key), so last-wins
    // is harmless.
    std::string final_path = recordPath(key);
    std::string tmp_path = final_path + tempSuffix();
    bool ok = false;
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (out) {
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
            ok = out.good();
        }
    }
    std::error_code ec;
    if (ok) {
        fs::rename(tmp_path, final_path, ec);
        ok = !ec;
    }
    if (!ok) {
        fs::remove(tmp_path, ec);
        if (!write_warned_.exchange(true, std::memory_order_relaxed)) {
            warn("result cache write to \"%s\" failed; caching "
                 "continues best-effort",
                 dir_.c_str());
        }
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
}

ResultStore::Counters
ResultStore::counters() const
{
    Counters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.stores = stores_.load(std::memory_order_relaxed);
    c.rejects = rejects_.load(std::memory_order_relaxed);
    return c;
}

void
ResultStore::publishMetrics() const
{
    Counters c = counters();
    obs::MetricsRegistry &m = obs::MetricsRegistry::instance();
    m.set("result_store.enabled", enabled() ? 1 : 0);
    m.set("result_store.hits", c.hits);
    m.set("result_store.misses", c.misses);
    m.set("result_store.stores", c.stores);
    m.set("result_store.rejects", c.rejects);
}

std::string
ResultStore::statsLine() const
{
    // The human-facing stderr line doubles as the fold point into
    // the machine-readable registry: every caller that reports the
    // store's telemetry keeps --metrics-out/GALS_METRICS current.
    publishMetrics();
    Counters c = counters();
    return csprintf("result-store: %llu hits, %llu misses "
                    "(%llu rejected records), %llu stored, dir %s",
                    static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.misses),
                    static_cast<unsigned long long>(c.rejects),
                    static_cast<unsigned long long>(c.stores),
                    dir_.c_str());
}

// ----------------------------------------------------------------------
// Global store.
// ----------------------------------------------------------------------
namespace
{

ResultStore &
globalStore()
{
    static ResultStore store;
    return store;
}

/** One-time GALS_RESULT_CACHE pickup; configureResultStore overrides. */
std::once_flag env_once;

void
initFromEnv()
{
    std::call_once(env_once, [] {
        const char *env = std::getenv("GALS_RESULT_CACHE");
        if (env != nullptr && *env != '\0')
            globalStore().open(env);
    });
}

} // namespace

ResultStore &
resultStore()
{
    initFromEnv();
    return globalStore();
}

void
configureResultStore(const std::string &dir)
{
    initFromEnv(); // settle the env pickup so it cannot race us later.
    if (dir.empty())
        globalStore().close();
    else
        globalStore().open(dir);
}

// ----------------------------------------------------------------------
// Cached simulation wrappers.
// ----------------------------------------------------------------------
RunStats
cachedSimulate(const MachineConfig &machine,
               const WorkloadParams &workload)
{
    ResultStore &rs = resultStore();
    if (!rs.enabled())
        return simulate(machine, workload);

    std::string key = resultKey(machine, workload);
    std::string payload;
    RunStats out;
    if (rs.lookup(key, payload) && deserializeRunStats(payload, out))
        return out;

    out = simulate(machine, workload);
    rs.store(key, serializeRunStats(out));
    return out;
}

ChipRunStats
cachedChipRun(const ChipConfig &chip,
              const std::vector<WorkloadParams> &workloads)
{
    ResultStore &rs = resultStore();
    if (!rs.enabled()) {
        Chip c(chip, workloads);
        return c.run();
    }

    std::string key = resultKey(chip, workloads);
    std::string payload;
    ChipRunStats out;
    if (rs.lookup(key, payload) &&
        deserializeChipRunStats(payload, out)) {
        return out;
    }

    Chip c(chip, workloads);
    out = c.run();
    rs.store(key, serializeChipRunStats(out));
    return out;
}

} // namespace gals
