/**
 * @file
 * Persistent, content-addressed sweep result store.
 *
 * Every sweep, study and CMP point is a deterministic function of
 * (machine or chip configuration, workload parameters, seed) — the
 * same tuples are re-simulated over and over across goldens,
 * differential sweeps, perf smoke and the adaptive studies. The store
 * memoizes those leaf simulations on disk: a result is keyed by a
 * stable hash of the canonically serialized configuration tuple plus
 * a simulator code-version tag, so any point computed before — by an
 * earlier run, another shard, or a previous PR within the same code
 * version — becomes a cache hit that skips simulation entirely.
 * Because each completed point is persisted immediately, a killed
 * `sweep_cli --shard` run resumes from the store instead of
 * recomputing, and a merge can assemble a full result from a mix of
 * fresh and cached rows (rows are value-exact, so the JSON stays
 * byte-identical to a cache-off run).
 *
 * Safety is by construction, not by trust:
 *  - records carry a magic, the code-version tag, the full key text
 *    and a checksum; unknown, truncated, corrupt or stale records are
 *    silently treated as misses (recompute, never trust);
 *  - writes are atomic (write-temp-then-rename), so a concurrent
 *    writer or a kill mid-write can never publish a torn record, and
 *    two processes racing on one key publish identical bytes (every
 *    payload is a deterministic function of the key);
 *  - caching defaults OFF: it activates only via GALS_RESULT_CACHE
 *    or `sweep_cli --cache-dir`, so determinism gates keep exercising
 *    the live simulator (docs/testing.md pins that policy).
 *
 * Record layout (little-endian, docs/kernel.md "Result store"):
 *   u32 magic 'GRS1' | u32 tag_len, tag | u32 key_len, key
 *   | u32 payload_len, payload | u64 FNV-1a checksum of all prior
 *   bytes. The file name is the 128-bit FNV-1a of the key text (two
 *   independently seeded 64-bit streams), hex, suffix ".grs".
 */

#ifndef GALS_SIM_RESULT_STORE_HH
#define GALS_SIM_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cmp/chip.hh"
#include "core/machine_config.hh"
#include "core/run_stats.hh"
#include "workload/params.hh"

namespace gals
{

/**
 * Simulator code-version tag baked into every record. Bump it
 * whenever a change alters any simulated result (RunStats values,
 * RNG streams, timing model): stale-tag records then degrade to
 * misses instead of resurrecting old numbers. The differential and
 * golden gates run cache-off, so a forgotten bump cannot corrupt
 * them — only warm-cache sweeps would serve outdated rows until the
 * tag moves.
 */
constexpr const char *kResultStoreVersion = "gals-results-v1:pr8";

/** One directory of content-addressed result records. */
class ResultStore
{
  public:
    /** Default-constructed store is disabled: lookups miss without
     * touching the filesystem, stores are no-ops. */
    ResultStore() = default;

    /**
     * Enable the store on `dir` (created if missing). A nonexistent,
     * uncreatable or unwritable directory logs one warning and
     * leaves the store disabled — never a crash (same logged-fallback
     * contract as threadCountFromEnv). Returns enabled().
     */
    bool open(const std::string &dir,
              const std::string &version_tag = kResultStoreVersion);

    /** Disable the store and reset the counters. */
    void close();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Fetch the payload recorded for `key`. Returns false — a miss —
     * when the store is disabled, no record exists, or the record
     * fails any validation (magic, checksum, version tag, full key
     * comparison against hash collisions).
     */
    bool lookup(const std::string &key, std::string &payload) const;

    /** Persist `payload` under `key` (atomic rename; failures are
     * logged once per store and otherwise ignored — the cache is an
     * accelerator, never a correctness dependency). */
    void store(const std::string &key,
               const std::string &payload) const;

    /** Absolute record path for `key` (tests corrupt records here). */
    std::string recordPath(const std::string &key) const;

    /** Lifetime telemetry (since open). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        /** Records present but rejected (corrupt/stale/foreign). */
        std::uint64_t rejects = 0;
    };
    Counters counters() const;

    /** Mirror counters() into the obs metrics registry under
     * "result_store.*" (the --metrics-out telemetry surface). */
    void publishMetrics() const;

    /** e.g. "result-store: 256 hits, 0 misses, 0 stored ...". Also
     * calls publishMetrics(), so the stderr line and the registry
     * can never drift apart. */
    std::string statsLine() const;

  private:
    std::string dir_; //!< empty = disabled.
    std::string tag_ = kResultStoreVersion;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
    mutable std::atomic<std::uint64_t> rejects_{0};
    mutable std::atomic<bool> write_warned_{false};
};

/**
 * The process-wide store used by the sweep layer. First use reads
 * GALS_RESULT_CACHE (a directory path; unset/empty or unusable keeps
 * the store disabled, the latter with a logged warning).
 */
ResultStore &resultStore();

/** Point the global store at `dir` (empty string disables). Used by
 * `sweep_cli --cache-dir` and tests; call from one thread only. */
void configureResultStore(const std::string &dir);

// ----------------------------------------------------------------------
// Canonical key serialization. Every semantic field of the
// configuration tuple is rendered as stable text (doubles in %a
// hexfloat, so the key is exact); two tuples differing in any field
// produce different keys, and the text survives in each record for
// collision-proof verification.
// ----------------------------------------------------------------------
std::string resultKey(const MachineConfig &machine,
                      const WorkloadParams &workload);
std::string resultKey(const ChipConfig &chip,
                      const std::vector<WorkloadParams> &workloads);

// ----------------------------------------------------------------------
// Binary payload (de)serialization. Value-exact: every counter and
// tick travels verbatim, so a cached RunStats is indistinguishable
// from a fresh one (that is what keeps warm JSON byte-identical —
// all reported doubles are derived from these exact integers).
// Deserializers return false on any malformed input.
// ----------------------------------------------------------------------
std::string serializeRunStats(const RunStats &stats);
bool deserializeRunStats(const std::string &bytes, RunStats &out);
std::string serializeChipRunStats(const ChipRunStats &stats);
bool deserializeChipRunStats(const std::string &bytes,
                             ChipRunStats &out);

// ----------------------------------------------------------------------
// Cached simulation wrappers — the sweep layer's entry points. With
// the store disabled they are exactly simulate()/Chip::run() (the
// enabled() check is the only overhead on that path); with it
// enabled, a hit skips the simulation and a miss simulates then
// persists the result before returning.
// ----------------------------------------------------------------------
RunStats cachedSimulate(const MachineConfig &machine,
                        const WorkloadParams &workload);
ChipRunStats cachedChipRun(const ChipConfig &chip,
                           const std::vector<WorkloadParams> &workloads);

} // namespace gals

#endif // GALS_SIM_RESULT_STORE_HH
