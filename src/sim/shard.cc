#include "sim/shard.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace gals
{

bool
parseShard(const char *text, ShardSpec &out)
{
    if (text == nullptr)
        return false;
    int index = 0;
    int count = 0;
    char tail = '\0';
    if (std::sscanf(text, "%d/%d%c", &index, &count, &tail) != 2)
        return false;
    if (count < 1 || index < 0 || index >= count)
        return false;
    out = ShardSpec{index, count};
    return true;
}

ShardSpec
shardFromEnv()
{
    ShardSpec spec;
    parseShard(std::getenv("GALS_SHARDS"), spec);
    return spec;
}

namespace
{

/** Split into lines, discarding the trailing newline of each. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(pos));
            break;
        }
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

/** One parsed shard document. */
struct ShardDoc
{
    std::vector<std::string> header; //!< lines before the shard line.
    ShardSpec shard;
    std::vector<std::pair<std::size_t, std::string>> rows;
};

constexpr const char *kShardPrefix = "  \"shard\": ";
constexpr const char *kRowsOpen = "  \"rows\": [";

ShardDoc
parseDoc(const std::string &text)
{
    ShardDoc doc;
    std::vector<std::string> lines = splitLines(text);
    std::size_t i = 0;

    // Header: verbatim lines up to (excluding) the shard line.
    for (; i < lines.size(); ++i) {
        if (lines[i].rfind(kShardPrefix, 0) == 0)
            break;
        doc.header.push_back(lines[i]);
        GALS_ASSERT(i + 1 < lines.size(),
                    "shard merge: document has no shard line");
    }
    int index = 0;
    int count = 0;
    GALS_ASSERT(std::sscanf(lines[i].c_str(),
                            "  \"shard\": {\"index\": %d, "
                            "\"count\": %d},",
                            &index, &count) == 2,
                "shard merge: malformed shard line '%s'",
                lines[i].c_str());
    doc.shard = ShardSpec{index, count};
    ++i;

    GALS_ASSERT(i < lines.size() && lines[i] == kRowsOpen,
                "shard merge: expected '%s'", kRowsOpen);
    ++i;

    for (; i < lines.size() && lines[i] != "  ]"; ++i) {
        std::string row = lines[i];
        if (!row.empty() && row.back() == ',')
            row.pop_back();
        std::size_t idx = 0;
        GALS_ASSERT(std::sscanf(row.c_str(), "    {\"index\": %zu,",
                                &idx) == 1,
                    "shard merge: malformed row line '%s'",
                    row.c_str());
        doc.rows.emplace_back(idx, row);
    }
    GALS_ASSERT(i < lines.size(), "shard merge: unterminated rows");
    return doc;
}

} // namespace

std::string
mergeShardJson(const std::vector<std::string> &shards)
{
    GALS_ASSERT(!shards.empty(), "shard merge: no inputs");

    std::vector<ShardDoc> docs;
    docs.reserve(shards.size());
    for (const std::string &text : shards)
        docs.push_back(parseDoc(text));

    const int count = docs.front().shard.count;
    GALS_ASSERT(static_cast<std::size_t>(count) == docs.size(),
                "shard merge: %zu inputs for %d shards", docs.size(),
                count);
    std::vector<bool> seen(static_cast<std::size_t>(count), false);
    for (const ShardDoc &doc : docs) {
        GALS_ASSERT(doc.shard.count == count,
                    "shard merge: mismatched shard counts");
        GALS_ASSERT(doc.header == docs.front().header,
                    "shard merge: headers differ between shards");
        std::size_t k = static_cast<std::size_t>(doc.shard.index);
        GALS_ASSERT(!seen[k], "shard merge: duplicate shard %d",
                    doc.shard.index);
        seen[k] = true;
    }

    std::vector<std::pair<std::size_t, std::string>> rows;
    for (ShardDoc &doc : docs) {
        for (auto &row : doc.rows) {
            GALS_ASSERT(
                doc.shard.owns(row.first),
                "shard merge: shard %d carries foreign row %zu",
                doc.shard.index, row.first);
            rows.push_back(std::move(row));
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (std::size_t k = 0; k < rows.size(); ++k) {
        GALS_ASSERT(rows[k].first == k,
                    "shard merge: row indices not contiguous at %zu",
                    k);
    }

    // Reassemble exactly as an unsharded run writes it: header
    // verbatim, shard 0/1, verbatim row lines.
    std::string out;
    for (const std::string &line : docs.front().header) {
        out += line;
        out += '\n';
    }
    out += "  \"shard\": {\"index\": 0, \"count\": 1},\n";
    out += kRowsOpen;
    out += '\n';
    for (std::size_t k = 0; k < rows.size(); ++k) {
        out += rows[k].second;
        out += k + 1 < rows.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace gals
