/**
 * @file
 * Text rendering of the paper's tables and figures from study
 * results. Each bench binary calls one of these so every experiment
 * prints in a uniform, diffable format.
 */

#ifndef GALS_SIM_REPORT_HH
#define GALS_SIM_REPORT_HH

#include <string>

#include "control/reconfig_trace.hh"
#include "sim/study.hh"

namespace gals
{

/** Figure 6: per-benchmark improvement bars plus suite averages. */
std::string renderFigure6(const StudyResult &study);

/** Table 9: distribution of Program-Adaptive configuration choices. */
std::string renderTable9(const StudyResult &study);

/**
 * Figure 7-style reconfiguration trace: configuration index versus
 * committed instructions for one structure of one run.
 */
std::string renderReconfigTrace(const std::string &title,
                                const ReconfigTrace &trace, Structure s,
                                int initial_index,
                                std::uint64_t total_instrs,
                                const std::vector<std::string> &labels);

/**
 * Line-oriented JSON for a (possibly shard-restricted) study run:
 * one `"rows"` element per owned benchmark, tagged with its suite
 * index. Shard documents with matching headers merge byte-exactly
 * via mergeShardJson (sim/shard.hh).
 */
std::string studyShardJson(const StudyResult &study, ShardSpec shard);

/** Same contract for the raw synchronous design-point sweep. */
std::string syncSweepShardJson(
    const std::vector<SyncPointRuntimes> &rows, size_t suite_size,
    bool full, ShardSpec shard);

/** Same contract for the 256-point exhaustive Program-Adaptive sweep
 * of one benchmark. */
std::string adaptiveSweepShardJson(
    const std::vector<AdaptivePointRuntime> &rows,
    const std::string &benchmark, ShardSpec shard);

/** Same contract for the multiprogrammed CMP sweep (`core_counts`
 * belongs to the header: shards of one sweep must agree on it). */
std::string cmpSweepShardJson(const std::vector<CmpPointResult> &rows,
                              size_t suite_size,
                              const std::vector<int> &core_counts,
                              ShardSpec shard);

/** Chip-level scaling table of a (merged) CMP sweep: per core count,
 * average makespan and interconnect pressure across rotations. */
std::string renderCmpSummary(const std::vector<CmpPointResult> &rows);

} // namespace gals

#endif // GALS_SIM_REPORT_HH
