/**
 * @file
 * The batched fetch-group queue between the fetch and rename stages.
 *
 * Every op fetched at one front-end edge shares a single visibility
 * time (`now + feDepth * period`, the front-end pipe latency), so the
 * fetch queue stores that time once per *group* instead of once per
 * op. Rename consumes ops in order and gates only on the head group's
 * visibility; `visibleOps()` gives it the whole consumable prefix in
 * one walk over the (few) queued groups, so the rename loop runs
 * without per-op visibility checks.
 *
 * Ops carry their decode-invariant properties (execution domain,
 * memory/destination classification), computed once at fetch, so
 * neither rename nor the sleep-gate derivation re-derives them.
 *
 * Storage is two flat rings (ops, groups) sized at construction: no
 * allocation after the constructor, O(1) push/pop.
 */

#ifndef GALS_CORE_FETCH_GROUP_HH
#define GALS_CORE_FETCH_GROUP_HH

#include "common/arena.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/uop.hh"

namespace gals
{

/** One fetched op waiting for rename, with decode-invariant fields. */
struct FetchedOp
{
    MicroOp uop;
    BranchPrediction pred{};
    bool mispredict = false;

    // Decode-invariant classification, filled at fetch so rename and
    // the front-end sleep gate never recompute it.
    DomainId dom = DomainId::Integer;
    bool is_mem = false;
    bool needs_dst = false;
    bool dst_fp = false;
};

/** Bounded fetch queue storing visibility per fetch group. */
class FetchGroupQueue
{
  public:
    explicit FetchGroupQueue(size_t op_capacity)
        : capacity_(op_capacity), ops_(op_capacity),
          groups_(op_capacity)
    {}

    bool canPush() const { return count_ < capacity_; }
    /** Ops that can still be accepted. */
    size_t freeOps() const { return capacity_ - count_; }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    size_t capacity() const { return capacity_; }

    /**
     * Enqueue an op consumable at `visible_at`. Consecutive pushes
     * with the same visibility time (one fetch group) share one group
     * record.
     */
    void
    push(const FetchedOp &op, Tick visible_at)
    {
        GALS_ASSERT(canPush(), "push into full fetch queue");
        ops_[wrap(op_head_ + count_)] = op;
        ++count_;
        if (group_count_ != 0) {
            Group &back =
                groups_[wrap(group_head_ + group_count_ - 1)];
            if (back.visible_at == visible_at) {
                ++back.count;
                return;
            }
        }
        groups_[wrap(group_head_ + group_count_)] =
            Group{visible_at, 1};
        ++group_count_;
    }

    /** True when the head op exists and its group is visible. */
    bool
    frontReady(Tick now) const
    {
        return count_ != 0 && groups_[group_head_].visible_at <= now;
    }

    /** Head op; only valid when !empty(). */
    FetchedOp &front() { return ops_[op_head_]; }
    const FetchedOp &front() const { return ops_[op_head_]; }

    /** Visibility time of the head group; only valid when !empty(). */
    Tick frontVisibleAt() const
    {
        return groups_[group_head_].visible_at;
    }

    /**
     * Number of ops in the consumable prefix at `now` (the leading
     * groups whose visibility has passed), saturated at `limit`:
     * rename sizes its whole batch from this one call and never needs
     * to know more than decode-width-and-a-bit, so the walk stops as
     * soon as the prefix provably covers the batch.
     */
    size_t
    visibleOps(Tick now, size_t limit) const
    {
        size_t n = 0;
        for (size_t g = 0; g < group_count_ && n < limit; ++g) {
            const Group &grp = groups_[wrap(group_head_ + g)];
            if (grp.visible_at > now)
                break;
            n += grp.count;
        }
        return n < limit ? n : limit;
    }

    /** Remove the head op (and its group once drained). */
    void
    pop()
    {
        GALS_ASSERT(count_ != 0, "pop from empty fetch queue");
        op_head_ = wrap(op_head_ + 1);
        --count_;
        Group &head = groups_[group_head_];
        if (--head.count == 0) {
            group_head_ = wrap(group_head_ + 1);
            --group_count_;
        }
    }

    /** Drop everything. */
    void
    clear()
    {
        op_head_ = 0;
        count_ = 0;
        group_head_ = 0;
        group_count_ = 0;
    }

    /** Number of distinct fetch groups currently queued. */
    size_t groupCount() const { return group_count_; }

    /**
     * Structural invariants (the differential harness calls this):
     * group op counts are positive and sum to the op count, and
     * occupancy respects capacity.
     */
    bool
    checkConsistent() const
    {
        if (count_ > capacity_ || group_count_ > capacity_)
            return false;
        size_t total = 0;
        for (size_t g = 0; g < group_count_; ++g) {
            const Group &grp = groups_[wrap(group_head_ + g)];
            if (grp.count == 0)
                return false;
            total += grp.count;
        }
        return total == count_;
    }

  private:
    struct Group
    {
        Tick visible_at = 0;
        std::uint32_t count = 0;
    };

    size_t
    wrap(size_t pos) const
    {
        return pos >= capacity_ ? pos - capacity_ : pos;
    }

    size_t capacity_;
    ArenaVector<FetchedOp> ops_;
    ArenaVector<Group> groups_;
    size_t op_head_ = 0;
    size_t count_ = 0;
    size_t group_head_ = 0;
    size_t group_count_ = 0;
};

} // namespace gals

#endif // GALS_CORE_FETCH_GROUP_HH
