#include "core/scheduler.hh"

#include <array>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace gals
{

namespace
{

/** Sum of the cores' progress counters (deadlock watchdog). */
std::uint64_t
totalProgress(const CoreProgress *cores, int ncores)
{
    std::uint64_t sum = 0;
    for (int c = 0; c < ncores; ++c)
        sum += *cores[c].progress;
    return sum;
}

} // namespace

DomainScheduler::DomainScheduler(Domain *const *domains, Clock *clocks,
                                 int count, WakeFabric &fabric,
                                 EpochBumpPort *const *epochs)
    : domains_(domains), clocks_(clocks), count_(count),
      fabric_(fabric), epochs_(epochs)
{
    GALS_ASSERT(count >= 1 && count <= kMaxSchedDomains &&
                    count % kNumDomains == 0,
                "DomainScheduler domain count out of range");
}

bool
DomainScheduler::advanceClock(int d)
{
    Clock &c = clocks_[static_cast<size_t>(d)];
    if (!c.changePending()) {
        c.advance();
        return false;
    }
    Tick landing = c.nextEdge();
    std::uint64_t before = c.periodChanges();
    c.advance();
    if (c.periodChanges() == before)
        return false;
    // Grid epochs are per core: broadcast through the landing core's
    // port, with the core-local changed-domain index.
    epochs_[d]->broadcast(d % kNumDomains, landing);
    if (obs::tracing()) {
        obs::Tracer::instance().sim(d, obs::Ev::EpochBump, landing,
                                    c.period());
    }
    return true;
}

void
DomainScheduler::advanceClockWhileBelow(int d, Tick t)
{
    Clock &c = clocks_[static_cast<size_t>(d)];
    std::uint64_t before = c.periodChanges();
    c.advanceWhileBelow(t);
    // A pending period change can never land inside a proven-idle
    // skip: every schedule bound is clamped to changeDue, so the
    // landing edge is always delivered by a real step.
    GALS_ASSERT(c.periodChanges() == before,
                "period change landed inside a proven-idle skip");
}

void
DomainScheduler::runReference(const CoreProgress *cores, int ncores)
{
    GALS_ASSERT(ncores * kNumDomains == count_,
                "stop conditions for %d cores against %d domains",
                ncores, count_);
    fabric_.setEventMode(false);
    std::array<bool, kMaxCores> done{};
    int active = 0;
    for (int c = 0; c < ncores; ++c) {
        done[static_cast<size_t>(c)] =
            *cores[c].progress >= cores[c].target;
        if (!done[static_cast<size_t>(c)])
            ++active;
    }

    std::uint64_t steps = 0;
    std::uint64_t last_progress = totalProgress(cores, ncores);
    while (active > 0) {
        int d = -1;
        Tick best = kTickMax;
        for (int i = 0; i < count_; ++i) {
            if (done[static_cast<size_t>(i / kNumDomains)])
                continue;
            Tick e = clocks_[static_cast<size_t>(i)].nextEdge();
            if (e < best) {
                best = e;
                d = i;
            }
        }
        if (obs::tracing()) {
            obs::Tracer::instance().domainStep(
                d, best, clocks_[static_cast<size_t>(d)].period());
        }
        domains_[d]->step(best);
        advanceClock(d);

        int c = d / kNumDomains;
        if (*cores[c].progress >= cores[c].target) {
            done[static_cast<size_t>(c)] = true;
            --active;
        }

        if (++steps >= 8'000'000) {
            std::uint64_t progress = totalProgress(cores, ncores);
            GALS_ASSERT(progress != last_progress,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(best),
                        static_cast<unsigned long long>(progress));
            steps = 0;
            last_progress = progress;
        }
    }
}

void
DomainScheduler::runEvent(const CoreProgress *cores, int ncores)
{
    GALS_ASSERT(ncores * kNumDomains == count_,
                "stop conditions for %d cores against %d domains",
                ncores, count_);
    fabric_.setEventMode(true);
    fabric_.beginEventRun();

    std::array<bool, kMaxCores> done{};
    int active = 0;
    for (int c = 0; c < ncores; ++c) {
        bool fin = *cores[c].progress >= cores[c].target;
        done[static_cast<size_t>(c)] = fin;
        if (fin) {
            for (int k = c * kNumDomains; k < (c + 1) * kNumDomains;
                 ++k) {
                fabric_.park(k);
            }
        } else {
            ++active;
        }
    }

    std::uint64_t steps = 0;
    std::uint64_t last_progress = totalProgress(cores, ncores);
    while (active > 0) {
        int d = fabric_.head();
        size_t di = static_cast<size_t>(d);
        GALS_ASSERT(fabric_.key(d) != kTickMax,
                    "event kernel: every domain parked at "
                    "committed=%llu (missing wakeup port)",
                    static_cast<unsigned long long>(
                        totalProgress(cores, ncores)));
        if (done[static_cast<size_t>(d / kNumDomains)]) {
            // A coherence wake re-armed a halted core's domain (a
            // remote sharer may finish before its invalidations
            // deliver). The reference kernel never steps a done
            // core, so neither may we: re-park and move on.
            fabric_.park(d);
            continue;
        }
        Tick edge = clocks_[di].nextEdge();
        if (fabric_.bound(d) > edge) {
            // Proven-idle edges: consume them without stepping, then
            // re-key on the first edge at or after the wake time. The
            // skip refuses to cross a pending period change's landing
            // edge (jitter can deliver it below the wake bound); no
            // progress means this very edge is the landing — fall
            // through and deliver it with a real step, so the epoch
            // bump broadcasts.
            advanceClockWhileBelow(d, fabric_.bound(d));
            Tick ne = clocks_[di].nextEdge();
            if (ne != edge) {
                fabric_.setKey(d, ne);
                continue;
            }
        }
        if (obs::tracing())
            obs::Tracer::instance().domainStep(d, edge,
                                               clocks_[di].period());
        Tick raw = domains_[d]->step(edge);
        // The step's bound extrapolated the pre-advance grid; if this
        // domain's own period change lands on the consumed edge, every
        // such memo is stale — re-derive at the next edge (waking
        // early is a wasted no-op step, never a divergence).
        Tick w = advanceClock(d) ? 0 : domains_[d]->clampBound(raw);
        fabric_.setBound(d, w);
        if (w == kTickMax)
            fabric_.park(d);
        else
            fabric_.setKey(d, std::max(clocks_[di].nextEdge(), w));

        int c = d / kNumDomains;
        if (!done[static_cast<size_t>(c)] &&
            *cores[c].progress >= cores[c].target) {
            // Halt the finished core: park all its domains. A
            // coherence invalidation may still re-arm one — the
            // head check above re-parks it without stepping.
            done[static_cast<size_t>(c)] = true;
            --active;
            for (int k = c * kNumDomains; k < (c + 1) * kNumDomains;
                 ++k) {
                fabric_.park(k);
            }
        }

        if (++steps >= 8'000'000) {
            std::uint64_t progress = totalProgress(cores, ncores);
            GALS_ASSERT(progress != last_progress,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(edge),
                        static_cast<unsigned long long>(progress));
            steps = 0;
            last_progress = progress;
        }
    }
}

void
DomainScheduler::stepGroupUntil(GroupRun &g, const CoreProgress *cores,
                                Tick horizon, ChipSyncState *sync,
                                int worker)
{
    auto publish = [&](std::uint64_t v) {
        sync->fronts[static_cast<size_t>(worker)].v.store(
            v, std::memory_order_release);
    };
    auto groupProgress = [&]() {
        std::uint64_t sum = 0;
        for (int mi = 0; mi < g.nmembers; ++mi)
            sum += *cores[g.members[static_cast<size_t>(mi)]].progress;
        return sum;
    };

    while (g.active > 0) {
        // Group head: earliest calendar key over the live members'
        // domains, lowest global index on ties (ascending scan with
        // strict <) — the reference order restricted to this group.
        int d = -1;
        Tick best = kTickMax;
        for (int mi = 0; mi < g.nmembers; ++mi) {
            if (g.done[static_cast<size_t>(mi)])
                continue;
            int c = g.members[static_cast<size_t>(mi)];
            for (int k = c * kNumDomains; k < (c + 1) * kNumDomains;
                 ++k) {
                Tick key = fabric_.key(k);
                if (key < best) {
                    best = key;
                    d = k;
                }
            }
        }
        // The front is the promise "no step of my cores below this
        // point remains"; publish it before acting on the head, so
        // other workers' gates release exactly when the global order
        // allows them to.
        publish(ChipSyncState::pack(best, d < 0 ? 0 : d));
        if (d < 0 || best >= horizon) {
            // All live members parked (a deferred cross-core wake at
            // the barrier may re-arm them — the driver panics if
            // none is queued), or the window is exhausted.
            return;
        }

        size_t di = static_cast<size_t>(d);
        Tick edge = clocks_[di].nextEdge();
        if (fabric_.bound(d) > edge) {
            advanceClockWhileBelow(d, fabric_.bound(d));
            Tick ne = clocks_[di].nextEdge();
            if (ne != edge) {
                fabric_.setKey(d, ne);
                continue;
            }
            // No progress: a pending period change lands on this
            // very edge — deliver it with a real step (see runEvent).
        }
        if (obs::tracing())
            obs::Tracer::instance().domainStep(d, edge,
                                               clocks_[di].period());
        Tick raw = domains_[d]->step(edge);
        Tick w = advanceClock(d) ? 0 : domains_[d]->clampBound(raw);
        fabric_.setBound(d, w);
        if (w == kTickMax)
            fabric_.park(d);
        else
            fabric_.setKey(d, std::max(clocks_[di].nextEdge(), w));

        int c = d / kNumDomains;
        for (int mi = 0; mi < g.nmembers; ++mi) {
            if (g.members[static_cast<size_t>(mi)] != c)
                continue;
            if (!g.done[static_cast<size_t>(mi)] &&
                *cores[c].progress >= cores[c].target) {
                g.done[static_cast<size_t>(mi)] = true;
                --g.active;
                for (int k = c * kNumDomains;
                     k < (c + 1) * kNumDomains; ++k) {
                    fabric_.park(k);
                }
            }
            break;
        }

        if (++g.steps >= 8'000'000) {
            std::uint64_t progress = groupProgress();
            GALS_ASSERT(progress != g.last_progress,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(edge),
                        static_cast<unsigned long long>(progress));
            g.steps = 0;
            g.last_progress = progress;
        }
    }
    publish(ChipSyncState::kDone);
}

void
DomainScheduler::runEvent(const std::uint64_t &progress,
                          std::uint64_t target)
{
    CoreProgress one{&progress, target};
    runEvent(&one, 1);
}

void
DomainScheduler::runReference(const std::uint64_t &progress,
                              std::uint64_t target)
{
    CoreProgress one{&progress, target};
    runReference(&one, 1);
}

} // namespace gals
