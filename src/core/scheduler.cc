#include "core/scheduler.hh"

#include "common/logging.hh"

namespace gals
{

DomainScheduler::DomainScheduler(Domain *const *domains, Clock *clocks,
                                 int count, WakeHub &hub,
                                 EpochBumpPort &epochs)
    : domains_(domains), clocks_(clocks), count_(count), hub_(hub),
      epochs_(epochs)
{
    GALS_ASSERT(count >= 1 && count <= kMaxSchedDomains,
                "DomainScheduler domain count out of range");
}

bool
DomainScheduler::advanceClock(int d)
{
    Clock &c = clocks_[static_cast<size_t>(d)];
    if (!c.changePending()) {
        c.advance();
        return false;
    }
    Tick landing = c.nextEdge();
    std::uint64_t before = c.periodChanges();
    c.advance();
    if (c.periodChanges() == before)
        return false;
    epochs_.broadcast(d, landing);
    return true;
}

void
DomainScheduler::advanceClockWhileBelow(int d, Tick t)
{
    Clock &c = clocks_[static_cast<size_t>(d)];
    std::uint64_t before = c.periodChanges();
    c.advanceWhileBelow(t);
    // A pending period change can never land inside a proven-idle
    // skip: every schedule bound is clamped to changeDue, so the
    // landing edge is always delivered by a real step.
    GALS_ASSERT(c.periodChanges() == before,
                "period change landed inside a proven-idle skip");
}

void
DomainScheduler::runReference(const std::uint64_t &progress,
                              std::uint64_t target)
{
    hub_.setEventMode(false);
    std::uint64_t steps = 0;
    std::uint64_t last_progress = progress;
    while (progress < target) {
        int d = 0;
        Tick best = clocks_[0].nextEdge();
        for (int i = 1; i < count_; ++i) {
            Tick e = clocks_[static_cast<size_t>(i)].nextEdge();
            if (e < best) {
                best = e;
                d = i;
            }
        }
        domains_[d]->step(best);
        advanceClock(d);

        if (++steps >= 8'000'000) {
            GALS_ASSERT(progress != last_progress,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(best),
                        static_cast<unsigned long long>(progress));
            steps = 0;
            last_progress = progress;
        }
    }
}

void
DomainScheduler::runEvent(const std::uint64_t &progress,
                          std::uint64_t target)
{
    hub_.setEventMode(true);
    hub_.beginEventRun();

    std::uint64_t steps = 0;
    std::uint64_t last_progress = progress;
    while (progress < target) {
        int d = hub_.head();
        size_t di = static_cast<size_t>(d);
        GALS_ASSERT(hub_.key(d) != kTickMax,
                    "event kernel: every domain parked at "
                    "committed=%llu (missing wakeup port)",
                    static_cast<unsigned long long>(progress));
        Tick edge = clocks_[di].nextEdge();
        if (hub_.bound(d) > edge) {
            // Proven-idle edges: consume them without stepping, then
            // re-key on the first edge at or after the wake time.
            advanceClockWhileBelow(d, hub_.bound(d));
            hub_.setKey(d, clocks_[di].nextEdge());
            continue;
        }
        Tick raw = domains_[d]->step(edge);
        // The step's bound extrapolated the pre-advance grid; if this
        // domain's own period change lands on the consumed edge, every
        // such memo is stale — re-derive at the next edge (waking
        // early is a wasted no-op step, never a divergence).
        Tick w = advanceClock(d) ? 0 : domains_[d]->clampBound(raw);
        hub_.setBound(d, w);
        if (w == kTickMax)
            hub_.park(d);
        else
            hub_.setKey(d, std::max(clocks_[di].nextEdge(), w));

        if (++steps >= 8'000'000) {
            GALS_ASSERT(progress != last_progress,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(edge),
                        static_cast<unsigned long long>(progress));
            steps = 0;
            last_progress = progress;
        }
    }
}

} // namespace gals
