#include "core/issue_cluster.hh"

#include "core/ports.hh"
#include "core/reconfig.hh"

namespace gals
{

IssueCluster::IssueCluster(DomainId id, const MachineConfig &cfg,
                           CoreTiming &timing, Rob &rob,
                           RegisterFiles &regs, const int &cur_index)
    : Domain(id, timing), cfg_(cfg), rob_(rob), regs_(regs),
      cur_index_(cur_index),
      structure_(id == DomainId::Integer ? Structure::IntIssueQueue
                                         : Structure::FpIssueQueue),
      iq_(kIssueQueueSizes[cur_index]),
      qctl_(id == DomainId::FloatingPoint)
{
    fu_.alus = id == DomainId::Integer ? cfg.int_alus : cfg.fp_alus;
    iq_.initWaiterIndex(cfg.phys_int_regs, cfg.phys_fp_regs);
}

void
IssueCluster::wire(CorePorts &ports, ReconfigUnit &reconfig)
{
    disp_ = id_ == DomainId::Integer ? &ports.disp_int
                                     : &ports.disp_fp;
    completion_ = &ports.completion;
    redirect_ = &ports.redirect;
    agen_ = &ports.agen;
    reconfig_ = &reconfig;
}

Tick
IssueCluster::step(Tick now)
{
    if (pending_->active)
        reconfig_->applyPending(id_, now);

    const DomainId dom = id_;
    Tick period = timing_.clock(dom).period();

    // Dispatch arrivals enter the ready ring as unevaluated
    // candidates; their sources are folded in the select walk below,
    // at this very edge — exactly where the reference scan first
    // evaluates them. The port wakes rename when a pop drained a
    // previously full FIFO.
    disp_->consume(now, [&](size_t idx) {
        if (iq_.full())
            return false;
        InFlightOp &op = rob_[idx];
        op.issue_eligible = now;
        op.in_queue = true;
        std::int32_t id = iq_.alloc();
        IqSlot &slot = iq_.slot(id);
        slot.rob_idx = static_cast<std::uint32_t>(idx);
        slot.cls = op.uop.cls;
        slot.is_mem = op.is_mem;
        slot.mispredict = op.mispredict;
        slot.psrc1 = op.psrc1;
        slot.psrc2 = op.psrc2;
        slot.pdst = op.pdst;
        slot.seq = op.seq;
        slot.issue_eligible = now;
        iq_.pushCandidate(id, true);
        return true;
    });

    // A landed period change staled every memoized ready time: timed
    // and ready slots re-fold at this edge (chained waiters keep
    // their lazily epoch-tagged memos, as the reference scan does).
    if (iq_epoch_ != timing_.epoch()) {
        iq_.invalidateTimes();
        iq_epoch_ = timing_.epoch();
    }
    iq_.promoteDue(now);
    if (!iq_.hasCandidates())
        return wakeBound();

    fu_.newCycle();
    int issued = 0;
    // Select walks the ready ring oldest-first, so issue order, the
    // width cutoff and FU allocation match the reference scan's
    // age-ordered walk exactly. Ops waking mid-walk (a completion
    // this edge) are consumers of the issuing op and therefore
    // younger: they join the ring past the walk position and are
    // handed out after every older candidate, in age order.
    iq_.walkCandidates([&](std::int32_t id) {
        if (issued >= cfg_.issue_width)
            return IssueQueue::CandAction::Stop;
        IqSlot &slot = iq_.slot(id);
        if (slot.needs_eval) {
            slot.needs_eval = false;
            bool pending_src = false;
            Tick ready_at = slot.issue_eligible;
            auto fold = [&](PhysRef ref, size_t si) {
                if (ref.index < 0)
                    return;
                if (slot.src_vis[si] != kTickMax &&
                    slot.src_vis_epoch[si] == timing_.epoch()) {
                    if (slot.src_vis[si] > ready_at)
                        ready_at = slot.src_vis[si];
                    return;
                }
                const PhysRegState &s = regs_.state(ref);
                if (s.pending) {
                    // Producer not issued: completion time is
                    // unknowable. Park on the register's waiter
                    // chain; its completion pushes the slot back
                    // onto the ready ring.
                    pending_src = true;
                    iq_.addWaiter(ref, id, static_cast<int>(si));
                    return;
                }
                Tick v = timing_.visibleAt(s.ready_at, s.producer,
                                           dom);
                slot.src_vis[si] = v;
                slot.src_vis_epoch[si] = timing_.epoch();
                if (v > ready_at)
                    ready_at = v;
            };
            fold(slot.psrc1, 0);
            fold(slot.psrc2, 1);
            if (pending_src) {
                // Parked on the waiter chains.
                return IssueQueue::CandAction::Drop;
            }
            slot.ready_at = ready_at;
            if (ready_at > now) {
                iq_.pushTimed(id); // exact future ready time.
                return IssueQueue::CandAction::Drop;
            }
        }
        // Ready now: attempt issue. Memory ops in the integer queue
        // are address-generation uops: one ALU cycle, then the LSQ
        // takes over.
        bool agen = slot.is_mem;
        OpClass fu_cls = agen ? OpClass::IntAlu : slot.cls;
        Tick complete =
            now + static_cast<Tick>(opLatency(fu_cls)) * period;
        if (!fu_.claim(fu_cls, now, complete)) {
            // Structural stall: stays ready in place, retried every
            // edge; select keeps walking younger candidates.
            return IssueQueue::CandAction::Keep;
        }
        InFlightOp &op = rob_[slot.rob_idx];
        op.issued = true;
        op.in_queue = false;
        if (agen) {
            // Hand off to the load/store unit: the port records the
            // agen completion, clears the LSQ entry's agen wait in
            // place, and wakes the load/store domain.
            agen_->agenIssued(op, complete, now);
        } else {
            op.complete_at = complete;
            completion_->complete(slot.pdst, complete, dom,
                                  slot.rob_idx, now);
        }
        if (slot.cls == OpClass::Branch && slot.mispredict) {
            redirect_->resolve(complete, dom, now);
        }
        iq_.freeSlot(id);
        ++issued;
        return IssueQueue::CandAction::Drop;
    });
    return wakeBound();
}

Tick
IssueCluster::wakeBound() const
{
    Tick w = kTickMax;
    if (iq_.size() != 0) {
        // The ready list partitions the queue by what each op is
        // provably waiting for: candidates need this domain's next
        // edge, timed slots an exact future tick, chained waiters a
        // completion (the completion port's chain walk wakes us), and
        // a stale epoch a rebuild at the next edge.
        if (iq_.hasCandidates() || iq_epoch_ != timing_.epoch())
            return 0;
        w = std::min(w, iq_.minTimed());
    }
    if (!disp_->empty())
        w = std::min(w, disp_->frontVisibleAt());
    return w;
}

void
IssueCluster::control(const IlpSample &sample, Tick now,
                      std::uint64_t committed)
{
    QueueDecision d = qctl_.decide(sample);
    int cur = cur_index_;
    bool passes =
        d.best_index != cur &&
        d.score[static_cast<size_t>(d.best_index)] >
            d.score[static_cast<size_t>(cur)] *
                (1.0 + cfg_.queue_hysteresis);
    int prop = passes ? d.best_index : cur;
    if (damper_.vote(prop, cur, cfg_.queue_persistence))
        reconfig_->request(structure_, prop, now, committed);
}

} // namespace gals
