#include "core/processor.hh"

#include <algorithm>

#include "clock/synchronizer.hh"
#include "common/logging.hh"
#include "control/cache_controller.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

/** Per-domain clocks for the configured machine. */
std::array<Clock, 4>
makeClocks(const MachineConfig &cfg)
{
    auto make = [&](DomainId d) {
        Tick period =
            periodPsFromGHz(cfg.domainFreqGHz(d, cfg.adaptive));
        double jitter = cfg.mode == ClockingMode::MCD
                            ? cfg.jitter_sigma_ps : 0.0;
        // Stagger MCD first edges so domains do not start artificially
        // aligned; synchronous domains share one grid.
        int idx = static_cast<int>(d);
        Tick first = cfg.mode == ClockingMode::MCD
                         ? period + (period * static_cast<Tick>(idx)) / 5
                         : period;
        return Clock(period, first, jitter,
                     cfg.seed + 0x9e37 * static_cast<Tick>(idx));
    };
    return {make(DomainId::FrontEnd), make(DomainId::Integer),
            make(DomainId::FloatingPoint), make(DomainId::LoadStore)};
}

} // namespace

Processor::Processor(const MachineConfig &config,
                     const WorkloadParams &wl)
    : cfg_(config), wl_params_(wl), workload_(wl),
      cur_cfg_(config.adaptive),
      same_domain_(config.mode == ClockingMode::Synchronous),
      clocks_(makeClocks(config)),
      memory_(kMemFirstChunkNs, kMemNextChunkNs, 64, 8),
      regs_(config.phys_int_regs, config.phys_fp_regs),
      rob_(config.rob_entries),
      iq_int_(kIssueQueueSizes[config.adaptive.iq_int]),
      iq_fp_(kIssueQueueSizes[config.adaptive.iq_fp]),
      lsq_(config.lsq_entries),
      store_buffer_(config.store_buffer_entries),
      mshr_busy_(static_cast<size_t>(config.mshrs), 0),
      fetch_queue_(static_cast<size_t>(
          config.fetch_queue_entries +
          config.decode_width * config.feDepth())),
      // The dispatch FIFOs model both the synchronizer queue and the
      // dispatch pipe stages, so their capacity covers the pipe
      // occupancy at full decode width.
      disp_int_(static_cast<size_t>(
          config.dispatch_fifo_entries +
          config.decode_width * config.dispatchDepth())),
      disp_fp_(static_cast<size_t>(
          config.dispatch_fifo_entries +
          config.decode_width * config.dispatchDepth())),
      disp_ls_(static_cast<size_t>(
          config.dispatch_fifo_entries +
          config.decode_width * config.lsDispatchDepth())),
      qctl_int_(false), qctl_fp_(true)
{
    fu_int_.alus = cfg_.int_alus;
    fu_fp_.alus = cfg_.fp_alus;
    for (int d = 0; d < kNumDomains; ++d) {
        plls_[static_cast<size_t>(d)] =
            Pll(cfg_.pll, cfg_.seed + 31 * static_cast<unsigned>(d));
    }
    buildCaches();
    if (wl_params_.warmup_instrs == 0) {
        measuring_ = true;
        snapshotBaselines(0);
    }
}

void
Processor::buildCaches()
{
    if (cfg_.mode == ClockingMode::MCD) {
        const ICacheConfig &ic = icacheConfig(cur_cfg_.icache);
        l1i_ = std::make_unique<AccountingCache>("l1i", 64 * KB, 4);
        l1i_->setPartition(ic.org.assoc, cfg_.phase_adaptive);
        predictor_ = std::make_unique<HybridPredictor>(ic.predictor);

        const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
        l1d_ = std::make_unique<AccountingCache>("l1d", 256 * KB, 8);
        l1d_->setPartition(dc.l1_adapt.assoc, cfg_.phase_adaptive);
        l2_ = std::make_unique<AccountingCache>("l2", 2048 * KB, 8);
        l2_->setPartition(dc.l2_adapt.assoc, cfg_.phase_adaptive);
    } else {
        const OptICacheConfig &ic = optICacheConfig(cfg_.sync_icache_opt);
        l1i_ = std::make_unique<AccountingCache>(
            "l1i", ic.org.size_bytes, ic.org.assoc);
        l1i_->setPartition(ic.org.assoc, false);
        predictor_ = std::make_unique<HybridPredictor>(ic.predictor);

        const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
        l1d_ = std::make_unique<AccountingCache>(
            "l1d", dc.l1_opt.size_bytes, dc.l1_opt.assoc);
        l1d_->setPartition(dc.l1_opt.assoc, false);
        l2_ = std::make_unique<AccountingCache>(
            "l2", dc.l2_opt.size_bytes, dc.l2_opt.assoc);
        l2_->setPartition(dc.l2_opt.assoc, false);
    }
}

// ---------------------------------------------------------------------
// Timing helpers.
// ---------------------------------------------------------------------

Tick
Processor::visibleAt(Tick produced, DomainId prod, DomainId cons) const
{
    if (produced == 0)
        return 0;
    if (same_domain_ || prod == cons) {
        // Bypass within one clock: usable at the first edge at or
        // after production (with the same anti-wobble margin the
        // synchronizer applies; see clock/synchronizer.cc).
        Tick edge = clock(cons).nextEdgeAfter(produced - 1);
        Tick margin = clock(cons).period() / 4;
        return edge - std::min(margin, edge);
    }
    return syncVisibleAt(produced, clock(prod), clock(cons), false);
}

bool
Processor::refVisible(PhysRef ref, DomainId dom, Tick now) const
{
    if (ref.index < 0)
        return true;
    const PhysRegState &s = regs_.state(ref);
    if (s.pending)
        return false;
    return visibleAt(s.ready_at, s.producer, dom) <= now;
}

bool
Processor::sourcesVisible(const InFlightOp &op, DomainId dom,
                          Tick now) const
{
    return refVisible(op.psrc1, dom, now) &&
           refVisible(op.psrc2, dom, now);
}

// ---------------------------------------------------------------------
// Front end.
// ---------------------------------------------------------------------

Tick
Processor::icacheMissTime(Tick now)
{
    // The unified L2 lives in the load/store domain: request and
    // response each cross a synchronizer.
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick ls_period = clock(DomainId::LoadStore).period();
    Tick t_req = syncVisibleAt(now, clock(DomainId::FrontEnd),
                               clock(DomainId::LoadStore),
                               same_domain_);
    AccessOutcome out = l2_->access(staged_op_->pc);
    Tick served;
    switch (out.where) {
      case HitWhere::APartition:
        served = t_req + static_cast<Tick>(dc.l2_a_lat) * ls_period;
        break;
      case HitWhere::BPartition:
        served = t_req + static_cast<Tick>(dc.l2_a_lat + dc.l2_b_lat) *
                             ls_period;
        break;
      default: {
        int probe = dc.l2_a_lat +
                    (l2_->bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat
                                                        : 0);
        served = memory_.issueFill(
            t_req + static_cast<Tick>(probe) * ls_period);
        break;
      }
    }
    return syncVisibleAt(served, clock(DomainId::LoadStore),
                         clock(DomainId::FrontEnd), same_domain_);
}

void
Processor::doFetch(Tick now)
{
    if (fetch_halted_) {
        if (now < fetch_resume_)
            return;
        fetch_halted_ = false;
    }

    Tick fe_period = clock(DomainId::FrontEnd).period();
    int a_lat;
    int b_lat;
    if (cfg_.mode == ClockingMode::MCD) {
        const ICacheConfig &ic = icacheConfig(cur_cfg_.icache);
        a_lat = ic.a_lat;
        b_lat = ic.b_lat;
    } else {
        a_lat = 2;
        b_lat = -1;
    }

    int line_bytes = l1i_->lineBytes();
    int fetched = 0;
    while (fetched < cfg_.fetch_width && fetch_queue_.canPush()) {
        if (!staged_op_)
            staged_op_ = workload_.next();
        Addr line = staged_op_->pc / static_cast<unsigned>(line_bytes);

        if (line == cur_fetch_line_) {
            if (fetch_line_ready_ > now)
                break;
        } else {
            bool sequential = line == cur_fetch_line_ + 1;
            AccessOutcome out = l1i_->access(staged_op_->pc);
            Tick ready;
            switch (out.where) {
              case HitWhere::APartition:
                ready = sequential
                            ? now
                            : now + static_cast<Tick>(a_lat - 1) *
                                        fe_period;
                break;
              case HitWhere::BPartition:
                ready = now + static_cast<Tick>(a_lat + b_lat) *
                                  fe_period;
                break;
              default:
                ready = icacheMissTime(now);
                break;
            }
            cur_fetch_line_ = line;
            fetch_line_ready_ = ready;
            if (ready > now)
                break;
        }

        FetchedOp f;
        f.uop = *staged_op_;
        staged_op_.reset();
        bool is_branch = f.uop.cls == OpClass::Branch;
        if (is_branch) {
            f.pred = predictor_->predict(f.uop.pc);
            predictor_->update(f.uop.pc, f.pred, f.uop.taken);
            f.mispredict = f.pred.taken != f.uop.taken;
        }
        fetch_queue_.push(
            f, now + static_cast<Tick>(cfg_.feDepth()) * fe_period);
        ++fetched;

        if (is_branch) {
            if (f.mispredict) {
                // Halt fetch until the branch resolves in the integer
                // domain; resume time is set at issue.
                fetch_halted_ = true;
                fetch_resume_ = kTickMax;
                ++flushes_;
                break;
            }
            if (f.uop.taken)
                break; // taken-branch redirect ends the fetch group.
        }
    }
}

void
Processor::doRename(Tick now)
{
    auto srcRef = [&](std::int8_t logical) -> PhysRef {
        if (logical < 0)
            return PhysRef{-1, false};
        if (logical == kZeroReg)
            return PhysRef{-1, false};
        if (logical == kFirstFpReg)
            return PhysRef{-1, true};
        return regs_.lookup(logical);
    };

    int renamed = 0;
    while (renamed < cfg_.decode_width && fetch_queue_.frontReady(now)) {
        FetchedOp &f = fetch_queue_.front();
        OpClass cls = f.uop.cls;
        DomainId dom = execDomain(cls);

        if (rob_.full())
            break;
        bool needs_dst = f.uop.dst >= 0;
        bool dst_fp = needs_dst && f.uop.dst >= kFirstFpReg;
        if (needs_dst && !regs_.canAlloc(dst_fp))
            break;
        bool is_mem = isMemOp(cls);
        if (is_mem && lsq_.full())
            break;
        // Memory ops dispatch twice: an address-generation uop into
        // the integer queue (which therefore gates memory
        // parallelism, as in the 21264) and the access itself into
        // the LSQ.
        SyncFifo<size_t> &fifo =
            dom == DomainId::Integer || is_mem
                ? disp_int_
                : dom == DomainId::FloatingPoint ? disp_fp_ : disp_ls_;
        if (!fifo.canPush())
            break;
        if (is_mem && !disp_ls_.canPush())
            break;

        size_t idx = rob_.alloc();
        InFlightOp &op = rob_[idx];
        op = InFlightOp{};
        op.uop = f.uop;
        op.seq = next_seq_++;
        op.domain = dom;
        op.is_mem = is_mem;
        op.pred = f.pred;
        op.mispredict = f.mispredict;
        op.psrc1 = srcRef(f.uop.src1);
        op.psrc2 = srcRef(f.uop.src2);
        if (needs_dst) {
            auto [fresh, old] = regs_.renameDest(f.uop.dst);
            op.pdst = fresh;
            op.old_pdst = old;
            regs_.markPending(fresh);
        }
        if (is_mem) {
            lsq_.allocate(idx, cls == OpClass::Store,
                          f.uop.mem_addr /
                              static_cast<unsigned>(l1d_->lineBytes()));
        }

        if (cfg_.phase_adaptive) {
            ilp_tracker_.onRename(f.uop);
            if (ilp_tracker_.sampleReady())
                controlQueues(now);
        }

        // The op becomes issue-eligible after the synchronizer plus
        // the dispatch pipe of the target domain (7/9 integer cycles;
        // this is the "+integer" half of the mispredict penalty).
        DomainId q_dom = is_mem ? DomainId::Integer : dom;
        Tick visible =
            syncVisibleAt(now, clock(DomainId::FrontEnd),
                          clock(q_dom), same_domain_) +
            static_cast<Tick>(cfg_.dispatchDepth()) *
                clock(q_dom).period();
        fifo.push(idx, visible);
        if (is_mem) {
            Tick ls_visible =
                syncVisibleAt(now, clock(DomainId::FrontEnd),
                              clock(DomainId::LoadStore),
                              same_domain_) +
                static_cast<Tick>(cfg_.lsDispatchDepth()) *
                    clock(DomainId::LoadStore).period();
            disp_ls_.push(idx, ls_visible);
        }
        fetch_queue_.pop();
        ++renamed;
    }
}

void
Processor::doRetire(Tick now)
{
    const std::uint64_t stop_at =
        wl_params_.warmup_instrs + wl_params_.sim_instrs;
    int retired = 0;
    while (retired < cfg_.retire_width && !rob_.empty() &&
           committed_ < stop_at) {
        InFlightOp &op = rob_[rob_.headIndex()];

        if (op.uop.cls == OpClass::Store) {
            if (!op.store_ready)
                break;
            if (store_buffer_.full())
                break;
            store_buffer_.push(
                op.uop.mem_addr /
                    static_cast<unsigned>(l1d_->lineBytes()),
                now);
            lsq_.popFront();
        } else {
            if (!op.completed())
                break;
            if (visibleAt(op.complete_at, op.domain,
                          DomainId::FrontEnd) > now) {
                break;
            }
            if (op.is_mem)
                lsq_.popFront();
        }

        regs_.release(op.old_pdst);
        rob_.retireHead();
        ++committed_;
        last_commit_time_ = now;
        ++retired;

        if (!measuring_ && committed_ >= wl_params_.warmup_instrs) {
            measuring_ = true;
            measure_start_ = now;
            measure_committed_base_ = committed_;
            snapshotBaselines(now);
        }
        if (measuring_) {
            ++stats_.icache_residency[static_cast<size_t>(
                cur_cfg_.icache)];
            ++stats_.dcache_residency[static_cast<size_t>(
                cur_cfg_.dcache)];
            ++stats_.iq_int_residency[static_cast<size_t>(
                cur_cfg_.iq_int)];
            ++stats_.iq_fp_residency[static_cast<size_t>(
                cur_cfg_.iq_fp)];
        }

        if (cfg_.phase_adaptive &&
            ++interval_commits_ >= cfg_.cache_interval_instrs) {
            interval_commits_ = 0;
            controlCaches(now);
        }
    }
}

// ---------------------------------------------------------------------
// Integer / floating-point domains.
// ---------------------------------------------------------------------

void
Processor::stepIssueDomain(DomainId dom, Tick now)
{
    applyPending(dom, now);

    IssueQueue &iq =
        dom == DomainId::Integer ? iq_int_ : iq_fp_;
    SyncFifo<size_t> &fifo =
        dom == DomainId::Integer ? disp_int_ : disp_fp_;
    FuPool &fu = dom == DomainId::Integer ? fu_int_ : fu_fp_;
    Tick period = clock(dom).period();

    while (fifo.frontReady(now) && !iq.full()) {
        size_t idx = fifo.front();
        fifo.pop();
        InFlightOp &op = rob_[idx];
        op.issue_eligible = now;
        op.in_queue = true;
        iq.push(idx);
    }

    fu.newCycle();
    int issued = 0;
    auto &entries = iq.entries();
    for (size_t i = 0;
         i < entries.size() && issued < cfg_.issue_width;) {
        InFlightOp &op = rob_[entries[i]];
        bool ready = op.issue_eligible <= now &&
                     sourcesVisible(op, dom, now);
        if (ready) {
            // Memory ops in the integer queue are address-generation
            // uops: one ALU cycle, then the LSQ takes over.
            bool agen = op.is_mem;
            OpClass fu_cls = agen ? OpClass::IntAlu : op.uop.cls;
            Tick complete =
                now + static_cast<Tick>(opLatency(fu_cls)) * period;
            if (fu.claim(fu_cls, now, complete)) {
                op.issued = true;
                op.in_queue = false;
                if (agen) {
                    op.agen_done = complete;
                } else {
                    op.complete_at = complete;
                    regs_.complete(op.pdst, complete, dom);
                }
                if (op.uop.cls == OpClass::Branch && op.mispredict) {
                    fetch_resume_ = visibleAt(complete, dom,
                                              DomainId::FrontEnd);
                }
                entries.erase(entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
                ++issued;
                continue;
            }
        }
        ++i;
    }
}

// ---------------------------------------------------------------------
// Load/store domain.
// ---------------------------------------------------------------------

Tick
Processor::dataHierarchyTime(Addr addr, Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick period = clock(DomainId::LoadStore).period();
    bool b_on = l1d_->bEnabled();

    AccessOutcome l1 = l1d_->access(addr);
    if (l1.where == HitWhere::APartition)
        return now + static_cast<Tick>(dc.l1_a_lat) * period;
    if (l1.where == HitWhere::BPartition) {
        return now +
               static_cast<Tick>(dc.l1_a_lat + dc.l1_b_lat) * period;
    }

    Tick probe = static_cast<Tick>(
        dc.l1_a_lat + (b_on && dc.l1_b_lat > 0 ? dc.l1_b_lat : 0));
    AccessOutcome l2 = l2_->access(addr);
    if (l2.where == HitWhere::APartition) {
        return now + (probe + static_cast<Tick>(dc.l2_a_lat)) * period;
    }
    if (l2.where == HitWhere::BPartition) {
        return now + (probe + static_cast<Tick>(dc.l2_a_lat +
                                                dc.l2_b_lat)) *
                         period;
    }
    Tick l2_probe = static_cast<Tick>(
        dc.l2_a_lat +
        (l2_->bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat : 0));
    Tick issue_at = now + (probe + l2_probe) * period;
    Tick done = memory_.issueFill(issue_at);

    // Claim the MSHR slot the caller verified was free.
    for (Tick &slot : mshr_busy_) {
        if (slot <= now) {
            slot = done;
            return done;
        }
    }
    panic("dataHierarchyTime without a free MSHR");
}

bool
Processor::tryStartLoad(LsqEntry &entry, Tick now, int &ports_used)
{
    InFlightOp &op = rob_[entry.rob_idx];
    if (op.agen_done == kTickMax ||
        visibleAt(op.agen_done, DomainId::Integer,
                  DomainId::LoadStore) > now) {
        return false;
    }

    // Memory disambiguation against older stores (exact, since all
    // addresses are known at rename).
    bool forward = false;
    for (const LsqEntry &older : lsq_.entries()) {
        if (&older == &entry)
            break;
        if (older.is_store && older.line_addr == entry.line_addr) {
            if (rob_[older.rob_idx].store_ready)
                forward = true; // youngest ready older store wins.
            else
                return false;   // wait for the store's data.
        }
    }
    if (!forward && store_buffer_.hasLine(entry.line_addr))
        forward = true;

    Tick done;
    if (forward) {
        done = now + clock(DomainId::LoadStore).period();
    } else {
        // Conservatively require a free MSHR before starting an
        // access that might miss.
        bool mshr_free = false;
        for (Tick slot : mshr_busy_) {
            if (slot <= now) {
                mshr_free = true;
                break;
            }
        }
        if (!mshr_free)
            return false;
        done = dataHierarchyTime(op.uop.mem_addr, now);
    }

    entry.issued = true;
    op.complete_at = done;
    regs_.complete(op.pdst, done, DomainId::LoadStore);
    ++ports_used;
    return true;
}

void
Processor::drainStoreBuffer(Tick now, int &ports_used, int max_ports)
{
    while (ports_used < max_ports && !store_buffer_.empty()) {
        StoreWrite &w = store_buffer_.front();
        if (w.ready_at > now)
            break;
        bool mshr_free = false;
        for (Tick slot : mshr_busy_) {
            if (slot <= now) {
                mshr_free = true;
                break;
            }
        }
        if (!mshr_free)
            break;
        dataHierarchyTime(w.line_addr *
                              static_cast<unsigned>(l1d_->lineBytes()),
                          now);
        store_buffer_.pop();
        ++ports_used;
    }
}

void
Processor::stepLoadStore(Tick now)
{
    applyPending(DomainId::LoadStore, now);

    while (disp_ls_.frontReady(now)) {
        disp_ls_.pop();
        lsq_.markArrived(now);
    }

    // Stores become ready once their address-generation uop (which
    // also captures the data register) completes and its result
    // crosses into this domain; the ROB then retires them into the
    // store buffer.
    for (LsqEntry &e : lsq_.entries()) {
        if (!e.is_store)
            continue;
        InFlightOp &op = rob_[e.rob_idx];
        if (!op.store_ready && e.arrived_at <= now &&
            op.agen_done != kTickMax &&
            visibleAt(op.agen_done, DomainId::Integer,
                      DomainId::LoadStore) <= now) {
            op.store_ready = true;
            op.complete_at = now;
        }
    }

    int ports_used = 0;
    // When the store buffer is nearly full it blocks retirement; give
    // it one port first.
    bool sb_pressure =
        store_buffer_.size() + 1 >= store_buffer_.capacity();
    if (sb_pressure)
        drainStoreBuffer(now, ports_used, 1);

    for (LsqEntry &e : lsq_.entries()) {
        if (ports_used >= cfg_.mem_ports)
            break;
        if (e.is_store || e.issued || e.arrived_at > now)
            continue;
        tryStartLoad(e, now, ports_used);
    }

    drainStoreBuffer(now, ports_used, cfg_.mem_ports);
}

// ---------------------------------------------------------------------
// Phase-adaptive control.
// ---------------------------------------------------------------------

DomainId
Processor::domainOf(Structure s) const
{
    switch (s) {
      case Structure::ICache:        return DomainId::FrontEnd;
      case Structure::DCachePair:    return DomainId::LoadStore;
      case Structure::IntIssueQueue: return DomainId::Integer;
      case Structure::FpIssueQueue:  return DomainId::FloatingPoint;
    }
    panic("bad structure");
}

int
Processor::currentIndexOf(Structure s) const
{
    switch (s) {
      case Structure::ICache:        return cur_cfg_.icache;
      case Structure::DCachePair:    return cur_cfg_.dcache;
      case Structure::IntIssueQueue: return cur_cfg_.iq_int;
      case Structure::FpIssueQueue:  return cur_cfg_.iq_fp;
    }
    panic("bad structure");
}

void
Processor::applyStructure(Structure s, int target, Tick)
{
    switch (s) {
      case Structure::ICache:
        cur_cfg_.icache = target;
        l1i_->setPartition(icacheConfig(target).org.assoc,
                           cfg_.phase_adaptive);
        predictor_->reconfigure(icacheConfig(target).predictor);
        break;
      case Structure::DCachePair: {
        cur_cfg_.dcache = target;
        const DCachePairConfig &dc = dcachePairConfig(target);
        l1d_->setPartition(dc.l1_adapt.assoc, cfg_.phase_adaptive);
        l2_->setPartition(dc.l2_adapt.assoc, cfg_.phase_adaptive);
        break;
      }
      case Structure::IntIssueQueue:
        cur_cfg_.iq_int = target;
        iq_int_.setCapacity(kIssueQueueSizes[target]);
        break;
      case Structure::FpIssueQueue:
        cur_cfg_.iq_fp = target;
        iq_fp_.setCapacity(kIssueQueueSizes[target]);
        break;
    }
}

void
Processor::requestConfig(Structure s, int target, Tick now)
{
    int cur = currentIndexOf(s);
    if (target == cur)
        return;
    DomainId d = domainOf(s);
    Pll &pll = plls_[static_cast<size_t>(d)];
    if (pll.busy(now) || pending_[static_cast<size_t>(d)].active)
        return;

    AdaptiveConfig probe = cur_cfg_;
    switch (s) {
      case Structure::ICache:        probe.icache = target; break;
      case Structure::DCachePair:    probe.dcache = target; break;
      case Structure::IntIssueQueue: probe.iq_int = target; break;
      case Structure::FpIssueQueue:  probe.iq_fp = target; break;
    }
    double f_new = cfg_.domainFreqGHz(d, probe);
    double f_old = clock(d).freqGHz();

    Tick lock_done = pll.startRelock(now);
    clock(d).setPeriod(periodPsFromGHz(f_new), lock_done);
    trace_.record(committed_, s, cur, target);

    if (f_new >= f_old) {
        // Speeding up: run the simpler configuration through the
        // lock window (downsize at the start of the change).
        applyStructure(s, target, now);
    } else {
        // Slowing down: upsize only once the slower clock is locked.
        pending_[static_cast<size_t>(d)] =
            PendingApply{true, s, target, lock_done};
    }
}

void
Processor::applyPending(DomainId d, Tick now)
{
    PendingApply &p = pending_[static_cast<size_t>(d)];
    if (p.active && now >= p.apply_at) {
        applyStructure(p.structure, p.target, now);
        p.active = false;
    }
}

void
Processor::controlCaches(Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick fe_period = clock(DomainId::FrontEnd).period();
    Tick ls_period = clock(DomainId::LoadStore).period();

    Tick i_miss_extra =
        2 * fe_period + static_cast<Tick>(dc.l2_a_lat) * ls_period;
    CacheDecision di = chooseICache(l1i_->interval(), i_miss_extra);
    CacheDecision dd = chooseDCachePair(
        l1d_->interval(), l2_->interval(), memoryLineFillPs());
    l1i_->resetInterval();
    l1d_->resetInterval();
    l2_->resetInterval();

    auto clearlyBetter = [&](const CacheDecision &d, int cur,
                             double hysteresis) {
        double best =
            static_cast<double>(d.cost_ps[static_cast<size_t>(
                d.best_index)]);
        double cur_cost = static_cast<double>(
            d.cost_ps[static_cast<size_t>(cur)]);
        return best < cur_cost * (1.0 - hysteresis);
    };
    int prop_i =
        clearlyBetter(di, cur_cfg_.icache, cfg_.icache_hysteresis)
            ? di.best_index
            : cur_cfg_.icache;
    if (damp_icache_.vote(prop_i, cur_cfg_.icache,
                          cfg_.cache_persistence)) {
        requestConfig(Structure::ICache, prop_i, now);
    }
    int prop_d =
        clearlyBetter(dd, cur_cfg_.dcache, cfg_.cache_hysteresis)
            ? dd.best_index
            : cur_cfg_.dcache;
    if (damp_dcache_.vote(prop_d, cur_cfg_.dcache,
                          cfg_.cache_persistence)) {
        requestConfig(Structure::DCachePair, prop_d, now);
    }
}

void
Processor::controlQueues(Tick now)
{
    IlpSample sample = ilp_tracker_.takeSample();

    auto propose = [&](const QueueDecision &d, int cur) {
        bool passes =
            d.best_index != cur &&
            d.score[static_cast<size_t>(d.best_index)] >
                d.score[static_cast<size_t>(cur)] *
                    (1.0 + cfg_.queue_hysteresis);
        return passes ? d.best_index : cur;
    };

    QueueDecision di = qctl_int_.decide(sample);
    int prop_i = propose(di, cur_cfg_.iq_int);
    if (damp_iq_int_.vote(prop_i, cur_cfg_.iq_int,
                          cfg_.queue_persistence)) {
        requestConfig(Structure::IntIssueQueue, prop_i, now);
    }

    QueueDecision df = qctl_fp_.decide(sample);
    int prop_f = propose(df, cur_cfg_.iq_fp);
    if (damp_iq_fp_.vote(prop_f, cur_cfg_.iq_fp,
                         cfg_.queue_persistence)) {
        requestConfig(Structure::FpIssueQueue, prop_f, now);
    }
}

// ---------------------------------------------------------------------
// Run loop and statistics.
// ---------------------------------------------------------------------

void
Processor::stepDomain(int d, Tick now)
{
    switch (static_cast<DomainId>(d)) {
      case DomainId::FrontEnd:
        applyPending(DomainId::FrontEnd, now);
        doRetire(now);
        doRename(now);
        doFetch(now);
        break;
      case DomainId::Integer:
        stepIssueDomain(DomainId::Integer, now);
        break;
      case DomainId::FloatingPoint:
        stepIssueDomain(DomainId::FloatingPoint, now);
        break;
      case DomainId::LoadStore:
        stepLoadStore(now);
        break;
      default:
        panic("bad domain %d", d);
    }
}

void
Processor::snapshotBaselines(Tick)
{
    base_.l1i_acc = l1i_->totalAccesses();
    base_.l1i_miss = l1i_->totalMisses();
    base_.l1i_b = l1i_->totalBHits();
    base_.l1d_acc = l1d_->totalAccesses();
    base_.l1d_miss = l1d_->totalMisses();
    base_.l1d_b = l1d_->totalBHits();
    base_.l2_acc = l2_->totalAccesses();
    base_.l2_miss = l2_->totalMisses();
    base_.l2_b = l2_->totalBHits();
    base_.bp_lookups = predictor_->lookups();
    base_.bp_miss = predictor_->mispredicts();
    base_.flushes = flushes_;
    std::uint64_t relocks = 0;
    for (const Pll &p : plls_)
        relocks += p.relocks();
    base_.relocks = relocks;
}

void
Processor::finalizeStats(RunStats &stats) const
{
    stats.benchmark = wl_params_.name;
    stats.config =
        cfg_.mode == ClockingMode::Synchronous
            ? csprintf("sync(%s,D%d,Qi%d,Qf%d)",
                       optICacheConfig(cfg_.sync_icache_opt).name
                           .c_str(),
                       cfg_.adaptive.dcache, cfg_.adaptive.iq_int,
                       cfg_.adaptive.iq_fp)
            : csprintf("%s(%s)",
                       cfg_.phase_adaptive ? "phase" : "mcd",
                       cfg_.adaptive.str().c_str());

    stats.committed = committed_ - measure_committed_base_;
    stats.time_ps = last_commit_time_ - measure_start_;

    stats.l1i_accesses = l1i_->totalAccesses() - base_.l1i_acc;
    stats.l1i_misses = l1i_->totalMisses() - base_.l1i_miss;
    stats.l1i_b_hits = l1i_->totalBHits() - base_.l1i_b;
    stats.l1d_accesses = l1d_->totalAccesses() - base_.l1d_acc;
    stats.l1d_misses = l1d_->totalMisses() - base_.l1d_miss;
    stats.l1d_b_hits = l1d_->totalBHits() - base_.l1d_b;
    stats.l2_accesses = l2_->totalAccesses() - base_.l2_acc;
    stats.l2_misses = l2_->totalMisses() - base_.l2_miss;
    stats.l2_b_hits = l2_->totalBHits() - base_.l2_b;
    stats.branches = predictor_->lookups() - base_.bp_lookups;
    stats.mispredicts = predictor_->mispredicts() - base_.bp_miss;
    stats.flushes = flushes_ - base_.flushes;
    std::uint64_t relocks = 0;
    for (const Pll &p : plls_)
        relocks += p.relocks();
    stats.relocks = relocks - base_.relocks;
    stats.trace = trace_;
}

RunStats
Processor::run()
{
    const std::uint64_t target =
        wl_params_.warmup_instrs + wl_params_.sim_instrs;

    std::uint64_t steps = 0;
    std::uint64_t last_committed = committed_;
    while (committed_ < target) {
        int d = 0;
        Tick best = clocks_[0].nextEdge();
        for (int i = 1; i < kNumDomains; ++i) {
            Tick e = clocks_[static_cast<size_t>(i)].nextEdge();
            if (e < best) {
                best = e;
                d = i;
            }
        }
        stepDomain(d, best);
        clocks_[static_cast<size_t>(d)].advance();

        if (++steps >= 8'000'000) {
            GALS_ASSERT(committed_ != last_committed,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(best),
                        static_cast<unsigned long long>(committed_));
            steps = 0;
            last_committed = committed_;
        }
    }

    finalizeStats(stats_);
    return stats_;
}

} // namespace gals
