#include "core/processor.hh"

#include <cstdlib>
#include <cstring>

#include "obs/trace.hh"

namespace gals
{

Processor::Kernel
Processor::kernelFromEnv()
{
    if (const char *env = std::getenv("GALS_KERNEL")) {
        if (std::strcmp(env, "reference") == 0)
            return Kernel::Reference;
    }
    return Kernel::EventDriven;
}

Processor::Processor(const MachineConfig &config,
                     const WorkloadParams &wl)
    : clocks_(makeCoreClocks(config, 0)),
      fabric_(clocks_.data(), kNumDomains),
      core_(config, wl, fabric_, clocks_.data(), 0),
      domain_table_{core_.domainUnit(0), core_.domainUnit(1),
                    core_.domainUnit(2), core_.domainUnit(3)},
      epoch_table_{&core_.epochPort(), &core_.epochPort(),
                   &core_.epochPort(), &core_.epochPort()},
      scheduler_(domain_table_.data(), clocks_.data(), kNumDomains,
                 fabric_, epoch_table_.data()),
      kernel_(kernelFromEnv())
{}

RunStats
Processor::run()
{
    obs::ensureInitFromEnv();
    const bool traced = obs::Tracer::instance().beginRun("processor", 1);
    if (kernel_ == Kernel::Reference) {
        scheduler_.runReference(core_.committedRef(),
                                core_.targetInstrs());
    } else {
        scheduler_.runEvent(core_.committedRef(),
                            core_.targetInstrs());
    }
    if (traced)
        obs::Tracer::instance().endRun();
    return core_.collectStats();
}

} // namespace gals
