#include "core/processor.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "clock/synchronizer.hh"
#include "common/logging.hh"
#include "control/cache_controller.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

/** Per-domain clocks for the configured machine. */
std::array<Clock, 4>
makeClocks(const MachineConfig &cfg)
{
    auto make = [&](DomainId d) {
        Tick period =
            periodPsFromGHz(cfg.domainFreqGHz(d, cfg.adaptive));
        double jitter = cfg.mode == ClockingMode::MCD
                            ? cfg.jitter_sigma_ps : 0.0;
        // Stagger MCD first edges so domains do not start artificially
        // aligned; synchronous domains share one grid.
        int idx = static_cast<int>(d);
        Tick first = cfg.mode == ClockingMode::MCD
                         ? period + (period * static_cast<Tick>(idx)) / 5
                         : period;
        return Clock(period, first, jitter,
                     cfg.seed + 0x9e37 * static_cast<Tick>(idx));
    };
    return {make(DomainId::FrontEnd), make(DomainId::Integer),
            make(DomainId::FloatingPoint), make(DomainId::LoadStore)};
}

} // namespace

Processor::Processor(const MachineConfig &config,
                     const WorkloadParams &wl)
    : cfg_(config), wl_params_(wl), workload_(wl),
      cur_cfg_(config.adaptive),
      same_domain_(config.mode == ClockingMode::Synchronous),
      clocks_(makeClocks(config)),
      memory_(kMemFirstChunkNs, kMemNextChunkNs, 64, 8),
      regs_(config.phys_int_regs, config.phys_fp_regs),
      rob_(config.rob_entries),
      iq_int_(kIssueQueueSizes[config.adaptive.iq_int]),
      iq_fp_(kIssueQueueSizes[config.adaptive.iq_fp]),
      lsq_(config.lsq_entries),
      store_buffer_(config.store_buffer_entries),
      mshr_busy_(static_cast<size_t>(config.mshrs), 0),
      fetch_queue_(static_cast<size_t>(
          config.fetch_queue_entries +
          config.decode_width * config.feDepth())),
      // The dispatch FIFOs model both the synchronizer queue and the
      // dispatch pipe stages, so their capacity covers the pipe
      // occupancy at full decode width.
      disp_int_(static_cast<size_t>(
          config.dispatch_fifo_entries +
          config.decode_width * config.dispatchDepth())),
      disp_fp_(static_cast<size_t>(
          config.dispatch_fifo_entries +
          config.decode_width * config.dispatchDepth())),
      disp_ls_(static_cast<size_t>(
          config.dispatch_fifo_entries +
          config.decode_width * config.lsDispatchDepth())),
      qctl_int_(false), qctl_fp_(true)
{
    fu_int_.alus = cfg_.int_alus;
    fu_fp_.alus = cfg_.fp_alus;
    iq_int_.initWaiterIndex(cfg_.phys_int_regs, cfg_.phys_fp_regs);
    iq_fp_.initWaiterIndex(cfg_.phys_int_regs, cfg_.phys_fp_regs);
    for (int d = 0; d < kNumDomains; ++d) {
        plls_[static_cast<size_t>(d)] =
            Pll(cfg_.pll, cfg_.seed + 31 * static_cast<unsigned>(d));
    }
    buildCaches();
    if (const char *env = std::getenv("GALS_KERNEL")) {
        if (std::strcmp(env, "reference") == 0)
            kernel_ = Kernel::Reference;
    }
    if (wl_params_.warmup_instrs == 0) {
        measuring_ = true;
        snapshotBaselines(0);
    }
}

void
Processor::buildCaches()
{
    if (cfg_.mode == ClockingMode::MCD) {
        const ICacheConfig &ic = icacheConfig(cur_cfg_.icache);
        l1i_ = std::make_unique<AccountingCache>("l1i", 64 * KB, 4);
        l1i_->setPartition(ic.org.assoc, cfg_.phase_adaptive);
        predictor_ = std::make_unique<HybridPredictor>(ic.predictor);
        fetch_a_lat_ = ic.a_lat;
        fetch_b_lat_ = ic.b_lat;

        const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
        l1d_ = std::make_unique<AccountingCache>("l1d", 256 * KB, 8);
        l1d_->setPartition(dc.l1_adapt.assoc, cfg_.phase_adaptive);
        l2_ = std::make_unique<AccountingCache>("l2", 2048 * KB, 8);
        l2_->setPartition(dc.l2_adapt.assoc, cfg_.phase_adaptive);
    } else {
        const OptICacheConfig &ic = optICacheConfig(cfg_.sync_icache_opt);
        l1i_ = std::make_unique<AccountingCache>(
            "l1i", ic.org.size_bytes, ic.org.assoc);
        l1i_->setPartition(ic.org.assoc, false);
        predictor_ = std::make_unique<HybridPredictor>(ic.predictor);

        const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
        l1d_ = std::make_unique<AccountingCache>(
            "l1d", dc.l1_opt.size_bytes, dc.l1_opt.assoc);
        l1d_->setPartition(dc.l1_opt.assoc, false);
        l2_ = std::make_unique<AccountingCache>(
            "l2", dc.l2_opt.size_bytes, dc.l2_opt.assoc);
        l2_->setPartition(dc.l2_opt.assoc, false);
    }
}

// ---------------------------------------------------------------------
// Timing helpers.
// ---------------------------------------------------------------------

Tick
Processor::visibleAt(Tick produced, DomainId prod, DomainId cons) const
{
    if (produced == 0)
        return 0;
    if (same_domain_ || prod == cons) {
        // Bypass within one clock: usable at the first edge at or
        // after production (with the same anti-wobble margin the
        // synchronizer applies; see clock/synchronizer.cc).
        return bypassVisibleAt(produced, clock(cons));
    }
    return syncVisibleAt(produced, clock(prod), clock(cons), false);
}

// ---------------------------------------------------------------------
// Front end.
// ---------------------------------------------------------------------

Tick
Processor::icacheMissTime(Tick now)
{
    // The unified L2 lives in the load/store domain: request and
    // response each cross a synchronizer.
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick ls_period = clock(DomainId::LoadStore).period();
    Tick t_req = syncVisibleAt(now, clock(DomainId::FrontEnd),
                               clock(DomainId::LoadStore),
                               same_domain_);
    AccessOutcome out = l2_->access(staged_op_->pc);
    Tick served;
    switch (out.where) {
      case HitWhere::APartition:
        served = t_req + static_cast<Tick>(dc.l2_a_lat) * ls_period;
        break;
      case HitWhere::BPartition:
        served = t_req + static_cast<Tick>(dc.l2_a_lat + dc.l2_b_lat) *
                             ls_period;
        break;
      default: {
        int probe = dc.l2_a_lat +
                    (l2_->bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat
                                                        : 0);
        served = memory_.issueFill(
            t_req + static_cast<Tick>(probe) * ls_period);
        break;
      }
    }
    // The ready time below extrapolates the front-end grid from this
    // serve time; keep the serve time so a PLL re-lock landing while
    // the fill is in flight can recompute the extrapolation.
    fetch_line_fill_done_ = served;
    return syncVisibleAt(served, clock(DomainId::LoadStore),
                         clock(DomainId::FrontEnd), same_domain_);
}

void
Processor::doFetch(Tick now)
{
    if (fetch_halted_) {
        // The resume tick extrapolates the resolving branch's
        // completion across the grid; a re-lock landing while the
        // halt is pending moves that grid, so recompute on epoch
        // mismatch (only while still pending: past production times
        // must not be re-extrapolated, see docs/kernel.md).
        if (fetch_resume_ != kTickMax && fetch_resume_ > now &&
            fetch_resume_epoch_ != clock_epoch_) {
            fetch_resume_ = visibleAt(fetch_resume_src_,
                                      fetch_resume_dom_,
                                      DomainId::FrontEnd);
            fetch_resume_epoch_ = clock_epoch_;
        }
        if (now < fetch_resume_) {
            // kTickMax while unresolved: the issue hook wakes us.
            feNote(fetch_resume_);
            return;
        }
        fetch_halted_ = false;
    }

    Tick fe_period = clock(DomainId::FrontEnd).period();
    int a_lat = fetch_a_lat_;
    int b_lat = fetch_b_lat_;

    int line_shift = l1i_->lineShift();
    Tick fe_ready =
        now + static_cast<Tick>(cfg_.feDepth()) * fe_period;
    // Whole-group bound, hoisted once: the queue only drains through
    // rename, which ran earlier this step.
    int space = static_cast<int>(
        std::min(static_cast<size_t>(cfg_.fetch_width),
                 fetch_queue_.freeOps()));
    int fetched = 0;
    while (fetched < space) {
        if (!staged_op_)
            staged_op_ = workload_.next();
        Addr line = staged_op_->pc >> line_shift;

        if (line == cur_fetch_line_) {
            if (fetch_line_ready_ > now && fetch_line_is_fill_ &&
                fetch_line_epoch_ != clock_epoch_) {
                // Mid-fill re-lock: the ready time extrapolated a
                // grid that has since moved; recompute it from the
                // stored serve time.
                fetch_line_ready_ = syncVisibleAt(
                    fetch_line_fill_done_,
                    clock(DomainId::LoadStore),
                    clock(DomainId::FrontEnd), same_domain_);
                fetch_line_epoch_ = clock_epoch_;
            }
            if (fetch_line_ready_ > now) {
                feNote(fetch_line_ready_); // I-cache line fill gate.
                break;
            }
        } else {
            bool sequential = line == cur_fetch_line_ + 1;
            AccessOutcome out = l1i_->access(staged_op_->pc);
            Tick ready;
            bool is_fill = false;
            switch (out.where) {
              case HitWhere::APartition:
                ready = sequential
                            ? now
                            : now + static_cast<Tick>(a_lat - 1) *
                                        fe_period;
                break;
              case HitWhere::BPartition:
                ready = now + static_cast<Tick>(a_lat + b_lat) *
                                  fe_period;
                break;
              default:
                ready = icacheMissTime(now);
                is_fill = true;
                break;
            }
            cur_fetch_line_ = line;
            fetch_line_ready_ = ready;
            fetch_line_is_fill_ = is_fill;
            fetch_line_epoch_ = clock_epoch_;
            if (ready > now) {
                feNote(ready); // line fill / slow-hit gate.
                break;
            }
        }

        FetchedOp f;
        f.uop = *staged_op_;
        staged_op_.reset();
        OpClass cls = f.uop.cls;
        f.dom = execDomain(cls);
        f.is_mem = isMemOp(cls);
        f.needs_dst = f.uop.dst >= 0;
        f.dst_fp = f.needs_dst && f.uop.dst >= kFirstFpReg;
        bool is_branch = cls == OpClass::Branch;
        if (is_branch) {
            f.pred = predictor_->predict(f.uop.pc);
            predictor_->update(f.uop.pc, f.pred, f.uop.taken);
            f.mispredict = f.pred.taken != f.uop.taken;
        }
        fetch_queue_.push(f, fe_ready);
        ++fetched;

        if (is_branch) {
            if (f.mispredict) {
                // Halt fetch until the branch resolves in the integer
                // domain; resume time is set at issue.
                fetch_halted_ = true;
                fetch_resume_ = kTickMax;
                fetch_resume_src_ = kTickMax;
                ++flushes_;
                return; // the resolution hook wakes the front end.
            }
            if (f.uop.taken) {
                // Taken-branch redirect ends the fetch group; the
                // next group starts at the next edge.
                feNote(0);
                return;
            }
        }
    }
    if (fetched == space && fetch_queue_.canPush()) {
        // Width-limited with queue space left: fetch continues at the
        // very next edge. (A full queue instead drains via rename,
        // whose own gates are already recorded.)
        feNote(0);
    }
}

void
Processor::doRename(Tick now)
{
    // Whole-group sizing: one walk over the (few) queued groups gives
    // the consumable prefix, so the loop below runs without per-op
    // visibility checks. One op beyond the decode width is enough to
    // distinguish "width-limited" from "drained everything visible".
    size_t avail = fetch_queue_.visibleOps(
        now, static_cast<size_t>(cfg_.decode_width) + 1);
    if (avail == 0)
        return;

    // The synchronizer crossing time from the front end is the same
    // for every op renamed at this edge; compute it once per target
    // domain (indices 0..2 = Integer, FloatingPoint, LoadStore).
    Tick cross[3];
    bool cross_valid[3] = {false, false, false};
    auto crossingTo = [&](DomainId dd, Tick now_) -> Tick {
        size_t k = static_cast<size_t>(dd) - 1;
        if (!cross_valid[k]) {
            cross[k] = syncVisibleAt(now_, clock(DomainId::FrontEnd),
                                     clock(dd), same_domain_);
            cross_valid[k] = true;
        }
        return cross[k];
    };

    auto srcRef = [&](std::int8_t logical) -> PhysRef {
        if (logical < 0)
            return PhysRef{-1, false};
        if (logical == kZeroReg)
            return PhysRef{-1, false};
        if (logical == kFirstFpReg)
            return PhysRef{-1, true};
        return regs_.lookup(logical);
    };

    // Flattened resource bounds, hoisted once per group: nothing
    // outside this loop consumes ROB/LSQ/register/FIFO space during
    // the call, so local countdowns replace the per-op structure
    // queries.
    int rob_free = static_cast<int>(rob_.freeSlots());
    int lsq_free = static_cast<int>(lsq_.freeSlots());
    int free_int = regs_.freeIntRegs();
    int free_fp = regs_.freeFpRegs();
    int fifo_free[3] = {static_cast<int>(disp_int_.freeSlots()),
                        static_cast<int>(disp_fp_.freeSlots()),
                        static_cast<int>(disp_ls_.freeSlots())};

    const int budget = static_cast<int>(
        std::min(static_cast<size_t>(cfg_.decode_width), avail));
    int renamed = 0;
    while (renamed < budget) {
        FetchedOp &f = fetch_queue_.front();
        const DomainId dom = f.dom;
        const bool is_mem = f.is_mem;

        if (rob_free == 0)
            break;
        if (f.needs_dst && (f.dst_fp ? free_fp : free_int) == 0)
            break;
        if (is_mem && lsq_free == 0)
            break;
        // Memory ops dispatch twice: an address-generation uop into
        // the integer queue (which therefore gates memory
        // parallelism, as in the 21264) and the access itself into
        // the LSQ.
        const size_t qi =
            dom == DomainId::Integer || is_mem
                ? 0u
                : dom == DomainId::FloatingPoint ? 1u : 2u;
        if (fifo_free[qi] == 0)
            break;
        if (is_mem && fifo_free[2] == 0)
            break;

        size_t idx = rob_.alloc();
        --rob_free;
        InFlightOp &op = rob_[idx];
        op = InFlightOp{};
        op.uop = f.uop;
        op.seq = next_seq_++;
        op.domain = dom;
        op.is_mem = is_mem;
        op.pred = f.pred;
        op.mispredict = f.mispredict;
        op.psrc1 = srcRef(f.uop.src1);
        op.psrc2 = srcRef(f.uop.src2);
        if (f.needs_dst) {
            auto [fresh, old] = regs_.renameDest(f.uop.dst);
            op.pdst = fresh;
            op.old_pdst = old;
            regs_.markPending(fresh);
            --(f.dst_fp ? free_fp : free_int);
        }
        if (is_mem) {
            op.lsq_id =
                lsq_.allocate(idx, f.uop.cls == OpClass::Store,
                              f.uop.mem_addr >> l1d_->lineShift());
            --lsq_free;
        }

        if (cfg_.phase_adaptive) {
            ilp_tracker_.onRename(f.uop);
            if (ilp_tracker_.sampleReady())
                controlQueues(now);
        }

        // The op becomes issue-eligible after the synchronizer plus
        // the dispatch pipe of the target domain (7/9 integer cycles;
        // this is the "+integer" half of the mispredict penalty).
        DomainId q_dom = is_mem ? DomainId::Integer : dom;
        Tick visible =
            crossingTo(q_dom, now) +
            static_cast<Tick>(cfg_.dispatchDepth()) *
                clock(q_dom).period();
        SyncFifo<size_t> &fifo =
            qi == 0 ? disp_int_ : qi == 1 ? disp_fp_ : disp_ls_;
        fifo.push(idx, visible);
        --fifo_free[qi];
        wakeDomain(q_dom, visible);
        if (is_mem) {
            Tick ls_visible =
                crossingTo(DomainId::LoadStore, now) +
                static_cast<Tick>(cfg_.lsDispatchDepth()) *
                    clock(DomainId::LoadStore).period();
            disp_ls_.push(idx, ls_visible);
            --fifo_free[2];
            wakeDomain(DomainId::LoadStore, ls_visible);
        }
        fetch_queue_.pop();
        ++renamed;
    }
    if (renamed == budget && avail > static_cast<size_t>(budget)) {
        // Width-limited with more visible ops queued: rename
        // continues at the very next edge. (Structural breaks are
        // covered by the retire and consumer-pop hooks; an invisible
        // head group is covered by the group-boundary gate in
        // stepFrontEnd.)
        feNote(0);
    }
}

void
Processor::doRetire(Tick now)
{
    const std::uint64_t stop_at =
        wl_params_.warmup_instrs + wl_params_.sim_instrs;
    // Nothing to retire and no accounting to update: keep the
    // no-progress front-end edge (the common case) cheap.
    if (rob_.empty() || committed_ >= stop_at)
        return;
    std::uint64_t budget =
        static_cast<std::uint64_t>(cfg_.retire_width);
    std::uint64_t retired_total = 0;

    // Residency statistics are batched per run of retirements under
    // one live configuration: one set of increments per group instead
    // of four counter updates per op. The batch flushes before any
    // control decision that can change the configuration.
    std::uint32_t run = 0;
    auto flushResidency = [&]() {
        if (run == 0)
            return;
        stats_.icache_residency[static_cast<size_t>(cur_cfg_.icache)] +=
            run;
        stats_.dcache_residency[static_cast<size_t>(cur_cfg_.dcache)] +=
            run;
        stats_.iq_int_residency[static_cast<size_t>(cur_cfg_.iq_int)] +=
            run;
        stats_.iq_fp_residency[static_cast<size_t>(cur_cfg_.iq_fp)] +=
            run;
        run = 0;
    };

    // Group-granular retire: bounds that are constant across a run of
    // retirements — width budget, window end, the measurement-start
    // boundary and the control-interval boundary — are hoisted into
    // one chunk size, so the per-op loop checks only the real
    // head gates (completion, visibility, store-buffer space).
    const int d_shift = l1d_->lineShift();
    int sb_free = static_cast<int>(store_buffer_.freeSlots());
    bool sb_pushed = false;

    while (committed_ < stop_at && budget != 0) {
        std::uint64_t chunk =
            std::min(budget, stop_at - committed_);
        if (!measuring_) {
            chunk = std::min(
                chunk, wl_params_.warmup_instrs - committed_);
        }
        if (cfg_.phase_adaptive) {
            chunk = std::min(chunk, cfg_.cache_interval_instrs -
                                        interval_commits_);
        }

        std::uint64_t done = 0;
        while (done < chunk) {
            if (rob_.empty())
                break;
            InFlightOp &op = rob_[rob_.headIndex()];

            if (op.uop.cls == OpClass::Store) {
                if (!op.store_ready)
                    break; // store-ready hook wakes the front end.
                if (sb_free == 0)
                    break; // the store-buffer pop hook wakes us.
                store_buffer_.push(op.uop.mem_addr >> d_shift, now);
                --sb_free;
                sb_pushed = true;
                lsq_.popFront();
                ls_events_ += 2; // SB push + store left the LSQ.
            } else {
                if (!op.completed())
                    break; // completion hook wakes the front end.
                if (op.fe_vis == kTickMax ||
                    op.fe_vis_epoch != clock_epoch_) {
                    op.fe_vis = visibleAt(op.complete_at, op.domain,
                                          DomainId::FrontEnd);
                    op.fe_vis_epoch = clock_epoch_;
                }
                if (op.fe_vis > now) {
                    feNote(op.fe_vis); // exact visibility gate.
                    break;
                }
                if (op.is_mem)
                    lsq_.popFront();
            }

            regs_.release(op.old_pdst);
            rob_.retireHead();
            ++done;
        }

        committed_ += done;
        budget -= done;
        retired_total += done;
        if (measuring_)
            run += static_cast<std::uint32_t>(done);
        if (cfg_.phase_adaptive)
            interval_commits_ += done;

        if (!measuring_ &&
            committed_ >= wl_params_.warmup_instrs) {
            measuring_ = true;
            measure_start_ = now;
            measure_committed_base_ = committed_;
            snapshotBaselines(now);
            // The boundary op retires into the measured residency
            // accounting (its commit count does not, matching the
            // reference accounting order).
            run += 1;
        }
        if (cfg_.phase_adaptive &&
            interval_commits_ >= cfg_.cache_interval_instrs) {
            interval_commits_ = 0;
            flushResidency(); // controlCaches may change the config.
            controlCaches(now);
        }

        if (done < chunk)
            break; // a head gate ended the run.
    }
    if (sb_pushed)
        wakeDomain(DomainId::LoadStore, now);
    if (budget == 0 && committed_ < stop_at && !rob_.empty()) {
        // Width-limited: the head run continues at the very next
        // edge.
        feNote(0);
    }
    flushResidency();
    if (retired_total != 0)
        last_commit_time_ = now;
}

// ---------------------------------------------------------------------
// Integer / floating-point domains.
// ---------------------------------------------------------------------

void
Processor::stepIssueDomain(DomainId dom, Tick now)
{
    applyPending(dom, now);

    IssueQueue &iq =
        dom == DomainId::Integer ? iq_int_ : iq_fp_;
    SyncFifo<size_t> &fifo =
        dom == DomainId::Integer ? disp_int_ : disp_fp_;
    FuPool &fu = dom == DomainId::Integer ? fu_int_ : fu_fp_;
    std::uint32_t &iq_epoch =
        iq_epoch_[dom == DomainId::Integer ? 0 : 1];
    Tick period = clock(dom).period();

    // Dispatch arrivals enter the ready ring as unevaluated
    // candidates; their sources are folded in the select walk below,
    // at this very edge — exactly where the reference scan first
    // evaluates them.
    bool fifo_was_full = fifo.freeSlots() == 0;
    bool transferred = false;
    while (fifo.frontReady(now) && !iq.full()) {
        size_t idx = fifo.front();
        fifo.pop();
        InFlightOp &op = rob_[idx];
        op.issue_eligible = now;
        op.in_queue = true;
        std::int32_t id = iq.alloc();
        IqSlot &slot = iq.slot(id);
        slot.rob_idx = static_cast<std::uint32_t>(idx);
        slot.cls = op.uop.cls;
        slot.is_mem = op.is_mem;
        slot.mispredict = op.mispredict;
        slot.psrc1 = op.psrc1;
        slot.psrc2 = op.psrc2;
        slot.pdst = op.pdst;
        slot.seq = op.seq;
        slot.issue_eligible = now;
        iq.pushCandidate(id, true);
        transferred = true;
    }
    if (transferred && fifo_was_full) {
        // Rename blocks only on a full dispatch FIFO; the pops above
        // made space (consumable per the publication order rule).
        wakeDomain(DomainId::FrontEnd,
                   consumableAt(dom, DomainId::FrontEnd, now));
    }

    // A landed period change staled every memoized ready time: timed
    // and ready slots re-fold at this edge (chained waiters keep
    // their lazily epoch-tagged memos, as the reference scan does).
    if (iq_epoch != clock_epoch_) {
        iq.invalidateTimes();
        iq_epoch = clock_epoch_;
    }
    iq.promoteDue(now);
    if (!iq.hasCandidates())
        return;

    fu.newCycle();
    int issued = 0;
    // Select walks the ready ring oldest-first, so issue order, the
    // width cutoff and FU allocation match the reference scan's
    // age-ordered walk exactly. Ops waking mid-walk (a completion
    // this edge) are consumers of the issuing op and therefore
    // younger: they join the ring past the walk position and are
    // handed out after every older candidate, in age order.
    iq.walkCandidates([&](std::int32_t id) {
        if (issued >= cfg_.issue_width)
            return IssueQueue::CandAction::Stop;
        IqSlot &slot = iq.slot(id);
        if (slot.needs_eval) {
            slot.needs_eval = false;
            bool pending_src = false;
            Tick ready_at = slot.issue_eligible;
            auto fold = [&](PhysRef ref, size_t si) {
                if (ref.index < 0)
                    return;
                if (slot.src_vis[si] != kTickMax &&
                    slot.src_vis_epoch[si] == clock_epoch_) {
                    if (slot.src_vis[si] > ready_at)
                        ready_at = slot.src_vis[si];
                    return;
                }
                const PhysRegState &s = regs_.state(ref);
                if (s.pending) {
                    // Producer not issued: completion time is
                    // unknowable. Park on the register's waiter
                    // chain; its completion pushes the slot back
                    // onto the ready ring.
                    pending_src = true;
                    iq.addWaiter(ref, id, static_cast<int>(si));
                    return;
                }
                Tick v = visibleAt(s.ready_at, s.producer, dom);
                slot.src_vis[si] = v;
                slot.src_vis_epoch[si] = clock_epoch_;
                if (v > ready_at)
                    ready_at = v;
            };
            fold(slot.psrc1, 0);
            fold(slot.psrc2, 1);
            if (pending_src) {
                // Parked on the waiter chains.
                return IssueQueue::CandAction::Drop;
            }
            slot.ready_at = ready_at;
            if (ready_at > now) {
                iq.pushTimed(id); // exact future ready time.
                return IssueQueue::CandAction::Drop;
            }
        }
        // Ready now: attempt issue. Memory ops in the integer queue
        // are address-generation uops: one ALU cycle, then the LSQ
        // takes over.
        bool agen = slot.is_mem;
        OpClass fu_cls = agen ? OpClass::IntAlu : slot.cls;
        Tick complete =
            now + static_cast<Tick>(opLatency(fu_cls)) * period;
        if (!fu.claim(fu_cls, now, complete)) {
            // Structural stall: stays ready in place, retried every
            // edge; select keeps walking younger candidates.
            return IssueQueue::CandAction::Keep;
        }
        InFlightOp &op = rob_[slot.rob_idx];
        op.issued = true;
        op.in_queue = false;
        if (agen) {
            op.agen_done = complete;
            ++agen_issues_;
            // Push wakeup: clear the LSQ entry's agen wait directly,
            // so the walk stops skipping exactly this entry (others
            // keep their one-compare skip).
            LsqEntry &le = lsq_.byId(op.lsq_id);
            if (le.wait_kind == 1)
                le.wait_kind = 0;
            // The LSQ may now start this op's access.
            wakeDomain(DomainId::LoadStore, now);
        } else {
            op.complete_at = complete;
            completeReg(slot.pdst, complete, dom, slot.rob_idx, now);
        }
        if (slot.cls == OpClass::Branch && slot.mispredict) {
            fetch_resume_src_ = complete;
            fetch_resume_dom_ = dom;
            fetch_resume_epoch_ = clock_epoch_;
            fetch_resume_ = visibleAt(complete, dom,
                                      DomainId::FrontEnd);
            wakeDomain(DomainId::FrontEnd,
                       std::max(fetch_resume_,
                                consumableAt(dom,
                                             DomainId::FrontEnd,
                                             now)));
        }
        iq.freeSlot(id);
        ++issued;
        return IssueQueue::CandAction::Drop;
    });
}

// ---------------------------------------------------------------------
// Load/store domain.
// ---------------------------------------------------------------------

Tick
Processor::dataHierarchyTime(Addr addr, Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick period = clock(DomainId::LoadStore).period();
    bool b_on = l1d_->bEnabled();

    AccessOutcome l1 = l1d_->access(addr);
    if (l1.where == HitWhere::APartition)
        return now + static_cast<Tick>(dc.l1_a_lat) * period;
    if (l1.where == HitWhere::BPartition) {
        return now +
               static_cast<Tick>(dc.l1_a_lat + dc.l1_b_lat) * period;
    }

    Tick probe = static_cast<Tick>(
        dc.l1_a_lat + (b_on && dc.l1_b_lat > 0 ? dc.l1_b_lat : 0));
    AccessOutcome l2 = l2_->access(addr);
    if (l2.where == HitWhere::APartition) {
        return now + (probe + static_cast<Tick>(dc.l2_a_lat)) * period;
    }
    if (l2.where == HitWhere::BPartition) {
        return now + (probe + static_cast<Tick>(dc.l2_a_lat +
                                                dc.l2_b_lat)) *
                         period;
    }
    Tick l2_probe = static_cast<Tick>(
        dc.l2_a_lat +
        (l2_->bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat : 0));
    Tick issue_at = now + (probe + l2_probe) * period;
    Tick done = memory_.issueFill(issue_at);

    // Claim the MSHR slot the caller verified was free.
    for (Tick &slot : mshr_busy_) {
        if (slot <= now) {
            slot = done;
            mshr_min_free_ = mshr_busy_[0];
            for (Tick s : mshr_busy_)
                mshr_min_free_ = std::min(mshr_min_free_, s);
            ++ls_events_;
            return done;
        }
    }
    panic("dataHierarchyTime without a free MSHR");
}

/**
 * Memoized load/store-domain visibility of an entry's address
 * generation; false while the agen uop is unissued or not yet
 * visible here.
 */
bool
Processor::agenVisible(LsqEntry &entry, const InFlightOp &op, Tick now)
{
    if (op.agen_done == kTickMax)
        return false;
    if (entry.agen_vis == kTickMax ||
        entry.agen_vis_epoch != clock_epoch_) {
        entry.agen_vis = visibleAt(op.agen_done, DomainId::Integer,
                                   DomainId::LoadStore);
        entry.agen_vis_epoch = clock_epoch_;
    }
    return entry.agen_vis <= now;
}

Processor::LoadStart
Processor::tryStartLoad(LsqEntry &entry, Tick now, int &ports_used)
{
    InFlightOp &op = rob_[entry.rob_idx];

    // Memory disambiguation against older stores (exact, since all
    // addresses are known at rename): blocked while any older
    // same-line store lacks its data; forward once all (at least one)
    // have it. The per-line index replaces the seed's scan over every
    // older queue entry.
    Lsq::OlderStores older =
        lsq_.olderStores(entry.line_addr, entry.id);
    if (older == Lsq::OlderStores::Blocked)
        return LoadStart::Blocked; // wait for the store's data.
    bool forward = older == Lsq::OlderStores::AllReady ||
                   store_buffer_.hasLine(entry.line_addr);

    Tick done;
    if (forward) {
        done = now + clock(DomainId::LoadStore).period();
    } else {
        // Conservatively require a free MSHR before starting an
        // access that might miss.
        if (mshr_min_free_ > now)
            return LoadStart::MshrBusy;
        done = dataHierarchyTime(op.uop.mem_addr, now);
    }

    entry.issued = true;
    op.complete_at = done;
    completeReg(op.pdst, done, DomainId::LoadStore, entry.rob_idx,
                now);
    ++ports_used;
    return LoadStart::Issued;
}

void
Processor::drainStoreBuffer(Tick now, int &ports_used, int max_ports)
{
    while (ports_used < max_ports && !store_buffer_.empty()) {
        StoreWrite &w = store_buffer_.front();
        if (w.ready_at > now)
            break;
        if (mshr_min_free_ > now)
            break;
        // Retirement blocks only on a *full* store buffer, so only
        // the pop that frees the first slot needs to wake the front
        // end.
        bool was_full = store_buffer_.full();
        dataHierarchyTime(w.line_addr << l1d_->lineShift(), now);
        store_buffer_.pop();
        ++ls_events_;
        ++ports_used;
        if (was_full) {
            wakeDomain(DomainId::FrontEnd,
                       consumableAt(DomainId::LoadStore,
                                    DomainId::FrontEnd, now));
        }
    }
}

void
Processor::stepLoadStore(Tick now)
{
    applyPending(DomainId::LoadStore, now);

    bool ls_fifo_was_full = disp_ls_.freeSlots() == 0;
    bool arrived_any = false;
    while (disp_ls_.frontReady(now)) {
        disp_ls_.pop();
        lsq_.markArrived(now);
        arrived_any = true;
    }
    if (arrived_any && ls_fifo_was_full) {
        // Rename blocks only on a full load/store FIFO; the pops
        // above made space (consumable per the publication order
        // rule).
        wakeDomain(DomainId::FrontEnd,
                   consumableAt(DomainId::LoadStore,
                                DomainId::FrontEnd, now));
    }

    // Walk-summary skip: every LSQ entry's blocking condition was
    // recorded by the last full walk. If none can have moved, only
    // the post-commit store buffer may still drain.
    if (!arrived_any && !ls_sum_.must_walk && now < ls_sum_.min_time &&
        ls_sum_.agen_snap == agen_issues_ &&
        ls_sum_.ev_snap == ls_events_ &&
        ls_sum_.epoch_snap == clock_epoch_) {
        if (!store_buffer_.empty() &&
            store_buffer_.frontReadyAt() <= now &&
            mshr_min_free_ <= now) {
            int ports = 0;
            drainStoreBuffer(now, ports, cfg_.mem_ports);
        }
        return;
    }
    bool need_every_edge = false;
    Tick min_time = kTickMax;

    // Stores become ready once their address-generation uop (which
    // also captures the data register) completes and its result
    // crosses into this domain; the ROB then retires them into the
    // store buffer. Only stores still waiting for data are walked
    // (their ids compacted in place, like the waiting loads).
    {
        auto &pending = lsq_.pendingStores();
        size_t keep = 0;
        const size_t n = pending.size();
        for (size_t i = 0; i < n; ++i) {
            std::uint64_t id = pending[i];
            LsqEntry &e = lsq_.byId(id);
            if (e.wait_kind == 1) {
                pending[keep++] = id; // agen still not issued.
                continue;
            }
            e.wait_kind = 0;
            InFlightOp &op = rob_[e.rob_idx];
            if (op.agen_done == kTickMax) {
                e.wait_kind = 1; // cleared by the agen issue itself.
                pending[keep++] = id;
                continue;
            }
            if (e.arrived_at <= now && agenVisible(e, op, now)) {
                op.store_ready = true;
                op.complete_at = now;
                e.data_ready = true; // leaves the pending walk.
                ++ls_events_;
                // Retire blocks only on the ROB head; a younger
                // store becoming ready cannot unblock the front end.
                // The head becomes retirable *at this very tick*,
                // which the front end may first consume at its next
                // edge (publication order rule).
                if (e.rob_idx == rob_.headIndex()) {
                    wakeDomain(DomainId::FrontEnd,
                               consumableAt(DomainId::LoadStore,
                                            DomainId::FrontEnd,
                                            now));
                }
                continue;
            }
            if (e.arrived_at <= now) {
                // Waiting on a known agen-visibility time (an
                // unarrived entry resets the walk via the arrival
                // flag instead).
                min_time = std::min(min_time, e.agen_vis);
            }
            pending[keep++] = id;
        }
        pending.resize(keep);
    }

    int ports_used = 0;
    // When the store buffer is nearly full it blocks retirement; give
    // it one port first.
    bool sb_pressure =
        store_buffer_.size() + 1 >= store_buffer_.capacity();
    if (sb_pressure)
        drainStoreBuffer(now, ports_used, 1);

    // Load issue walks only the not-yet-issued loads, oldest first.
    // Each blocked load carries why it is blocked, so the walk skips
    // it with a compare until the blocking condition can have moved.
    {
        auto &loads = lsq_.waitingLoads();
        size_t keep = 0;
        const size_t n = loads.size();
        for (size_t i = 0; i < n; ++i) {
            std::uint64_t id = loads[i];
            if (ports_used >= cfg_.mem_ports) {
                need_every_edge = true; // unevaluated loads remain.
                loads[keep++] = id;
                continue;
            }
            LsqEntry &e = lsq_.byId(id);
            if (e.wait_kind == 1) {
                loads[keep++] = id; // agen still not issued.
                continue;
            }
            if (e.wait_kind == 2 && e.wait_snap == ls_events_ &&
                now < e.wait_until) {
                min_time = std::min(min_time, e.wait_until);
                loads[keep++] = id; // same stores, same busy MSHRs.
                continue;
            }
            e.wait_kind = 0;
            if (e.arrived_at > now) {
                loads[keep++] = id; // arrival resets the walk.
                continue;
            }
            InFlightOp &op = rob_[e.rob_idx];
            if (op.agen_done == kTickMax) {
                e.wait_kind = 1; // cleared by the agen issue itself.
                loads[keep++] = id;
                continue;
            }
            if (!agenVisible(e, op, now)) {
                min_time = std::min(min_time, e.agen_vis);
                loads[keep++] = id; // pure time wait: one compare.
                continue;
            }
            std::uint32_t snap = ls_events_;
            LoadStart r = tryStartLoad(e, now, ports_used);
            if (r == LoadStart::Issued)
                continue;
            e.wait_kind = 2;
            e.wait_snap = snap;
            e.wait_until =
                r == LoadStart::MshrBusy ? mshr_min_free_ : kTickMax;
            if (r == LoadStart::MshrBusy)
                min_time = std::min(min_time, e.wait_until);
            loads[keep++] = id;
        }
        loads.resize(keep);
    }

    drainStoreBuffer(now, ports_used, cfg_.mem_ports);

    ls_sum_.must_walk = need_every_edge;
    ls_sum_.min_time = min_time;
    ls_sum_.agen_snap = agen_issues_;
    ls_sum_.ev_snap = ls_events_;
    ls_sum_.epoch_snap = clock_epoch_;
}

// ---------------------------------------------------------------------
// Phase-adaptive control.
// ---------------------------------------------------------------------

DomainId
Processor::domainOf(Structure s) const
{
    switch (s) {
      case Structure::ICache:        return DomainId::FrontEnd;
      case Structure::DCachePair:    return DomainId::LoadStore;
      case Structure::IntIssueQueue: return DomainId::Integer;
      case Structure::FpIssueQueue:  return DomainId::FloatingPoint;
    }
    panic("bad structure");
}

int
Processor::currentIndexOf(Structure s) const
{
    switch (s) {
      case Structure::ICache:        return cur_cfg_.icache;
      case Structure::DCachePair:    return cur_cfg_.dcache;
      case Structure::IntIssueQueue: return cur_cfg_.iq_int;
      case Structure::FpIssueQueue:  return cur_cfg_.iq_fp;
    }
    panic("bad structure");
}

void
Processor::applyStructure(Structure s, int target, Tick)
{
    switch (s) {
      case Structure::ICache:
        cur_cfg_.icache = target;
        l1i_->setPartition(icacheConfig(target).org.assoc,
                           cfg_.phase_adaptive);
        predictor_->reconfigure(icacheConfig(target).predictor);
        fetch_a_lat_ = icacheConfig(target).a_lat;
        fetch_b_lat_ = icacheConfig(target).b_lat;
        break;
      case Structure::DCachePair: {
        cur_cfg_.dcache = target;
        const DCachePairConfig &dc = dcachePairConfig(target);
        l1d_->setPartition(dc.l1_adapt.assoc, cfg_.phase_adaptive);
        l2_->setPartition(dc.l2_adapt.assoc, cfg_.phase_adaptive);
        break;
      }
      case Structure::IntIssueQueue:
        cur_cfg_.iq_int = target;
        iq_int_.setCapacity(kIssueQueueSizes[target]);
        break;
      case Structure::FpIssueQueue:
        cur_cfg_.iq_fp = target;
        iq_fp_.setCapacity(kIssueQueueSizes[target]);
        break;
    }
}

void
Processor::requestConfig(Structure s, int target, Tick now)
{
    int cur = currentIndexOf(s);
    if (target == cur)
        return;
    DomainId d = domainOf(s);
    Pll &pll = plls_[static_cast<size_t>(d)];
    if (pll.busy(now) || pending_[static_cast<size_t>(d)].active)
        return;

    AdaptiveConfig probe = cur_cfg_;
    switch (s) {
      case Structure::ICache:        probe.icache = target; break;
      case Structure::DCachePair:    probe.dcache = target; break;
      case Structure::IntIssueQueue: probe.iq_int = target; break;
      case Structure::FpIssueQueue:  probe.iq_fp = target; break;
    }
    double f_new = cfg_.domainFreqGHz(d, probe);
    double f_old = clock(d).freqGHz();

    Tick lock_done = pll.startRelock(now);
    clock(d).setPeriod(periodPsFromGHz(f_new), lock_done);
    trace_.record(committed_, s, cur, target);
    // The re-clocked domain must consume the edge where the period
    // change lands even if it is otherwise idle: other domains read
    // its grid (nextEdgeAfter/period) for synchronizer timing, so a
    // parked clock must not lag across the change.
    wakeDomain(d, lock_done);

    if (f_new >= f_old) {
        // Speeding up: run the simpler configuration through the
        // lock window (downsize at the start of the change).
        applyStructure(s, target, now);
    } else {
        // Slowing down: upsize only once the slower clock is locked.
        pending_[static_cast<size_t>(d)] =
            PendingApply{true, s, target, lock_done};
    }
}

void
Processor::applyPending(DomainId d, Tick now)
{
    PendingApply &p = pending_[static_cast<size_t>(d)];
    if (p.active && now >= p.apply_at) {
        applyStructure(p.structure, p.target, now);
        p.active = false;
    }
}

void
Processor::controlCaches(Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick fe_period = clock(DomainId::FrontEnd).period();
    Tick ls_period = clock(DomainId::LoadStore).period();

    Tick i_miss_extra =
        2 * fe_period + static_cast<Tick>(dc.l2_a_lat) * ls_period;
    CacheDecision di = chooseICache(l1i_->interval(), i_miss_extra);
    CacheDecision dd = chooseDCachePair(
        l1d_->interval(), l2_->interval(), memoryLineFillPs());
    l1i_->resetInterval();
    l1d_->resetInterval();
    l2_->resetInterval();

    auto clearlyBetter = [&](const CacheDecision &d, int cur,
                             double hysteresis) {
        double best =
            static_cast<double>(d.cost_ps[static_cast<size_t>(
                d.best_index)]);
        double cur_cost = static_cast<double>(
            d.cost_ps[static_cast<size_t>(cur)]);
        return best < cur_cost * (1.0 - hysteresis);
    };
    int prop_i =
        clearlyBetter(di, cur_cfg_.icache, cfg_.icache_hysteresis)
            ? di.best_index
            : cur_cfg_.icache;
    if (damp_icache_.vote(prop_i, cur_cfg_.icache,
                          cfg_.cache_persistence)) {
        requestConfig(Structure::ICache, prop_i, now);
    }
    int prop_d =
        clearlyBetter(dd, cur_cfg_.dcache, cfg_.cache_hysteresis)
            ? dd.best_index
            : cur_cfg_.dcache;
    if (damp_dcache_.vote(prop_d, cur_cfg_.dcache,
                          cfg_.cache_persistence)) {
        requestConfig(Structure::DCachePair, prop_d, now);
    }
}

void
Processor::controlQueues(Tick now)
{
    IlpSample sample = ilp_tracker_.takeSample();

    auto propose = [&](const QueueDecision &d, int cur) {
        bool passes =
            d.best_index != cur &&
            d.score[static_cast<size_t>(d.best_index)] >
                d.score[static_cast<size_t>(cur)] *
                    (1.0 + cfg_.queue_hysteresis);
        return passes ? d.best_index : cur;
    };

    QueueDecision di = qctl_int_.decide(sample);
    int prop_i = propose(di, cur_cfg_.iq_int);
    if (damp_iq_int_.vote(prop_i, cur_cfg_.iq_int,
                          cfg_.queue_persistence)) {
        requestConfig(Structure::IntIssueQueue, prop_i, now);
    }

    QueueDecision df = qctl_fp_.decide(sample);
    int prop_f = propose(df, cur_cfg_.iq_fp);
    if (damp_iq_fp_.vote(prop_f, cur_cfg_.iq_fp,
                         cfg_.queue_persistence)) {
        requestConfig(Structure::FpIssueQueue, prop_f, now);
    }
}

// ---------------------------------------------------------------------
// Run loop and statistics.
// ---------------------------------------------------------------------

void
Processor::stepFrontEnd(Tick now)
{
    applyPending(DomainId::FrontEnd, now);
    fe_next_ = kTickMax;
    fe_next_epoch_ = clock_epoch_;
    doRetire(now);
    doRename(now);
    doFetch(now);
    // Group-boundary gate: queued ops (including ones fetch pushed
    // this very edge, which rename ran too early to see) whose group
    // becomes visible later wake rename exactly at that boundary. A
    // visible-but-unconsumed head means rename was structurally
    // blocked, which retire progress or consumer-pop events unblock —
    // no timed wake.
    if (!fetch_queue_.empty()) {
        Tick v = fetch_queue_.frontVisibleAt();
        if (v > now)
            feNote(v);
    }
    if (inv_interval_ != 0 && --inv_countdown_ == 0) {
        inv_countdown_ = inv_interval_;
        validateInvariants();
    }
}

void
Processor::stepDomain(int d, Tick now)
{
    switch (static_cast<DomainId>(d)) {
      case DomainId::FrontEnd:
        stepFrontEnd(now);
        break;
      case DomainId::Integer:
        stepIssueDomain(DomainId::Integer, now);
        break;
      case DomainId::FloatingPoint:
        stepIssueDomain(DomainId::FloatingPoint, now);
        break;
      case DomainId::LoadStore:
        stepLoadStore(now);
        break;
      default:
        panic("bad domain %d", d);
    }
}

void
Processor::snapshotBaselines(Tick)
{
    base_.l1i_acc = l1i_->totalAccesses();
    base_.l1i_miss = l1i_->totalMisses();
    base_.l1i_b = l1i_->totalBHits();
    base_.l1d_acc = l1d_->totalAccesses();
    base_.l1d_miss = l1d_->totalMisses();
    base_.l1d_b = l1d_->totalBHits();
    base_.l2_acc = l2_->totalAccesses();
    base_.l2_miss = l2_->totalMisses();
    base_.l2_b = l2_->totalBHits();
    base_.bp_lookups = predictor_->lookups();
    base_.bp_miss = predictor_->mispredicts();
    base_.flushes = flushes_;
    std::uint64_t relocks = 0;
    for (const Pll &p : plls_)
        relocks += p.relocks();
    base_.relocks = relocks;
}

void
Processor::finalizeStats(RunStats &stats) const
{
    stats.benchmark = wl_params_.name;
    stats.config =
        cfg_.mode == ClockingMode::Synchronous
            ? csprintf("sync(%s,D%d,Qi%d,Qf%d)",
                       optICacheConfig(cfg_.sync_icache_opt).name
                           .c_str(),
                       cfg_.adaptive.dcache, cfg_.adaptive.iq_int,
                       cfg_.adaptive.iq_fp)
            : csprintf("%s(%s)",
                       cfg_.phase_adaptive ? "phase" : "mcd",
                       cfg_.adaptive.str().c_str());

    stats.committed = committed_ - measure_committed_base_;
    stats.time_ps = last_commit_time_ - measure_start_;

    stats.l1i_accesses = l1i_->totalAccesses() - base_.l1i_acc;
    stats.l1i_misses = l1i_->totalMisses() - base_.l1i_miss;
    stats.l1i_b_hits = l1i_->totalBHits() - base_.l1i_b;
    stats.l1d_accesses = l1d_->totalAccesses() - base_.l1d_acc;
    stats.l1d_misses = l1d_->totalMisses() - base_.l1d_miss;
    stats.l1d_b_hits = l1d_->totalBHits() - base_.l1d_b;
    stats.l2_accesses = l2_->totalAccesses() - base_.l2_acc;
    stats.l2_misses = l2_->totalMisses() - base_.l2_miss;
    stats.l2_b_hits = l2_->totalBHits() - base_.l2_b;
    stats.branches = predictor_->lookups() - base_.bp_lookups;
    stats.mispredicts = predictor_->mispredicts() - base_.bp_miss;
    stats.flushes = flushes_ - base_.flushes;
    std::uint64_t relocks = 0;
    for (const Pll &p : plls_)
        relocks += p.relocks();
    stats.relocks = relocks - base_.relocks;
    stats.trace = trace_;
}

void
Processor::onClockEpochBump(int changed, Tick landing)
{
    ++clock_epoch_;
    // Every memoized grid extrapolation is now stale, so sleeping
    // domains must re-derive their gates — but only from the first
    // edge the reference kernel evaluates with the new epoch. The
    // bump becomes visible once the re-clocked domain consumes its
    // landing edge; on equal ticks the reference kernel steps lower
    // domain indices first, so a lower-indexed sleeper re-evaluates
    // strictly after the landing tick and a higher-indexed one from
    // the landing tick itself. Waking earlier (e.g. at 0) would
    // evaluate new-grid memos at stale edges the reference kernel
    // provably idles through under the old memos.
    for (int d = 0; d < kNumDomains; ++d) {
        if (d == changed)
            continue;
        wakeDomain(static_cast<DomainId>(d),
                   d < changed ? landing + 1 : landing);
    }
}

void
Processor::advanceClock(int d)
{
    Clock &c = clocks_[static_cast<size_t>(d)];
    if (!c.changePending()) {
        c.advance();
        return;
    }
    Tick landing = c.nextEdge();
    std::uint64_t before = c.periodChanges();
    c.advance();
    if (c.periodChanges() != before)
        onClockEpochBump(d, landing);
}

void
Processor::advanceClockWhileBelow(int d, Tick t)
{
    Clock &c = clocks_[static_cast<size_t>(d)];
    std::uint64_t before = c.periodChanges();
    c.advanceWhileBelow(t);
    // A pending period change can never land inside a proven-idle
    // skip: domainWake clamps every sleep to changeDue, so the
    // landing edge is always delivered by a real step.
    GALS_ASSERT(c.periodChanges() == before,
                "period change landed inside a proven-idle skip");
}

void
Processor::wakeDomain(DomainId dd, Tick t)
{
    size_t i = static_cast<size_t>(dd);
    if (t >= wake_[i])
        return;
    wake_[i] = t;
    if (kernel_ != Kernel::EventDriven)
        return;
    // Lazy key: the clock may sit on a stale (earlier) edge; the
    // scheduler resolves the true first-edge-at-or-after-wake when
    // the domain reaches the head of the calendar. (Keying at the
    // exact extrapolated edge here is a measured pessimization: the
    // surfacing pass consumes the idle edges either way, so the
    // extrapolation division would be pure added cost.)
    Tick key = std::max(clocks_[i].nextEdge(), t);
    if (key < calendar_.key[i])
        calendar_.set(static_cast<int>(i), key);
}

Tick
Processor::domainWake(int d) const
{
    Tick w = kTickMax;
    const PendingApply &p = pending_[static_cast<size_t>(d)];
    if (p.active)
        w = p.apply_at;
    // A scheduled period change must land on time (other domains
    // consult this clock's grid), so never sleep past its due edge.
    if (clocks_[static_cast<size_t>(d)].changePending()) {
        w = std::min(
            w, clocks_[static_cast<size_t>(d)].changeDue());
    }

    switch (static_cast<DomainId>(d)) {
      case DomainId::FrontEnd: {
        // The stages recorded the exact next-progress tick while they
        // ran (fe_next_, see stepFrontEnd): retire-visibility times,
        // fetch-group visibility boundaries, I-cache line fills and
        // redirect resumes. Everything else is blocked on a
        // cross-domain event, all of which carry wakeDomain hooks.
        //
        // Epoch guard, like the scan/walk summaries: when this
        // domain's own period change landed right after the step (in
        // advanceClock), the recorded ticks extrapolate a grid that
        // no longer exists — re-derive at the next edge.
        if (fe_next_epoch_ != clock_epoch_)
            return 0;
        return std::min(w, fe_next_);
      }
      case DomainId::Integer:
      case DomainId::FloatingPoint: {
        const bool is_int = static_cast<DomainId>(d) ==
                            DomainId::Integer;
        const IssueQueue &iq = is_int ? iq_int_ : iq_fp_;
        const SyncFifo<size_t> &fifo = is_int ? disp_int_ : disp_fp_;
        if (iq.size() != 0) {
            // The ready list partitions the queue by what each op is
            // provably waiting for: candidates need this domain's
            // next edge, timed slots an exact future tick, chained
            // waiters a completion (the completeReg chain walk wakes
            // us), and a stale epoch a rebuild at the next edge.
            if (iq.hasCandidates() ||
                iq_epoch_[is_int ? 0 : 1] != clock_epoch_) {
                return 0;
            }
            w = std::min(w, iq.minTimed());
        }
        if (!fifo.empty())
            w = std::min(w, fifo.frontVisibleAt());
        return w;
      }
      case DomainId::LoadStore: {
        if (!lsq_.empty()) {
            // Same idea: sleep on the walk summary. Wake sources are
            // the agen-issue hook, the ls-event hooks (store retire
            // and store-buffer push), recorded future times, and the
            // epoch hook.
            if (ls_sum_.must_walk ||
                ls_sum_.epoch_snap != clock_epoch_ ||
                ls_sum_.agen_snap != agen_issues_ ||
                ls_sum_.ev_snap != ls_events_) {
                return 0;
            }
            w = std::min(w, ls_sum_.min_time);
        }
        if (!disp_ls_.empty())
            w = std::min(w, disp_ls_.frontVisibleAt());
        if (!store_buffer_.empty()) {
            w = std::min(w, std::max(store_buffer_.frontReadyAt(),
                                     mshr_min_free_));
        }
        return w;
      }
      default:
        panic("bad domain %d", d);
    }
}

void
Processor::runReferenceLoop(std::uint64_t target)
{
    std::uint64_t steps = 0;
    std::uint64_t last_committed = committed_;
    while (committed_ < target) {
        int d = 0;
        Tick best = clocks_[0].nextEdge();
        for (int i = 1; i < kNumDomains; ++i) {
            Tick e = clocks_[static_cast<size_t>(i)].nextEdge();
            if (e < best) {
                best = e;
                d = i;
            }
        }
        stepDomain(d, best);
        advanceClock(d);

        if (++steps >= 8'000'000) {
            GALS_ASSERT(committed_ != last_committed,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(best),
                        static_cast<unsigned long long>(committed_));
            steps = 0;
            last_committed = committed_;
        }
    }
}

void
Processor::runEventLoop(std::uint64_t target)
{
    calendar_ = EdgeCalendar{};
    for (int d = 0; d < kNumDomains; ++d) {
        wake_[static_cast<size_t>(d)] = 0;
        calendar_.set(d, clocks_[static_cast<size_t>(d)].nextEdge());
    }

    std::uint64_t steps = 0;
    std::uint64_t last_committed = committed_;
    while (committed_ < target) {
        int d = calendar_.head();
        size_t di = static_cast<size_t>(d);
        GALS_ASSERT(calendar_.key[di] != kTickMax,
                    "event kernel: every domain parked at "
                    "committed=%llu (missing wakeup hook)",
                    static_cast<unsigned long long>(committed_));
        Tick edge = clocks_[di].nextEdge();
        if (wake_[di] > edge) {
            // Proven-idle edges: consume them without stepping, then
            // re-key on the first edge at or after the wake time.
            advanceClockWhileBelow(d, wake_[di]);
            calendar_.set(d, clocks_[di].nextEdge());
            continue;
        }
        switch (static_cast<DomainId>(d)) {
          case DomainId::FrontEnd:
            stepFrontEnd(edge);
            break;
          case DomainId::Integer:
            stepIssueDomain(DomainId::Integer, edge);
            break;
          case DomainId::FloatingPoint:
            stepIssueDomain(DomainId::FloatingPoint, edge);
            break;
          default:
            stepLoadStore(edge);
            break;
        }
        advanceClock(d);
        Tick w = domainWake(d);
        wake_[di] = w;
        if (w == kTickMax)
            calendar_.park(d);
        else
            calendar_.set(d, std::max(clocks_[di].nextEdge(), w));

        if (++steps >= 8'000'000) {
            GALS_ASSERT(committed_ != last_committed,
                        "no commit in 8M domain steps: deadlock at "
                        "t=%llu (committed=%llu)",
                        static_cast<unsigned long long>(edge),
                        static_cast<unsigned long long>(committed_));
            steps = 0;
            last_committed = committed_;
        }
    }
}

void
Processor::validateInvariants() const
{
    // Rename state: the map is a subset of the free-list complement.
    GALS_ASSERT(regs_.checkConsistent(),
                "rename map / free-list inconsistency");

    // ROB: sequence numbers strictly ascend from head to tail.
    const size_t n = rob_.size();
    for (size_t i = 1; i < n; ++i) {
        GALS_ASSERT(rob_[rob_.indexAt(i - 1)].seq <
                        rob_[rob_.indexAt(i)].seq,
                    "ROB age order violated at position %llu",
                    static_cast<unsigned long long>(i));
    }

    // Fetch queue: group accounting matches occupancy and capacity.
    GALS_ASSERT(fetch_queue_.checkConsistent(),
                "fetch-group queue accounting inconsistent");

    // LSQ: the store index and waiting-load list address only
    // in-queue entries, in age order, with matching entry kinds.
    const std::uint64_t first = lsq_.firstId();
    const std::uint64_t past = first + lsq_.size();
    std::uint64_t prev = 0;
    bool have_prev = false;
    lsq_.forEachStore([&](const Lsq::StoreRec &rec) {
        GALS_ASSERT(rec.id >= first && rec.id < past,
                    "LSQ store index references a popped entry");
        GALS_ASSERT(!have_prev || rec.id > prev,
                    "LSQ store index out of age order");
        GALS_ASSERT(lsq_.byId(rec.id).is_store,
                    "LSQ store index references a load");
        prev = rec.id;
        have_prev = true;
    });
    have_prev = false;
    for (std::uint64_t id : lsq_.pendingStores()) {
        GALS_ASSERT(id >= first && id < past,
                    "LSQ pending-store list references a popped "
                    "entry");
        GALS_ASSERT(!have_prev || id > prev,
                    "LSQ pending-store list out of age order");
        const LsqEntry &e = lsq_.byId(id);
        GALS_ASSERT(e.is_store && !e.data_ready,
                    "LSQ pending-store list references a non-pending "
                    "entry");
        prev = id;
        have_prev = true;
    }
    have_prev = false;
    prev = 0;
    for (std::uint64_t id : lsq_.waitingLoads()) {
        GALS_ASSERT(id >= first && id < past,
                    "LSQ waiting-load list references a popped entry");
        GALS_ASSERT(!have_prev || id > prev,
                    "LSQ waiting-load list out of age order");
        const LsqEntry &e = lsq_.byId(id);
        GALS_ASSERT(!e.is_store && !e.issued,
                    "LSQ waiting-load list references a non-waiting "
                    "entry");
        prev = id;
        have_prev = true;
    }

    // Issue queues: every live slot mirrors a ROB op that is actually
    // marked in-queue (the slot-local ready-list state shadows the
    // ROB record; a desync would evaluate stale registers), sits in
    // exactly one wakeup structure, and every chained waiter really
    // waits on a scoreboard-pending register.
    for (const IssueQueue *iq : {&iq_int_, &iq_fp_}) {
        size_t live = 0;
        size_t chained = 0;
        iq->forEachLive([&](std::int32_t, const IqSlot &slot) {
            ++live;
            GALS_ASSERT(slot.rob_idx < rob_.capacity(),
                        "issue-queue slot references an invalid ROB "
                        "index");
            const InFlightOp &op = rob_[slot.rob_idx];
            GALS_ASSERT(op.in_queue,
                        "issue-queue slot references an op not "
                        "marked in-queue");
            GALS_ASSERT(op.seq == slot.seq,
                        "issue-queue slot age desynced from its ROB "
                        "op");
            bool in_chain = slot.next_wait[0] != kIqNotChained ||
                            slot.next_wait[1] != kIqNotChained;
            if (in_chain)
                ++chained;
            GALS_ASSERT(slot.in_cand || slot.in_timed || in_chain,
                        "issue-queue slot in no wakeup structure");
            GALS_ASSERT(!(slot.in_cand && slot.in_timed),
                        "issue-queue slot in both rings");
        });
        GALS_ASSERT(live == iq->size(),
                    "issue-queue live count out of sync");
        size_t chain_nodes = 0;
        iq->forEachWaiter([&](bool fp, int reg, std::int32_t id,
                              int si) {
            ++chain_nodes;
            const IqSlot &slot = iq->slot(id);
            GALS_ASSERT(slot.live,
                        "issue-queue waiter chain references a freed "
                        "slot");
            PhysRef src = si == 0 ? slot.psrc1 : slot.psrc2;
            GALS_ASSERT(src.fp == fp && src.index == reg,
                        "issue-queue waiter chained on the wrong "
                        "register");
            GALS_ASSERT(
                regs_.state(PhysRef{static_cast<std::int16_t>(reg),
                                    fp})
                    .pending,
                "issue-queue waiter on a completed register");
        });
        GALS_ASSERT(chain_nodes >= chained,
                    "issue-queue chain membership undercounted");
    }

    // Dispatch and store-buffer occupancy bounds.
    GALS_ASSERT(disp_int_.size() <= disp_int_.capacity() &&
                    disp_fp_.size() <= disp_fp_.capacity() &&
                    disp_ls_.size() <= disp_ls_.capacity(),
                "dispatch FIFO over capacity");
    GALS_ASSERT(store_buffer_.size() <= store_buffer_.capacity(),
                "store buffer over capacity");
}

RunStats
Processor::run()
{
    const std::uint64_t target =
        wl_params_.warmup_instrs + wl_params_.sim_instrs;

    if (kernel_ == Kernel::Reference)
        runReferenceLoop(target);
    else
        runEventLoop(target);

    finalizeStats(stats_);
    return stats_;
}

} // namespace gals
