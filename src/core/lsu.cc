#include "core/lsu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/ports.hh"
#include "core/reconfig.hh"
#include "timing/frequency_model.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

} // namespace

LoadStoreUnit::LoadStoreUnit(const MachineConfig &cfg,
                             const AdaptiveConfig &cur_cfg,
                             CoreTiming &timing, Rob &rob,
                             InterconnectPort *icp, int core_index)
    : Domain(DomainId::LoadStore, timing), cfg_(cfg),
      cur_cfg_(cur_cfg), rob_(rob), lsq_(cfg.lsq_entries),
      memory_(kMemFirstChunkNs, kMemNextChunkNs, 64, 8),
      mshr_busy_(static_cast<size_t>(cfg.mshrs), 0), icp_(icp),
      core_index_(core_index)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    if (cfg_.mode == ClockingMode::MCD) {
        l1d_ = std::make_unique<AccountingCache>("l1d", 256 * KB, 8);
        l1d_->setPartition(dc.l1_adapt.assoc, cfg_.phase_adaptive);
    } else {
        l1d_ = std::make_unique<AccountingCache>(
            "l1d", dc.l1_opt.size_bytes, dc.l1_opt.assoc);
        l1d_->setPartition(dc.l1_opt.assoc, false);
    }
    // The private L2 exists only in the private hierarchy; a core
    // built for a chip reaches the shared banked L2 through the
    // interconnect port instead (constructing a dead 2MB tag/MRU
    // array per core would dominate chip construction).
    if (icp_ == nullptr) {
        if (cfg_.mode == ClockingMode::MCD) {
            l2_ = std::make_unique<AccountingCache>("l2", 2048 * KB,
                                                    8);
            l2_->setPartition(dc.l2_adapt.assoc,
                              cfg_.phase_adaptive);
        } else {
            l2_ = std::make_unique<AccountingCache>(
                "l2", dc.l2_opt.size_bytes, dc.l2_opt.assoc);
            l2_->setPartition(dc.l2_opt.assoc, false);
        }
    }
}

void
LoadStoreUnit::wire(CorePorts &ports, ReconfigUnit &reconfig)
{
    disp_ = &ports.disp_ls;
    completion_ = &ports.completion;
    sb_ = &ports.store_buffer;
    store_ready_ = &ports.store_ready;
    agen_ = &ports.agen;
    reconfig_ = &reconfig;
}

std::uint64_t
LoadStoreUnit::l2TotalAccesses() const
{
    return icp_ != nullptr ? icp_->accesses(core_index_)
                           : l2_->totalAccesses();
}

std::uint64_t
LoadStoreUnit::l2TotalMisses() const
{
    return icp_ != nullptr ? icp_->misses(core_index_)
                           : l2_->totalMisses();
}

std::uint64_t
LoadStoreUnit::l2TotalBHits() const
{
    return icp_ != nullptr ? icp_->bHits(core_index_)
                           : l2_->totalBHits();
}

// ---------------------------------------------------------------------
// Reconfiguration and control.
// ---------------------------------------------------------------------

void
LoadStoreUnit::applyDCache(int target, Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(target);
    l1d_->setPartition(dc.l1_adapt.assoc, cfg_.phase_adaptive);
    if (icp_ != nullptr)
        icp_->reconfigure(core_index_, target, now);
    else
        l2_->setPartition(dc.l2_adapt.assoc, cfg_.phase_adaptive);
}

CacheDecision
LoadStoreUnit::decideDCache() const
{
    const IntervalCounts &l2i = icp_ != nullptr
                                    ? icp_->interval(core_index_)
                                    : l2_->interval();
    return chooseDCachePair(l1d_->interval(), l2i,
                            memoryLineFillPs());
}

void
LoadStoreUnit::resetDCacheIntervals()
{
    l1d_->resetInterval();
    if (icp_ != nullptr)
        icp_->resetInterval(core_index_);
    else
        l2_->resetInterval();
}

void
LoadStoreUnit::voteDCache(const CacheDecision &dd, Tick now,
                          std::uint64_t committed)
{
    int prop =
        cacheClearlyBetter(dd, cur_cfg_.dcache, cfg_.cache_hysteresis)
            ? dd.best_index
            : cur_cfg_.dcache;
    if (damp_dcache_.vote(prop, cur_cfg_.dcache,
                          cfg_.cache_persistence)) {
        reconfig_->request(Structure::DCachePair, prop, now,
                           committed);
    }
}

// ---------------------------------------------------------------------
// Data hierarchy timing.
// ---------------------------------------------------------------------

Tick
LoadStoreUnit::serveIcacheFill(Addr pc, Tick t_req,
                               const DCachePairConfig &dc, Tick now)
{
    Tick ls_period = timing_.clock(DomainId::LoadStore).period();
    if (icp_ != nullptr) {
        return icp_
            ->requestIcacheLine(core_index_, pc, t_req, ls_period,
                                now)
            .done;
    }
    AccessOutcome out = l2_->access(pc);
    switch (out.where) {
      case HitWhere::APartition:
        return t_req + static_cast<Tick>(dc.l2_a_lat) * ls_period;
      case HitWhere::BPartition:
        return t_req +
               static_cast<Tick>(dc.l2_a_lat + dc.l2_b_lat) *
                   ls_period;
      default: {
        int probe = dc.l2_a_lat +
                    (l2_->bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat
                                                        : 0);
        return memory_.issueFill(
            t_req + static_cast<Tick>(probe) * ls_period);
      }
    }
}

Tick
LoadStoreUnit::dataHierarchyTime(Addr addr, Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick period = timing_.clock(DomainId::LoadStore).period();
    bool b_on = l1d_->bEnabled();

    AccessOutcome l1 = l1d_->access(addr);
    if (l1.where == HitWhere::APartition)
        return now + static_cast<Tick>(dc.l1_a_lat) * period;
    if (l1.where == HitWhere::BPartition) {
        return now +
               static_cast<Tick>(dc.l1_a_lat + dc.l1_b_lat) * period;
    }

    Tick probe = static_cast<Tick>(
        dc.l1_a_lat + (b_on && dc.l1_b_lat > 0 ? dc.l1_b_lat : 0));

    if (icp_ != nullptr) {
        // Shared hierarchy: the interconnect port arbitrates the
        // banked L2 and the shared memory channel; the private MSHR
        // is still claimed for the fill (the caller verified one is
        // free), exactly as on the private path.
        L2Reply r = icp_->requestLine(core_index_, addr,
                                      now + probe * period, period,
                                      now);
        if (!r.hit)
            claimMshr(now, r.done);
        return r.done;
    }

    AccessOutcome l2 = l2_->access(addr);
    if (l2.where == HitWhere::APartition) {
        return now + (probe + static_cast<Tick>(dc.l2_a_lat)) * period;
    }
    if (l2.where == HitWhere::BPartition) {
        return now + (probe + static_cast<Tick>(dc.l2_a_lat +
                                                dc.l2_b_lat)) *
                         period;
    }
    Tick l2_probe = static_cast<Tick>(
        dc.l2_a_lat +
        (l2_->bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat : 0));
    Tick issue_at = now + (probe + l2_probe) * period;
    Tick done = memory_.issueFill(issue_at);
    claimMshr(now, done);
    return done;
}

void
LoadStoreUnit::claimMshr(Tick now, Tick done)
{
    // Claim the MSHR slot the caller verified was free.
    for (Tick &slot : mshr_busy_) {
        if (slot <= now) {
            slot = done;
            mshr_min_free_ = mshr_busy_[0];
            for (Tick s : mshr_busy_)
                mshr_min_free_ = std::min(mshr_min_free_, s);
            return;
        }
    }
    panic("data hierarchy access without a free MSHR");
}

// ---------------------------------------------------------------------
// LSQ walks.
// ---------------------------------------------------------------------

/**
 * Memoized load/store-domain visibility of an entry's address
 * generation; false while the agen uop is unissued or not yet
 * visible here.
 */
bool
LoadStoreUnit::agenVisible(LsqEntry &entry, const InFlightOp &op,
                           Tick now)
{
    if (op.agen_done == kTickMax)
        return false;
    if (entry.agen_vis == kTickMax ||
        entry.agen_vis_epoch != timing_.epoch()) {
        entry.agen_vis = timing_.visibleAt(
            op.agen_done, DomainId::Integer, DomainId::LoadStore);
        entry.agen_vis_epoch = timing_.epoch();
    }
    return entry.agen_vis <= now;
}

LoadStoreUnit::LoadStart
LoadStoreUnit::tryStartLoad(LsqEntry &entry, Tick now,
                            int &ports_used, std::uint64_t &blocker)
{
    InFlightOp &op = rob_[entry.rob_idx];

    // Memory disambiguation against older stores (exact, since all
    // addresses are known at rename): blocked while any older
    // same-line store lacks its data; forward once all (at least one)
    // have it. The per-line index replaces the seed's scan over every
    // older queue entry.
    Lsq::OlderStores older =
        lsq_.olderStores(entry.line_addr, entry.id, &blocker);
    if (older == Lsq::OlderStores::Blocked)
        return LoadStart::Blocked; // wait for the store's data.
    bool forward = older == Lsq::OlderStores::AllReady ||
                   sb_->hasLine(entry.line_addr);

    Tick done;
    if (forward) {
        done = now + timing_.clock(DomainId::LoadStore).period();
    } else {
        // Conservatively require a free MSHR before starting an
        // access that might miss.
        if (mshr_min_free_ > now)
            return LoadStart::MshrBusy;
        done = dataHierarchyTime(op.uop.mem_addr, now);
    }

    entry.issued = true;
    op.complete_at = done;
    completion_->complete(op.pdst, done, DomainId::LoadStore,
                          entry.rob_idx, now);
    ++ports_used;
    return LoadStart::Issued;
}

void
LoadStoreUnit::drainStoreBuffer(Tick now, int &ports_used,
                                int max_ports)
{
    while (ports_used < max_ports && !sb_->empty()) {
        StoreWrite &w = sb_->front();
        if (w.ready_at > now)
            break;
        if (mshr_min_free_ > now)
            break;
        // Retirement blocks only on a *full* store buffer, so only
        // the pop that frees the first slot needs to wake the front
        // end — the port handles that transition.
        Addr addr = w.line_addr << l1d_->lineShift();
        dataHierarchyTime(addr, now);
        // A drained store to the coherent shared region publishes
        // invalidations to remote sharers through the interconnect
        // (no-op for private addresses and single-core chips).
        if (icp_ != nullptr)
            icp_->publishStore(core_index_, addr, now);
        sb_->pop(now);
        ++ports_used;
    }
}

Tick
LoadStoreUnit::step(Tick now)
{
    if (pending_->active)
        reconfig_->applyPending(id_, now);

    // Cross-core coherence delivery: invalidations whose transfer
    // latency has elapsed drop their lines from the L1D and charge
    // one mem port each — the timing visibility that makes the
    // publisher's remote wake load-bearing. Processing enables no
    // LSQ entry earlier (it only slows future accesses), so the walk
    // summary below stays valid.
    int coh_ports = 0;
    if (icp_ != nullptr) {
        coh_ports =
            icp_->consumeInvalidations(core_index_, now, *l1d_);
    }

    bool arrived_any = false;
    disp_->consume(now, [&](size_t) {
        lsq_.markArrived(now);
        arrived_any = true;
        return true;
    });

    // Walk-summary skip: every LSQ entry's blocking condition was
    // recorded by the last full walk. If none can have moved, only
    // the post-commit store buffer may still drain.
    if (!arrived_any && !ls_sum_.must_walk && now < ls_sum_.min_time &&
        ls_sum_.agen_snap == agen_->issues() &&
        ls_sum_.wake_snap == lsq_.wakeEvents() &&
        ls_sum_.epoch_snap == timing_.epoch()) {
        if (!sb_->empty() && sb_->frontReadyAt() <= now &&
            mshr_min_free_ <= now) {
            int ports = coh_ports;
            drainStoreBuffer(now, ports, cfg_.mem_ports);
        }
        return wakeBound();
    }
    bool need_every_edge = false;
    Tick min_time = kTickMax;

    // Stores become ready once their address-generation uop (which
    // also captures the data register) completes and its result
    // crosses into this domain; the ROB then retires them into the
    // store buffer. Only stores still waiting for data are walked
    // (their ids compacted in place, like the waiting loads).
    {
        auto &pending = lsq_.pendingStores();
        size_t keep = 0;
        const size_t n = pending.size();
        for (size_t i = 0; i < n; ++i) {
            std::uint64_t id = pending[i];
            LsqEntry &e = lsq_.byId(id);
            if (e.wait_kind == 1) {
                pending[keep++] = id; // agen still not issued.
                continue;
            }
            e.wait_kind = 0;
            InFlightOp &op = rob_[e.rob_idx];
            if (op.agen_done == kTickMax) {
                e.wait_kind = 1; // cleared by the agen issue itself.
                pending[keep++] = id;
                continue;
            }
            if (e.arrived_at <= now && agenVisible(e, op, now)) {
                op.store_ready = true;
                op.complete_at = now;
                e.data_ready = true; // leaves the pending walk.
                // Wake exactly the loads blocked on this store; no
                // other entry's memo depends on this capture.
                lsq_.wakeBlockedOn(e);
                // Retire blocks only on the ROB head; a younger
                // store becoming ready cannot unblock the front end.
                // The head becomes retirable *at this very tick*,
                // which the front end may first consume per the
                // publication order rule (the port decides).
                if (e.rob_idx == rob_.headIndex())
                    store_ready_->publish(now);
                continue;
            }
            if (e.arrived_at <= now) {
                // Waiting on a known agen-visibility time (an
                // unarrived entry resets the walk via the arrival
                // flag instead).
                min_time = std::min(min_time, e.agen_vis);
            }
            pending[keep++] = id;
        }
        pending.resize(keep);
    }

    int ports_used = coh_ports;
    // When the store buffer is nearly full it blocks retirement; give
    // it one port first.
    bool sb_pressure = sb_->size() + 1 >= sb_->capacity();
    if (sb_pressure)
        drainStoreBuffer(now, ports_used, 1);

    // Load issue walks only the not-yet-issued loads, oldest first.
    // Each blocked load carries why it is blocked, so the walk skips
    // it with a compare until the blocking condition can have moved.
    {
        auto &loads = lsq_.waitingLoads();
        size_t keep = 0;
        const size_t n = loads.size();
        for (size_t i = 0; i < n; ++i) {
            std::uint64_t id = loads[i];
            if (ports_used >= cfg_.mem_ports) {
                need_every_edge = true; // unevaluated loads remain.
                loads[keep++] = id;
                continue;
            }
            LsqEntry &e = lsq_.byId(id);
            if (e.wait_kind == 1) {
                loads[keep++] = id; // agen still not issued.
                continue;
            }
            if (e.wait_kind == 3) {
                // Chained on its blocking store: the store's data
                // capture or retirement clears this memo directly.
                loads[keep++] = id;
                continue;
            }
            if (e.wait_kind == 2) {
                if (now < e.wait_until) {
                    min_time = std::min(min_time, e.wait_until);
                    loads[keep++] = id; // MSHRs still busy, no new
                    continue;           // forwardable line pushed.
                }
                // The recorded MSHR free time passed: retire the
                // waiter record along with the memo.
                lsq_.removeMshrWaiter(e);
            }
            e.wait_kind = 0;
            if (e.arrived_at > now) {
                loads[keep++] = id; // arrival resets the walk.
                continue;
            }
            InFlightOp &op = rob_[e.rob_idx];
            if (op.agen_done == kTickMax) {
                e.wait_kind = 1; // cleared by the agen issue itself.
                loads[keep++] = id;
                continue;
            }
            if (!agenVisible(e, op, now)) {
                min_time = std::min(min_time, e.agen_vis);
                loads[keep++] = id; // pure time wait: one compare.
                continue;
            }
            std::uint64_t blocker = kLsqNoId;
            LoadStart r = tryStartLoad(e, now, ports_used, blocker);
            if (r == LoadStart::Issued)
                continue;
            if (r == LoadStart::Blocked) {
                // Event-waited on exactly one store: chain there.
                e.wait_kind = 3;
                lsq_.addBlockedWaiter(blocker, id);
            } else {
                // Time-waited on the exact MSHR free time (which
                // never moves earlier); a same-line store-buffer
                // push is the only event that can issue this load
                // sooner, and it finds the load via the waiter index.
                e.wait_kind = 2;
                e.wait_until = mshr_min_free_;
                lsq_.addMshrWaiter(id);
                min_time = std::min(min_time, e.wait_until);
            }
            loads[keep++] = id;
        }
        loads.resize(keep);
    }

    drainStoreBuffer(now, ports_used, cfg_.mem_ports);

    ls_sum_.must_walk = need_every_edge;
    ls_sum_.min_time = min_time;
    ls_sum_.agen_snap = agen_->issues();
    ls_sum_.wake_snap = lsq_.wakeEvents();
    ls_sum_.epoch_snap = timing_.epoch();
    return wakeBound();
}

Tick
LoadStoreUnit::wakeBound() const
{
    Tick w = kTickMax;
    if (!lsq_.empty()) {
        // Sleep on the walk summary. Wake sources are the agen port,
        // the indexed LSQ wakes (store data capture/retirement and
        // matching-line store-buffer pushes), recorded future times,
        // and the epoch-bump port.
        if (ls_sum_.must_walk ||
            ls_sum_.epoch_snap != timing_.epoch() ||
            ls_sum_.agen_snap != agen_->issues() ||
            ls_sum_.wake_snap != lsq_.wakeEvents()) {
            return 0;
        }
        w = std::min(w, ls_sum_.min_time);
    }
    if (!disp_->empty())
        w = std::min(w, disp_->frontVisibleAt());
    if (!sb_->empty()) {
        w = std::min(w,
                     std::max(sb_->frontReadyAt(), mshr_min_free_));
    }
    // An undelivered coherence invalidation bounds the sleep: without
    // this term a step between the publication and its delivery would
    // clobber the fabric wake when the scheduler refolds the bound.
    if (icp_ != nullptr)
        w = std::min(w, icp_->nextCoherenceAt(core_index_));
    return w;
}

} // namespace gals
