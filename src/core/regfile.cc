#include "core/regfile.hh"

#include "common/logging.hh"

namespace gals
{

RegisterFiles::RegisterFiles(int phys_int, int phys_fp)
{
    GALS_ASSERT(phys_int > kNumIntRegs && phys_fp > kNumFpRegs,
                "physical files must exceed the logical registers");
    int_state_.resize(static_cast<size_t>(phys_int));
    fp_state_.resize(static_cast<size_t>(phys_fp));
    map_.resize(kNumLogicalRegs);

    // Initial mapping: logical i -> physical i; the rest are free.
    // Logical 0 (int zero) and kFirstFpReg (fp zero) stay unmapped.
    for (int l = 0; l < kNumIntRegs; ++l) {
        if (l == kZeroReg)
            map_[static_cast<size_t>(l)] = PhysRef{-1, false};
        else
            map_[static_cast<size_t>(l)] =
                PhysRef{static_cast<std::int16_t>(l), false};
    }
    for (int l = 0; l < kNumFpRegs; ++l) {
        int logical = kFirstFpReg + l;
        if (l == 0)
            map_[static_cast<size_t>(logical)] = PhysRef{-1, true};
        else
            map_[static_cast<size_t>(logical)] =
                PhysRef{static_cast<std::int16_t>(l), true};
    }
    for (int p = kNumIntRegs; p < phys_int; ++p)
        free_int_.push_back(static_cast<std::int16_t>(p));
    for (int p = kNumFpRegs; p < phys_fp; ++p)
        free_fp_.push_back(static_cast<std::int16_t>(p));
}

bool
RegisterFiles::canAlloc(bool fp) const
{
    return fp ? !free_fp_.empty() : !free_int_.empty();
}

PhysRef
RegisterFiles::lookup(int logical) const
{
    GALS_ASSERT(logical >= 0 && logical < kNumLogicalRegs,
                "logical register %d out of range", logical);
    return map_[static_cast<size_t>(logical)];
}

std::pair<PhysRef, PhysRef>
RegisterFiles::renameDest(int logical)
{
    GALS_ASSERT(logical > 0 && logical < kNumLogicalRegs &&
                    logical != kFirstFpReg,
                "cannot rename the zero register (%d)", logical);
    bool fp = logical >= kFirstFpReg;
    auto &free_list = fp ? free_fp_ : free_int_;
    GALS_ASSERT(!free_list.empty(), "rename with empty free list");

    PhysRef fresh{free_list.back(), fp};
    free_list.pop_back();
    PhysRef old = map_[static_cast<size_t>(logical)];
    map_[static_cast<size_t>(logical)] = fresh;
    return {fresh, old};
}

void
RegisterFiles::release(PhysRef ref)
{
    if (ref.index < 0)
        return;
    auto &state = ref.fp ? fp_state_ : int_state_;
    state[static_cast<size_t>(ref.index)].pending = false;
    (ref.fp ? free_fp_ : free_int_).push_back(ref.index);
}

void
RegisterFiles::markPending(PhysRef ref)
{
    if (ref.index < 0)
        return;
    auto &state = ref.fp ? fp_state_ : int_state_;
    state[static_cast<size_t>(ref.index)].pending = true;
}

void
RegisterFiles::complete(PhysRef ref, Tick when, DomainId producer)
{
    if (ref.index < 0)
        return;
    auto &state = ref.fp ? fp_state_ : int_state_;
    PhysRegState &s = state[static_cast<size_t>(ref.index)];
    s.pending = false;
    s.ready_at = when;
    s.producer = producer;
}

bool
RegisterFiles::checkConsistent() const
{
    auto checkFile = [&](bool fp) {
        const auto &state = fp ? fp_state_ : int_state_;
        const auto &free_list = fp ? free_fp_ : free_int_;
        if (free_list.size() > state.size())
            return false;
        // 0 = unseen, 1 = free-listed, 2 = mapped.
        ArenaVector<std::uint8_t> seen(state.size(), 0);
        for (std::int16_t idx : free_list) {
            if (idx < 0 || static_cast<size_t>(idx) >= state.size())
                return false;
            if (seen[static_cast<size_t>(idx)] != 0)
                return false; // double free.
            seen[static_cast<size_t>(idx)] = 1;
        }
        for (const PhysRef &ref : map_) {
            if (ref.fp != fp || ref.index < 0)
                continue;
            if (static_cast<size_t>(ref.index) >= state.size())
                return false;
            if (seen[static_cast<size_t>(ref.index)] != 0)
                return false; // mapped twice, or mapped and free.
            seen[static_cast<size_t>(ref.index)] = 2;
        }
        return true;
    };
    return checkFile(false) && checkFile(true);
}

const PhysRegState &
RegisterFiles::state(PhysRef ref) const
{
    static const PhysRegState always_ready{};
    if (ref.index < 0)
        return always_ready;
    const auto &state = ref.fp ? fp_state_ : int_state_;
    return state[static_cast<size_t>(ref.index)];
}

} // namespace gals
