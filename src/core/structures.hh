/**
 * @file
 * In-flight bookkeeping structures of the out-of-order core: the
 * in-flight op record, reorder buffer, resizable issue queue,
 * load/store queue, store buffer, and function-unit pools.
 *
 * None of these know about clocks or domains; the Processor supplies
 * all times. Because a mispredicted branch halts fetch until it
 * resolves (no wrong-path execution), nothing here ever needs to be
 * squashed; entries leave only by completing/retiring.
 */

#ifndef GALS_CORE_STRUCTURES_HH
#define GALS_CORE_STRUCTURES_HH

#include <cstdint>
#include <utility>

#include "common/arena.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "core/regfile.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/uop.hh"

namespace gals
{

/** Execution latencies in owning-domain cycles (Alpha-flavored). */
constexpr int
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:  return 1;
      case OpClass::Branch:  return 1;
      case OpClass::IntMul:  return 3;
      case OpClass::IntDiv:  return 20;
      case OpClass::FpAlu:   return 4;
      case OpClass::FpMul:   return 4;
      case OpClass::FpDiv:   return 16;
      default:               return 1; // memory ops: cache-determined.
    }
}

/** Domain in which an op class executes. */
constexpr DomainId
execDomain(OpClass cls)
{
    if (isMemOp(cls))
        return DomainId::LoadStore;
    if (isFpOp(cls))
        return DomainId::FloatingPoint;
    return DomainId::Integer;
}

/** One op in flight from rename to retire. */
struct InFlightOp
{
    MicroOp uop;
    SeqNum seq = 0;

    PhysRef psrc1;
    PhysRef psrc2;
    PhysRef pdst;
    PhysRef old_pdst;

    /** Earliest issue time (dispatch-depth pipe). */
    Tick issue_eligible = 0;
    bool in_queue = false;
    bool issued = false;
    /** Absolute completion time; kTickMax until known. */
    Tick complete_at = kTickMax;
    DomainId domain = DomainId::Integer;

    /** Memory ops: slot sequence in the LSQ. */
    bool is_mem = false;
    /**
     * Memory ops: completion time of the address-generation uop
     * issued from the integer queue (kTickMax until issued). The
     * load/store unit may access the cache only once this is visible
     * in its domain.
     */
    Tick agen_done = kTickMax;
    /** Stores: address and data captured, ready to retire. */
    bool store_ready = false;

    /** Branches. */
    BranchPrediction pred{};
    bool mispredict = false;

    // ------------------------------------------------------------------
    // Scheduler memos (pure caches; never change observable behavior).
    // Epoch-tagged against Processor::clockEpoch() because the values
    // extrapolate clock grids, which move when a PLL re-lock lands.
    // ------------------------------------------------------------------
    /**
     * Memoized front-end visibility of complete_at (retire gate);
     * kTickMax = not yet computed.
     */
    Tick fe_vis = kTickMax;
    std::uint32_t fe_vis_epoch = 0;

    bool completed() const { return complete_at != kTickMax; }
};

/** Circular reorder buffer. Slots stay valid until retire. */
class Rob
{
  public:
    explicit Rob(int entries)
        : slots_(static_cast<size_t>(entries))
    {}

    bool full() const { return count_ == slots_.size(); }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return slots_.size(); }
    /** Slots still allocatable (rename hoists this per batch). */
    size_t freeSlots() const { return slots_.size() - count_; }

    /** Slot index of the op at age position `pos` (0 = oldest). */
    size_t
    indexAt(size_t pos) const
    {
        GALS_ASSERT(pos < count_, "ROB position out of range");
        pos += head_;
        if (pos >= slots_.size())
            pos -= slots_.size();
        return pos;
    }

    /** Allocate the next slot (program order); returns its index. */
    size_t
    alloc()
    {
        GALS_ASSERT(!full(), "ROB overflow");
        size_t idx = tail_;
        if (++tail_ == slots_.size())
            tail_ = 0;
        ++count_;
        return idx;
    }

    /** Index of the oldest op. */
    size_t headIndex() const
    {
        GALS_ASSERT(!empty(), "ROB head of empty buffer");
        return head_;
    }

    /** Pop the oldest op after retirement. */
    void
    retireHead()
    {
        GALS_ASSERT(!empty(), "ROB underflow");
        if (++head_ == slots_.size())
            head_ = 0;
        --count_;
    }

    InFlightOp &operator[](size_t idx) { return slots_[idx]; }
    const InFlightOp &operator[](size_t idx) const
    {
        return slots_[idx];
    }

  private:
    ArenaVector<InFlightOp> slots_;
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t count_ = 0;
};

/**
 * One issue-queue slot: the ROB index plus the wakeup state the
 * per-edge scan needs. Keeping that state here (32 bytes, contiguous
 * in age order) means a scan that skips every waiting op touches one
 * sequential array instead of a 200-byte ROB record per entry.
 */
struct IqSlot
{
    std::uint32_t rob_idx = 0;
    /** Mirrors of the immutable ROB fields the scan and issue
     * selection need, so evaluating an entry is slot-local. */
    OpClass cls = OpClass::IntAlu;
    bool is_mem = false;
    bool mispredict = false;
    /** Register-wakeup index: physical registers whose producers have
     * not issued. While every recorded register is still scoreboard-
     * pending the op cannot possibly become ready, so the scan skips
     * it after one or two loads of the (cache-resident) scoreboard —
     * never touching the much larger ROB record. 0 = none recorded,
     * evaluate fully. */
    std::uint8_t n_wait = 0;
    PhysRef psrc1;
    PhysRef psrc2;
    PhysRef pdst;
    std::array<PhysRef, 2> wait_ref{};
    /** Exact earliest issue tick once all producers are known; 0 =
     * unknown. Epoch-tagged like every grid extrapolation. */
    std::uint32_t hint_epoch = 0;
    Tick ready_hint = 0;
    Tick issue_eligible = 0;
    /** Memoized consumer-domain visibility per source (kTickMax =
     * not yet known): fixed grid extrapolations, computed once. */
    std::array<Tick, 2> src_vis{kTickMax, kTickMax};
    std::array<std::uint32_t, 2> src_vis_epoch{};
};

/** Resizable issue queue holding ROB indices in age order. */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity) : capacity_(capacity) {}

    bool full() const
    {
        return entries_.size() >= static_cast<size_t>(capacity_);
    }
    size_t size() const { return entries_.size(); }
    int capacity() const { return capacity_; }

    /**
     * Change capacity. Occupancy above a smaller capacity is legal;
     * it drains naturally because full() blocks further dispatch.
     */
    void setCapacity(int capacity) { capacity_ = capacity; }

    void
    push(const IqSlot &slot)
    {
        GALS_ASSERT(!full(), "issue-queue overflow");
        entries_.push_back(slot);
    }

    /** Convenience for tests: a slot with only the ROB index set. */
    void
    push(size_t rob_idx)
    {
        push(IqSlot{static_cast<std::uint32_t>(rob_idx)});
    }

    /** Age-ordered slots; the Processor selects and removes. */
    ArenaVector<IqSlot> &entries() { return entries_; }
    const ArenaVector<IqSlot> &entries() const { return entries_; }

  private:
    int capacity_;
    ArenaVector<IqSlot> entries_;
};

/** One load/store queue entry (program order). */
struct LsqEntry
{
    size_t rob_idx = 0;
    bool is_store = false;
    Addr line_addr = 0;
    /** Arrival at the load/store domain; kTickMax until then. */
    Tick arrived_at = kTickMax;
    bool issued = false;
    /** Monotone allocation id; doubles as the age order. */
    std::uint64_t id = 0;
    /**
     * Memoized load/store-domain visibility of the entry's
     * address-generation completion; kTickMax = not yet computed.
     * Epoch-tagged like InFlightOp's memos.
     */
    Tick agen_vis = kTickMax;
    std::uint32_t agen_vis_epoch = 0;
    /**
     * Wakeup index for the per-edge LSQ walks. What the entry is
     * provably waiting for, so the walk can skip it with one or two
     * compares:
     *   0 — nothing recorded; evaluate fully.
     *   1 — address generation not yet issued; recheck only after the
     *       integer domain issues another agen uop (wait_snap vs the
     *       processor's agen-issue counter).
     *   2 — a failed load attempt; recheck only after a store/MSHR/
     *       store-buffer event (wait_snap vs the ls-event counter) or
     *       once `wait_until` (MSHR free time) passes.
     */
    std::uint8_t wait_kind = 0;
    std::uint32_t wait_snap = 0;
    Tick wait_until = kTickMax;
};

/**
 * Program-ordered load/store queue with indexed wakeup paths.
 *
 * Entries are addressed by a monotone allocation id (the deque only
 * ever pops from the front, so id - firstId() is the position). Three
 * side indexes keep the per-edge work proportional to the number of
 * entries that can actually change state, not the queue occupancy:
 *
 *  - pendingStores(): ids of stores whose data is not yet captured
 *    (the store-ready scan walks only these);
 *  - waitingLoads(): ids of loads not yet issued to the cache;
 *  - a per-line map of in-queue stores, replacing the O(n) per-load
 *    (O(n^2) per edge) disambiguation scan with one lookup.
 *
 * The caller owns compaction of the two id lists (it knows which
 * entries changed state while iterating); the per-line map is
 * maintained here.
 */
class Lsq
{
  public:
    explicit Lsq(int entries)
        : capacity_(static_cast<size_t>(entries)),
          mask_((capacity_ & (capacity_ - 1)) == 0 ? capacity_ - 1
                                                   : 0),
          slots_(capacity_)
    {}

    bool full() const { return count_ >= capacity_; }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return capacity_; }
    /** Entries still allocatable (rename hoists this per batch). */
    size_t freeSlots() const { return capacity_ - count_; }

    void
    allocate(size_t rob_idx, bool is_store, Addr line_addr)
    {
        GALS_ASSERT(!full(), "LSQ overflow");
        std::uint64_t id = next_id_++;
        byId(id) = LsqEntry{rob_idx,  is_store, line_addr, kTickMax,
                            false,    id,       kTickMax,  0,
                            0,        0,        kTickMax};
        ++count_;
        if (is_store)
            stores_.push_back(StoreRec{line_addr, id, false});
        else
            waiting_loads_.push_back(id);
    }

    /** Mark the oldest not-yet-arrived entry as arrived. */
    void
    markArrived(Tick when)
    {
        GALS_ASSERT(next_arrival_id_ < next_id_,
                    "LSQ arrival with no waiting entry");
        byId(next_arrival_id_++).arrived_at = when;
    }

    /** Oldest entry (the one the ROB retires next among mem ops). */
    LsqEntry &front()
    {
        GALS_ASSERT(!empty(), "LSQ front of empty queue");
        return byId(first_id_);
    }

    void
    popFront()
    {
        GALS_ASSERT(!empty(), "LSQ pop of empty queue");
        const LsqEntry &e = front();
        if (e.is_store) {
            GALS_ASSERT(!stores_.empty() &&
                            stores_.front().id == e.id,
                        "LSQ store index out of sync at pop");
            stores_.erase(stores_.begin());
        }
        ++first_id_;
        --count_;
    }

    /**
     * Entry lookup by allocation id. Ids map to fixed ring slots, so
     * this is one index operation, not a deque block-map walk.
     */
    LsqEntry &byId(std::uint64_t id) { return slots_[slotOf(id)]; }

    /** Positional access relative to the front (age order). */
    LsqEntry &at(size_t pos) { return byId(first_id_ + pos); }

    /** First id still in the queue (front()'s id). */
    std::uint64_t firstId() const { return first_id_; }

    /** Disambiguation state of the stores older than a load. */
    enum class OlderStores
    {
        None,     //!< no older in-queue store to the line.
        AllReady, //!< at least one, and every one has its data.
        Blocked,  //!< some older store still lacks its data.
    };

    OlderStores
    olderStores(Addr line_addr, std::uint64_t load_id) const
    {
        bool any = false;
        for (const StoreRec &rec : stores_) {
            if (rec.id >= load_id)
                break; // ids ascend: the rest are younger.
            if (rec.line != line_addr)
                continue;
            if (!rec.ready)
                return OlderStores::Blocked;
            any = true;
        }
        return any ? OlderStores::AllReady : OlderStores::None;
    }

    /** One in-queue store, in age order (flat: the disambiguation
     * scan and the data-pending walk touch only this dense list). */
    struct StoreRec
    {
        Addr line = 0;
        std::uint64_t id = 0;
        bool ready = false;
    };

    /** All in-queue stores, oldest first. */
    ArenaVector<StoreRec> &stores() { return stores_; }
    const ArenaVector<StoreRec> &stores() const { return stores_; }

    /** Ids of loads not yet issued to the cache, in age order. */
    ArenaVector<std::uint64_t> &waitingLoads()
    {
        return waiting_loads_;
    }
    const ArenaVector<std::uint64_t> &waitingLoads() const
    {
        return waiting_loads_;
    }

    const LsqEntry &byId(std::uint64_t id) const
    {
        return slots_[slotOf(id)];
    }

  private:
    size_t
    slotOf(std::uint64_t id) const
    {
        return mask_ != 0 ? static_cast<size_t>(id) & mask_
                          : static_cast<size_t>(id % capacity_);
    }

    size_t capacity_;
    size_t mask_;
    ArenaVector<LsqEntry> slots_;
    size_t count_ = 0;
    std::uint64_t next_id_ = 0;
    std::uint64_t first_id_ = 0;
    std::uint64_t next_arrival_id_ = 0;
    ArenaVector<StoreRec> stores_;
    ArenaVector<std::uint64_t> waiting_loads_;
};

/** A committed store waiting to write the cache. */
struct StoreWrite
{
    Addr line_addr = 0;
    Tick ready_at = 0;
};

/** Post-commit store buffer with an O(1) line-occupancy index. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(int entries)
        : capacity_(static_cast<size_t>(entries)), slots_(capacity_)
    {}

    bool full() const { return count_ >= capacity_; }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return capacity_; }

    void
    push(Addr line_addr, Tick ready_at)
    {
        GALS_ASSERT(!full(), "store-buffer overflow");
        slots_[wrap(head_ + count_)] = StoreWrite{line_addr, ready_at};
        ++count_;
    }

    StoreWrite &front() { return slots_[head_]; }

    /** Drain time of the head write; only valid when !empty(). */
    Tick frontReadyAt() const { return slots_[head_].ready_at; }

    void
    pop()
    {
        GALS_ASSERT(!empty(), "store-buffer underflow");
        head_ = wrap(head_ + 1);
        --count_;
    }

    /**
     * True when a pending write matches the line (forwarding). The
     * buffer holds at most a few entries in a flat ring, so a linear
     * probe beats any index.
     */
    bool
    hasLine(Addr line_addr) const
    {
        for (size_t i = 0; i < count_; ++i) {
            if (slots_[wrap(head_ + i)].line_addr == line_addr)
                return true;
        }
        return false;
    }

  private:
    size_t
    wrap(size_t pos) const
    {
        return pos >= capacity_ ? pos - capacity_ : pos;
    }

    size_t capacity_;
    ArenaVector<StoreWrite> slots_;
    size_t head_ = 0;
    size_t count_ = 0;
};

/** Per-domain function units: N pipelined ALUs + 1 mult/div unit. */
struct FuPool
{
    int alus = 4;
    int alu_used = 0;
    int muldiv_used = 0;
    Tick muldiv_busy_until = 0;

    void
    newCycle()
    {
        alu_used = 0;
        muldiv_used = 0;
    }

    /** Try to claim a unit for the op class at time `now`. */
    bool
    claim(OpClass cls, Tick now, Tick complete_at)
    {
        bool muldiv = cls == OpClass::IntMul || cls == OpClass::IntDiv ||
                      cls == OpClass::FpMul || cls == OpClass::FpDiv;
        if (!muldiv) {
            if (alu_used >= alus)
                return false;
            ++alu_used;
            return true;
        }
        if (muldiv_used >= 1 || muldiv_busy_until > now)
            return false;
        ++muldiv_used;
        // Divides occupy the unit to completion (not pipelined).
        if (cls == OpClass::IntDiv || cls == OpClass::FpDiv)
            muldiv_busy_until = complete_at;
        return true;
    }
};

} // namespace gals

#endif // GALS_CORE_STRUCTURES_HH
