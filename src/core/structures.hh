/**
 * @file
 * In-flight bookkeeping structures of the out-of-order core: the
 * in-flight op record, reorder buffer, resizable issue queue,
 * load/store queue, store buffer, and function-unit pools.
 *
 * None of these know about clocks or domains; the Processor supplies
 * all times. Because a mispredicted branch halts fetch until it
 * resolves (no wrong-path execution), nothing here ever needs to be
 * squashed; entries leave only by completing/retiring.
 */

#ifndef GALS_CORE_STRUCTURES_HH
#define GALS_CORE_STRUCTURES_HH

#include <array>
#include <cstdint>
#include <utility>

#include "common/arena.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "core/regfile.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/uop.hh"

namespace gals
{

/** Execution latencies in owning-domain cycles (Alpha-flavored). */
constexpr int
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:  return 1;
      case OpClass::Branch:  return 1;
      case OpClass::IntMul:  return 3;
      case OpClass::IntDiv:  return 20;
      case OpClass::FpAlu:   return 4;
      case OpClass::FpMul:   return 4;
      case OpClass::FpDiv:   return 16;
      default:               return 1; // memory ops: cache-determined.
    }
}

/** Domain in which an op class executes. */
constexpr DomainId
execDomain(OpClass cls)
{
    if (isMemOp(cls))
        return DomainId::LoadStore;
    if (isFpOp(cls))
        return DomainId::FloatingPoint;
    return DomainId::Integer;
}

/** One op in flight from rename to retire. */
struct InFlightOp
{
    MicroOp uop;
    SeqNum seq = 0;

    PhysRef psrc1;
    PhysRef psrc2;
    PhysRef pdst;
    PhysRef old_pdst;

    /** Earliest issue time (dispatch-depth pipe). */
    Tick issue_eligible = 0;
    bool in_queue = false;
    bool issued = false;
    /** Absolute completion time; kTickMax until known. */
    Tick complete_at = kTickMax;
    DomainId domain = DomainId::Integer;

    /** Memory ops: slot sequence in the LSQ. */
    bool is_mem = false;
    /** Memory ops: LSQ allocation id (wakes the entry at agen issue). */
    std::uint64_t lsq_id = 0;
    /**
     * Memory ops: completion time of the address-generation uop
     * issued from the integer queue (kTickMax until issued). The
     * load/store unit may access the cache only once this is visible
     * in its domain.
     */
    Tick agen_done = kTickMax;
    /** Stores: address and data captured, ready to retire. */
    bool store_ready = false;

    /** Branches. */
    BranchPrediction pred{};
    bool mispredict = false;

    // ------------------------------------------------------------------
    // Scheduler memos (pure caches; never change observable behavior).
    // Epoch-tagged against Processor::clockEpoch() because the values
    // extrapolate clock grids, which move when a PLL re-lock lands.
    // ------------------------------------------------------------------
    /**
     * Memoized front-end visibility of complete_at (retire gate);
     * kTickMax = not yet computed.
     */
    Tick fe_vis = kTickMax;
    std::uint32_t fe_vis_epoch = 0;

    bool completed() const { return complete_at != kTickMax; }
};

/** Circular reorder buffer. Slots stay valid until retire. */
class Rob
{
  public:
    explicit Rob(int entries)
        : slots_(static_cast<size_t>(entries))
    {}

    bool full() const { return count_ == slots_.size(); }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return slots_.size(); }
    /** Slots still allocatable (rename hoists this per batch). */
    size_t freeSlots() const { return slots_.size() - count_; }

    /** Slot index of the op at age position `pos` (0 = oldest). */
    size_t
    indexAt(size_t pos) const
    {
        GALS_ASSERT(pos < count_, "ROB position out of range");
        pos += head_;
        if (pos >= slots_.size())
            pos -= slots_.size();
        return pos;
    }

    /** Allocate the next slot (program order); returns its index. */
    size_t
    alloc()
    {
        GALS_ASSERT(!full(), "ROB overflow");
        size_t idx = tail_;
        if (++tail_ == slots_.size())
            tail_ = 0;
        ++count_;
        return idx;
    }

    /** Index of the oldest op. */
    size_t headIndex() const
    {
        GALS_ASSERT(!empty(), "ROB head of empty buffer");
        return head_;
    }

    /** Pop the oldest op after retirement. */
    void
    retireHead()
    {
        GALS_ASSERT(!empty(), "ROB underflow");
        if (++head_ == slots_.size())
            head_ = 0;
        --count_;
    }

    InFlightOp &operator[](size_t idx) { return slots_[idx]; }
    const InFlightOp &operator[](size_t idx) const
    {
        return slots_[idx];
    }

  private:
    ArenaVector<InFlightOp> slots_;
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t count_ = 0;
};

/** Waiter-chain link sentinel: slot not chained on this source. */
constexpr std::int32_t kIqNotChained = -2;
/** Waiter-chain link sentinel: end of a chain. */
constexpr std::int32_t kIqChainEnd = -1;

/**
 * One issue-queue slot of the push-based ready list: the ROB index,
 * mirrors of the immutable ROB fields selection needs (so evaluating
 * an entry is slot-local), and the wakeup state that decides which of
 * the queue's side structures the slot currently lives in:
 *
 *  - a *waiting* slot (some source register scoreboard-pending) sits
 *    only on the waiter chains of those registers and costs nothing
 *    until a completion walks the chain;
 *  - a *candidate* slot sits in the age-ordered ready ring, either
 *    needing (re-)evaluation of its source visibilities or already
 *    proven ready;
 *  - a *timed* slot has an exact future ready_at and sits in the
 *    ready_at-ordered timer ring until that tick.
 *
 * Slots live in a stable pool (ids survive until issue), so the side
 * structures hold 4-byte ids instead of moving slot records.
 */
struct IqSlot
{
    std::uint32_t rob_idx = 0;
    OpClass cls = OpClass::IntAlu;
    bool is_mem = false;
    bool mispredict = false;
    PhysRef psrc1;
    PhysRef psrc2;
    PhysRef pdst;
    /** Program-order age: the selection key of the ready ring. */
    SeqNum seq = 0;
    Tick issue_eligible = 0;
    /**
     * Exact earliest issue tick; valid once needs_eval is false.
     * A grid extrapolation, so it is invalidated wholesale on epoch
     * bumps (IssueQueue::invalidateTimes).
     */
    Tick ready_at = 0;
    /** Memoized consumer-domain visibility per source (kTickMax =
     * not yet known): fixed grid extrapolations, computed once and
     * epoch-tagged. */
    std::array<Tick, 2> src_vis{kTickMax, kTickMax};
    std::array<std::uint32_t, 2> src_vis_epoch{};
    /** Waiter-chain links, one per source; kIqNotChained while the
     * source is not registered as waiting. Encoded nodes: id * 2 +
     * source index. */
    std::array<std::int32_t, 2> next_wait{kIqNotChained, kIqNotChained};
    /** Candidate needs its sources (re-)folded before selection. */
    bool needs_eval = false;
    bool in_cand = false;
    bool in_timed = false;
    bool live = false;
};

/**
 * Resizable issue queue with a push-based ready list.
 *
 * The queue never scans its occupancy per edge. Instead the wakeup
 * paths push slot ids directly onto the structure that matches what
 * each slot is provably waiting for:
 *
 *  - per-physical-register *waiter chains* (intrusive, heads in
 *    wait_heads_): a completion wakes exactly the ops waiting on that
 *    register (wakeWaiters) and nothing else;
 *  - the *candidate ring* cand_: age-ordered (min-heap on seq) ids
 *    that select pops oldest-first, at most issue-width successful
 *    issues per edge;
 *  - the *timer ring* timed_: ready_at-ordered (min-heap) ids with an
 *    exact future ready time; promoteDue moves matured ids to the
 *    candidate ring.
 *
 * The owner (Processor) performs source evaluation — it needs the
 * scoreboard and the clock grids — and drives the transitions; this
 * class owns the data structures and their invariants. The O(queue)
 * rebuild path exists only for clock-epoch bumps (invalidateTimes),
 * which stale every memoized grid extrapolation at once.
 */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity) : capacity_(capacity) {}

    /** Size the waiter-chain index (one head per physical register).
     * Must be called before addWaiter/wakeWaiters are used. */
    void
    initWaiterIndex(int phys_int, int phys_fp)
    {
        phys_int_ = phys_int;
        wait_heads_.assign(static_cast<size_t>(phys_int + phys_fp),
                           kIqChainEnd);
    }

    bool full() const
    {
        return live_ >= static_cast<size_t>(capacity_);
    }
    size_t size() const { return live_; }
    int capacity() const { return capacity_; }

    /**
     * Change capacity. Occupancy above a smaller capacity is legal;
     * it drains naturally because full() blocks further dispatch.
     */
    void setCapacity(int capacity) { capacity_ = capacity; }

    IqSlot &slot(std::int32_t id)
    {
        return slots_[static_cast<size_t>(id)];
    }
    const IqSlot &slot(std::int32_t id) const
    {
        return slots_[static_cast<size_t>(id)];
    }

    /**
     * Allocate a pool slot (stable until freeSlot). Recycled slots
     * come back structurally clean — freeSlot asserts no ring or
     * chain membership — so only the source memos and liveness are
     * reset here; the caller fills every identity field (rob_idx,
     * cls, flags, sources, seq, issue_eligible) before pushing the
     * slot anywhere.
     */
    std::int32_t
    alloc()
    {
        GALS_ASSERT(!full(), "issue-queue overflow");
        std::int32_t id;
        if (!free_.empty()) {
            id = free_.back();
            free_.pop_back();
        } else {
            id = static_cast<std::int32_t>(slots_.size());
            slots_.emplace_back();
        }
        IqSlot &s = slot(id);
        s.src_vis = {kTickMax, kTickMax};
        s.live = true;
        ++live_;
        return id;
    }

    /** Return an issued slot to the pool. Must not be a member of any
     * side structure (select pops it from the ready ring first). */
    void
    freeSlot(std::int32_t id)
    {
        IqSlot &s = slot(id);
        GALS_ASSERT(s.live && !s.in_cand && !s.in_timed &&
                        s.next_wait[0] == kIqNotChained &&
                        s.next_wait[1] == kIqNotChained,
                    "issue-queue free of a referenced slot");
        s.live = false;
        free_.push_back(id);
        --live_;
    }

    // ------------------------------------------------------------------
    // Candidate ring: slot ids in ascending age (seq) order, walked
    // in place by select. Arrivals append at the tail (dispatch and
    // mid-walk wakes are youngest); the rare out-of-order insert
    // (a timed slot maturing among younger candidates, an old waiter
    // waking) backs in from the tail. The seq key is cached next to
    // the id so ordering never touches the slot pool.
    // ------------------------------------------------------------------
    bool hasCandidates() const { return !cand_.empty(); }
    size_t candCount() const { return cand_.size(); }

    void
    pushCandidate(std::int32_t id, bool needs_eval)
    {
        IqSlot &s = slot(id);
        if (needs_eval)
            s.needs_eval = true;
        if (s.in_cand)
            return;
        s.in_cand = true;
        CandEntry e{s.seq, id};
        size_t pos = cand_.size();
        cand_.push_back(e);
        while (pos > 0 && cand_[pos - 1].seq > e.seq) {
            cand_[pos] = cand_[pos - 1];
            --pos;
        }
        cand_[pos] = e;
    }

    /** Select outcome for one walked candidate. */
    enum class CandAction
    {
        Drop, //!< left the ring (issued or parked elsewhere).
        Keep, //!< stays (FU-stalled ready op): retried next edge.
        Stop, //!< issue width exhausted: keep this and all younger.
    };

    /**
     * Walk candidates oldest-first, applying f(id) -> CandAction in
     * place (the reference scan's age order, restricted to the slots
     * that can actually act). f may push new candidates (register
     * wakes of ops younger than the one being walked) and frees
     * issued slots itself; the walk hands each slot to f with its
     * ring membership already cleared and restores it on Keep/Stop.
     */
    template <typename F>
    void
    walkCandidates(F f)
    {
        for (size_t i = 0; i < cand_.size(); ++i) {
            std::int32_t id = cand_[i].id;
            slot(id).in_cand = false;
            CandAction a = f(id);
            if (a == CandAction::Drop) {
                cand_[i].id = -1;
                continue;
            }
            slot(id).in_cand = true;
            if (a == CandAction::Stop)
                break;
        }
        // Compact the survivors (dropped entries tombstoned above;
        // everything from the stop position on is kept wholesale).
        size_t write = 0;
        for (size_t r = 0; r < cand_.size(); ++r) {
            if (cand_[r].id != -1)
                cand_[write++] = cand_[r];
        }
        cand_.resize(write);
    }

    // ------------------------------------------------------------------
    // Timer ring (ready_at-ordered min-heap; the deadline is cached
    // next to the id so sifting never touches the slot pool).
    // ------------------------------------------------------------------
    size_t timedCount() const { return timed_.size(); }

    void
    pushTimed(std::int32_t id)
    {
        IqSlot &s = slot(id);
        GALS_ASSERT(!s.in_cand && !s.in_timed,
                    "timed push of a candidate slot");
        s.in_timed = true;
        timed_.push_back(TimedEntry{s.ready_at, id});
        size_t i = timed_.size() - 1;
        while (i != 0) {
            size_t parent = (i - 1) / 2;
            if (timed_[parent].at <= timed_[i].at)
                break;
            std::swap(timed_[parent], timed_[i]);
            i = parent;
        }
    }

    /** Earliest exact ready time among timed slots (kTickMax: none). */
    Tick
    minTimed() const
    {
        return timed_.empty() ? kTickMax : timed_.front().at;
    }

    /** Move every timed slot due at `now` into the candidate ring. */
    void
    promoteDue(Tick now)
    {
        while (!timed_.empty() && timed_.front().at <= now) {
            std::int32_t id = timed_.front().id;
            timed_.front() = timed_.back();
            timed_.pop_back();
            if (!timed_.empty())
                siftDownTimed();
            slot(id).in_timed = false;
            pushCandidate(id, false);
        }
    }

    // ------------------------------------------------------------------
    // Waiter chains (register wakeup).
    // ------------------------------------------------------------------
    /** Record that slot `id`'s source `si` waits on register `ref`. */
    void
    addWaiter(PhysRef ref, std::int32_t id, int si)
    {
        IqSlot &s = slot(id);
        size_t k = static_cast<size_t>(si);
        if (s.next_wait[k] != kIqNotChained)
            return; // already recorded by an earlier evaluation.
        size_t w = waitIndex(ref);
        s.next_wait[k] = wait_heads_[w];
        wait_heads_[w] =
            id * 2 + static_cast<std::int32_t>(k);
    }

    /**
     * A producer of `ref` issued: move every op waiting on it to the
     * candidate ring for re-evaluation at this domain's next step.
     * Returns true when any waiter moved (the caller wakes the
     * domain); false means no op here cared about this completion.
     */
    bool
    wakeWaiters(PhysRef ref)
    {
        if (ref.index < 0 || wait_heads_.empty())
            return false;
        size_t w = waitIndex(ref);
        std::int32_t node = wait_heads_[w];
        if (node == kIqChainEnd)
            return false;
        wait_heads_[w] = kIqChainEnd;
        while (node != kIqChainEnd) {
            std::int32_t id = node / 2;
            size_t si = static_cast<size_t>(node % 2);
            IqSlot &s = slot(id);
            node = s.next_wait[si];
            s.next_wait[si] = kIqNotChained;
            pushCandidate(id, true);
        }
        return true;
    }

    /**
     * A clock-grid change landed: every memoized ready time is stale.
     * Timed and candidate slots re-evaluate at this edge — exactly
     * where the reference scan recomputes its per-slot memos — while
     * chained waiters keep their lazily epoch-checked source memos
     * (their pendingness is not a grid extrapolation).
     */
    void
    invalidateTimes()
    {
        while (!timed_.empty()) {
            std::int32_t id = timed_.back().id;
            timed_.pop_back();
            slot(id).in_timed = false;
            pushCandidate(id, true);
        }
        for (const CandEntry &e : cand_)
            slot(e.id).needs_eval = true;
    }

    /** Invoke f(id, slot) for every live slot (pool order). */
    template <typename F>
    void
    forEachLive(F f) const
    {
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].live)
                f(static_cast<std::int32_t>(i), slots_[i]);
        }
    }

    /** Invoke f(fp, reg_index, id, si) for every chained waiter. */
    template <typename F>
    void
    forEachWaiter(F f) const
    {
        for (size_t w = 0; w < wait_heads_.size(); ++w) {
            bool fp = static_cast<int>(w) >= phys_int_;
            int reg = static_cast<int>(w) -
                      (fp ? phys_int_ : 0);
            std::int32_t node = wait_heads_[w];
            while (node != kIqChainEnd) {
                std::int32_t id = node / 2;
                size_t si = static_cast<size_t>(node % 2);
                f(fp, reg, id, static_cast<int>(si));
                node = slots_[static_cast<size_t>(id)].next_wait[si];
            }
        }
    }

  private:
    size_t
    waitIndex(PhysRef ref) const
    {
        GALS_ASSERT(ref.index >= 0 && !wait_heads_.empty(),
                    "waiter index for an always-ready register");
        size_t w = static_cast<size_t>(ref.index) +
                   (ref.fp ? static_cast<size_t>(phys_int_) : 0);
        GALS_ASSERT(w < wait_heads_.size(),
                    "waiter index out of range");
        return w;
    }

    /** Candidate-ring entry: the age key cached next to the id. */
    struct CandEntry
    {
        SeqNum seq;
        std::int32_t id;
    };
    /** Timer-ring entry: the deadline cached next to the id. */
    struct TimedEntry
    {
        Tick at;
        std::int32_t id;
    };

    /** Restore the heap property after replacing the root. */
    void
    siftDownTimed()
    {
        const size_t n = timed_.size();
        size_t i = 0;
        for (;;) {
            size_t best = i;
            size_t l = 2 * i + 1;
            size_t r = 2 * i + 2;
            if (l < n && timed_[l].at < timed_[best].at)
                best = l;
            if (r < n && timed_[r].at < timed_[best].at)
                best = r;
            if (best == i)
                return;
            std::swap(timed_[i], timed_[best]);
            i = best;
        }
    }

    int capacity_;
    int phys_int_ = 0;
    ArenaVector<IqSlot> slots_;
    ArenaVector<std::int32_t> free_;
    size_t live_ = 0;
    ArenaVector<CandEntry> cand_;
    ArenaVector<TimedEntry> timed_;
    ArenaVector<std::int32_t> wait_heads_;
};

/** Null link of the LSQ blocked-load chains ("no entry"). */
constexpr std::uint64_t kLsqNoId = ~0ULL;

/** One load/store queue entry (program order). */
struct LsqEntry
{
    size_t rob_idx = 0;
    bool is_store = false;
    Addr line_addr = 0;
    /** Arrival at the load/store domain; kTickMax until then. */
    Tick arrived_at = kTickMax;
    bool issued = false;
    /** Monotone allocation id; doubles as the age order. */
    std::uint64_t id = 0;
    /**
     * Memoized load/store-domain visibility of the entry's
     * address-generation completion; kTickMax = not yet computed.
     * Epoch-tagged like InFlightOp's memos.
     */
    Tick agen_vis = kTickMax;
    std::uint32_t agen_vis_epoch = 0;
    /**
     * Wakeup index for the per-edge LSQ walks. What the entry is
     * provably waiting for, so the walk can skip it with one or two
     * compares — each bound is *per entry*, so no event anywhere else
     * in the queue forces this entry to re-evaluate:
     *   0 — nothing recorded; evaluate fully.
     *   1 — this op's address generation has not issued; cleared
     *       directly by the issue path when it does (push wakeup via
     *       InFlightOp::lsq_id).
     *   2 — a load attempt failed on a busy MSHR; recheck once
     *       `wait_until` (the exact MSHR free time, which never moves
     *       earlier) passes, or when a store-buffer push of the same
     *       line makes the load forwardable — the only such event,
     *       since MshrBusy implies it has no older same-line store in
     *       the queue. The per-line waiter index (Lsq::wakeMshrWaiters)
     *       wakes exactly those loads, so unrelated pushes no longer
     *       re-walk the queue.
     *   3 — a load blocked on a specific older same-line store that
     *       lacks its data; chained on that store (`next_blocked`)
     *       and cleared by its data capture or its retirement
     *       (Lsq::wakeBlockedOn), never by unrelated events.
     */
    std::uint8_t wait_kind = 0;
    /** Kind-2 only: this entry's slot in the MSHR-waiter index. */
    std::uint32_t mshr_wait_pos = 0;
    Tick wait_until = kTickMax;
    /** Stores: data captured (mirrors InFlightOp::store_ready; read
     * by the per-load disambiguation scan). */
    bool data_ready = false;
    /** Stores: head of the chain of loads blocked on this store. */
    std::uint64_t blocked_head = kLsqNoId;
    /** Loads: next load blocked on the same store (kind 3). */
    std::uint64_t next_blocked = kLsqNoId;
};

/**
 * Program-ordered load/store queue with indexed wakeup paths.
 *
 * Entries are addressed by a monotone allocation id (the deque only
 * ever pops from the front, so id - firstId() is the position). Three
 * side indexes keep the per-edge work proportional to the number of
 * entries that can actually change state, not the queue occupancy:
 *
 *  - pendingStores(): ids of stores whose data is not yet captured
 *    (the store-ready scan walks only these);
 *  - waitingLoads(): ids of loads not yet issued to the cache;
 *  - a per-line map of in-queue stores, replacing the O(n) per-load
 *    (O(n^2) per edge) disambiguation scan with one lookup.
 *
 * The caller owns compaction of the two id lists (it knows which
 * entries changed state while iterating); the per-line map is
 * maintained here.
 */
class Lsq
{
  public:
    explicit Lsq(int entries)
        : capacity_(static_cast<size_t>(entries)),
          mask_((capacity_ & (capacity_ - 1)) == 0 ? capacity_ - 1
                                                   : 0),
          slots_(capacity_)
    {}

    bool full() const { return count_ >= capacity_; }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return capacity_; }
    /** Entries still allocatable (rename hoists this per batch). */
    size_t freeSlots() const { return capacity_ - count_; }

    /** Allocate the next entry; returns its allocation id. */
    std::uint64_t
    allocate(size_t rob_idx, bool is_store, Addr line_addr)
    {
        GALS_ASSERT(!full(), "LSQ overflow");
        std::uint64_t id = next_id_++;
        LsqEntry &e = byId(id);
        e = LsqEntry{};
        e.rob_idx = rob_idx;
        e.is_store = is_store;
        e.line_addr = line_addr;
        e.id = id;
        ++count_;
        if (is_store) {
            stores_.push_back(StoreRec{line_addr, id});
            pending_stores_.push_back(id);
        } else {
            waiting_loads_.push_back(id);
        }
        return id;
    }

    /** Mark the oldest not-yet-arrived entry as arrived. */
    void
    markArrived(Tick when)
    {
        GALS_ASSERT(next_arrival_id_ < next_id_,
                    "LSQ arrival with no waiting entry");
        byId(next_arrival_id_++).arrived_at = when;
    }

    /** Oldest entry (the one the ROB retires next among mem ops). */
    LsqEntry &front()
    {
        GALS_ASSERT(!empty(), "LSQ front of empty queue");
        return byId(first_id_);
    }

    void
    popFront()
    {
        GALS_ASSERT(!empty(), "LSQ pop of empty queue");
        LsqEntry &e = front();
        if (e.is_store) {
            // A store leaving the queue leaves the older-store set of
            // every load chained on it: wake exactly those.
            wakeBlockedOn(e);
            GALS_ASSERT(stores_head_ < stores_.size() &&
                            stores_[stores_head_].id == e.id,
                        "LSQ store index out of sync at pop");
            // Ring-style head advance (the seed erased the vector
            // front, an O(#stores) move per store retire); the dead
            // prefix is reclaimed in amortized O(1).
            ++stores_head_;
            if (stores_head_ == stores_.size()) {
                stores_.clear();
                stores_head_ = 0;
            } else if (stores_head_ >= 16 &&
                       stores_head_ * 2 >= stores_.size()) {
                stores_.erase(stores_.begin(),
                              stores_.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      stores_head_));
                stores_head_ = 0;
            }
        }
        ++first_id_;
        --count_;
    }

    /**
     * Entry lookup by allocation id. Ids map to fixed ring slots, so
     * this is one index operation, not a deque block-map walk.
     */
    LsqEntry &byId(std::uint64_t id) { return slots_[slotOf(id)]; }

    /** Positional access relative to the front (age order). */
    LsqEntry &at(size_t pos) { return byId(first_id_ + pos); }

    /** First id still in the queue (front()'s id). */
    std::uint64_t firstId() const { return first_id_; }

    /** Disambiguation state of the stores older than a load. */
    enum class OlderStores
    {
        None,     //!< no older in-queue store to the line.
        AllReady, //!< at least one, and every one has its data.
        Blocked,  //!< some older store still lacks its data.
    };

    /**
     * @param blocker receives the id of the first older same-line
     *        store lacking data when the result is Blocked (the load
     *        chains on exactly that store).
     */
    OlderStores
    olderStores(Addr line_addr, std::uint64_t load_id,
                std::uint64_t *blocker = nullptr) const
    {
        bool any = false;
        for (size_t i = stores_head_; i < stores_.size(); ++i) {
            const StoreRec &rec = stores_[i];
            if (rec.id >= load_id)
                break; // ids ascend: the rest are younger.
            if (rec.line != line_addr)
                continue;
            if (!byId(rec.id).data_ready) {
                if (blocker != nullptr)
                    *blocker = rec.id;
                return OlderStores::Blocked;
            }
            any = true;
        }
        return any ? OlderStores::AllReady : OlderStores::None;
    }

    /** Chain a kind-3 blocked load onto its blocking store. */
    void
    addBlockedWaiter(std::uint64_t store_id, std::uint64_t load_id)
    {
        LsqEntry &store = byId(store_id);
        LsqEntry &load = byId(load_id);
        GALS_ASSERT(store.is_store && !store.data_ready &&
                        load.next_blocked == kLsqNoId,
                    "LSQ blocked-load chain misuse");
        load.next_blocked = store.blocked_head;
        store.blocked_head = load_id;
    }

    /**
     * The blocking condition of `store` resolved (data captured, or
     * the store retires out of the queue): clear the wait memo of
     * exactly the loads chained on it. Bumps the wake counter the
     * walk summary snapshots, so the next step re-walks.
     */
    void
    wakeBlockedOn(LsqEntry &store)
    {
        std::uint64_t node = store.blocked_head;
        if (node == kLsqNoId)
            return;
        store.blocked_head = kLsqNoId;
        while (node != kLsqNoId) {
            LsqEntry &load = byId(node);
            node = load.next_blocked;
            load.next_blocked = kLsqNoId;
            load.wait_kind = 0;
        }
        ++wake_events_;
    }

    /** Indexed wake events so far (walk-summary snapshot): blocked-
     * load chain wakes plus matching-line MSHR-waiter wakes. */
    std::uint32_t wakeEvents() const { return wake_events_; }

    /**
     * Register a kind-2 (MSHR-busy) load in the per-line waiter
     * index. A store-buffer push of the same line is the only event
     * that can issue the load before its recorded MSHR free time, so
     * pushes probe exactly this list — replacing the push-counter
     * snapshot that forced a full queue re-walk on every committed
     * store. The entry memoizes its slot for O(1) removal.
     */
    void
    addMshrWaiter(std::uint64_t load_id)
    {
        LsqEntry &e = byId(load_id);
        e.mshr_wait_pos =
            static_cast<std::uint32_t>(mshr_waiters_.size());
        mshr_waiters_.push_back(MshrWaiter{e.line_addr, load_id});
    }

    /** Drop a kind-2 waiter whose memo the walk is clearing. */
    void
    removeMshrWaiter(LsqEntry &e)
    {
        size_t pos = e.mshr_wait_pos;
        GALS_ASSERT(pos < mshr_waiters_.size() &&
                        mshr_waiters_[pos].id == e.id,
                    "LSQ MSHR-waiter index out of sync");
        const MshrWaiter &back = mshr_waiters_.back();
        if (back.id != e.id) {
            byId(back.id).mshr_wait_pos =
                static_cast<std::uint32_t>(pos);
            mshr_waiters_[pos] = back;
        }
        mshr_waiters_.pop_back();
    }

    /**
     * A committed store to `line` entered the store buffer: clear
     * the wait memo of exactly the MSHR-busy loads the line makes
     * forwardable. Bumps the wake counter only when some waiter
     * matched, so unrelated pushes leave the walk summary (and the
     * sleeping domain's wake bound) alone.
     */
    void
    wakeMshrWaiters(Addr line)
    {
        bool any = false;
        for (size_t i = mshr_waiters_.size(); i-- > 0;) {
            if (mshr_waiters_[i].line != line)
                continue;
            LsqEntry &e = byId(mshr_waiters_[i].id);
            GALS_ASSERT(e.wait_kind == 2,
                        "LSQ MSHR-waiter index holds a non-waiting "
                        "entry");
            e.wait_kind = 0;
            removeMshrWaiter(e);
            any = true;
        }
        if (any)
            ++wake_events_;
    }

    /** Live kind-2 waiters (tests pin the index's bookkeeping). */
    size_t mshrWaiterCount() const { return mshr_waiters_.size(); }

    /** One in-queue store, in age order (flat: the disambiguation
     * scan touches only this dense list). */
    struct StoreRec
    {
        Addr line = 0;
        std::uint64_t id = 0;
    };

    /** One kind-2 waiter of the per-line MSHR-wait index. */
    struct MshrWaiter
    {
        Addr line = 0;
        std::uint64_t id = 0;
    };

    /** Number of in-queue stores. */
    size_t storeCount() const { return stores_.size() - stores_head_; }

    /** Invoke f(rec) for every in-queue store, oldest first. */
    template <typename F>
    void
    forEachStore(F f) const
    {
        for (size_t i = stores_head_; i < stores_.size(); ++i)
            f(stores_[i]);
    }

    /**
     * Ids of stores whose data is not yet captured, in age order (the
     * store-ready walk touches only these; the caller compacts, as
     * with the waiting loads).
     */
    ArenaVector<std::uint64_t> &pendingStores()
    {
        return pending_stores_;
    }
    const ArenaVector<std::uint64_t> &pendingStores() const
    {
        return pending_stores_;
    }

    /** Ids of loads not yet issued to the cache, in age order. */
    ArenaVector<std::uint64_t> &waitingLoads()
    {
        return waiting_loads_;
    }
    const ArenaVector<std::uint64_t> &waitingLoads() const
    {
        return waiting_loads_;
    }

    const LsqEntry &byId(std::uint64_t id) const
    {
        return slots_[slotOf(id)];
    }

  private:
    size_t
    slotOf(std::uint64_t id) const
    {
        return mask_ != 0 ? static_cast<size_t>(id) & mask_
                          : static_cast<size_t>(id % capacity_);
    }

    size_t capacity_;
    size_t mask_;
    ArenaVector<LsqEntry> slots_;
    size_t count_ = 0;
    std::uint64_t next_id_ = 0;
    std::uint64_t first_id_ = 0;
    std::uint64_t next_arrival_id_ = 0;
    ArenaVector<StoreRec> stores_;
    size_t stores_head_ = 0;
    ArenaVector<std::uint64_t> pending_stores_;
    ArenaVector<std::uint64_t> waiting_loads_;
    /** Kind-2 waiters, probed by store-buffer pushes (dense; each
     * entry memoizes its slot in mshr_wait_pos). */
    ArenaVector<MshrWaiter> mshr_waiters_;
    std::uint32_t wake_events_ = 0;
};

/** A committed store waiting to write the cache. */
struct StoreWrite
{
    Addr line_addr = 0;
    Tick ready_at = 0;
};

/** Post-commit store buffer with an O(1) line-occupancy index. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(int entries)
        : capacity_(static_cast<size_t>(entries)), slots_(capacity_)
    {}

    bool full() const { return count_ >= capacity_; }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return capacity_; }
    /** Slots still allocatable (retire hoists this per group). */
    size_t freeSlots() const { return capacity_ - count_; }

    void
    push(Addr line_addr, Tick ready_at)
    {
        GALS_ASSERT(!full(), "store-buffer overflow");
        slots_[wrap(head_ + count_)] = StoreWrite{line_addr, ready_at};
        ++count_;
    }

    StoreWrite &front() { return slots_[head_]; }

    /** Drain time of the head write; only valid when !empty(). */
    Tick frontReadyAt() const { return slots_[head_].ready_at; }

    void
    pop()
    {
        GALS_ASSERT(!empty(), "store-buffer underflow");
        head_ = wrap(head_ + 1);
        --count_;
    }

    /**
     * True when a pending write matches the line (forwarding). The
     * buffer holds at most a few entries in a flat ring, so a linear
     * probe beats any index.
     */
    bool
    hasLine(Addr line_addr) const
    {
        for (size_t i = 0; i < count_; ++i) {
            if (slots_[wrap(head_ + i)].line_addr == line_addr)
                return true;
        }
        return false;
    }

  private:
    size_t
    wrap(size_t pos) const
    {
        return pos >= capacity_ ? pos - capacity_ : pos;
    }

    size_t capacity_;
    ArenaVector<StoreWrite> slots_;
    size_t head_ = 0;
    size_t count_ = 0;
};

/** Per-domain function units: N pipelined ALUs + 1 mult/div unit. */
struct FuPool
{
    int alus = 4;
    int alu_used = 0;
    int muldiv_used = 0;
    Tick muldiv_busy_until = 0;

    void
    newCycle()
    {
        alu_used = 0;
        muldiv_used = 0;
    }

    /** Try to claim a unit for the op class at time `now`. */
    bool
    claim(OpClass cls, Tick now, Tick complete_at)
    {
        bool muldiv = cls == OpClass::IntMul || cls == OpClass::IntDiv ||
                      cls == OpClass::FpMul || cls == OpClass::FpDiv;
        if (!muldiv) {
            if (alu_used >= alus)
                return false;
            ++alu_used;
            return true;
        }
        if (muldiv_used >= 1 || muldiv_busy_until > now)
            return false;
        ++muldiv_used;
        // Divides occupy the unit to completion (not pipelined).
        if (cls == OpClass::IntDiv || cls == OpClass::FpDiv)
            muldiv_busy_until = complete_at;
        return true;
    }
};

} // namespace gals

#endif // GALS_CORE_STRUCTURES_HH
