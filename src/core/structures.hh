/**
 * @file
 * In-flight bookkeeping structures of the out-of-order core: the
 * in-flight op record, reorder buffer, resizable issue queue,
 * load/store queue, store buffer, and function-unit pools.
 *
 * None of these know about clocks or domains; the Processor supplies
 * all times. Because a mispredicted branch halts fetch until it
 * resolves (no wrong-path execution), nothing here ever needs to be
 * squashed; entries leave only by completing/retiring.
 */

#ifndef GALS_CORE_STRUCTURES_HH
#define GALS_CORE_STRUCTURES_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/regfile.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/uop.hh"

namespace gals
{

/** Execution latencies in owning-domain cycles (Alpha-flavored). */
constexpr int
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:  return 1;
      case OpClass::Branch:  return 1;
      case OpClass::IntMul:  return 3;
      case OpClass::IntDiv:  return 20;
      case OpClass::FpAlu:   return 4;
      case OpClass::FpMul:   return 4;
      case OpClass::FpDiv:   return 16;
      default:               return 1; // memory ops: cache-determined.
    }
}

/** Domain in which an op class executes. */
constexpr DomainId
execDomain(OpClass cls)
{
    if (isMemOp(cls))
        return DomainId::LoadStore;
    if (isFpOp(cls))
        return DomainId::FloatingPoint;
    return DomainId::Integer;
}

/** One op in flight from rename to retire. */
struct InFlightOp
{
    MicroOp uop;
    SeqNum seq = 0;

    PhysRef psrc1;
    PhysRef psrc2;
    PhysRef pdst;
    PhysRef old_pdst;

    /** Earliest issue time (dispatch-depth pipe). */
    Tick issue_eligible = 0;
    bool in_queue = false;
    bool issued = false;
    /** Absolute completion time; kTickMax until known. */
    Tick complete_at = kTickMax;
    DomainId domain = DomainId::Integer;

    /** Memory ops: slot sequence in the LSQ. */
    bool is_mem = false;
    /**
     * Memory ops: completion time of the address-generation uop
     * issued from the integer queue (kTickMax until issued). The
     * load/store unit may access the cache only once this is visible
     * in its domain.
     */
    Tick agen_done = kTickMax;
    /** Stores: address and data captured, ready to retire. */
    bool store_ready = false;

    /** Branches. */
    BranchPrediction pred{};
    bool mispredict = false;

    bool completed() const { return complete_at != kTickMax; }
};

/** Circular reorder buffer. Slots stay valid until retire. */
class Rob
{
  public:
    explicit Rob(int entries)
        : slots_(static_cast<size_t>(entries))
    {}

    bool full() const { return count_ == slots_.size(); }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    /** Allocate the next slot (program order); returns its index. */
    size_t
    alloc()
    {
        GALS_ASSERT(!full(), "ROB overflow");
        size_t idx = tail_;
        tail_ = (tail_ + 1) % slots_.size();
        ++count_;
        return idx;
    }

    /** Index of the oldest op. */
    size_t headIndex() const
    {
        GALS_ASSERT(!empty(), "ROB head of empty buffer");
        return head_;
    }

    /** Pop the oldest op after retirement. */
    void
    retireHead()
    {
        GALS_ASSERT(!empty(), "ROB underflow");
        head_ = (head_ + 1) % slots_.size();
        --count_;
    }

    InFlightOp &operator[](size_t idx) { return slots_[idx]; }
    const InFlightOp &operator[](size_t idx) const
    {
        return slots_[idx];
    }

  private:
    std::vector<InFlightOp> slots_;
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t count_ = 0;
};

/** Resizable issue queue holding ROB indices in age order. */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity) : capacity_(capacity) {}

    bool full() const
    {
        return entries_.size() >= static_cast<size_t>(capacity_);
    }
    size_t size() const { return entries_.size(); }
    int capacity() const { return capacity_; }

    /**
     * Change capacity. Occupancy above a smaller capacity is legal;
     * it drains naturally because full() blocks further dispatch.
     */
    void setCapacity(int capacity) { capacity_ = capacity; }

    void
    push(size_t rob_idx)
    {
        GALS_ASSERT(!full(), "issue-queue overflow");
        entries_.push_back(rob_idx);
    }

    /** Age-ordered entries; the Processor selects and removes. */
    std::vector<size_t> &entries() { return entries_; }

  private:
    int capacity_;
    std::vector<size_t> entries_;
};

/** One load/store queue entry (program order). */
struct LsqEntry
{
    size_t rob_idx = 0;
    bool is_store = false;
    Addr line_addr = 0;
    /** Arrival at the load/store domain; kTickMax until then. */
    Tick arrived_at = kTickMax;
    bool issued = false;
};

/** Program-ordered load/store queue. */
class Lsq
{
  public:
    explicit Lsq(int entries) : capacity_(static_cast<size_t>(entries))
    {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }

    void
    allocate(size_t rob_idx, bool is_store, Addr line_addr)
    {
        GALS_ASSERT(!full(), "LSQ overflow");
        entries_.push_back(LsqEntry{rob_idx, is_store, line_addr,
                                    kTickMax, false});
    }

    /** Mark the oldest not-yet-arrived entry as arrived. */
    void
    markArrived(Tick when)
    {
        for (LsqEntry &e : entries_) {
            if (e.arrived_at == kTickMax) {
                e.arrived_at = when;
                return;
            }
        }
        panic("LSQ arrival with no waiting entry");
    }

    /** Oldest entry (the one the ROB retires next among mem ops). */
    LsqEntry &front()
    {
        GALS_ASSERT(!empty(), "LSQ front of empty queue");
        return entries_.front();
    }

    void
    popFront()
    {
        GALS_ASSERT(!empty(), "LSQ pop of empty queue");
        entries_.pop_front();
    }

    std::deque<LsqEntry> &entries() { return entries_; }

  private:
    size_t capacity_;
    std::deque<LsqEntry> entries_;
};

/** A committed store waiting to write the cache. */
struct StoreWrite
{
    Addr line_addr = 0;
    Tick ready_at = 0;
};

/** Post-commit store buffer. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(int entries)
        : capacity_(static_cast<size_t>(entries))
    {}

    bool full() const { return writes_.size() >= capacity_; }
    bool empty() const { return writes_.empty(); }
    size_t size() const { return writes_.size(); }
    size_t capacity() const { return capacity_; }

    void
    push(Addr line_addr, Tick ready_at)
    {
        GALS_ASSERT(!full(), "store-buffer overflow");
        writes_.push_back(StoreWrite{line_addr, ready_at});
    }

    StoreWrite &front() { return writes_.front(); }
    void pop() { writes_.pop_front(); }

    /** True when a pending write matches the line (forwarding). */
    bool
    hasLine(Addr line_addr) const
    {
        for (const StoreWrite &w : writes_) {
            if (w.line_addr == line_addr)
                return true;
        }
        return false;
    }

  private:
    size_t capacity_;
    std::deque<StoreWrite> writes_;
};

/** Per-domain function units: N pipelined ALUs + 1 mult/div unit. */
struct FuPool
{
    int alus = 4;
    int alu_used = 0;
    int muldiv_used = 0;
    Tick muldiv_busy_until = 0;

    void
    newCycle()
    {
        alu_used = 0;
        muldiv_used = 0;
    }

    /** Try to claim a unit for the op class at time `now`. */
    bool
    claim(OpClass cls, Tick now, Tick complete_at)
    {
        bool muldiv = cls == OpClass::IntMul || cls == OpClass::IntDiv ||
                      cls == OpClass::FpMul || cls == OpClass::FpDiv;
        if (!muldiv) {
            if (alu_used >= alus)
                return false;
            ++alu_used;
            return true;
        }
        if (muldiv_used >= 1 || muldiv_busy_until > now)
            return false;
        ++muldiv_used;
        // Divides occupy the unit to completion (not pipelined).
        if (cls == OpClass::IntDiv || cls == OpClass::FpDiv)
            muldiv_busy_until = complete_at;
        return true;
    }
};

} // namespace gals

#endif // GALS_CORE_STRUCTURES_HH
