/**
 * @file
 * Machine configuration: Table 5 parameters, clocking mode, structure
 * configuration, and the derived per-domain frequencies.
 *
 * Three kinds of machine are built from this one description:
 *  - Synchronous: one global clock at the minimum of the four
 *    structure frequencies (optimal timing tables), 9+7 mispredict
 *    penalty, no synchronizer costs, no B partitions;
 *  - MCD whole-program: four domain clocks from the adaptive timing
 *    tables, a fixed adaptive configuration, B partitions unused,
 *    10+9 mispredict penalty, synchronizers on every crossing;
 *  - MCD phase-adaptive: as above plus B partitions and the on-line
 *    controllers (accounting caches, ILP tracker) driving PLL-timed
 *    reconfigurations.
 */

#ifndef GALS_CORE_MACHINE_CONFIG_HH
#define GALS_CORE_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "clock/pll.hh"
#include "common/types.hh"
#include "timing/frequency_model.hh"

namespace gals
{

/** Clock organization of the machine. */
enum class ClockingMode : std::uint8_t
{
    Synchronous,
    MCD,
};

/** Indices into the four adaptive-structure configuration tables. */
struct AdaptiveConfig
{
    int icache = 0;  //!< Table 2 row (paired branch predictor).
    int dcache = 0;  //!< Table 1 row (L1D/L2 pair).
    int iq_int = 0;  //!< integer issue-queue size index.
    int iq_fp = 0;   //!< floating-point issue-queue size index.

    bool operator==(const AdaptiveConfig &) const = default;

    /** e.g. "I1 D2 Qi0 Qf0". */
    std::string str() const;
};

/** Full machine description. */
struct MachineConfig
{
    ClockingMode mode = ClockingMode::MCD;
    /** Enable B partitions and on-line controllers (MCD only). */
    bool phase_adaptive = false;

    /** Structure configuration (initial configuration in phase mode). */
    AdaptiveConfig adaptive{};
    /** Synchronous mode only: Table 3 I-cache option, 0..15. */
    int sync_icache_opt = 4;

    // ------------------------------------------------------------------
    // Table 5 parameters.
    // ------------------------------------------------------------------
    int fetch_queue_entries = 16;
    int fetch_width = 8;
    int decode_width = 8;
    int issue_width = 6;
    int retire_width = 11;
    int rob_entries = 256;
    int phys_int_regs = 96;
    int phys_fp_regs = 96;
    int lsq_entries = 64;
    int store_buffer_entries = 16;
    int int_alus = 4;       //!< plus 1 mult/div unit.
    int fp_alus = 4;        //!< plus 1 mult/div/sqrt unit.
    int mem_ports = 2;
    int mshrs = 8;
    int dispatch_fifo_entries = 16;

    /** Front-end pipe depth: 9 sync, 10 adaptive MCD (Table 5). */
    int feDepth() const { return mode == ClockingMode::MCD ? 10 : 9; }
    /** Dispatch-to-issue depth: 7 sync, 9 adaptive MCD. */
    int dispatchDepth() const
    {
        return mode == ClockingMode::MCD ? 9 : 7;
    }
    /** Load/store domain dispatch depth (address-generation path). */
    int lsDispatchDepth() const { return 2; }

    // ------------------------------------------------------------------
    // Clocking.
    // ------------------------------------------------------------------
    /**
     * Per-edge Gaussian clock jitter (MCD domains); 0 disables.
     * Synchronization-time uncertainty is already captured by the
     * 30%-of-the-faster-period guard band (as in the MCD simulator's
     * synchronizer model), so the default leaves the edge grid
     * clean; set a sigma to additionally wobble delivered edges.
     */
    double jitter_sigma_ps = 0.0;
    std::uint64_t seed = 12345;
    /**
     * Ablation hook: when positive, every domain runs at this
     * frequency (synchronizer costs, penalties and structures keep
     * their mode-specific behavior). Used to isolate the cost of
     * inter-domain synchronization (the <3% claim of [28]).
     */
    double force_freq_ghz = 0.0;

    // ------------------------------------------------------------------
    // Phase control.
    //
    // The paper uses 15K-instruction intervals and ~15us PLL locks
    // against 100M+-instruction windows. Our windows are scaled down
    // ~1000x (DESIGN.md §5), so the adaptation timescales are scaled
    // too, preserving the interval:phase:window proportions. Paper-
    // faithful values are restored by setting cache_interval_instrs
    // to 15'000 and pll to PllParams{15.0, 1.7, 10.0, 20.0}.
    // ------------------------------------------------------------------
    /** Cache-controller interval (committed instructions). */
    std::uint64_t cache_interval_instrs = 2'000;
    /** PLL lock-time distribution for frequency changes. */
    PllParams pll{1.5, 0.17, 1.0, 2.0};
    /**
     * Relative score advantage a queue-size candidate needs over the
     * current size before a PLL re-lock is initiated.
     */
    double queue_hysteresis = 0.08;
    /**
     * Relative cost advantage a cache configuration needs over the
     * current one before a PLL re-lock is initiated. Damps
     * interval-boundary flapping, which our scaled-down windows make
     * relatively more expensive than in the paper.
     */
    double cache_hysteresis = 0.02;
    /**
     * The I-cache threshold is stiffer: fetch supply is the most
     * reconfiguration-sensitive pipe (predictor re-warming, refill),
     * so borderline cost differences must not flip it.
     */
    double icache_hysteresis = 0.08;
    /**
     * Consecutive agreeing decisions required before a change is
     * applied: reconfiguration costs (PLL re-lock, predictor state
     * loss) span multiple decision intervals, so one-sample blips
     * must not trigger them.
     */
    int queue_persistence = 8;
    int cache_persistence = 2;

    /** Frequency of one domain under the given structure config. */
    double domainFreqGHz(DomainId d, const AdaptiveConfig &cur) const;

    /** Global clock in Synchronous mode. */
    double synchronousFreqGHz() const;

    // ------------------------------------------------------------------
    // Factories.
    // ------------------------------------------------------------------
    /** The paper's best-overall fully synchronous machine (§4). */
    static MachineConfig bestSynchronous();

    /** Any synchronous design point (for the 1,024-config sweep). */
    static MachineConfig synchronous(int opt_icache, int dcache,
                                     int iq_int, int iq_fp);

    /** MCD with a fixed adaptive configuration (whole-program mode). */
    static MachineConfig mcdProgram(const AdaptiveConfig &cfg);

    /** MCD with on-line phase-adaptive control. */
    static MachineConfig mcdPhaseAdaptive();
};

} // namespace gals

#endif // GALS_CORE_MACHINE_CONFIG_HH
