/**
 * @file
 * Results of one simulation run over the measured window.
 */

#ifndef GALS_CORE_RUN_STATS_HH
#define GALS_CORE_RUN_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "control/reconfig_trace.hh"

namespace gals
{

/** Statistics for one (machine, workload) run. */
struct RunStats
{
    std::string benchmark;
    std::string config;

    /** Committed instructions in the measured window. */
    std::uint64_t committed = 0;
    /** Wall-clock (simulated) time of the window, ps. */
    Tick time_ps = 0;

    /** Committed instructions per nanosecond (frequency-honest IPC). */
    double
    instrsPerNs() const
    {
        return time_ps ? static_cast<double>(committed) /
                             (static_cast<double>(time_ps) / 1000.0)
                       : 0.0;
    }

    // Cache behavior over the window.
    std::uint64_t l1i_accesses = 0, l1i_misses = 0;
    std::uint64_t l1d_accesses = 0, l1d_misses = 0;
    std::uint64_t l2_accesses = 0, l2_misses = 0;
    std::uint64_t l1i_b_hits = 0, l1d_b_hits = 0, l2_b_hits = 0;

    // Branch behavior.
    std::uint64_t branches = 0, mispredicts = 0;

    /** Fetch stalls caused by mispredicted branches. */
    std::uint64_t flushes = 0;

    /** PLL re-locks performed (phase mode). */
    std::uint64_t relocks = 0;

    /**
     * Instruction-weighted residency of each configuration index,
     * per structure (phase mode; all weight on the fixed index
     * otherwise).
     */
    std::array<std::uint64_t, 4> icache_residency{};
    std::array<std::uint64_t, 4> dcache_residency{};
    std::array<std::uint64_t, 4> iq_int_residency{};
    std::array<std::uint64_t, 4> iq_fp_residency{};

    /** Reconfiguration log (phase mode). */
    ReconfigTrace trace;
};

} // namespace gals

#endif // GALS_CORE_RUN_STATS_HH
