#include "core/reconfig.hh"

#include "common/logging.hh"
#include "core/front_end.hh"
#include "core/issue_cluster.hh"
#include "core/lsu.hh"
#include "obs/trace.hh"

namespace gals
{

ReconfigUnit::ReconfigUnit(const MachineConfig &cfg,
                           AdaptiveConfig &cur, CoreTiming &timing,
                           ReclockPort &reclock)
    : cfg_(cfg), cur_cfg_(cur), timing_(timing), reclock_(reclock)
{
    for (int d = 0; d < kNumDomains; ++d) {
        plls_[static_cast<size_t>(d)] =
            Pll(cfg_.pll, cfg_.seed + 31 * static_cast<unsigned>(d));
    }
}

void
ReconfigUnit::attachDomains(FrontEnd &fe, IssueCluster &int_cluster,
                            IssueCluster &fp_cluster,
                            LoadStoreUnit &lsu)
{
    fe_ = &fe;
    int_cluster_ = &int_cluster;
    fp_cluster_ = &fp_cluster;
    lsu_ = &lsu;
}

DomainId
ReconfigUnit::domainOf(Structure s)
{
    switch (s) {
      case Structure::ICache:        return DomainId::FrontEnd;
      case Structure::DCachePair:    return DomainId::LoadStore;
      case Structure::IntIssueQueue: return DomainId::Integer;
      case Structure::FpIssueQueue:  return DomainId::FloatingPoint;
    }
    panic("bad structure");
}

int
ReconfigUnit::currentIndexOf(Structure s) const
{
    switch (s) {
      case Structure::ICache:        return cur_cfg_.icache;
      case Structure::DCachePair:    return cur_cfg_.dcache;
      case Structure::IntIssueQueue: return cur_cfg_.iq_int;
      case Structure::FpIssueQueue:  return cur_cfg_.iq_fp;
    }
    panic("bad structure");
}

void
ReconfigUnit::applyStructure(Structure s, int target, Tick now)
{
    switch (s) {
      case Structure::ICache:
        cur_cfg_.icache = target;
        fe_->applyICache(target);
        break;
      case Structure::DCachePair:
        cur_cfg_.dcache = target;
        lsu_->applyDCache(target, now);
        break;
      case Structure::IntIssueQueue:
        cur_cfg_.iq_int = target;
        int_cluster_->setIqCapacity(kIssueQueueSizes[target]);
        break;
      case Structure::FpIssueQueue:
        cur_cfg_.iq_fp = target;
        fp_cluster_->setIqCapacity(kIssueQueueSizes[target]);
        break;
    }
}

void
ReconfigUnit::request(Structure s, int target, Tick now,
                      std::uint64_t committed)
{
    int cur = currentIndexOf(s);
    if (target == cur)
        return;
    DomainId d = domainOf(s);
    Pll &pll = plls_[static_cast<size_t>(d)];
    if (pll.busy(now) || pending_[static_cast<size_t>(d)].active)
        return;

    AdaptiveConfig probe = cur_cfg_;
    switch (s) {
      case Structure::ICache:        probe.icache = target; break;
      case Structure::DCachePair:    probe.dcache = target; break;
      case Structure::IntIssueQueue: probe.iq_int = target; break;
      case Structure::FpIssueQueue:  probe.iq_fp = target; break;
    }
    double f_new = cfg_.domainFreqGHz(d, probe);
    double f_old = timing_.clock(d).freqGHz();

    Tick lock_done = pll.startRelock(now);
    timing_.clock(d).setPeriod(periodPsFromGHz(f_new), lock_done);
    trace_.record(committed, s, cur, target);
    if (obs::tracing()) {
        // Both land on the front end's track: every controller is
        // sampled inside the front end's step at `now`, so the
        // track's publication order is the decision order.
        obs::Tracer &tr = obs::Tracer::instance();
        const int gd =
            trace_base_ + static_cast<int>(DomainId::FrontEnd);
        tr.sim(gd, obs::Ev::Reconfig, now,
               static_cast<std::uint64_t>(s),
               (static_cast<std::uint64_t>(cur) << 8) |
                   static_cast<std::uint64_t>(target));
        tr.sim(gd, obs::Ev::PllRelock, now, lock_done - now,
               static_cast<std::uint64_t>(d));
    }
    // The re-clocked domain must consume the edge where the period
    // change lands even if it is otherwise idle: other domains read
    // its grid (nextEdgeAfter/period) for synchronizer timing, so a
    // parked clock must not lag across the change.
    reclock_.schedule(d, lock_done, now);

    if (f_new >= f_old) {
        // Speeding up: run the simpler configuration through the
        // lock window (downsize at the start of the change).
        applyStructure(s, target, now);
    } else {
        // Slowing down: upsize only once the slower clock is locked.
        pending_[static_cast<size_t>(d)] =
            PendingApply{true, s, target, lock_done};
    }
}

void
ReconfigUnit::applyPending(DomainId d, Tick now)
{
    PendingApply &p = pending_[static_cast<size_t>(d)];
    if (p.active && now >= p.apply_at) {
        applyStructure(p.structure, p.target, now);
        p.active = false;
    }
}

std::uint64_t
ReconfigUnit::relocks() const
{
    std::uint64_t total = 0;
    for (const Pll &p : plls_)
        total += p.relocks();
    return total;
}

} // namespace gals
