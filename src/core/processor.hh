/**
 * @file
 * The adaptive GALS/MCD processor model.
 *
 * Four domains — front end (I-cache, predictor, rename, ROB, retire),
 * integer, floating-point, and load/store (LSQ, L1D, unified L2) —
 * each own a clock. The main loop always steps the domain with the
 * earliest pending edge; all cross-domain traffic (dispatch, operand
 * visibility, redirects, retirement visibility) pays the synchronizer
 * rule. In Synchronous mode the four clocks are identical and the
 * synchronizer rule degenerates to plain next-edge latching.
 *
 * Fetch is oracle-driven: a mispredicted branch halts fetch until it
 * resolves in the integer domain, so the flush penalty (front-end
 * depth + dispatch depth + synchronization) is paid in time without
 * modeling wrong-path instructions (see DESIGN.md §4).
 */

#ifndef GALS_CORE_PROCESSOR_HH
#define GALS_CORE_PROCESSOR_HH

#include <array>
#include <memory>
#include <optional>

#include "cache/accounting_cache.hh"
#include "cache/main_memory.hh"
#include "clock/clock.hh"
#include "clock/pll.hh"
#include "clock/sync_fifo.hh"
#include "control/ilp_tracker.hh"
#include "control/queue_controller.hh"
#include "control/reconfig_trace.hh"
#include "core/machine_config.hh"
#include "core/run_stats.hh"
#include "core/structures.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/generator.hh"

namespace gals
{

/** One configured machine executing one synthetic benchmark. */
class Processor
{
  public:
    Processor(const MachineConfig &config, const WorkloadParams &wl);

    /** Run warmup + measured window; return window statistics. */
    RunStats run();

    /** Current structure configuration (changes in phase mode). */
    const AdaptiveConfig &currentConfig() const { return cur_cfg_; }

  private:
    struct FetchedOp
    {
        MicroOp uop;
        BranchPrediction pred{};
        bool mispredict = false;
    };

    /** A structure change waiting for PLL lock completion. */
    struct PendingApply
    {
        bool active = false;
        Structure structure = Structure::ICache;
        int target = 0;
        Tick apply_at = 0;
    };

    // Construction.
    void buildClocks();
    void buildCaches();

    // Main loop.
    void stepDomain(int d, Tick now);

    // Front-end stages.
    void doRetire(Tick now);
    void doRename(Tick now);
    void doFetch(Tick now);

    // Execution domains.
    void stepIssueDomain(DomainId dom, Tick now);

    // Load/store domain.
    void stepLoadStore(Tick now);
    bool tryStartLoad(LsqEntry &entry, Tick now, int &ports_used);
    void drainStoreBuffer(Tick now, int &ports_used, int max_ports);
    Tick dataHierarchyTime(Addr addr, Tick now);
    Tick icacheMissTime(Tick now);

    // Timing helpers.
    Clock &clock(DomainId d)
    {
        return clocks_[static_cast<size_t>(d)];
    }
    const Clock &clock(DomainId d) const
    {
        return clocks_[static_cast<size_t>(d)];
    }
    /** When a value produced in `prod` is usable in `cons`. */
    Tick visibleAt(Tick produced, DomainId prod, DomainId cons) const;
    /** Operand readiness for an op executing in `dom` at `now`. */
    bool sourcesVisible(const InFlightOp &op, DomainId dom,
                        Tick now) const;
    bool refVisible(PhysRef ref, DomainId dom, Tick now) const;

    // Phase-adaptive control.
    void controlCaches(Tick now);
    void controlQueues(Tick now);
    void requestConfig(Structure s, int target, Tick now);
    void applyStructure(Structure s, int target, Tick now);
    int currentIndexOf(Structure s) const;
    DomainId domainOf(Structure s) const;
    void applyPending(DomainId d, Tick now);

    // Statistics.
    void snapshotBaselines(Tick now);
    void finalizeStats(RunStats &stats) const;

    MachineConfig cfg_;
    WorkloadParams wl_params_;
    SyntheticWorkload workload_;
    AdaptiveConfig cur_cfg_;
    bool same_domain_;

    std::array<Clock, 4> clocks_;
    std::array<Pll, 4> plls_;
    std::array<PendingApply, 4> pending_;

    // Structures.
    std::unique_ptr<AccountingCache> l1i_;
    std::unique_ptr<AccountingCache> l1d_;
    std::unique_ptr<AccountingCache> l2_;
    std::unique_ptr<HybridPredictor> predictor_;
    MainMemory memory_;

    RegisterFiles regs_;
    Rob rob_;
    IssueQueue iq_int_;
    IssueQueue iq_fp_;
    Lsq lsq_;
    StoreBuffer store_buffer_;
    FuPool fu_int_;
    FuPool fu_fp_;
    std::vector<Tick> mshr_busy_;

    // Fetch state.
    SyncFifo<FetchedOp> fetch_queue_;
    std::optional<MicroOp> staged_op_;
    Addr cur_fetch_line_ = ~0ULL;
    Tick fetch_line_ready_ = 0;
    bool fetch_halted_ = false;
    Tick fetch_resume_ = 0;

    // Dispatch queues (front end -> each execution domain).
    SyncFifo<size_t> disp_int_;
    SyncFifo<size_t> disp_fp_;
    SyncFifo<size_t> disp_ls_;

    // Control.
    IlpTracker ilp_tracker_;
    QueueController qctl_int_;
    QueueController qctl_fp_;
    ReconfigTrace trace_;

    /** Persistence damper: act only on repeated agreeing decisions. */
    struct Damper
    {
        int target = -1;
        int count = 0;

        /** Returns true when `target` has persisted `need` times. */
        bool
        vote(int proposal, int current, int need)
        {
            if (proposal == current) {
                target = -1;
                count = 0;
                return false;
            }
            if (proposal == target) {
                ++count;
            } else {
                target = proposal;
                count = 1;
            }
            if (count >= need) {
                target = -1;
                count = 0;
                return true;
            }
            return false;
        }
    };
    Damper damp_iq_int_;
    Damper damp_iq_fp_;
    Damper damp_icache_;
    Damper damp_dcache_;

    // Progress.
    SeqNum next_seq_ = 0;
    std::uint64_t committed_ = 0;
    std::uint64_t interval_commits_ = 0;
    Tick last_commit_time_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t fe_idle_cycles_ = 0;

    // Measurement window.
    bool measuring_ = false;
    Tick measure_start_ = 0;
    std::uint64_t measure_committed_base_ = 0;

    struct Baseline
    {
        std::uint64_t l1i_acc = 0, l1i_miss = 0, l1i_b = 0;
        std::uint64_t l1d_acc = 0, l1d_miss = 0, l1d_b = 0;
        std::uint64_t l2_acc = 0, l2_miss = 0, l2_b = 0;
        std::uint64_t bp_lookups = 0, bp_miss = 0;
        std::uint64_t flushes = 0;
        std::uint64_t relocks = 0;
    } base_;

    RunStats stats_;
};

} // namespace gals

#endif // GALS_CORE_PROCESSOR_HH
