/**
 * @file
 * The adaptive GALS/MCD processor model — the single-core composition
 * root of the domain/port architecture.
 *
 * The per-core machinery (four independently clocked domain units
 * behind the typed port layer, PLL reconfiguration, statistics) lives
 * in cmp/core.hh; this class owns what a composition root owns: the
 * flat clock array, the WakeFabric, and the DomainScheduler stepping
 * the core's domain table. The Chip (cmp/chip.hh) is the multi-core
 * root over the same pieces — one fabric, one scheduler, N cores and
 * a shared banked L2 behind the interconnect port.
 *
 * Fetch is oracle-driven: a mispredicted branch halts fetch until it
 * resolves in the integer domain, so the flush penalty (front-end
 * depth + dispatch depth + synchronization) is paid in time without
 * modeling wrong-path instructions (see DESIGN.md §4).
 */

#ifndef GALS_CORE_PROCESSOR_HH
#define GALS_CORE_PROCESSOR_HH

#include <array>

#include "clock/clock.hh"
#include "cmp/core.hh"
#include "core/machine_config.hh"
#include "core/ports.hh"
#include "core/run_stats.hh"
#include "core/scheduler.hh"

namespace gals
{

/** One configured machine executing one synthetic benchmark. */
class Processor
{
  public:
    /** Which main-loop scheduler run() uses. */
    enum class Kernel
    {
        /** Event-driven: idle domains skip edges (the default). */
        EventDriven,
        /**
         * Step every domain at every edge, as the original simulator
         * did. Kept as the bit-identical oracle for the event kernel
         * (see docs/kernel.md); also selectable with
         * GALS_KERNEL=reference.
         */
        Reference,
    };

    Processor(const MachineConfig &config, const WorkloadParams &wl);

    /** Run warmup + measured window; return window statistics. */
    RunStats run();

    /** Force a specific scheduler (tests; overrides GALS_KERNEL). */
    void setKernel(Kernel k) { kernel_ = k; }

    /** Current structure configuration (changes in phase mode). */
    const AdaptiveConfig &currentConfig() const
    {
        return core_.currentConfig();
    }

    /**
     * Run deep structural invariant checks (rename map vs free lists,
     * ROB age order, fetch-group accounting, LSQ index consistency)
     * every `every` front-end steps; 0 disables (the default). The
     * differential harness turns this on.
     */
    void setInvariantCheckInterval(std::uint32_t every)
    {
        core_.setInvariantCheckInterval(every);
    }

    /** Panics with a description on any violated invariant. */
    void validateInvariants() const { core_.validateInvariants(); }

    /** Read GALS_KERNEL (reference|event); EventDriven otherwise. */
    static Kernel kernelFromEnv();

  private:
    std::array<Clock, 4> clocks_;
    WakeFabric fabric_;
    Core core_;
    std::array<Domain *, 4> domain_table_;
    std::array<EpochBumpPort *, 4> epoch_table_;
    DomainScheduler scheduler_;

    Kernel kernel_ = Kernel::EventDriven;
};

} // namespace gals

#endif // GALS_CORE_PROCESSOR_HH
