/**
 * @file
 * The adaptive GALS/MCD processor model — the composition root of the
 * domain/port architecture.
 *
 * Four independently clocked domain units — front end (I-cache,
 * predictor, rename, ROB, retire), integer cluster, floating-point
 * cluster, and load/store unit (LSQ, L1D, unified L2) — each own
 * their clock, structures and controllers (core/front_end.hh,
 * core/issue_cluster.hh, core/lsu.hh). All cross-domain traffic —
 * dispatch, operand visibility, redirects, retirement visibility,
 * store drain, epoch bumps — flows through the typed ports of
 * core/ports.hh, the single owner of the publication-order rule. The
 * step loop itself lives in the generic DomainScheduler
 * (core/scheduler.hh). In Synchronous mode the four clocks are
 * identical and the synchronizer rule degenerates to plain next-edge
 * latching.
 *
 * Fetch is oracle-driven: a mispredicted branch halts fetch until it
 * resolves in the integer domain, so the flush penalty (front-end
 * depth + dispatch depth + synchronization) is paid in time without
 * modeling wrong-path instructions (see DESIGN.md §4).
 */

#ifndef GALS_CORE_PROCESSOR_HH
#define GALS_CORE_PROCESSOR_HH

#include <array>

#include "clock/clock.hh"
#include "core/domain.hh"
#include "core/front_end.hh"
#include "core/issue_cluster.hh"
#include "core/lsu.hh"
#include "core/machine_config.hh"
#include "core/ports.hh"
#include "core/reconfig.hh"
#include "core/run_stats.hh"
#include "core/scheduler.hh"

namespace gals
{

/** One configured machine executing one synthetic benchmark. */
class Processor
{
  public:
    /** Which main-loop scheduler run() uses. */
    enum class Kernel
    {
        /** Event-driven: idle domains skip edges (the default). */
        EventDriven,
        /**
         * Step every domain at every edge, as the original simulator
         * did. Kept as the bit-identical oracle for the event kernel
         * (see docs/kernel.md); also selectable with
         * GALS_KERNEL=reference.
         */
        Reference,
    };

    Processor(const MachineConfig &config, const WorkloadParams &wl);

    /** Run warmup + measured window; return window statistics. */
    RunStats run();

    /** Force a specific scheduler (tests; overrides GALS_KERNEL). */
    void setKernel(Kernel k) { kernel_ = k; }

    /** Current structure configuration (changes in phase mode). */
    const AdaptiveConfig &currentConfig() const { return cur_cfg_; }

    /**
     * Run deep structural invariant checks (rename map vs free lists,
     * ROB age order, fetch-group accounting, LSQ index consistency)
     * every `every` front-end steps; 0 disables (the default). The
     * differential harness turns this on.
     */
    void setInvariantCheckInterval(std::uint32_t every);

    /** Panics with a description on any violated invariant. */
    void validateInvariants() const;

  private:
    void snapshotBaselines(Tick now);
    void finalizeStats(RunStats &stats) const;

    MachineConfig cfg_;
    WorkloadParams wl_params_;
    AdaptiveConfig cur_cfg_;

    std::array<Clock, 4> clocks_;
    CoreTiming timing_;
    WakeHub hub_;
    RunStats stats_;

    // Domain units (each owns its structures and controllers).
    FrontEnd fe_;
    IssueCluster int_cluster_;
    IssueCluster fp_cluster_;
    LoadStoreUnit lsu_;

    // Cross-domain port layer and shared services.
    CorePorts ports_;
    EpochBumpPort epoch_port_;
    ReconfigUnit reconfig_;

    std::array<Domain *, 4> domain_table_;
    DomainScheduler scheduler_;

    Kernel kernel_ = Kernel::EventDriven;

    struct Baseline
    {
        std::uint64_t l1i_acc = 0, l1i_miss = 0, l1i_b = 0;
        std::uint64_t l1d_acc = 0, l1d_miss = 0, l1d_b = 0;
        std::uint64_t l2_acc = 0, l2_miss = 0, l2_b = 0;
        std::uint64_t bp_lookups = 0, bp_miss = 0;
        std::uint64_t flushes = 0;
        std::uint64_t relocks = 0;
    } base_;
};

} // namespace gals

#endif // GALS_CORE_PROCESSOR_HH
