/**
 * @file
 * The adaptive GALS/MCD processor model.
 *
 * Four domains — front end (I-cache, predictor, rename, ROB, retire),
 * integer, floating-point, and load/store (LSQ, L1D, unified L2) —
 * each own a clock. The main loop always steps the domain with the
 * earliest pending edge; all cross-domain traffic (dispatch, operand
 * visibility, redirects, retirement visibility) pays the synchronizer
 * rule. In Synchronous mode the four clocks are identical and the
 * synchronizer rule degenerates to plain next-edge latching.
 *
 * Fetch is oracle-driven: a mispredicted branch halts fetch until it
 * resolves in the integer domain, so the flush penalty (front-end
 * depth + dispatch depth + synchronization) is paid in time without
 * modeling wrong-path instructions (see DESIGN.md §4).
 */

#ifndef GALS_CORE_PROCESSOR_HH
#define GALS_CORE_PROCESSOR_HH

#include <array>
#include <memory>
#include <optional>

#include "cache/accounting_cache.hh"
#include "cache/main_memory.hh"
#include "clock/clock.hh"
#include "clock/pll.hh"
#include "clock/sync_fifo.hh"
#include "control/ilp_tracker.hh"
#include "control/queue_controller.hh"
#include "control/reconfig_trace.hh"
#include "core/fetch_group.hh"
#include "core/machine_config.hh"
#include "core/run_stats.hh"
#include "core/structures.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/generator.hh"

namespace gals
{

/** One configured machine executing one synthetic benchmark. */
class Processor
{
  public:
    /** Which main-loop scheduler run() uses. */
    enum class Kernel
    {
        /** Event-driven: idle domains skip edges (the default). */
        EventDriven,
        /**
         * Step every domain at every edge, as the original simulator
         * did. Kept as the bit-identical oracle for the event kernel
         * (see docs/kernel.md); also selectable with
         * GALS_KERNEL=reference.
         */
        Reference,
    };

    Processor(const MachineConfig &config, const WorkloadParams &wl);

    /** Run warmup + measured window; return window statistics. */
    RunStats run();

    /** Force a specific scheduler (tests; overrides GALS_KERNEL). */
    void setKernel(Kernel k) { kernel_ = k; }

    /** Current structure configuration (changes in phase mode). */
    const AdaptiveConfig &currentConfig() const { return cur_cfg_; }

    /**
     * Run deep structural invariant checks (rename map vs free lists,
     * ROB age order, fetch-group accounting, LSQ index consistency)
     * every `every` front-end steps; 0 disables (the default). The
     * differential harness turns this on.
     */
    void setInvariantCheckInterval(std::uint32_t every)
    {
        inv_interval_ = every;
        inv_countdown_ = every;
    }

    /** Panics with a description on any violated invariant. */
    void validateInvariants() const;

  private:
    /** A structure change waiting for PLL lock completion. */
    struct PendingApply
    {
        bool active = false;
        Structure structure = Structure::ICache;
        int target = 0;
        Tick apply_at = 0;
    };

    // Construction.
    void buildClocks();
    void buildCaches();

    // Main loop.
    void stepDomain(int d, Tick now);
    void runEventLoop(std::uint64_t target);
    void runReferenceLoop(std::uint64_t target);

    /**
     * Earliest tick at which domain d could do observable work given
     * its state right after stepping (summaries recorded in-step);
     * kTickMax parks the domain until a cross-domain event
     * (wakeDomain) re-arms it. Must be a lower bound: waking early is
     * a wasted no-op step, waking late would diverge from the
     * reference kernel.
     */
    Tick domainWake(int d) const;

    /** Cross-domain event hook: domain d may have work at `t`. */
    void wakeDomain(DomainId d, Tick t);

    /** advance() + epoch bump when a period change lands. */
    void advanceClock(int d);
    /**
     * Invalidate grid memos and wake sleeping domains from the first
     * edge that observes the new epoch in reference order (`changed`
     * re-clocked its grid at tick `landing`).
     */
    void onClockEpochBump(int changed, Tick landing);
    /** Consume proven-idle edges of domain d strictly below `t`. */
    void advanceClockWhileBelow(int d, Tick t);

    // Front-end stages. One front-end edge runs all three in
    // program-flow order (retire frees resources rename needs; rename
    // frees fetch-queue space) and accumulates the domain's exact
    // next-progress tick in fe_next_ (see stepFrontEnd).
    void stepFrontEnd(Tick now);
    void doRetire(Tick now);
    void doRename(Tick now);
    void doFetch(Tick now);

    /**
     * Record a next-progress bound discovered during the current
     * front-end step: the earliest tick at which the recording stage
     * could do more work. 0 = progress possible at the very next
     * edge; anything a cross-domain event must provide is *not*
     * recorded (the wakeDomain hooks cover it).
     */
    void
    feNote(Tick t)
    {
        if (t < fe_next_)
            fe_next_ = t;
    }

    // Execution domains.
    void stepIssueDomain(DomainId dom, Tick now);

    // Load/store domain.
    void stepLoadStore(Tick now);
    bool agenVisible(LsqEntry &entry, const InFlightOp &op, Tick now);
    /** Outcome of a load-issue attempt (drives the wakeup index). */
    enum class LoadStart
    {
        Issued,   //!< access started; entry leaves the waiting list.
        Blocked,  //!< older same-line store lacks data: event-waited.
        MshrBusy, //!< no free MSHR: time- and event-waited.
    };
    LoadStart tryStartLoad(LsqEntry &entry, Tick now, int &ports_used);
    void drainStoreBuffer(Tick now, int &ports_used, int max_ports);
    Tick dataHierarchyTime(Addr addr, Tick now);
    Tick icacheMissTime(Tick now);

    /**
     * First tick at which a state change published by domain `src`'s
     * step at `now` is consumable by domain `dst` (the publication
     * order rule, see docs/kernel.md): on equal ticks the reference
     * kernel steps lower domain indices first, so a lower-indexed
     * consumer stepped *before* the publication and may first observe
     * it strictly after `now`; a higher-indexed one steps at `now`
     * itself. Waking a stale lower-indexed domain *at* `now` would
     * make it step after the publisher and observe state the
     * reference kernel's step at `now` provably did not see.
     */
    static Tick
    consumableAt(DomainId src, DomainId dst, Tick now)
    {
        return static_cast<int>(dst) < static_cast<int>(src)
                   ? now + 1
                   : now;
    }

    /**
     * regs_.complete + push-based wakeup. The waiter chains move
     * exactly the ops waiting on this register onto their queue's
     * ready ring; a domain with no waiter of `ref` keeps sleeping
     * (`now` = the edge performing the completion, in the `producer`
     * domain's step).
     */
    void
    completeReg(PhysRef ref, Tick when, DomainId producer,
                size_t rob_idx, Tick now)
    {
        regs_.complete(ref, when, producer);
        if (iq_int_.wakeWaiters(ref)) {
            wakeDomain(DomainId::Integer,
                       consumableAt(producer, DomainId::Integer,
                                    now));
        }
        if (iq_fp_.wakeWaiters(ref)) {
            wakeDomain(DomainId::FloatingPoint,
                       consumableAt(producer,
                                    DomainId::FloatingPoint, now));
        }
        // Retire blocks only on the ROB head: a younger op's
        // completion cannot unblock the front end, and once the head
        // run reaches an already-completed op the same doRetire call
        // evaluates it without a wake.
        if (rob_idx == rob_.headIndex()) {
            wakeDomain(DomainId::FrontEnd,
                       consumableAt(producer, DomainId::FrontEnd,
                                    now));
        }
    }

    // Timing helpers.
    Clock &clock(DomainId d)
    {
        return clocks_[static_cast<size_t>(d)];
    }
    const Clock &clock(DomainId d) const
    {
        return clocks_[static_cast<size_t>(d)];
    }
    /** When a value produced in `prod` is usable in `cons`. */
    Tick visibleAt(Tick produced, DomainId prod, DomainId cons) const;

    // Phase-adaptive control.
    void controlCaches(Tick now);
    void controlQueues(Tick now);
    void requestConfig(Structure s, int target, Tick now);
    void applyStructure(Structure s, int target, Tick now);
    int currentIndexOf(Structure s) const;
    DomainId domainOf(Structure s) const;
    void applyPending(DomainId d, Tick now);

    // Statistics.
    void snapshotBaselines(Tick now);
    void finalizeStats(RunStats &stats) const;

    MachineConfig cfg_;
    WorkloadParams wl_params_;
    SyntheticWorkload workload_;
    AdaptiveConfig cur_cfg_;
    bool same_domain_;

    std::array<Clock, 4> clocks_;
    std::array<Pll, 4> plls_;
    std::array<PendingApply, 4> pending_;

    // Structures.
    std::unique_ptr<AccountingCache> l1i_;
    std::unique_ptr<AccountingCache> l1d_;
    std::unique_ptr<AccountingCache> l2_;
    std::unique_ptr<HybridPredictor> predictor_;
    MainMemory memory_;

    RegisterFiles regs_;
    Rob rob_;
    IssueQueue iq_int_;
    IssueQueue iq_fp_;
    Lsq lsq_;
    StoreBuffer store_buffer_;
    FuPool fu_int_;
    FuPool fu_fp_;
    ArenaVector<Tick> mshr_busy_;
    /** min(mshr_busy_): one compare decides "any MSHR free". */
    Tick mshr_min_free_ = 0;

    // Fetch state.
    /** L1I A/B latencies of the live config (hoisted off doFetch). */
    int fetch_a_lat_ = 2;
    int fetch_b_lat_ = -1;
    FetchGroupQueue fetch_queue_;
    std::optional<MicroOp> staged_op_;
    Addr cur_fetch_line_ = ~0ULL;
    Tick fetch_line_ready_ = 0;
    /**
     * Provenance of fetch_line_ready_: true when it came from an
     * L2/memory line fill, i.e. a cross-domain grid extrapolation of
     * fetch_line_fill_done_ (the serve time in the load/store
     * domain). A PLL re-lock moves the grid, so the memo is
     * epoch-tagged and recomputed on mismatch while the fill is still
     * pending. Hit-path ready times are short same-domain offsets and
     * are not re-extrapolated.
     */
    bool fetch_line_is_fill_ = false;
    Tick fetch_line_fill_done_ = 0;
    std::uint32_t fetch_line_epoch_ = 0;
    bool fetch_halted_ = false;
    Tick fetch_resume_ = 0;
    /**
     * Resolution time and domain behind fetch_resume_ (same epoch
     * rule: the resume tick is a grid extrapolation of the resolving
     * branch's completion).
     */
    Tick fetch_resume_src_ = kTickMax;
    DomainId fetch_resume_dom_ = DomainId::Integer;
    std::uint32_t fetch_resume_epoch_ = 0;

    // Dispatch queues (front end -> each execution domain).
    SyncFifo<size_t> disp_int_;
    SyncFifo<size_t> disp_fp_;
    SyncFifo<size_t> disp_ls_;

    // Control.
    IlpTracker ilp_tracker_;
    QueueController qctl_int_;
    QueueController qctl_fp_;
    ReconfigTrace trace_;

    /** Persistence damper: act only on repeated agreeing decisions. */
    struct Damper
    {
        int target = -1;
        int count = 0;

        /** Returns true when `target` has persisted `need` times. */
        bool
        vote(int proposal, int current, int need)
        {
            if (proposal == current) {
                target = -1;
                count = 0;
                return false;
            }
            if (proposal == target) {
                ++count;
            } else {
                target = proposal;
                count = 1;
            }
            if (count >= need) {
                target = -1;
                count = 0;
                return true;
            }
            return false;
        }
    };
    Damper damp_iq_int_;
    Damper damp_iq_fp_;
    Damper damp_icache_;
    Damper damp_dcache_;

    // Progress.
    SeqNum next_seq_ = 0;
    std::uint64_t committed_ = 0;
    std::uint64_t interval_commits_ = 0;
    Tick last_commit_time_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t fe_idle_cycles_ = 0;

    // ------------------------------------------------------------------
    // Event-driven scheduler (see docs/kernel.md).
    // ------------------------------------------------------------------
    /**
     * Four-slot calendar keyed by each domain's next-possible-work
     * tick. A parked domain's key is kTickMax, so it never reaches
     * the head and costs nothing beyond one compare. Ties resolve to
     * the lowest domain index, matching the reference kernel's scan
     * order exactly.
     */
    struct EdgeCalendar
    {
        std::array<Tick, 4> key{kTickMax, kTickMax, kTickMax,
                                kTickMax};

        void set(int d, Tick k) { key[static_cast<size_t>(d)] = k; }
        void park(int d) { key[static_cast<size_t>(d)] = kTickMax; }
        bool active(int d) const
        {
            return key[static_cast<size_t>(d)] != kTickMax;
        }

        /** Earliest-keyed domain (lowest index on ties). */
        int
        head() const
        {
            int d = 0;
            if (key[1] < key[0])
                d = 1;
            if (key[2] < key[static_cast<size_t>(d)])
                d = 2;
            if (key[3] < key[static_cast<size_t>(d)])
                d = 3;
            return d;
        }

        bool anyActive() const
        {
            return key[0] != kTickMax || key[1] != kTickMax ||
                   key[2] != kTickMax || key[3] != kTickMax;
        }
    };

    EdgeCalendar calendar_;

    /**
     * Per-queue epoch tag of the ready-list timing state: ready_at
     * values and the timer-ring order extrapolate clock grids, so a
     * mismatch with clock_epoch_ forces invalidateTimes at the next
     * step of the owning domain (the one O(queue) path left in the
     * back end).
     */
    std::array<std::uint32_t, 2> iq_epoch_{1, 1};

    /** Walk summary for the combined LSQ walks of the LS domain. */
    struct LsSummary
    {
        bool must_walk = true;
        /** Earliest agen-visibility / MSHR-free time among waiters. */
        Tick min_time = kTickMax;
        std::uint32_t agen_snap = 0;
        std::uint32_t ev_snap = 0;
        std::uint32_t epoch_snap = 0;
    };
    LsSummary ls_sum_;
    /**
     * Front-end next-progress summary: the earliest tick at which any
     * front-end stage can do more work, accumulated by the stages
     * *during* the step (via feNote) instead of being re-derived
     * afterwards. kTickMax = every stage is blocked on a cross-domain
     * event, all of which are covered by wakeDomain hooks. Stages
     * record exact ticks for group-visibility boundaries, I-cache
     * line fills and redirect resumes.
     */
    Tick fe_next_ = 0;
    /** Epoch fe_next_ was derived under (stale ticks re-derive). */
    std::uint32_t fe_next_epoch_ = 0;
    /** Per-domain earliest-possible-work tick; kTickMax = parked. */
    std::array<Tick, 4> wake_{};
    /**
     * Grid-change epoch: bumped whenever any domain clock applies a
     * period change. Tags every memoized grid extrapolation
     * (InFlightOp::ready_hint/fe_vis, LsqEntry::agen_vis).
     */
    std::uint32_t clock_epoch_ = 1;
    Kernel kernel_ = Kernel::EventDriven;

    /** Invariant-check cadence in front-end steps; 0 = off. */
    std::uint32_t inv_interval_ = 0;
    std::uint32_t inv_countdown_ = 0;

    // ------------------------------------------------------------------
    // Wakeup-path counters. Each counts events that can unblock a
    // class of waiters; waiters snapshot the counter and are skipped
    // with a compare until it moves (see docs/kernel.md).
    // ------------------------------------------------------------------
    /** Address-generation uops issued (LSQ agen waiters). */
    std::uint32_t agen_issues_ = 0;
    /**
     * Store/MSHR/store-buffer events: store data captured, store
     * retired out of the LSQ, store-buffer push/pop, MSHR claimed.
     * Guards memoized load-attempt failures.
     */
    std::uint32_t ls_events_ = 0;

    // Measurement window.
    bool measuring_ = false;
    Tick measure_start_ = 0;
    std::uint64_t measure_committed_base_ = 0;

    struct Baseline
    {
        std::uint64_t l1i_acc = 0, l1i_miss = 0, l1i_b = 0;
        std::uint64_t l1d_acc = 0, l1d_miss = 0, l1d_b = 0;
        std::uint64_t l2_acc = 0, l2_miss = 0, l2_b = 0;
        std::uint64_t bp_lookups = 0, bp_miss = 0;
        std::uint64_t flushes = 0;
        std::uint64_t relocks = 0;
    } base_;

    RunStats stats_;
};

} // namespace gals

#endif // GALS_CORE_PROCESSOR_HH
