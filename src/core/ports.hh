/**
 * @file
 * The cross-domain port layer.
 *
 * Domain units never wake each other directly: every cross-domain
 * publication — dispatch FIFO traffic, register completions, branch
 * resolutions, address-generation handoffs, store-buffer fills and
 * drains, epoch-bump broadcasts, re-lock landings — goes through one
 * of the typed ports below. The ports are the *only* code that knows
 * the publication-order rule, so no domain can publish or wake around
 * it (enforced by scripts/check_port_confinement.sh, which greps for
 * the rule's entry points outside this layer).
 *
 * ## The publication order rule
 *
 * On equal ticks the reference kernel steps lower domain indices
 * first. A state change *published* by domain A's step at tick `t` is
 * therefore first consumable by domain B at `t` when `B > A` (B steps
 * after A at `t`), but only strictly after `t` when `B < A` — B's
 * step at `t` already ran, before the publication existed. Waking a
 * stale lower-indexed domain *at* `t` would make the scheduler
 * deliver its `t` edge after the publisher's, and the domain would
 * observe state the reference kernel's step at `t` provably did not
 * see. `WakeHub::consumableAt` encodes the rule; `WakePort::publish`
 * applies it, and `WakePort::publishAt` asserts that an explicit wake
 * time respects it (the port-layer unit tests exercise the
 * rejection).
 */

#ifndef GALS_CORE_PORTS_HH
#define GALS_CORE_PORTS_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "clock/sync_fifo.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "core/domain.hh"
#include "core/regfile.hh"
#include "core/structures.hh"

namespace gals
{

/** Most cores one chip composition can carry. */
constexpr int kMaxCores = 16;

/** Upper bound on domains one scheduler/fabric instance can serve
 * (a core uses four; a chip uses four per core). */
constexpr int kMaxSchedDomains = kMaxCores * kNumDomains;

/** Per-core in-flight fill (MSHR) ceiling assumed by the ordered
 * request gate's stack sizing — a bound on the private hierarchy's
 * MSHR count, not on the shared banks'. */
constexpr int kMaxCoreMshrs = 16;

/**
 * Chip-level wake storage shared by every port of every core:
 * per-domain earliest-possible-work bounds (indexed by *global*
 * domain index, `core * kNumDomains + local`) plus the event-kernel
 * calendar keys the scheduler picks its next domain from. Only ports
 * write wake state — through a per-core WakeHub window whose raw
 * primitive forwards here — and the scheduler reads and re-keys it
 * between steps. A single-core Processor owns a fabric of four
 * domains, so the window is the identity mapping.
 */
class WakeFabric
{
  public:
    WakeFabric(const Clock *clocks, int count)
        : clocks_(clocks), count_(count)
    {
        GALS_ASSERT(count >= 1 && count <= kMaxSchedDomains,
                    "WakeFabric domain count out of range");
        wake_.fill(0);
        key_.fill(kTickMax);
    }

    int domainCount() const { return count_; }

    /** True while the event kernel is driving (reference runs skip
     * the calendar bookkeeping). */
    void setEventMode(bool on) { event_mode_ = on; }

    /** Reset for an event-kernel run: every domain eligible at its
     * next clock edge. */
    void
    beginEventRun()
    {
        for (int d = 0; d < count_; ++d) {
            wake_[static_cast<size_t>(d)] = 0;
            key_[static_cast<size_t>(d)] =
                clocks_[static_cast<size_t>(d)].nextEdge();
        }
    }

    // Scheduler-side accessors (the calendar lives here so the hot
    // wake path updates it without an extra indirection).
    Tick bound(int d) const { return wake_[static_cast<size_t>(d)]; }
    void setBound(int d, Tick t) { wake_[static_cast<size_t>(d)] = t; }
    Tick key(int d) const { return key_[static_cast<size_t>(d)]; }
    void setKey(int d, Tick k) { key_[static_cast<size_t>(d)] = k; }
    void park(int d) { key_[static_cast<size_t>(d)] = kTickMax; }

    /** Earliest-keyed domain (lowest global index on ties, matching
     * the reference kernel's scan order exactly). */
    int
    head() const
    {
        int best = 0;
        Tick best_key = key_[0];
        for (int d = 1; d < count_; ++d) {
            Tick k = key_[static_cast<size_t>(d)];
            if (k < best_key) {
                best_key = k;
                best = d;
            }
        }
        return best;
    }

  private:
    friend class WakeHub;
    friend class InterconnectPort; // deferred-wake merge at a barrier.

    /**
     * Record that global domain `gd` may have work at `t`. Lazy key:
     * the clock may sit on a stale (earlier) edge; the scheduler
     * resolves the true first-edge-at-or-after-wake when the domain
     * reaches the head of the calendar. (Keying at the exact
     * extrapolated edge here is a measured pessimization: the
     * surfacing pass consumes the idle edges either way, so the
     * extrapolation division would be pure added cost.)
     */
    void
    wakeRaw(int gd, Tick t)
    {
        size_t i = static_cast<size_t>(gd);
        if (t >= wake_[i])
            return;
        wake_[i] = t;
        if (!event_mode_)
            return;
        Tick key = std::max(clocks_[i].nextEdge(), t);
        if (key < key_[i])
            key_[i] = key;
    }

    std::array<Tick, kMaxSchedDomains> wake_{};
    std::array<Tick, kMaxSchedDomains> key_{};
    const Clock *clocks_;
    int count_;
    bool event_mode_ = true;
};

/**
 * One core's window into the wake fabric. Every port of a core holds
 * a WakeHub and addresses it with the core-local DomainId; the window
 * offsets into the fabric's global arrays, so the same port code
 * serves a standalone Processor (base 0) and any core of a Chip.
 * The publication-order rule generalizes across cores because the
 * global index order (core-major, local order preserved) *is* the
 * reference kernel's tie-break order.
 */
class WakeHub
{
  public:
    WakeHub(WakeFabric &fabric, int base, int count)
        : fabric_(fabric), base_(base), count_(count)
    {
        GALS_ASSERT(base >= 0 && count >= 1 &&
                        base + count <= fabric.domainCount(),
                    "WakeHub window out of fabric range");
    }

    /** Domains in this window (a core's four). */
    int domainCount() const { return count_; }

  private:
    friend class WakePort;
    friend class DispatchPort;
    friend class CompletionPort;
    friend class RedirectPort;
    friend class AgenPort;
    friend class StoreBufferPort;
    friend class EpochBumpPort;
    friend class ReclockPort;

    /**
     * First tick at which a state change published by domain `src`'s
     * step at `now` is consumable by domain `dst` (the publication
     * order rule above). Local indices: both domains belong to this
     * window's core, and the local order equals the global order
     * under the window's constant offset.
     */
    static Tick
    consumableAt(DomainId src, DomainId dst, Tick now)
    {
        return static_cast<int>(dst) < static_cast<int>(src)
                   ? now + 1
                   : now;
    }

    /** Forward a wake of core-local domain `dd` into the fabric. */
    void
    wakeRaw(DomainId dd, Tick t)
    {
        fabric_.wakeRaw(base_ + static_cast<int>(dd), t);
    }

    WakeFabric &fabric_;
    int base_;
    int count_;
};

/**
 * One-way publication channel from a fixed source domain to a fixed
 * destination domain. The port, not the caller, decides the earliest
 * consumable tick.
 */
class WakePort
{
  public:
    WakePort(WakeHub &hub, DomainId src, DomainId dst)
        : hub_(hub), src_(src), dst_(dst)
    {}

    DomainId src() const { return src_; }
    DomainId dst() const { return dst_; }

    /** Publish a state change made by `src`'s step at `now`: the
     * destination wakes at the first tick the rule allows. */
    void
    publish(Tick now)
    {
        hub_.wakeRaw(dst_, WakeHub::consumableAt(src_, dst_, now));
    }

    /**
     * Publish with an explicit future wake time (a synchronizer
     * crossing or completion visibility computed by the caller).
     * Asserts the time respects the publication order rule — a wake
     * at `now` toward a lower-indexed domain is exactly the
     * divergence class the rule exists to prevent.
     */
    void
    publishAt(Tick now, Tick when)
    {
        GALS_ASSERT(when >= WakeHub::consumableAt(src_, dst_, now),
                    "publication order violation: wake of domain %d "
                    "at t=%llu from domain %d's step at t=%llu",
                    static_cast<int>(dst_),
                    static_cast<unsigned long long>(when),
                    static_cast<int>(src_),
                    static_cast<unsigned long long>(now));
        hub_.wakeRaw(dst_, when);
    }

  private:
    WakeHub &hub_;
    DomainId src_;
    DomainId dst_;
};

/**
 * A dispatch FIFO crossing from the front end into an execution
 * domain: the bounded synchronizer queue plus both wake directions
 * (entries becoming visible wake the consumer; pops from a full FIFO
 * wake the producer, which blocks rename only when the FIFO is full).
 */
class DispatchPort
{
  public:
    DispatchPort(WakeHub &hub, DomainId producer, DomainId consumer,
                 size_t capacity)
        : fifo_(capacity), to_consumer_(hub, producer, consumer),
          to_producer_(hub, consumer, producer)
    {}

    // Producer side.
    size_t freeSlots() const { return fifo_.freeSlots(); }
    /** Enqueue an entry consumable at `visible` and wake the
     * consuming domain for it. */
    void
    push(size_t idx, Tick visible, Tick now)
    {
        fifo_.push(idx, visible);
        to_consumer_.publishAt(now, visible);
    }

    // Consumer side.
    bool empty() const { return fifo_.empty(); }
    size_t size() const { return fifo_.size(); }
    size_t capacity() const { return fifo_.capacity(); }
    bool frontReady(Tick now) const { return fifo_.frontReady(now); }
    Tick frontVisibleAt() const { return fifo_.frontVisibleAt(); }

    /**
     * Drain visible entries: f(entry) consumes one entry or returns
     * false to stop (consumer structurally full). When any entry left
     * a previously full FIFO, the producing domain is woken per the
     * publication order rule — rename blocks only on a full FIFO, so
     * only that transition needs the wake.
     */
    template <typename F>
    void
    consume(Tick now, F f)
    {
        bool was_full = fifo_.freeSlots() == 0;
        bool any = false;
        while (fifo_.frontReady(now)) {
            if (!f(fifo_.front()))
                break;
            fifo_.pop();
            any = true;
        }
        if (any && was_full)
            to_producer_.publish(now);
    }

  private:
    SyncFifo<size_t> fifo_;
    WakePort to_consumer_;
    WakePort to_producer_;
};

/**
 * The register completion/wake channel. A producing domain reports a
 * completed physical register; the port walks the waiter chains of
 * exactly that register in both issue queues and wakes the domains
 * that actually had a waiter, plus the front end when the completion
 * can unblock the ROB head — each at its rule-computed tick.
 */
class CompletionPort
{
  public:
    CompletionPort(WakeHub &hub, RegisterFiles &regs,
                   IssueQueue &iq_int, IssueQueue &iq_fp,
                   const Rob &rob)
        : hub_(hub), regs_(regs), iq_int_(iq_int), iq_fp_(iq_fp),
          rob_(rob)
    {}

    /**
     * regs.complete + push-based wakeup. The waiter chains move
     * exactly the ops waiting on this register onto their queue's
     * ready ring; a domain with no waiter of `ref` keeps sleeping
     * (`now` = the edge performing the completion, in the `producer`
     * domain's step).
     */
    void
    complete(PhysRef ref, Tick when, DomainId producer,
             size_t rob_idx, Tick now)
    {
        regs_.complete(ref, when, producer);
        if (iq_int_.wakeWaiters(ref)) {
            hub_.wakeRaw(DomainId::Integer,
                         WakeHub::consumableAt(producer,
                                               DomainId::Integer,
                                               now));
        }
        if (iq_fp_.wakeWaiters(ref)) {
            hub_.wakeRaw(DomainId::FloatingPoint,
                         WakeHub::consumableAt(
                             producer, DomainId::FloatingPoint, now));
        }
        // Retire blocks only on the ROB head: a younger op's
        // completion cannot unblock the front end, and once the head
        // run reaches an already-completed op the same retire call
        // evaluates it without a wake.
        if (rob_idx == rob_.headIndex()) {
            hub_.wakeRaw(DomainId::FrontEnd,
                         WakeHub::consumableAt(producer,
                                               DomainId::FrontEnd,
                                               now));
        }
    }

  private:
    WakeHub &hub_;
    RegisterFiles &regs_;
    IssueQueue &iq_int_;
    IssueQueue &iq_fp_;
    const Rob &rob_;
};

/**
 * The branch-resolution channel from an execution domain back to the
 * front end. The resolving cluster publishes the completion time of
 * the mispredicted branch; the port owns the resume-time memo the
 * front end sleeps on, including its epoch guard (the resume tick is
 * a grid extrapolation of the resolving completion, so a PLL re-lock
 * landing while the halt is pending must recompute it).
 */
class RedirectPort
{
  public:
    RedirectPort(WakeHub &hub, CoreTiming &timing)
        : hub_(hub), timing_(timing)
    {}

    /** Front end: a mispredicted branch entered the window; fetch
     * halts until resolve() supplies the resume time. */
    void
    arm()
    {
        resume_ = kTickMax;
        src_ = kTickMax;
    }

    /** Execution cluster: the mispredicted branch completes at
     * `complete` in `resolving`'s domain during its step at `now`. */
    void
    resolve(Tick complete, DomainId resolving, Tick now)
    {
        src_ = complete;
        dom_ = resolving;
        epoch_ = timing_.epoch();
        resume_ = timing_.visibleAt(complete, resolving,
                                    DomainId::FrontEnd);
        hub_.wakeRaw(DomainId::FrontEnd,
                     std::max(resume_,
                              WakeHub::consumableAt(
                                  resolving, DomainId::FrontEnd,
                                  now)));
    }

    /**
     * Front end: the tick fetch may resume at (kTickMax while
     * unresolved). Recomputed on epoch mismatch only while still
     * pending: past production times must not be re-extrapolated
     * (see docs/kernel.md).
     */
    Tick
    resumeAt(Tick now)
    {
        if (resume_ != kTickMax && resume_ > now &&
            epoch_ != timing_.epoch()) {
            resume_ = timing_.visibleAt(src_, dom_,
                                        DomainId::FrontEnd);
            epoch_ = timing_.epoch();
        }
        return resume_;
    }

  private:
    WakeHub &hub_;
    CoreTiming &timing_;
    Tick resume_ = 0;
    Tick src_ = kTickMax;
    DomainId dom_ = DomainId::Integer;
    std::uint32_t epoch_ = 0;
};

/**
 * The address-generation handoff from the integer cluster to the
 * load/store unit: records the agen completion on the op, clears the
 * LSQ entry's agen wait in place (push wakeup — the walk stops
 * skipping exactly this entry), and wakes the load/store domain.
 */
class AgenPort
{
  public:
    AgenPort(WakeHub &hub, Lsq &lsq) : hub_(hub), lsq_(lsq) {}

    void
    agenIssued(InFlightOp &op, Tick complete, Tick now)
    {
        op.agen_done = complete;
        ++issues_;
        LsqEntry &le = lsq_.byId(op.lsq_id);
        if (le.wait_kind == 1)
            le.wait_kind = 0;
        hub_.wakeRaw(DomainId::LoadStore,
                     WakeHub::consumableAt(DomainId::Integer,
                                           DomainId::LoadStore, now));
    }

    /** Agen uops issued so far (LSQ walk-summary snapshot). */
    std::uint32_t issues() const { return issues_; }

  private:
    WakeHub &hub_;
    Lsq &lsq_;
    std::uint32_t issues_ = 0;
};

/**
 * The post-commit store buffer and its two wake directions: retire
 * (front end) pushes committed stores and wakes the load/store unit
 * to drain them; the drain wakes the front end when it pops from a
 * full buffer (retirement blocks only on a *full* store buffer).
 */
class StoreBufferPort
{
  public:
    StoreBufferPort(WakeHub &hub, Lsq &lsq, int entries)
        : buffer_(entries), lsq_(lsq),
          to_lsu_(hub, DomainId::FrontEnd, DomainId::LoadStore),
          to_fe_(hub, DomainId::LoadStore, DomainId::FrontEnd)
    {}

    // Retire (producer) side.
    size_t freeSlots() const { return buffer_.freeSlots(); }
    /** Push a committed store and wake the drain side. A forwarding
     * line appearing is the one event that can issue an MSHR-waiting
     * load early, so the push probes the LSQ's per-line waiter index
     * directly (the indexed replacement of the push-counter snapshot,
     * which re-walked the whole queue on every committed store). */
    void
    push(Addr line_addr, Tick now)
    {
        buffer_.push(line_addr, now);
        lsq_.wakeMshrWaiters(line_addr);
        to_lsu_.publish(now);
    }

    // Drain (consumer) side.
    bool empty() const { return buffer_.empty(); }
    bool full() const { return buffer_.full(); }
    size_t size() const { return buffer_.size(); }
    size_t capacity() const { return buffer_.capacity(); }
    StoreWrite &front() { return buffer_.front(); }
    Tick frontReadyAt() const { return buffer_.frontReadyAt(); }
    bool hasLine(Addr line_addr) const
    {
        return buffer_.hasLine(line_addr);
    }
    /** Pop the drained head write; wakes the front end when the pop
     * freed a slot of a previously full buffer. */
    void
    pop(Tick now)
    {
        bool was_full = buffer_.full();
        buffer_.pop();
        if (was_full)
            to_fe_.publish(now);
    }

  private:
    StoreBuffer buffer_;
    Lsq &lsq_;
    WakePort to_lsu_;
    WakePort to_fe_;
};

/**
 * The epoch-bump broadcast: a landed period change stales every
 * memoized grid extrapolation, so sleeping domains must re-derive
 * their gates — but only from the first edge the reference kernel
 * evaluates with the new epoch. The bump becomes visible once the
 * re-clocked domain consumes its landing edge; the publication order
 * rule then decides, per destination, whether that is the landing
 * tick itself or strictly after it. Waking earlier (e.g. at 0) would
 * evaluate new-grid memos at stale edges the reference kernel
 * provably idles through under the old memos.
 */
class EpochBumpPort
{
  public:
    EpochBumpPort(WakeHub &hub, CoreTiming &timing)
        : hub_(hub), timing_(timing)
    {}

    void
    broadcast(int changed, Tick landing)
    {
        timing_.bumpEpoch();
        for (int d = 0; d < hub_.domainCount(); ++d) {
            if (d == changed)
                continue;
            hub_.wakeRaw(static_cast<DomainId>(d),
                         WakeHub::consumableAt(
                             static_cast<DomainId>(changed),
                             static_cast<DomainId>(d), landing));
        }
    }

  private:
    WakeHub &hub_;
    CoreTiming &timing_;
};

/**
 * The re-lock landing channel: a structure change schedules a period
 * change on some domain's clock, and that domain must consume the
 * edge where the change lands even if it is otherwise idle (other
 * domains read its grid for synchronizer timing, so a parked clock
 * must not lag across the change). Control decisions run inside the
 * front end's step, so the source domain is fixed.
 */
class ReclockPort
{
  public:
    explicit ReclockPort(WakeHub &hub) : hub_(hub) {}

    void
    schedule(DomainId target, Tick lock_done, Tick now)
    {
        GALS_ASSERT(lock_done >= WakeHub::consumableAt(
                                     DomainId::FrontEnd, target, now),
                    "re-lock landing scheduled before its publication "
                    "is consumable");
        hub_.wakeRaw(target, lock_done);
    }

  private:
    WakeHub &hub_;
};

struct MachineConfig;

/**
 * The full port set of the four-domain core, constructed by the
 * composition root (Processor) and handed to the domain units at
 * wire-up.
 */
struct CorePorts
{
    CorePorts(WakeHub &hub, CoreTiming &timing,
              const MachineConfig &cfg, RegisterFiles &regs,
              IssueQueue &iq_int, IssueQueue &iq_fp, const Rob &rob,
              Lsq &lsq);

    /** Dispatch FIFOs front end -> each execution domain. The FIFOs
     * model both the synchronizer queue and the dispatch pipe stages,
     * so their capacity covers the pipe occupancy at full decode
     * width. */
    DispatchPort disp_int;
    DispatchPort disp_fp;
    DispatchPort disp_ls;
    StoreBufferPort store_buffer;
    CompletionPort completion;
    RedirectPort redirect;
    AgenPort agen;
    /** ROB-head store-ready publication (load/store -> front end). */
    WakePort store_ready;
    ReclockPort reclock;
};

class AccountingCache;
class SharedL2;
struct IntervalCounts;

/** Reply to one shared-L2 line request. */
struct L2Reply
{
    /** Completion time of the request (requester-grid ps). */
    Tick done = 0;
    /** True when the line was served by the L2 (A or B partition). */
    bool hit = false;
};

/**
 * Shared ordering state of one horizon-parallel chip round (see
 * docs/kernel.md). Each worker owns one *front*: a packed
 * (tick, global domain index) order point promising that every step
 * of the worker's cores ordered strictly below it has completed. A
 * worker publishes its front (release) before executing the step at
 * that point; an interconnect request at order point p spins
 * (acquire) until every other worker's front is past p, which makes
 * shared-bank touches globally ordered exactly as the sequential
 * scheduler orders steps — the parallel kernel's bit-identity
 * argument in one invariant. Two fronts can never be equal to a
 * request's point (distinct cores own distinct global indices), so
 * the gate is deadlock-free: the least-ordered blocked request always
 * finds every other front beyond it.
 *
 * Core ownership is per *round*, not per run: at each round barrier
 * the driver zeroes every front (order point 0 precedes every real
 * point, so all gates conservatively block) and workers then race an
 * atomic cursor over the round's live-core worklist, writing their
 * claims into `worker_of_core` before publishing a real front. Which
 * worker wins a core cannot change results — the gate and the
 * deferred-wake merge order shared-state touches by global step
 * order regardless of the partition — so the claim race is benign by
 * construction (the 3-way differential gate pins it).
 */
struct ChipSyncState
{
    /** Front of a worker that finished its window (orders after
     * every real point). */
    static constexpr std::uint64_t kDone = ~std::uint64_t{0};

    /** Bits of the packed order point reserved for the global
     * domain index; the remaining 64 - kDomainBits carry the tick.
     * 6 bits cover the 64 global domains of a 16-core chip. */
    static constexpr int kDomainBits = 6;
    static_assert(kMaxSchedDomains <= (1 << kDomainBits),
                  "the packed front's global-domain field cannot "
                  "encode every scheduler domain: raising kMaxCores "
                  "requires widening kDomainBits (and shrinking the "
                  "tick field) in step");

    /**
     * Pack a (tick, global domain index) order point so that integer
     * comparison is the reference kernel's step order: time, then
     * lowest global index. 58 tick bits cover ~3.3 days of simulated
     * picoseconds; saturate one bit below that (kTickMax keys and
     * any absurdly late tick order last).
     */
    static std::uint64_t
    pack(Tick t, int gd)
    {
        if (t >= (Tick{1} << 57))
            return kDone;
        return (static_cast<std::uint64_t>(t) << kDomainBits) |
               static_cast<std::uint64_t>(gd);
    }

    /** One cache line per front: workers republish theirs every
     * step, and every gate polls the others. */
    struct alignas(64) Front
    {
        std::atomic<std::uint64_t> v{0};
    };

    std::array<Front, kMaxCores> fronts;
    std::array<int, kMaxCores> worker_of_core{};
    int nworkers = 0;
};

/**
 * The cross-core interconnect: the request/response channel between
 * each core's private L1s and the shared banked L2 (cache/shared_l2).
 *
 * This port is the only code allowed to arbitrate the shared banks —
 * the SharedL2 state it mutates is private to it — and the only home
 * of the *cross-core* publication order rule: bank state published by
 * one core's step at tick t is consumable by another core's step at t
 * only when the consumer's global domain index is higher than the
 * publisher's (the reference kernel steps global indices in order on
 * equal ticks, and a chip's global order is core-major with the local
 * FrontEnd < Integer < FloatingPoint < LoadStore order preserved).
 * The scheduler's calendar plus the per-core ports' wake rule make a
 * mis-ordered consumption unreachable; `bankPublish` asserts it on
 * every request as a divergence tripwire, exactly like
 * WakePort::publishAt does for explicit wake times.
 *
 * Arbitration is cross-core only: a requester is never delayed behind
 * its own traffic (its bandwidth is already modeled by its mem ports
 * and private MSHRs — charging it again here would double-count the
 * same structural hazard), so a single-core chip is bit-identical to
 * the private-hierarchy Processor by construction.
 */
class InterconnectPort
{
  public:
    /** @param l2    the shared banked L2 (state owned there).
     *  @param cores cores on the chip (request validation). */
    InterconnectPort(SharedL2 &l2, int cores);

    /**
     * Request a data line for `core`'s load/store unit. `t_req` is
     * the time the request reaches the L2 (after the L1 probe),
     * `period` the requester's load/store clock period (L2 latencies
     * are charged in requester cycles, as the private hierarchy
     * does), `now` the requesting domain's step tick.
     */
    L2Reply requestLine(int core, Addr addr, Tick t_req, Tick period,
                        Tick now);

    /** Same channel for the front end's I-cache fills ("consumer" is
     * the core's front-end domain; `t_req`/`period` on the
     * load/store grid, as serveIcacheFill's contract specifies). */
    L2Reply requestIcacheLine(int core, Addr pc, Tick t_req,
                              Tick period, Tick now);

    /**
     * A core's D-cache controller chose configuration row `target`
     * during its load/store domain's step at `now`. The shared L2's
     * partition and latency row are owned by core 0 (a shared
     * structure cannot follow every core's private decision); other
     * cores' votes reconfigure their L1 only.
     */
    void reconfigure(int core, int target, Tick now);

    // ------------------------------------------------------------------
    // Cross-core coherence (the first genuine cross-core wakes).
    // ------------------------------------------------------------------

    /**
     * Attach the chip's wake fabric: the delivery target of
     * sequential-mode coherence wakes (the parallel stepper instead
     * routes them through deferWake and the round barrier's drain).
     * Unit tests that never publish may skip this.
     */
    void attachFabric(WakeFabric *fabric) { fabric_ = fabric; }

    /**
     * A store to the coherent shared region drained from `core`'s
     * store buffer during its load/store step at `now`. Updates the
     * line's directory entry (last writer + ownership settle time)
     * and publishes one invalidation per remote sharer, delivered to
     * that core's load/store unit at `now + coh_delay_ps` — a real
     * cross-core wake, obeying the same publication-order rule as
     * every other port. No-op on non-coherent chips or private
     * addresses, so N=1 and legacy workloads are bit-unchanged.
     */
    void publishStore(int core, Addr addr, Tick now);

    /**
     * Drain the invalidations due for `core`'s L1D at `now` (called
     * at the head of the load/store unit's step): each message whose
     * delivery time has arrived invalidates its line in `l1d`.
     * Returns the number processed — the LSU charges one mem port
     * per message, which is what makes the wake timing-visible.
     */
    int consumeInvalidations(int core, Tick now, AccountingCache &l1d);

    /**
     * Earliest undelivered invalidation bound for `core` (kTickMax
     * when none). Folded into the load/store unit's wakeBound so an
     * intervening step cannot clobber the pending coherence wake.
     */
    Tick nextCoherenceAt(int core) const;

    // ------------------------------------------------------------------
    // Horizon-parallel stepping (the chip's round driver).
    // ------------------------------------------------------------------

    /** Enter parallel mode: every request gates on the other
     * workers' fronts until the round driver calls endParallel. */
    void beginParallel(ChipSyncState *sync) { sync_ = sync; }
    void endParallel() { sync_ = nullptr; }

    /**
     * Queue a cross-core wake published by global domain `publisher`'s
     * step at `pub_tick` for delivery at the next round barrier:
     * global domain `consumer` may have work at `when`. Coherence
     * invalidations are the production publisher (publishStore routes
     * here under the parallel stepper); such wakes carry a payload —
     * the line to drop into `target_core`'s inbox when the wake is
     * merged — so the inbox push happens single-threaded at the
     * barrier rather than racing the consumer's drain mid-round.
     * Payload-free wakes (target_core < 0) stay legal for tests.
     */
    void deferWake(Tick pub_tick, int publisher, int consumer,
                   Tick when, int target_core = -1, Addr line_base = 0);

    /**
     * Deliver the queued cross-core wakes into the fabric, in
     * publication order. Called single-threaded at the round barrier
     * with the just-finished window `[window_start, window_end)`:
     * every worker has stepped its cores up to (strictly below)
     * `window_end`, so a wake landing before it would rewrite the
     * past — the horizon computation exists to make that impossible,
     * and this asserts it. A publication tick before `window_start`
     * is equally impossible (the publisher's step ran inside the
     * window) and is rejected as a stale publication. The queue must
     * already be in nondecreasing (pub_tick, publisher) order: gated
     * requests execute in global step order, so an out-of-order entry
     * means a publication escaped the gate (same divergence class
     * bankPublish trips on).
     */
    void drainDeferred(WakeFabric &fabric, Tick window_start,
                       Tick window_end);

    /** True when no cross-core wake is queued (round bookkeeping). */
    bool deferredEmpty() const { return deferred_.empty(); }

    /** Cross-core wakes merged at round barriers so far: the proof a
     * run genuinely exercised the deferred channel. */
    std::uint64_t deferredDrained() const { return deferred_drained_; }

    // Per-core accounting pass-through (the LSU's controller and
    // RunStats paths reach the shared cache only through the port).
    const IntervalCounts &interval(int core) const;
    void resetInterval(int core);
    std::uint64_t accesses(int core) const;
    std::uint64_t misses(int core) const;
    std::uint64_t bHits(int core) const;

  private:
    /**
     * Record (and rule-check) that `consumer` — global domain index —
     * touches the bank's state during its step at `now`. Shared-bank
     * state is both read and published by every request, so the
     * tripwire asserts the reference step order: a same-tick touch by
     * a *lower* global index after a higher one would observe state
     * the reference kernel's step at `now` provably did not see.
     */
    void bankPublish(int bank, int consumer, Tick now);

    /** Spin until every other worker's front is past (now, consumer):
     * the parallel kernel's shared-state ordering gate (no-op in
     * sequential mode). */
    void gate(int core, int consumer, Tick now) const;

    L2Reply request(int core, DomainId consumer_local, Addr addr,
                    Tick t_req, Tick period, Tick now);

    /** One queued cross-core wake (see deferWake). */
    struct DeferredWake
    {
        Tick pub_tick;
        int publisher;
        int consumer;
        Tick when;
        /** Inbox payload: core whose inbox receives `line_base` at
         * the merge (-1: pure wake, no payload). */
        int target_core;
        Addr line_base;
    };

    SharedL2 &l2_;
    int cores_;
    WakeFabric *fabric_ = nullptr;
    ChipSyncState *sync_ = nullptr;
    std::vector<DeferredWake> deferred_;
    std::uint64_t deferred_drained_ = 0;
};

} // namespace gals

#endif // GALS_CORE_PORTS_HH
