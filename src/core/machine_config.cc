#include "core/machine_config.hh"

#include "common/logging.hh"

namespace gals
{

std::string
AdaptiveConfig::str() const
{
    return csprintf("I%d D%d Qi%d Qf%d", icache, dcache, iq_int, iq_fp);
}

double
MachineConfig::synchronousFreqGHz() const
{
    return synchronousFreq(sync_icache_opt, adaptive.dcache,
                           adaptive.iq_int, adaptive.iq_fp);
}

double
MachineConfig::domainFreqGHz(DomainId d, const AdaptiveConfig &cur) const
{
    if (force_freq_ghz > 0.0)
        return force_freq_ghz;
    if (mode == ClockingMode::Synchronous)
        return synchronousFreqGHz();

    switch (d) {
      case DomainId::FrontEnd:
        return frontEndFreqAdaptive(cur.icache);
      case DomainId::Integer:
        return issueDomainFreqAdaptive(cur.iq_int);
      case DomainId::FloatingPoint:
        return issueDomainFreqAdaptive(cur.iq_fp);
      case DomainId::LoadStore:
        return loadStoreFreqAdaptive(cur.dcache);
      default:
        panic("no clock for domain %d", static_cast<int>(d));
    }
}

MachineConfig
MachineConfig::bestSynchronous()
{
    // Paper §4: 16-entry integer and FP issue queues, 64KB
    // direct-mapped I-cache (Table 3) with its predictor, 32KB
    // direct-mapped L1D with 256KB direct-mapped L2.
    return synchronous(4, 0, 0, 0);
}

MachineConfig
MachineConfig::synchronous(int opt_icache, int dcache, int iq_int,
                           int iq_fp)
{
    MachineConfig c;
    c.mode = ClockingMode::Synchronous;
    c.phase_adaptive = false;
    c.sync_icache_opt = opt_icache;
    c.adaptive.icache = 0; // unused in synchronous mode.
    c.adaptive.dcache = dcache;
    c.adaptive.iq_int = iq_int;
    c.adaptive.iq_fp = iq_fp;
    c.jitter_sigma_ps = 0.0;
    return c;
}

MachineConfig
MachineConfig::mcdProgram(const AdaptiveConfig &cfg)
{
    MachineConfig c;
    c.mode = ClockingMode::MCD;
    c.phase_adaptive = false;
    c.adaptive = cfg;
    return c;
}

MachineConfig
MachineConfig::mcdPhaseAdaptive()
{
    MachineConfig c;
    c.mode = ClockingMode::MCD;
    c.phase_adaptive = true;
    c.adaptive = AdaptiveConfig{}; // start minimal / fastest.
    return c;
}

} // namespace gals
