/**
 * @file
 * The PLL-timed reconfiguration unit.
 *
 * Domain controllers (attached per domain unit) decide *what* to
 * change; this unit owns *how* a change lands: the per-domain PLLs,
 * the pending-apply slots, the downsize-early/upsize-late rule around
 * the re-lock window, and the trace of applied changes. Structure
 * applications are dispatched to the owning domain unit, which
 * resizes its own hardware.
 */

#ifndef GALS_CORE_RECONFIG_HH
#define GALS_CORE_RECONFIG_HH

#include <array>
#include <cstdint>

#include "clock/pll.hh"
#include "common/types.hh"
#include "control/reconfig_trace.hh"
#include "core/domain.hh"
#include "core/machine_config.hh"
#include "core/ports.hh"

namespace gals
{

class FrontEnd;
class IssueCluster;
class LoadStoreUnit;

/** Applies structure changes under PLL re-lock timing. */
class ReconfigUnit
{
  public:
    ReconfigUnit(const MachineConfig &cfg, AdaptiveConfig &cur,
                 CoreTiming &timing, ReclockPort &reclock);

    /** Wire the domain units the structure applications dispatch to
     * (the composition root calls this once). */
    void attachDomains(FrontEnd &fe, IssueCluster &int_cluster,
                       IssueCluster &fp_cluster, LoadStoreUnit &lsu);

    /** The owning core's global domain-index base (core * 4): where
     * this unit's decisions land in the event trace (obs/trace.hh).
     * Purely observational; defaults to core 0's base. */
    void setTraceBase(int gd_base) { trace_base_ = gd_base; }

    /**
     * A controller asks for `s` to become configuration `target`.
     * Ignored while the owning domain's PLL is busy or a change is
     * already pending. Runs inside the front end's step at `now`
     * (every controller is sampled there); `committed` stamps the
     * trace.
     */
    void request(Structure s, int target, Tick now,
                 std::uint64_t committed);

    /** Apply a pending (upsize) change once its re-lock completed.
     * Domains call this at the top of every step. */
    void applyPending(DomainId d, Tick now);

    const PendingApply &pending(DomainId d) const
    {
        return pending_[static_cast<size_t>(d)];
    }

    const ReconfigTrace &trace() const { return trace_; }

    /** Total PLL re-locks performed so far (RunStats). */
    std::uint64_t relocks() const;

  private:
    void applyStructure(Structure s, int target, Tick now);
    int currentIndexOf(Structure s) const;
    static DomainId domainOf(Structure s);

    const MachineConfig &cfg_;
    AdaptiveConfig &cur_cfg_;
    CoreTiming &timing_;
    ReclockPort &reclock_;
    std::array<Pll, 4> plls_;
    std::array<PendingApply, 4> pending_;
    ReconfigTrace trace_;
    int trace_base_ = 0;

    FrontEnd *fe_ = nullptr;
    IssueCluster *int_cluster_ = nullptr;
    IssueCluster *fp_cluster_ = nullptr;
    LoadStoreUnit *lsu_ = nullptr;
};

} // namespace gals

#endif // GALS_CORE_RECONFIG_HH
