/**
 * @file
 * The front-end domain unit: I-cache, branch predictor, fetch-group
 * queue, rename (ROB, register files) and retire.
 *
 * One front-end edge runs retire, rename and fetch in program-flow
 * order (retire frees resources rename needs; rename frees
 * fetch-queue space) and accumulates the domain's exact next-progress
 * tick in `fe_next_`. Cross-domain traffic — dispatch into the
 * execution domains, committed stores into the store buffer, the
 * halt/resume handshake with the resolving cluster — goes exclusively
 * through the typed ports (core/ports.hh).
 */

#ifndef GALS_CORE_FRONT_END_HH
#define GALS_CORE_FRONT_END_HH

#include <array>
#include <functional>
#include <memory>
#include <optional>

#include "cache/accounting_cache.hh"
#include "control/ilp_tracker.hh"
#include "core/domain.hh"
#include "core/fetch_group.hh"
#include "core/machine_config.hh"
#include "core/run_stats.hh"
#include "core/structures.hh"
#include "predictor/hybrid_predictor.hh"
#include "workload/generator.hh"

namespace gals
{

struct CorePorts;
class IssueCluster;
class LoadStoreUnit;
class ReconfigUnit;

/** Front end: fetch, rename, retire — the progress-owning domain. */
class FrontEnd final : public Domain
{
  public:
    FrontEnd(const MachineConfig &cfg, const AdaptiveConfig &cur_cfg,
             CoreTiming &timing, const WorkloadParams &wl,
             RunStats &stats);

    /** Connect ports and peer units (composition root, once). */
    void wire(CorePorts &ports, IssueCluster &int_cluster,
              IssueCluster &fp_cluster, LoadStoreUnit &lsu,
              ReconfigUnit &reconfig);

    Tick step(Tick now) override;
    Tick wakeBound() const override;

    // ------------------------------------------------------------------
    // Reconfiguration interface (called by the ReconfigUnit).
    // ------------------------------------------------------------------
    /** Re-partition the I-cache and predictor to configuration row
     * `target` (cur_cfg_ already updated by the caller). */
    void applyICache(int target);

    // ------------------------------------------------------------------
    // Progress and measurement (read by the composition root).
    // ------------------------------------------------------------------
    std::uint64_t committed() const { return committed_; }
    /** Stable reference the scheduler's stop condition polls. */
    const std::uint64_t &committedRef() const { return committed_; }
    std::uint64_t flushes() const { return flushes_; }
    Tick measureStart() const { return measure_start_; }
    Tick lastCommitTime() const { return last_commit_time_; }
    std::uint64_t measureCommittedBase() const
    {
        return measure_committed_base_;
    }

    /** Zero-warmup runs measure from t=0 (calls the baseline hook). */
    void beginMeasurementAtZero();

    /** Hook run when the measurement window opens (baselines). */
    void onMeasureStart(std::function<void(Tick)> hook)
    {
        on_measure_start_ = std::move(hook);
    }

    /** Deep-invariant hook + cadence in front-end steps (0 = off). */
    void
    setInvariantCheck(std::function<void()> hook, std::uint32_t every)
    {
        validate_ = std::move(hook);
        inv_interval_ = every;
        inv_countdown_ = every;
    }
    std::uint32_t invariantInterval() const { return inv_interval_; }

    // ------------------------------------------------------------------
    // Structure access (invariants, statistics).
    // ------------------------------------------------------------------
    const Rob &rob() const { return rob_; }
    Rob &rob() { return rob_; }
    const RegisterFiles &regs() const { return regs_; }
    RegisterFiles &regs() { return regs_; }
    const FetchGroupQueue &fetchQueue() const { return fetch_queue_; }
    AccountingCache &l1i() { return *l1i_; }
    const AccountingCache &l1i() const { return *l1i_; }
    HybridPredictor &predictor() { return *predictor_; }
    const HybridPredictor &predictor() const { return *predictor_; }

  private:
    // Stages (program-flow order within one step).
    void doRetire(Tick now);
    void doRename(Tick now);
    void doFetch(Tick now);
    Tick icacheMissTime(Tick now);

    // Phase-adaptive control (sampled at rename / retire).
    void controlCaches(Tick now);
    void controlQueues(Tick now);

    /**
     * Record a next-progress bound discovered during the current
     * step: the earliest tick at which the recording stage could do
     * more work. 0 = progress possible at the very next edge;
     * anything a cross-domain port must provide is *not* recorded
     * (the port wakes cover it).
     */
    void
    feNote(Tick t)
    {
        if (t < fe_next_)
            fe_next_ = t;
    }

    const MachineConfig &cfg_;
    const AdaptiveConfig &cur_cfg_;
    const WorkloadParams &wl_params_;
    RunStats &stats_;

    SyntheticWorkload workload_;

    // Owned front-end structures.
    std::unique_ptr<AccountingCache> l1i_;
    std::unique_ptr<HybridPredictor> predictor_;
    RegisterFiles regs_;
    Rob rob_;
    FetchGroupQueue fetch_queue_;

    // Fetch state.
    /** L1I A/B latencies of the live config (hoisted off doFetch). */
    int fetch_a_lat_ = 2;
    int fetch_b_lat_ = -1;
    /**
     * Pre-generated op batch: fetch refills it with one tight
     * nextBatch() call instead of generating one op per fetch slot.
     * Under the horizon-parallel chip stepper the refill runs inside
     * the owning worker's round (fetch executes there), which is
     * what takes the generator off the serial per-op path; streams
     * are bit-exact by construction (generation is open-loop). Ops
     * past the progress target are generated but never consumed —
     * the generator has no side effects outside its own state.
     */
    static constexpr int kOpBatch = 32;
    std::array<MicroOp, kOpBatch> op_batch_{};
    int op_batch_head_ = 0;
    int op_batch_count_ = 0;
    std::optional<MicroOp> staged_op_;
    Addr cur_fetch_line_ = ~0ULL;
    Tick fetch_line_ready_ = 0;
    /**
     * Provenance of fetch_line_ready_: true when it came from an
     * L2/memory line fill, i.e. a cross-domain grid extrapolation of
     * fetch_line_fill_done_ (the serve time in the load/store
     * domain). A PLL re-lock moves the grid, so the memo is
     * epoch-tagged and recomputed on mismatch while the fill is still
     * pending. Hit-path ready times are short same-domain offsets and
     * are not re-extrapolated.
     */
    bool fetch_line_is_fill_ = false;
    Tick fetch_line_fill_done_ = 0;
    std::uint32_t fetch_line_epoch_ = 0;
    bool fetch_halted_ = false;

    // Per-domain controller state.
    IlpTracker ilp_tracker_;
    Damper damp_icache_;

    // Progress.
    SeqNum next_seq_ = 0;
    std::uint64_t committed_ = 0;
    std::uint64_t interval_commits_ = 0;
    Tick last_commit_time_ = 0;
    std::uint64_t flushes_ = 0;

    // Measurement window.
    bool measuring_ = false;
    Tick measure_start_ = 0;
    std::uint64_t measure_committed_base_ = 0;

    /**
     * Front-end next-progress summary: the earliest tick at which any
     * stage can do more work, accumulated by the stages *during* the
     * step (via feNote) instead of being re-derived afterwards.
     * kTickMax = every stage is blocked on a cross-domain event, all
     * of which are covered by port wakes. Epoch-guarded like the
     * scan/walk summaries.
     */
    Tick fe_next_ = 0;
    std::uint32_t fe_next_epoch_ = 0;

    /** Invariant-check cadence in front-end steps; 0 = off. */
    std::uint32_t inv_interval_ = 0;
    std::uint32_t inv_countdown_ = 0;

    // Wired peers (set once by wire()).
    CorePorts *ports_ = nullptr;
    IssueCluster *int_cluster_ = nullptr;
    IssueCluster *fp_cluster_ = nullptr;
    LoadStoreUnit *lsu_ = nullptr;
    ReconfigUnit *reconfig_ = nullptr;
    Lsq *lsq_ = nullptr;

    std::function<void(Tick)> on_measure_start_;
    std::function<void()> validate_;
};

} // namespace gals

#endif // GALS_CORE_FRONT_END_HH
