#include "core/front_end.hh"

#include <algorithm>

#include "common/logging.hh"
#include "control/cache_controller.hh"
#include "core/issue_cluster.hh"
#include "core/lsu.hh"
#include "core/ports.hh"
#include "core/reconfig.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

} // namespace

FrontEnd::FrontEnd(const MachineConfig &cfg,
                   const AdaptiveConfig &cur_cfg, CoreTiming &timing,
                   const WorkloadParams &wl, RunStats &stats)
    : Domain(DomainId::FrontEnd, timing), cfg_(cfg),
      cur_cfg_(cur_cfg), wl_params_(wl), stats_(stats), workload_(wl),
      regs_(cfg.phys_int_regs, cfg.phys_fp_regs),
      rob_(cfg.rob_entries),
      fetch_queue_(static_cast<size_t>(
          cfg.fetch_queue_entries +
          cfg.decode_width * cfg.feDepth()))
{
    if (cfg_.mode == ClockingMode::MCD) {
        const ICacheConfig &ic = icacheConfig(cur_cfg_.icache);
        l1i_ = std::make_unique<AccountingCache>("l1i", 64 * KB, 4);
        l1i_->setPartition(ic.org.assoc, cfg_.phase_adaptive);
        predictor_ = std::make_unique<HybridPredictor>(ic.predictor);
        fetch_a_lat_ = ic.a_lat;
        fetch_b_lat_ = ic.b_lat;
    } else {
        const OptICacheConfig &ic =
            optICacheConfig(cfg_.sync_icache_opt);
        l1i_ = std::make_unique<AccountingCache>(
            "l1i", ic.org.size_bytes, ic.org.assoc);
        l1i_->setPartition(ic.org.assoc, false);
        predictor_ = std::make_unique<HybridPredictor>(ic.predictor);
    }
}

void
FrontEnd::wire(CorePorts &ports, IssueCluster &int_cluster,
               IssueCluster &fp_cluster, LoadStoreUnit &lsu,
               ReconfigUnit &reconfig)
{
    ports_ = &ports;
    int_cluster_ = &int_cluster;
    fp_cluster_ = &fp_cluster;
    lsu_ = &lsu;
    reconfig_ = &reconfig;
    lsq_ = &lsu.lsq();
}

void
FrontEnd::applyICache(int target)
{
    const ICacheConfig &ic = icacheConfig(target);
    l1i_->setPartition(ic.org.assoc, cfg_.phase_adaptive);
    predictor_->reconfigure(ic.predictor);
    fetch_a_lat_ = ic.a_lat;
    fetch_b_lat_ = ic.b_lat;
}

void
FrontEnd::beginMeasurementAtZero()
{
    measuring_ = true;
    if (on_measure_start_)
        on_measure_start_(0);
}

// ---------------------------------------------------------------------
// Fetch.
// ---------------------------------------------------------------------

Tick
FrontEnd::icacheMissTime(Tick now)
{
    // The unified L2 lives in the load/store domain: request and
    // response each cross a synchronizer.
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick t_req = timing_.crossingAt(now, DomainId::FrontEnd,
                                    DomainId::LoadStore);
    Tick served = lsu_->serveIcacheFill(staged_op_->pc, t_req, dc,
                                        now);
    // The ready time below extrapolates the front-end grid from this
    // serve time; keep the serve time so a PLL re-lock landing while
    // the fill is in flight can recompute the extrapolation.
    fetch_line_fill_done_ = served;
    return timing_.crossingAt(served, DomainId::LoadStore,
                              DomainId::FrontEnd);
}

void
FrontEnd::doFetch(Tick now)
{
    if (fetch_halted_) {
        // The redirect port owns the resume memo (and its epoch
        // guard); kTickMax while unresolved — the resolve hook wakes
        // us.
        Tick resume = ports_->redirect.resumeAt(now);
        if (now < resume) {
            feNote(resume);
            return;
        }
        fetch_halted_ = false;
    }

    Tick fe_period = timing_.clock(DomainId::FrontEnd).period();
    int a_lat = fetch_a_lat_;
    int b_lat = fetch_b_lat_;

    int line_shift = l1i_->lineShift();
    Tick fe_ready =
        now + static_cast<Tick>(cfg_.feDepth()) * fe_period;
    // Whole-group bound, hoisted once: the queue only drains through
    // rename, which ran earlier this step.
    int space = static_cast<int>(
        std::min(static_cast<size_t>(cfg_.fetch_width),
                 fetch_queue_.freeOps()));
    int fetched = 0;
    while (fetched < space) {
        if (!staged_op_) {
            if (op_batch_head_ == op_batch_count_) {
                workload_.nextBatch(op_batch_.data(), kOpBatch);
                op_batch_head_ = 0;
                op_batch_count_ = kOpBatch;
            }
            staged_op_ =
                op_batch_[static_cast<size_t>(op_batch_head_++)];
        }
        Addr line = staged_op_->pc >> line_shift;

        if (line == cur_fetch_line_) {
            if (fetch_line_ready_ > now && fetch_line_is_fill_ &&
                fetch_line_epoch_ != timing_.epoch()) {
                // Mid-fill re-lock: the ready time extrapolated a
                // grid that has since moved; recompute it from the
                // stored serve time.
                fetch_line_ready_ = timing_.crossingAt(
                    fetch_line_fill_done_, DomainId::LoadStore,
                    DomainId::FrontEnd);
                fetch_line_epoch_ = timing_.epoch();
            }
            if (fetch_line_ready_ > now) {
                feNote(fetch_line_ready_); // I-cache line fill gate.
                break;
            }
        } else {
            bool sequential = line == cur_fetch_line_ + 1;
            AccessOutcome out = l1i_->access(staged_op_->pc);
            Tick ready;
            bool is_fill = false;
            switch (out.where) {
              case HitWhere::APartition:
                ready = sequential
                            ? now
                            : now + static_cast<Tick>(a_lat - 1) *
                                        fe_period;
                break;
              case HitWhere::BPartition:
                ready = now + static_cast<Tick>(a_lat + b_lat) *
                                  fe_period;
                break;
              default:
                ready = icacheMissTime(now);
                is_fill = true;
                break;
            }
            cur_fetch_line_ = line;
            fetch_line_ready_ = ready;
            fetch_line_is_fill_ = is_fill;
            fetch_line_epoch_ = timing_.epoch();
            if (ready > now) {
                feNote(ready); // line fill / slow-hit gate.
                break;
            }
        }

        FetchedOp f;
        f.uop = *staged_op_;
        staged_op_.reset();
        OpClass cls = f.uop.cls;
        f.dom = execDomain(cls);
        f.is_mem = isMemOp(cls);
        f.needs_dst = f.uop.dst >= 0;
        f.dst_fp = f.needs_dst && f.uop.dst >= kFirstFpReg;
        bool is_branch = cls == OpClass::Branch;
        if (is_branch) {
            f.pred = predictor_->predict(f.uop.pc);
            predictor_->update(f.uop.pc, f.pred, f.uop.taken);
            f.mispredict = f.pred.taken != f.uop.taken;
        }
        fetch_queue_.push(f, fe_ready);
        ++fetched;

        if (is_branch) {
            if (f.mispredict) {
                // Halt fetch until the branch resolves in its
                // execution domain; resume time arrives through the
                // redirect port at issue.
                fetch_halted_ = true;
                ports_->redirect.arm();
                ++flushes_;
                return; // the resolve hook wakes the front end.
            }
            if (f.uop.taken) {
                // Taken-branch redirect ends the fetch group; the
                // next group starts at the next edge.
                feNote(0);
                return;
            }
        }
    }
    if (fetched == space && fetch_queue_.canPush()) {
        // Width-limited with queue space left: fetch continues at the
        // very next edge. (A full queue instead drains via rename,
        // whose own gates are already recorded.)
        feNote(0);
    }
}

// ---------------------------------------------------------------------
// Rename.
// ---------------------------------------------------------------------

void
FrontEnd::doRename(Tick now)
{
    // Whole-group sizing: one walk over the (few) queued groups gives
    // the consumable prefix, so the loop below runs without per-op
    // visibility checks. One op beyond the decode width is enough to
    // distinguish "width-limited" from "drained everything visible".
    size_t avail = fetch_queue_.visibleOps(
        now, static_cast<size_t>(cfg_.decode_width) + 1);
    if (avail == 0)
        return;

    // The synchronizer crossing time from the front end is the same
    // for every op renamed at this edge; compute it once per target
    // domain (indices 0..2 = Integer, FloatingPoint, LoadStore).
    Tick cross[3];
    bool cross_valid[3] = {false, false, false};
    auto crossingTo = [&](DomainId dd, Tick now_) -> Tick {
        size_t k = static_cast<size_t>(dd) - 1;
        if (!cross_valid[k]) {
            cross[k] = timing_.crossingAt(now_, DomainId::FrontEnd,
                                          dd);
            cross_valid[k] = true;
        }
        return cross[k];
    };

    auto srcRef = [&](std::int8_t logical) -> PhysRef {
        if (logical < 0)
            return PhysRef{-1, false};
        if (logical == kZeroReg)
            return PhysRef{-1, false};
        if (logical == kFirstFpReg)
            return PhysRef{-1, true};
        return regs_.lookup(logical);
    };

    // Flattened resource bounds, hoisted once per group: nothing
    // outside this loop consumes ROB/LSQ/register/FIFO space during
    // the call, so local countdowns replace the per-op structure
    // queries.
    int rob_free = static_cast<int>(rob_.freeSlots());
    int lsq_free = static_cast<int>(lsq_->freeSlots());
    int free_int = regs_.freeIntRegs();
    int free_fp = regs_.freeFpRegs();
    DispatchPort *disp[3] = {&ports_->disp_int, &ports_->disp_fp,
                             &ports_->disp_ls};
    int fifo_free[3] = {
        static_cast<int>(disp[0]->freeSlots()),
        static_cast<int>(disp[1]->freeSlots()),
        static_cast<int>(disp[2]->freeSlots())};
    const int d_shift = lsu_->dcacheLineShift();

    const int budget = static_cast<int>(
        std::min(static_cast<size_t>(cfg_.decode_width), avail));
    int renamed = 0;
    while (renamed < budget) {
        FetchedOp &f = fetch_queue_.front();
        const DomainId dom = f.dom;
        const bool is_mem = f.is_mem;

        if (rob_free == 0)
            break;
        if (f.needs_dst && (f.dst_fp ? free_fp : free_int) == 0)
            break;
        if (is_mem && lsq_free == 0)
            break;
        // Memory ops dispatch twice: an address-generation uop into
        // the integer queue (which therefore gates memory
        // parallelism, as in the 21264) and the access itself into
        // the LSQ.
        const size_t qi =
            dom == DomainId::Integer || is_mem
                ? 0u
                : dom == DomainId::FloatingPoint ? 1u : 2u;
        if (fifo_free[qi] == 0)
            break;
        if (is_mem && fifo_free[2] == 0)
            break;

        size_t idx = rob_.alloc();
        --rob_free;
        InFlightOp &op = rob_[idx];
        op = InFlightOp{};
        op.uop = f.uop;
        op.seq = next_seq_++;
        op.domain = dom;
        op.is_mem = is_mem;
        op.pred = f.pred;
        op.mispredict = f.mispredict;
        op.psrc1 = srcRef(f.uop.src1);
        op.psrc2 = srcRef(f.uop.src2);
        if (f.needs_dst) {
            auto [fresh, old] = regs_.renameDest(f.uop.dst);
            op.pdst = fresh;
            op.old_pdst = old;
            regs_.markPending(fresh);
            --(f.dst_fp ? free_fp : free_int);
        }
        if (is_mem) {
            op.lsq_id =
                lsq_->allocate(idx, f.uop.cls == OpClass::Store,
                               f.uop.mem_addr >> d_shift);
            --lsq_free;
        }

        if (cfg_.phase_adaptive) {
            ilp_tracker_.onRename(f.uop);
            if (ilp_tracker_.sampleReady())
                controlQueues(now);
        }

        // The op becomes issue-eligible after the synchronizer plus
        // the dispatch pipe of the target domain (7/9 integer cycles;
        // this is the "+integer" half of the mispredict penalty).
        DomainId q_dom = is_mem ? DomainId::Integer : dom;
        Tick visible =
            crossingTo(q_dom, now) +
            static_cast<Tick>(cfg_.dispatchDepth()) *
                timing_.clock(q_dom).period();
        disp[qi]->push(idx, visible, now);
        --fifo_free[qi];
        if (is_mem) {
            Tick ls_visible =
                crossingTo(DomainId::LoadStore, now) +
                static_cast<Tick>(cfg_.lsDispatchDepth()) *
                    timing_.clock(DomainId::LoadStore).period();
            disp[2]->push(idx, ls_visible, now);
            --fifo_free[2];
        }
        fetch_queue_.pop();
        ++renamed;
    }
    if (renamed == budget && avail > static_cast<size_t>(budget)) {
        // Width-limited with more visible ops queued: rename
        // continues at the very next edge. (Structural breaks are
        // covered by the retire and consumer-pop hooks; an invisible
        // head group is covered by the group-boundary gate in
        // step().)
        feNote(0);
    }
}

// ---------------------------------------------------------------------
// Retire.
// ---------------------------------------------------------------------

void
FrontEnd::doRetire(Tick now)
{
    const std::uint64_t stop_at =
        wl_params_.warmup_instrs + wl_params_.sim_instrs;
    // Nothing to retire and no accounting to update: keep the
    // no-progress front-end edge (the common case) cheap.
    if (rob_.empty() || committed_ >= stop_at)
        return;
    std::uint64_t budget =
        static_cast<std::uint64_t>(cfg_.retire_width);
    std::uint64_t retired_total = 0;

    // Residency statistics are batched per run of retirements under
    // one live configuration: one set of increments per group instead
    // of four counter updates per op. The batch flushes before any
    // control decision that can change the configuration.
    std::uint32_t run = 0;
    auto flushResidency = [&]() {
        if (run == 0)
            return;
        stats_.icache_residency[static_cast<size_t>(cur_cfg_.icache)] +=
            run;
        stats_.dcache_residency[static_cast<size_t>(cur_cfg_.dcache)] +=
            run;
        stats_.iq_int_residency[static_cast<size_t>(cur_cfg_.iq_int)] +=
            run;
        stats_.iq_fp_residency[static_cast<size_t>(cur_cfg_.iq_fp)] +=
            run;
        run = 0;
    };

    // Group-granular retire: bounds that are constant across a run of
    // retirements — width budget, window end, the measurement-start
    // boundary and the control-interval boundary — are hoisted into
    // one chunk size, so the per-op loop checks only the real
    // head gates (completion, visibility, store-buffer space).
    const int d_shift = lsu_->dcacheLineShift();
    StoreBufferPort &sb = ports_->store_buffer;
    int sb_free = static_cast<int>(sb.freeSlots());

    while (committed_ < stop_at && budget != 0) {
        std::uint64_t chunk =
            std::min(budget, stop_at - committed_);
        if (!measuring_) {
            chunk = std::min(
                chunk, wl_params_.warmup_instrs - committed_);
        }
        if (cfg_.phase_adaptive) {
            chunk = std::min(chunk, cfg_.cache_interval_instrs -
                                        interval_commits_);
        }

        std::uint64_t done = 0;
        while (done < chunk) {
            if (rob_.empty())
                break;
            InFlightOp &op = rob_[rob_.headIndex()];

            if (op.uop.cls == OpClass::Store) {
                if (!op.store_ready)
                    break; // store-ready port wakes the front end.
                if (sb_free == 0)
                    break; // the store-buffer pop port wakes us.
                sb.push(op.uop.mem_addr >> d_shift, now);
                --sb_free;
                lsq_->popFront();
            } else {
                if (!op.completed())
                    break; // completion port wakes the front end.
                if (op.fe_vis == kTickMax ||
                    op.fe_vis_epoch != timing_.epoch()) {
                    op.fe_vis = timing_.visibleAt(
                        op.complete_at, op.domain,
                        DomainId::FrontEnd);
                    op.fe_vis_epoch = timing_.epoch();
                }
                if (op.fe_vis > now) {
                    feNote(op.fe_vis); // exact visibility gate.
                    break;
                }
                if (op.is_mem)
                    lsq_->popFront();
            }

            regs_.release(op.old_pdst);
            rob_.retireHead();
            ++done;
        }

        committed_ += done;
        budget -= done;
        retired_total += done;
        if (measuring_)
            run += static_cast<std::uint32_t>(done);
        if (cfg_.phase_adaptive)
            interval_commits_ += done;

        if (!measuring_ &&
            committed_ >= wl_params_.warmup_instrs) {
            measuring_ = true;
            measure_start_ = now;
            measure_committed_base_ = committed_;
            if (on_measure_start_)
                on_measure_start_(now);
            // The boundary op retires into the measured residency
            // accounting (its commit count does not, matching the
            // reference accounting order).
            run += 1;
        }
        if (cfg_.phase_adaptive &&
            interval_commits_ >= cfg_.cache_interval_instrs) {
            interval_commits_ = 0;
            flushResidency(); // controlCaches may change the config.
            controlCaches(now);
        }

        if (done < chunk)
            break; // a head gate ended the run.
    }
    if (budget == 0 && committed_ < stop_at && !rob_.empty()) {
        // Width-limited: the head run continues at the very next
        // edge.
        feNote(0);
    }
    flushResidency();
    if (retired_total != 0)
        last_commit_time_ = now;
}

// ---------------------------------------------------------------------
// Phase-adaptive control orchestration. The cache-interval boundary
// is observed at retire (this domain), but each structure's
// controller state lives with its owning domain unit: the I-cache
// damper here, the D-cache pair's in the load/store unit, the issue
// queues' in their clusters.
// ---------------------------------------------------------------------

void
FrontEnd::controlCaches(Tick now)
{
    const DCachePairConfig &dc = dcachePairConfig(cur_cfg_.dcache);
    Tick fe_period = timing_.clock(DomainId::FrontEnd).period();
    Tick ls_period = timing_.clock(DomainId::LoadStore).period();

    Tick i_miss_extra =
        2 * fe_period + static_cast<Tick>(dc.l2_a_lat) * ls_period;
    CacheDecision di = chooseICache(l1i_->interval(), i_miss_extra);
    CacheDecision dd = lsu_->decideDCache();
    l1i_->resetInterval();
    lsu_->resetDCacheIntervals();

    int prop_i =
        cacheClearlyBetter(di, cur_cfg_.icache,
                           cfg_.icache_hysteresis)
            ? di.best_index
            : cur_cfg_.icache;
    if (damp_icache_.vote(prop_i, cur_cfg_.icache,
                          cfg_.cache_persistence)) {
        reconfig_->request(Structure::ICache, prop_i, now,
                           committed_);
    }
    lsu_->voteDCache(dd, now, committed_);
}

void
FrontEnd::controlQueues(Tick now)
{
    IlpSample sample = ilp_tracker_.takeSample();
    int_cluster_->control(sample, now, committed_);
    fp_cluster_->control(sample, now, committed_);
}

// ---------------------------------------------------------------------
// Step and sleep.
// ---------------------------------------------------------------------

Tick
FrontEnd::step(Tick now)
{
    if (pending_->active)
        reconfig_->applyPending(id_, now);
    fe_next_ = kTickMax;
    fe_next_epoch_ = timing_.epoch();
    doRetire(now);
    doRename(now);
    doFetch(now);
    // Group-boundary gate: queued ops (including ones fetch pushed
    // this very edge, which rename ran too early to see) whose group
    // becomes visible later wake rename exactly at that boundary. A
    // visible-but-unconsumed head means rename was structurally
    // blocked, which retire progress or consumer-pop ports unblock —
    // no timed wake.
    if (!fetch_queue_.empty()) {
        Tick v = fetch_queue_.frontVisibleAt();
        if (v > now)
            feNote(v);
    }
    if (inv_interval_ != 0 && --inv_countdown_ == 0) {
        inv_countdown_ = inv_interval_;
        if (validate_)
            validate_();
    }
    return wakeBound();
}

Tick
FrontEnd::wakeBound() const
{
    // The stages recorded the exact next-progress tick while they ran
    // (fe_next_): retire-visibility times, fetch-group visibility
    // boundaries, I-cache line fills and redirect resumes. Everything
    // else is blocked on a cross-domain event, all of which arrive
    // through port wakes.
    //
    // Epoch guard, like the scan/walk summaries: when this domain's
    // own period change landed right after the step, the recorded
    // ticks extrapolate a grid that no longer exists — re-derive at
    // the next edge.
    if (fe_next_epoch_ != timing_.epoch())
        return 0;
    return fe_next_;
}

} // namespace gals
