/**
 * @file
 * Register renaming state: the logical-to-physical map, the physical
 * free lists, and the scoreboard of completion times.
 *
 * The scoreboard stores, per physical register, the absolute time the
 * value is produced and the domain producing it; cross-domain
 * consumers apply the synchronizer rule to that time (done in the
 * processor, which owns the clocks). Logical registers 0 (integer)
 * and 32 (floating-point) are hard-wired always-ready zeros.
 */

#ifndef GALS_CORE_REGFILE_HH
#define GALS_CORE_REGFILE_HH

#include <cstdint>
#include <utility>

#include "common/arena.hh"
#include "common/types.hh"
#include "workload/uop.hh"

namespace gals
{

/** A renamed physical register reference. */
struct PhysRef
{
    std::int16_t index = -1; //!< physical index; -1 = always ready.
    bool fp = false;         //!< which physical file.
};

/** Completion state of one physical register. */
struct PhysRegState
{
    bool pending = false;            //!< a producer is in flight.
    Tick ready_at = 0;               //!< production time.
    DomainId producer = DomainId::FrontEnd;
};

/** Rename map + free lists + scoreboard for both register files. */
class RegisterFiles
{
  public:
    RegisterFiles(int phys_int, int phys_fp);

    /** True when a destination of the given type can be renamed. */
    bool canAlloc(bool fp) const;

    /** Current physical mapping of a logical register. */
    PhysRef lookup(int logical) const;

    /**
     * Rename a destination: allocate a new physical register, update
     * the map, and return {new, previous} physical refs. The previous
     * mapping is freed when the op retires.
     */
    std::pair<PhysRef, PhysRef> renameDest(int logical);

    /** Release a physical register (at retire, the old mapping). */
    void release(PhysRef ref);

    /** Mark a physical register pending (at rename). */
    void markPending(PhysRef ref);

    /** Record production time and producing domain (at issue). */
    void complete(PhysRef ref, Tick when, DomainId producer);

    /** Scoreboard entry for a physical register. */
    const PhysRegState &state(PhysRef ref) const;

    int freeIntRegs() const
    {
        return static_cast<int>(free_int_.size());
    }
    int freeFpRegs() const { return static_cast<int>(free_fp_.size()); }

    /**
     * Structural consistency of the rename state (the differential
     * harness's per-stage invariant): the rename map is a subset of
     * the free-list complement — no mapped physical register appears
     * in a free list, no register is mapped or freed twice, and
     * occupancy stays within the physical file sizes.
     */
    bool checkConsistent() const;

  private:
    ArenaVector<PhysRegState> int_state_;
    ArenaVector<PhysRegState> fp_state_;
    ArenaVector<std::int16_t> free_int_;
    ArenaVector<std::int16_t> free_fp_;
    /** Logical (0..63) to physical map; index -1 for the zero regs. */
    ArenaVector<PhysRef> map_;
};

} // namespace gals

#endif // GALS_CORE_REGFILE_HH
