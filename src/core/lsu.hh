/**
 * @file
 * The load/store domain unit: LSQ, MSHRs, L1 data cache, unified L2
 * and the main-memory channel, plus the D-cache pair's controller.
 *
 * The unit serves three traffic classes per edge — dispatch arrivals
 * from the front end, the store-ready and load-issue walks over the
 * LSQ, and the post-commit store-buffer drain — and records a walk
 * summary so the event kernel can sleep when nothing can change.
 * Cross-domain traffic (store-ready publications, completion wakes,
 * store-buffer handoff, the front end's I-cache fills through the
 * unified L2) goes exclusively through the typed ports.
 */

#ifndef GALS_CORE_LSU_HH
#define GALS_CORE_LSU_HH

#include <memory>

#include "cache/accounting_cache.hh"
#include "cache/main_memory.hh"
#include "control/cache_controller.hh"
#include "core/domain.hh"
#include "core/machine_config.hh"
#include "core/structures.hh"

namespace gals
{

struct CorePorts;
class DispatchPort;
class CompletionPort;
class StoreBufferPort;
class WakePort;
class AgenPort;
class ReconfigUnit;
class InterconnectPort;

/** Load/store unit: LSQ, data caches, memory, store-buffer drain. */
class LoadStoreUnit final : public Domain
{
  public:
    /**
     * A non-null `icp` routes this unit's L2-and-below traffic
     * through the chip's shared banked L2 instead of the private
     * hierarchy (which is then not built at all). The private L1D
     * and its MSHRs stay local; the interconnect arbitrates only
     * across cores, so a single-core chip times bit-identically to
     * the private path.
     */
    LoadStoreUnit(const MachineConfig &cfg,
                  const AdaptiveConfig &cur_cfg, CoreTiming &timing,
                  Rob &rob, InterconnectPort *icp, int core_index);

    /** Connect ports and the reconfiguration unit (once). */
    void wire(CorePorts &ports, ReconfigUnit &reconfig);

    Tick step(Tick now) override;
    Tick wakeBound() const override;

    // ------------------------------------------------------------------
    // Cross-domain services.
    // ------------------------------------------------------------------
    /**
     * Serve an I-cache line fill through the unified L2 (and memory
     * on an L2 miss) for the front end. `t_req` is the request's
     * arrival on this domain's grid; the returned serve time is on
     * this grid too (the front end extrapolates it back). `now` is
     * the front end's step tick performing the request (the shared
     * interconnect's publication-order bookkeeping needs it).
     */
    Tick serveIcacheFill(Addr pc, Tick t_req,
                         const DCachePairConfig &dc, Tick now);

    /** L1D line shift (rename derives LSQ line addresses with it). */
    int dcacheLineShift() const { return l1d_->lineShift(); }

    // ------------------------------------------------------------------
    // D-cache pair controller (orchestrated from the front end's
    // cache-interval boundary; the damper and decision live here).
    // ------------------------------------------------------------------
    CacheDecision decideDCache() const;
    void resetDCacheIntervals();
    void voteDCache(const CacheDecision &dd, Tick now,
                    std::uint64_t committed);

    /** Re-partition the D-cache pair to row `target` (ReconfigUnit;
     * cur_cfg_ already updated by the caller). */
    void applyDCache(int target, Tick now);

    // ------------------------------------------------------------------
    // Structure access (rename, retire, invariants, statistics).
    // ------------------------------------------------------------------
    Lsq &lsq() { return lsq_; }
    const Lsq &lsq() const { return lsq_; }
    AccountingCache &l1d() { return *l1d_; }
    const AccountingCache &l1d() const { return *l1d_; }
    /** Private-hierarchy L2 (null when the shared L2 is attached). */
    AccountingCache &l2() { return *l2_; }
    const AccountingCache &l2() const { return *l2_; }

    /** L2 lifetime totals of *this core's* traffic: the private L2's
     * counters, or this core's slice of the shared L2. */
    std::uint64_t l2TotalAccesses() const;
    std::uint64_t l2TotalMisses() const;
    std::uint64_t l2TotalBHits() const;

  private:
    /** Outcome of a load-issue attempt (drives the wakeup index). */
    enum class LoadStart
    {
        Issued,   //!< access started; entry leaves the waiting list.
        Blocked,  //!< older same-line store lacks data: event-waited.
        MshrBusy, //!< no free MSHR: time- and event-waited.
    };

    bool agenVisible(LsqEntry &entry, const InFlightOp &op, Tick now);
    LoadStart tryStartLoad(LsqEntry &entry, Tick now, int &ports_used,
                           std::uint64_t &blocker);
    void drainStoreBuffer(Tick now, int &ports_used, int max_ports);
    Tick dataHierarchyTime(Addr addr, Tick now);
    /** Occupy the free MSHR the caller verified exists until `done`. */
    void claimMshr(Tick now, Tick done);

    const MachineConfig &cfg_;
    const AdaptiveConfig &cur_cfg_;
    Rob &rob_;

    Lsq lsq_;
    std::unique_ptr<AccountingCache> l1d_;
    std::unique_ptr<AccountingCache> l2_;
    MainMemory memory_;
    ArenaVector<Tick> mshr_busy_;
    /** min(mshr_busy_): one compare decides "any MSHR free". */
    Tick mshr_min_free_ = 0;

    /**
     * Walk summary for the combined LSQ walks of this domain. The
     * event snapshots are the per-entry wake sources only: the LSQ
     * wake counter covers blocked-load chain wakes (a store's data
     * capture or retirement) and matching-line store-buffer pushes
     * (the one push that can make an MSHR-waiting load forwardable —
     * found through the per-line waiter index, so unrelated pushes no
     * longer force a walk). MSHR claims and store-buffer pops
     * invalidate nothing — they can only push wait bounds later,
     * never enable an entry — so a walk whose waiters are all far in
     * the future stays asleep through them (the seed design re-walked
     * the whole queue on every such event).
     */
    struct LsSummary
    {
        bool must_walk = true;
        /** Earliest agen-visibility / MSHR-free time among waiters. */
        Tick min_time = kTickMax;
        std::uint32_t agen_snap = 0;
        std::uint32_t wake_snap = 0;
        std::uint32_t epoch_snap = 0;
    };
    LsSummary ls_sum_;

    Damper damp_dcache_;

    // Wired peers.
    DispatchPort *disp_ = nullptr;
    CompletionPort *completion_ = nullptr;
    StoreBufferPort *sb_ = nullptr;
    WakePort *store_ready_ = nullptr;
    const AgenPort *agen_ = nullptr;
    ReconfigUnit *reconfig_ = nullptr;
    /** Shared-L2 channel (null = private hierarchy). */
    InterconnectPort *icp_ = nullptr;
    int core_index_ = 0;
};

} // namespace gals

#endif // GALS_CORE_LSU_HH
