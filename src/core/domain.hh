/**
 * @file
 * The clock-domain unit abstraction of the GALS core.
 *
 * The processor is composed of four independently clocked domain
 * units (front end, integer cluster, floating-point cluster,
 * load/store unit). Each unit owns its structures, controllers and
 * sleep summary, implements one `step()` per delivered clock edge,
 * and reports a `wakeBound()` — the earliest tick at which it could
 * do observable work again. Units never touch each other's wake
 * state directly: all cross-domain publication goes through the
 * typed ports in core/ports.hh, which are the single owner of the
 * publication-order rule.
 *
 * `CoreTiming` is the shared clock fabric: the domain clocks, the
 * synchronizer rule between them, and the grid-change epoch that
 * tags every memoized grid extrapolation (see docs/kernel.md).
 */

#ifndef GALS_CORE_DOMAIN_HH
#define GALS_CORE_DOMAIN_HH

#include <array>
#include <cstdint>

#include "clock/clock.hh"
#include "clock/synchronizer.hh"
#include "common/types.hh"
#include "control/reconfig_trace.hh"

namespace gals
{

/** A structure change waiting for PLL lock completion. */
struct PendingApply
{
    bool active = false;
    Structure structure{};
    int target = 0;
    Tick apply_at = 0;
};

/** Persistence damper: act only on repeated agreeing decisions. */
struct Damper
{
    int target = -1;
    int count = 0;

    /** Returns true when `proposal` has persisted `need` times. */
    bool
    vote(int proposal, int current, int need)
    {
        if (proposal == current) {
            target = -1;
            count = 0;
            return false;
        }
        if (proposal == target) {
            ++count;
        } else {
            target = proposal;
            count = 1;
        }
        if (count >= need) {
            target = -1;
            count = 0;
            return true;
        }
        return false;
    }
};

/**
 * Shared clock fabric: per-domain clocks, the synchronizer rule, and
 * the grid-change epoch. Every domain unit and port holds a reference
 * to one instance; the scheduler advances the clocks and bumps the
 * epoch when a period change lands.
 */
class CoreTiming
{
  public:
    /** @param clocks this core's kNumDomains clocks (a chip stores
     *  all cores' clocks flat; each core's timing views its four). */
    CoreTiming(Clock *clocks, bool same_domain)
        : clocks_(clocks), same_domain_(same_domain)
    {}

    Clock &clock(DomainId d)
    {
        return clocks_[static_cast<size_t>(d)];
    }
    const Clock &clock(DomainId d) const
    {
        return clocks_[static_cast<size_t>(d)];
    }
    Clock &clock(int d) { return clocks_[static_cast<size_t>(d)]; }
    const Clock &clock(int d) const
    {
        return clocks_[static_cast<size_t>(d)];
    }

    /** True when all domains share one grid (synchronous mode). */
    bool sameDomain() const { return same_domain_; }

    /** When a value produced in `prod` is usable in `cons`. */
    Tick
    visibleAt(Tick produced, DomainId prod, DomainId cons) const
    {
        if (produced == 0)
            return 0;
        if (same_domain_ || prod == cons) {
            // Bypass within one clock: usable at the first edge at or
            // after production (with the same anti-wobble margin the
            // synchronizer applies; see clock/synchronizer.hh).
            return bypassVisibleAt(produced, clock(cons));
        }
        return syncVisibleAt(produced, clock(prod), clock(cons),
                             false);
    }

    /** Synchronizer crossing of a value produced at `t` in `prod`. */
    Tick
    crossingAt(Tick t, DomainId prod, DomainId cons) const
    {
        return syncVisibleAt(t, clock(prod), clock(cons),
                             same_domain_);
    }

    /**
     * Grid-change epoch: bumped whenever any domain clock applies a
     * period change. Tags every memoized grid extrapolation
     * (InFlightOp::ready_hint/fe_vis, LsqEntry::agen_vis, the
     * per-domain sleep summaries).
     */
    std::uint32_t epoch() const { return epoch_; }
    void bumpEpoch() { ++epoch_; }

  private:
    Clock *clocks_;
    bool same_domain_;
    std::uint32_t epoch_ = 1;
};

/**
 * One clock-domain unit. The scheduler steps the unit at each
 * delivered edge of its clock and, in the event kernel, parks it on
 * the bound it reports afterwards.
 */
class Domain
{
  public:
    Domain(DomainId id, CoreTiming &timing)
        : id_(id), timing_(timing)
    {}
    virtual ~Domain() = default;

    DomainId id() const { return id_; }
    int index() const { return static_cast<int>(id_); }

    /**
     * Execute this domain's work for the edge at `now` and return
     * wakeBound() — folding the bound into the step halves the
     * scheduler's virtual dispatch per iteration (the reference
     * kernel ignores the value).
     */
    virtual Tick step(Tick now) = 0;

    /**
     * Earliest tick at which this domain could do observable work
     * given its state right after stepping (summaries recorded
     * in-step); kTickMax parks the domain until a cross-domain port
     * re-arms it. Must be a lower bound: waking early is a wasted
     * no-op step, waking late would diverge from the reference
     * kernel.
     */
    virtual Tick wakeBound() const = 0;

    /** Attach the domain's pending-structure-change slot (wired by
     * the composition root before the first run). */
    void attachPending(const PendingApply *pending)
    {
        pending_ = pending;
    }

    /**
     * A raw wake bound clamped by the generic gates every domain
     * shares: a pending structure apply, and a scheduled period
     * change (other domains consult this clock's grid, so a parked
     * clock must not lag across the change's landing edge).
     */
    Tick
    clampBound(Tick w) const
    {
        if (pending_ != nullptr && pending_->active)
            w = std::min(w, pending_->apply_at);
        const Clock &c = timing_.clock(id_);
        if (c.changePending())
            w = std::min(w, c.changeDue());
        return w;
    }

  protected:
    const DomainId id_;
    CoreTiming &timing_;
    const PendingApply *pending_ = nullptr;
};

} // namespace gals

#endif // GALS_CORE_DOMAIN_HH
