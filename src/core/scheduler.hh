/**
 * @file
 * The domain scheduler: the step loop of the GALS core, generic over
 * a set of clock-domain units (core/domain.hh).
 *
 * Two kernels share one stepping order (time, then lowest domain
 * index on ties — exactly the original simulator's tie-break):
 *
 *  - the *reference* kernel steps every domain at every edge and is
 *    the bit-identity oracle (GALS_KERNEL=reference);
 *  - the *event* kernel keeps a keyed calendar (in the WakeHub) of
 *    each domain's earliest-possible-work tick, parks domains whose
 *    bound is unknown until a port re-arms them, and consumes
 *    proven-idle edges in bulk.
 *
 * The scheduler owns clock advancement: when a pending period change
 * lands on a consumed edge it broadcasts the epoch bump through the
 * port layer, which wakes sleeping domains per the publication order
 * rule. Nothing here is specific to four domains; a follow-up can
 * instantiate heterogeneous clusters or multiple cores against the
 * same loop (bounded by kMaxSchedDomains).
 */

#ifndef GALS_CORE_SCHEDULER_HH
#define GALS_CORE_SCHEDULER_HH

#include <cstdint>

#include "clock/clock.hh"
#include "common/types.hh"
#include "core/domain.hh"
#include "core/ports.hh"

namespace gals
{

/** Steps a set of domain units in reference-equivalent order. */
class DomainScheduler
{
  public:
    /**
     * @param domains  one unit per domain, indexed by DomainId.
     * @param clocks   the matching domain clocks.
     * @param count    number of domains (<= kMaxSchedDomains).
     * @param hub      the wake fabric (bounds + calendar keys).
     * @param epochs   the epoch-bump broadcast port.
     */
    DomainScheduler(Domain *const *domains, Clock *clocks, int count,
                    WakeHub &hub, EpochBumpPort &epochs);

    /**
     * Event kernel: run until `progress` (a counter advanced by the
     * domains themselves, e.g. committed instructions) reaches
     * `target`.
     */
    void runEvent(const std::uint64_t &progress, std::uint64_t target);

    /** Reference kernel: step every domain at every edge. */
    void runReference(const std::uint64_t &progress,
                      std::uint64_t target);

  private:
    /** advance() + epoch-bump broadcast when a period change lands;
     * returns true when a change landed on the consumed edge. */
    bool advanceClock(int d);
    /** Consume proven-idle edges of domain d strictly below `t`. */
    void advanceClockWhileBelow(int d, Tick t);

    Domain *const *domains_;
    Clock *clocks_;
    int count_;
    WakeHub &hub_;
    EpochBumpPort &epochs_;
};

} // namespace gals

#endif // GALS_CORE_SCHEDULER_HH
