/**
 * @file
 * The domain scheduler: the step loop of the GALS core, generic over
 * a set of clock-domain units (core/domain.hh) — four for a single
 * Processor, four per core for a Chip.
 *
 * Two kernels share one stepping order (time, then lowest *global*
 * domain index on ties — exactly the original simulator's tie-break,
 * which a chip extends core-major):
 *
 *  - the *reference* kernel steps every domain at every edge and is
 *    the bit-identity oracle (GALS_KERNEL=reference);
 *  - the *event* kernel keeps a keyed calendar (in the WakeFabric) of
 *    each domain's earliest-possible-work tick, parks domains whose
 *    bound is unknown until a port re-arms them, and consumes
 *    proven-idle edges in bulk.
 *
 * The scheduler owns clock advancement: when a pending period change
 * lands on a consumed edge it broadcasts the epoch bump through the
 * landing core's port (grid epochs are per core: only that core's
 * memoized extrapolations go stale), which wakes that core's sleeping
 * domains per the publication order rule.
 *
 * Multi-core runs stop when every core's progress counter reaches its
 * target; a finished core is halted — its domains are parked and
 * never stepped again — so the remaining cores finish their windows
 * under (slightly reduced) shared-L2 contention, the standard
 * multiprogrammed-throughput methodology.
 */

#ifndef GALS_CORE_SCHEDULER_HH
#define GALS_CORE_SCHEDULER_HH

#include <array>
#include <cstdint>

#include "clock/clock.hh"
#include "common/types.hh"
#include "core/domain.hh"
#include "core/ports.hh"

namespace gals
{

/** Stop condition of one core: run until *progress >= target. */
struct CoreProgress
{
    const std::uint64_t *progress;
    std::uint64_t target;
};

/**
 * One worker's share of a horizon-parallel chip *round*: the cores it
 * claimed through the round's atomic cursor, which of them finished
 * their windows during the round, and its watchdog counters. The
 * driver rebuilds members/done (and resets the watchdog — group
 * membership changes between rounds, so a cross-round progress
 * comparison would be meaningless) in every claim phase. Aligned so
 * two workers' hot counters never share a cache line.
 */
struct alignas(64) GroupRun
{
    std::array<int, kMaxCores> members{}; //!< cores, ascending.
    int nmembers = 0;
    std::array<bool, kMaxCores> done{}; //!< by member slot.
    int active = 0;                     //!< members still running.
    std::uint64_t steps = 0;            //!< watchdog (this round).
    std::uint64_t last_progress = 0;
};

/** Steps a set of domain units in reference-equivalent order. */
class DomainScheduler
{
  public:
    /**
     * @param domains one unit per global domain index (core-major:
     *                core c's local domain d sits at c*kNumDomains+d).
     * @param clocks  the matching domain clocks, same indexing.
     * @param count   number of domains (a multiple of kNumDomains,
     *                <= kMaxSchedDomains).
     * @param fabric  the wake fabric (bounds + calendar keys).
     * @param epochs  per-domain pointer to the owning core's
     *                epoch-bump broadcast port (entries of one core
     *                repeat the same port).
     */
    DomainScheduler(Domain *const *domains, Clock *clocks, int count,
                    WakeFabric &fabric, EpochBumpPort *const *epochs);

    /** Event kernel: run until every core's progress (a counter
     * advanced by the core's own domains, e.g. committed
     * instructions) reaches its target. */
    void runEvent(const CoreProgress *cores, int ncores);

    /** Reference kernel: step every active domain at every edge. */
    void runReference(const CoreProgress *cores, int ncores);

    /**
     * Event kernel, one worker's turn of a horizon-parallel round:
     * step the group's cores — their private calendar interleave is
     * the global (time, lowest global index) order restricted to
     * those cores — until the group's earliest calendar key reaches
     * `horizon` or every member finished. Maintains the worker's
     * front in `sync` (published *before* each step, so the
     * interconnect gates of other workers order every shared-bank
     * touch exactly as the sequential kernel would execute it).
     * `cores` is the full chip-wide stop-condition array, indexed by
     * core.
     */
    void stepGroupUntil(GroupRun &g, const CoreProgress *cores,
                        Tick horizon, ChipSyncState *sync, int worker);

    // Single-core conveniences (Processor).
    void runEvent(const std::uint64_t &progress, std::uint64_t target);
    void runReference(const std::uint64_t &progress,
                      std::uint64_t target);

  private:
    /** advance() + epoch-bump broadcast when a period change lands;
     * returns true when a change landed on the consumed edge. */
    bool advanceClock(int d);
    /** Consume proven-idle edges of domain d strictly below `t`. */
    void advanceClockWhileBelow(int d, Tick t);

    Domain *const *domains_;
    Clock *clocks_;
    int count_;
    WakeFabric &fabric_;
    EpochBumpPort *const *epochs_;
};

} // namespace gals

#endif // GALS_CORE_SCHEDULER_HH
