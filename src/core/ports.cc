#include "core/ports.hh"

#include "core/machine_config.hh"

namespace gals
{

namespace
{

/** Dispatch FIFO capacity: the synchronizer queue plus the dispatch
 * pipe occupancy at full decode width. */
size_t
dispatchCapacity(const MachineConfig &cfg, int pipe_depth)
{
    return static_cast<size_t>(cfg.dispatch_fifo_entries +
                               cfg.decode_width * pipe_depth);
}

} // namespace

CorePorts::CorePorts(WakeHub &hub, CoreTiming &timing,
                     const MachineConfig &cfg, RegisterFiles &regs,
                     IssueQueue &iq_int, IssueQueue &iq_fp,
                     const Rob &rob, Lsq &lsq)
    : disp_int(hub, DomainId::FrontEnd, DomainId::Integer,
               dispatchCapacity(cfg, cfg.dispatchDepth())),
      disp_fp(hub, DomainId::FrontEnd, DomainId::FloatingPoint,
              dispatchCapacity(cfg, cfg.dispatchDepth())),
      disp_ls(hub, DomainId::FrontEnd, DomainId::LoadStore,
              dispatchCapacity(cfg, cfg.lsDispatchDepth())),
      store_buffer(hub, cfg.store_buffer_entries),
      completion(hub, regs, iq_int, iq_fp, rob),
      redirect(hub, timing),
      agen(hub, lsq),
      store_ready(hub, DomainId::LoadStore, DomainId::FrontEnd),
      reclock(hub)
{}

} // namespace gals
