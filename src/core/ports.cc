#include "core/ports.hh"

#include <algorithm>
#include <thread>

#include "cache/shared_l2.hh"
#include "core/machine_config.hh"
#include "obs/trace.hh"
#include "timing/frequency_model.hh"

namespace gals
{

namespace
{

/** Dispatch FIFO capacity: the synchronizer queue plus the dispatch
 * pipe occupancy at full decode width. */
size_t
dispatchCapacity(const MachineConfig &cfg, int pipe_depth)
{
    return static_cast<size_t>(cfg.dispatch_fifo_entries +
                               cfg.decode_width * pipe_depth);
}

} // namespace

CorePorts::CorePorts(WakeHub &hub, CoreTiming &timing,
                     const MachineConfig &cfg, RegisterFiles &regs,
                     IssueQueue &iq_int, IssueQueue &iq_fp,
                     const Rob &rob, Lsq &lsq)
    : disp_int(hub, DomainId::FrontEnd, DomainId::Integer,
               dispatchCapacity(cfg, cfg.dispatchDepth())),
      disp_fp(hub, DomainId::FrontEnd, DomainId::FloatingPoint,
              dispatchCapacity(cfg, cfg.dispatchDepth())),
      disp_ls(hub, DomainId::FrontEnd, DomainId::LoadStore,
              dispatchCapacity(cfg, cfg.lsDispatchDepth())),
      store_buffer(hub, lsq, cfg.store_buffer_entries),
      completion(hub, regs, iq_int, iq_fp, rob),
      redirect(hub, timing),
      agen(hub, lsq),
      store_ready(hub, DomainId::LoadStore, DomainId::FrontEnd),
      reclock(hub)
{}

// ---------------------------------------------------------------------
// InterconnectPort: the cross-core L2 request/response channel.
// ---------------------------------------------------------------------

InterconnectPort::InterconnectPort(SharedL2 &l2, int cores)
    : l2_(l2), cores_(cores)
{
    GALS_ASSERT(cores >= 1 && cores <= kMaxCores,
                "interconnect core count out of range");
    GALS_ASSERT(l2.params().cores >= cores,
                "shared L2 sized for fewer cores than the "
                "interconnect serves");
}

void
InterconnectPort::gate(int core, int consumer, Tick now) const
{
    const ChipSyncState *s = sync_;
    if (s == nullptr)
        return;
    const std::uint64_t point = ChipSyncState::pack(now, consumer);
    const int self = s->worker_of_core[static_cast<size_t>(core)];
    const bool rec = obs::tracing();
    std::uint64_t spun = 0;
    std::uint64_t spin_begin = 0;
    for (int w = 0; w < s->nworkers; ++w) {
        if (w == self)
            continue;
        // Wait until worker w's front is strictly past our order
        // point (equality is impossible: distinct cores own distinct
        // global domain indices). The acquire pairs with the front's
        // release store, so every shared-bank write of w's earlier
        // steps is visible here — and w cannot enter a request body
        // while we are in ours, because its own gate spins on our
        // front, which still sits at `point`.
        std::uint64_t spins = 0;
        while (s->fronts[static_cast<size_t>(w)].v.load(
                   std::memory_order_acquire) <= point) {
            if (rec && spun == 0) {
                spin_begin = obs::Tracer::instance().hostNow();
            }
            ++spun;
            if ((++spins & 0x3ff) == 0)
                std::this_thread::yield();
            GALS_ASSERT(spins < 20'000'000'000ull,
                        "interconnect gate stalled: worker %d's front "
                        "never passed t=%llu (global domain %d)",
                        w, static_cast<unsigned long long>(now),
                        consumer);
        }
    }
    if (rec && spun > 0) {
        obs::Tracer &tr = obs::Tracer::instance();
        tr.hostWaitSpan(self, obs::Ev::GateSpin, spin_begin,
                        tr.hostNow(), spun);
    }
}

void
InterconnectPort::deferWake(Tick pub_tick, int publisher, int consumer,
                            Tick when, int target_core, Addr line_base)
{
    // Appends need no lock: production publishers sit inside gated
    // request bodies, which the fronts make temporally exclusive.
    deferred_.push_back(DeferredWake{pub_tick, publisher, consumer,
                                     when, target_core, line_base});
}

void
InterconnectPort::drainDeferred(WakeFabric &fabric, Tick window_start,
                                Tick window_end)
{
    Tick last_tick = 0;
    int last_pub = -1;
    for (const DeferredWake &dw : deferred_) {
        // Stale publication: the publisher's step ran inside the
        // just-finished window, so its tick cannot precede the
        // window's start — an earlier tick means the wake survived a
        // previous round's drain or was forged outside a gated body.
        GALS_ASSERT(dw.pub_tick >= window_start,
                    "stale publication: cross-core wake published at "
                    "t=%llu before the round window starting at "
                    "t=%llu",
                    static_cast<unsigned long long>(dw.pub_tick),
                    static_cast<unsigned long long>(window_start));
        GALS_ASSERT(dw.pub_tick > last_tick ||
                        (dw.pub_tick == last_tick &&
                         dw.publisher >= last_pub),
                    "merge order violation: cross-core wake published "
                    "at t=%llu by global domain %d queued after one "
                    "from t=%llu by global domain %d",
                    static_cast<unsigned long long>(dw.pub_tick),
                    dw.publisher,
                    static_cast<unsigned long long>(last_tick),
                    last_pub);
        last_tick = dw.pub_tick;
        last_pub = dw.publisher;
        // The cross-core publication order rule, same shape as
        // WakeHub::consumableAt under the global (core-major) index.
        Tick consumable = dw.consumer < dw.publisher ? dw.pub_tick + 1
                                                     : dw.pub_tick;
        GALS_ASSERT(dw.when >= consumable,
                    "publication order violation: cross-core wake of "
                    "global domain %d at t=%llu from global domain "
                    "%d's step at t=%llu",
                    dw.consumer,
                    static_cast<unsigned long long>(dw.when),
                    dw.publisher,
                    static_cast<unsigned long long>(dw.pub_tick));
        // Horizon safety: workers stepped strictly below window_end,
        // so a wake landing before it would rewrite already-executed
        // steps. The horizon computation clamps each round to the
        // earliest in-flight carrier, making this unreachable — a
        // fill landing exactly at the boundary is the tight case.
        GALS_ASSERT(dw.when >= window_end,
                    "horizon violation: cross-core wake at t=%llu "
                    "inside the round window ending at t=%llu",
                    static_cast<unsigned long long>(dw.when),
                    static_cast<unsigned long long>(window_end));
        // Inbox payloads land here, single-threaded, in the same
        // (pub_tick, publisher) order the sequential kernel pushes
        // them in — the consumer's mid-round drain never races a
        // producer.
        if (dw.target_core >= 0) {
            l2_.inboxes_[static_cast<size_t>(dw.target_core)]
                .msgs.push_back(SharedL2::CohMsg{dw.line_base, dw.when});
        }
        fabric.wakeRaw(dw.consumer, dw.when);
        ++deferred_drained_;
    }
    deferred_.clear();
}

void
InterconnectPort::bankPublish(int bank, int consumer, Tick now)
{
    SharedL2::Bank &b = l2_.banks_[static_cast<size_t>(bank)];
    GALS_ASSERT(
        b.last_pub < now ||
            (b.last_pub == now && b.last_pub_domain <= consumer),
        "publication order violation: bank %d state published at "
        "t=%llu by global domain %d consumed by lower-indexed global "
        "domain %d at the same tick",
        bank, static_cast<unsigned long long>(now), b.last_pub_domain,
        consumer);
    b.last_pub = now;
    b.last_pub_domain = consumer;
}

L2Reply
InterconnectPort::request(int core, DomainId consumer_local, Addr addr,
                          Tick t_req, Tick period, Tick now)
{
    GALS_ASSERT(core >= 0 && core < cores_,
                "interconnect request from an unknown core");
    const int bank = l2_.bankOf(addr);
    const int consumer =
        core * kNumDomains + static_cast<int>(consumer_local);
    gate(core, consumer, now);
    bankPublish(bank, consumer, now);

    SharedL2::Bank &b = l2_.banks_[static_cast<size_t>(bank)];

    // Cross-core bank arbitration: delayed only behind *another*
    // core's occupancy window (own bandwidth is modeled in-core).
    Tick start = t_req;
    if (b.owner != core && b.owner != -1 && b.busy_until > start) {
        start = b.busy_until;
        ++l2_.bank_conflicts_;
        if (obs::tracing()) {
            obs::Tracer::instance().sim(
                consumer, obs::Ev::BankConflict, now,
                static_cast<std::uint64_t>(bank));
        }
    }
    b.busy_until = start + l2_.p_.bank_occupancy_ps;
    b.owner = core;

    // Prune completed fills (merge checks and fill-slot pressure only
    // care about fills still in flight at `now`). Guarded: most
    // requests find the bank's fill list empty, and this sits on
    // every L2 access.
    if (!b.fills.empty()) {
        std::erase_if(b.fills, [now](const SharedL2::Fill &f) {
            return f.done <= now;
        });
    }

    const DCachePairConfig &dc = dcachePairConfig(l2_.row_);
    AccessOutcome out = l2_.access(core, addr);
    const Addr line = addr >> l2_.cache_.lineShift();

    L2Reply r;
    if (out.where != HitWhere::Miss) {
        int lat = out.where == HitWhere::APartition
                      ? dc.l2_a_lat
                      : dc.l2_a_lat + dc.l2_b_lat;
        r.hit = true;
        r.done = start + static_cast<Tick>(lat) * period;
        // Secondary access to another core's in-flight line: the tag
        // is already installed (accounting-cache semantics), but the
        // data cannot be forwarded before the fill arrives. Own-core
        // same-line timing stays the private hierarchy's concern.
        Tick fill_done = 0;
        for (const SharedL2::Fill &f : b.fills) {
            if (f.line == line && f.core != core)
                fill_done = std::max(fill_done, f.done);
        }
        if (fill_done > r.done) {
            r.done = fill_done;
            ++l2_.fill_merges_;
            if (obs::tracing()) {
                obs::Tracer::instance().sim(
                    consumer, obs::Ev::FillMerge, now,
                    static_cast<std::uint64_t>(bank));
            }
        }
    } else {
        // Miss: probe both live partitions, then fill from memory
        // through one of this bank's fill slots, arbitrated across
        // cores — the miss waits while `bank_mshrs` fills from other
        // cores are still in flight.
        Tick probe = static_cast<Tick>(
            dc.l2_a_lat +
            (l2_.cache_.bEnabled() && dc.l2_b_lat > 0 ? dc.l2_b_lat
                                                      : 0));
        Tick issue_at = start + probe * period;
        if (l2_.p_.bank_mshrs > 0) {
            Tick other_done[kMaxCores * kMaxCoreMshrs];
            int k = 0;
            for (const SharedL2::Fill &f : b.fills) {
                if (f.core != core && f.done > issue_at) {
                    GALS_ASSERT(k < static_cast<int>(
                                        std::size(other_done)),
                                "bank %d carries more than %zu "
                                "other-core in-flight fills (per-core "
                                "MSHR counts beyond the model's "
                                "sizing)",
                                bank, std::size(other_done));
                    other_done[k++] = f.done;
                }
            }
            if (k >= l2_.p_.bank_mshrs) {
                // Wait for releases until only bank_mshrs-1 other
                // fills remain: the (k - bank_mshrs + 1)-th earliest
                // release.
                std::sort(other_done, other_done + k);
                issue_at = other_done[k - l2_.p_.bank_mshrs];
                ++l2_.bank_mshr_waits_;
                if (obs::tracing()) {
                    obs::Tracer::instance().sim(
                        consumer, obs::Ev::MshrWait, now,
                        static_cast<std::uint64_t>(bank));
                }
            }
        }
        r.done = l2_.memory_.issueFill(issue_at);
        r.hit = false;
        b.fills.push_back(SharedL2::Fill{line, r.done, core});
        if (obs::tracing()) {
            obs::Tracer::instance().sim(
                consumer, obs::Ev::L2Fill, now,
                static_cast<std::uint64_t>(bank), r.done);
        }
    }

    // Coherence tail: a D-side request for a shared-region line
    // installs the line in the requester's L1D, so the directory
    // registers it as a sharer (a conservative superset — silent L1
    // evictions are not reported). If another core's store to the
    // line is still settling, the data cannot be forwarded before the
    // ownership transfer completes, hit or miss.
    if (consumer_local == DomainId::LoadStore && l2_.coherent() &&
        l2_.inShared(addr)) {
        SharedL2::DirEntry &e = l2_.dirEntry(addr);
        e.sharers |= static_cast<std::uint16_t>(1u << core);
        if (e.last_writer >= 0 && e.last_writer != core &&
            e.settle > r.done) {
            r.done = e.settle;
            ++l2_.ownership_transfers_;
            if (obs::tracing()) {
                obs::Tracer::instance().sim(
                    consumer, obs::Ev::OwnershipWait, now, e.settle);
            }
        }
    }
    return r;
}

L2Reply
InterconnectPort::requestLine(int core, Addr addr, Tick t_req,
                              Tick period, Tick now)
{
    return request(core, DomainId::LoadStore, addr, t_req, period,
                   now);
}

L2Reply
InterconnectPort::requestIcacheLine(int core, Addr pc, Tick t_req,
                                    Tick period, Tick now)
{
    return request(core, DomainId::FrontEnd, pc, t_req, period, now);
}

void
InterconnectPort::publishStore(int core, Addr addr, Tick now)
{
    if (!l2_.coherent() || !l2_.inShared(addr))
        return;
    GALS_ASSERT(core >= 0 && core < cores_,
                "coherence publication from an unknown core");
    const int publisher =
        core * kNumDomains + static_cast<int>(DomainId::LoadStore);
    // Directory state is shared bank state: order the publication
    // exactly like a request (and let the tripwire reject a
    // same-tick publication after a higher-indexed touch).
    gate(core, publisher, now);
    bankPublish(l2_.bankOf(addr), publisher, now);

    const Addr line_base = addr & ~static_cast<Addr>(
                                      l2_.cache_.lineBytes() - 1);
    const Tick when = now + l2_.p_.coh_delay_ps;
    SharedL2::DirEntry &e = l2_.dirEntry(addr);
    e.last_writer = static_cast<std::int8_t>(core);
    e.settle = when;

    // Invalidate every remote sharer: each message wakes that core's
    // load/store unit at the delivery time. `when` is strictly after
    // `now` (coh_delay > 0), so the cross-core publication-order rule
    // holds for any consumer index. Under the parallel stepper the
    // wake and its inbox payload ride the deferred queue and merge at
    // the round barrier; sequentially they are delivered in place —
    // both paths append to the inbox in (pub_tick, publisher) order.
    static_assert(kMaxCores <= 16,
                  "DirEntry::sharers is a 16-bit core mask");
    const std::uint16_t self = static_cast<std::uint16_t>(1u << core);
    std::uint16_t remote =
        static_cast<std::uint16_t>(e.sharers & ~self);
    e.sharers = self;
    for (int c = 0; remote != 0; ++c, remote >>= 1) {
        if (!(remote & 1u))
            continue;
        const int consumer =
            c * kNumDomains + static_cast<int>(DomainId::LoadStore);
        ++l2_.invalidations_sent_;
        if (obs::tracing()) {
            obs::Tracer::instance().sim(
                publisher, obs::Ev::CohInvalidate, now,
                static_cast<std::uint64_t>(c), line_base);
        }
        if (sync_ != nullptr) {
            deferWake(now, publisher, consumer, when, c, line_base);
        } else {
            l2_.inboxes_[static_cast<size_t>(c)].msgs.push_back(
                SharedL2::CohMsg{line_base, when});
            if (fabric_ != nullptr)
                fabric_->wakeRaw(consumer, when);
        }
    }
}

int
InterconnectPort::consumeInvalidations(int core, Tick now,
                                       AccountingCache &l1d)
{
    if (!l2_.coherent())
        return 0;
    SharedL2::Inbox &in = l2_.inboxes_[static_cast<size_t>(core)];
    int n = 0;
    while (in.head < in.msgs.size() &&
           in.msgs[in.head].deliver_at <= now) {
        l1d.invalidate(in.msgs[in.head].line_base);
        ++in.head;
        ++n;
    }
    if (in.head == in.msgs.size() && in.head != 0) {
        in.msgs.clear();
        in.head = 0;
    }
    if (n > 0 && obs::tracing()) {
        // Delivery lands inside the consumer core's load/store step
        // at `now`, so its own track's publication order holds.
        obs::Tracer::instance().sim(
            core * kNumDomains +
                static_cast<int>(DomainId::LoadStore),
            obs::Ev::CohDeliver, now, static_cast<std::uint64_t>(n));
    }
    return n;
}

Tick
InterconnectPort::nextCoherenceAt(int core) const
{
    if (!l2_.coherent())
        return kTickMax;
    const SharedL2::Inbox &in =
        l2_.inboxes_[static_cast<size_t>(core)];
    return in.head < in.msgs.size() ? in.msgs[in.head].deliver_at
                                    : kTickMax;
}

const IntervalCounts &
InterconnectPort::interval(int core) const
{
    return l2_.interval(core);
}

void
InterconnectPort::resetInterval(int core)
{
    l2_.resetInterval(core);
}

std::uint64_t
InterconnectPort::accesses(int core) const
{
    return l2_.accesses(core);
}

std::uint64_t
InterconnectPort::misses(int core) const
{
    return l2_.misses(core);
}

std::uint64_t
InterconnectPort::bHits(int core) const
{
    return l2_.bHits(core);
}

void
InterconnectPort::reconfigure(int core, int target, Tick now)
{
    // The shared partition and latency row follow core 0's D-cache
    // controller only; other cores' votes reconfigure their L1.
    if (core != 0)
        return;
    // The row/partition write is shared state read by every core's
    // requests, so it is ordered like one: the decision runs inside
    // core 0's load/store step at `now`.
    gate(core, core * kNumDomains + static_cast<int>(DomainId::LoadStore),
         now);
    l2_.row_ = target;
    const DCachePairConfig &dc = dcachePairConfig(target);
    l2_.cache_.setPartition(dc.l2_adapt.assoc, l2_.p_.phase_adaptive);
}

} // namespace gals
