/**
 * @file
 * An execution-cluster domain unit: one issue queue with its
 * push-based ready list, a function-unit pool, and the cluster's own
 * queue-size controller. The integer and floating-point domains are
 * two instances of this class; memory ops issue their
 * address-generation uop from the integer instance and hand off to
 * the load/store unit through the agen port.
 */

#ifndef GALS_CORE_ISSUE_CLUSTER_HH
#define GALS_CORE_ISSUE_CLUSTER_HH

#include "control/queue_controller.hh"
#include "core/domain.hh"
#include "core/machine_config.hh"
#include "core/structures.hh"

namespace gals
{

struct CorePorts;
class DispatchPort;
class CompletionPort;
class RedirectPort;
class AgenPort;
class ReconfigUnit;

/** Integer or floating-point execution cluster. */
class IssueCluster final : public Domain
{
  public:
    /**
     * @param cur_index  the live configuration index of this
     *                   cluster's queue (a stable reference into the
     *                   core's AdaptiveConfig).
     */
    IssueCluster(DomainId id, const MachineConfig &cfg,
                 CoreTiming &timing, Rob &rob, RegisterFiles &regs,
                 const int &cur_index);

    /** Connect ports and the reconfiguration unit (once). */
    void wire(CorePorts &ports, ReconfigUnit &reconfig);

    Tick step(Tick now) override;
    Tick wakeBound() const override;

    /** Queue-size controller sample (invoked from the front end's
     * rename, where the ILP tracker lives). */
    void control(const IlpSample &sample, Tick now,
                 std::uint64_t committed);

    /** Resize the issue queue (ReconfigUnit). Occupancy above a
     * smaller capacity drains naturally. */
    void setIqCapacity(int entries) { iq_.setCapacity(entries); }

    IssueQueue &iq() { return iq_; }
    const IssueQueue &iq() const { return iq_; }

  private:
    const MachineConfig &cfg_;
    Rob &rob_;
    RegisterFiles &regs_;
    const int &cur_index_;
    const Structure structure_;

    IssueQueue iq_;
    FuPool fu_;
    /**
     * Per-queue epoch tag of the ready-list timing state: ready_at
     * values and the timer-ring order extrapolate clock grids, so a
     * mismatch with the core epoch forces invalidateTimes at the next
     * step (the one O(queue) path left in the back end).
     */
    std::uint32_t iq_epoch_ = 1;

    QueueController qctl_;
    Damper damper_;

    // Wired peers.
    DispatchPort *disp_ = nullptr;
    CompletionPort *completion_ = nullptr;
    RedirectPort *redirect_ = nullptr;
    AgenPort *agen_ = nullptr;
    ReconfigUnit *reconfig_ = nullptr;
};

} // namespace gals

#endif // GALS_CORE_ISSUE_CLUSTER_HH
