/**
 * @file
 * McFarling-style hybrid branch predictor, as resized jointly with the
 * I-cache in the paper (Tables 2 and 3).
 *
 * Components:
 *  - gshare: a global branch history table of 2^hg two-bit counters
 *    indexed by the hg-bit global history XORed with the branch PC;
 *  - local: a pattern history table (PHT) of per-branch hl-bit local
 *    histories indexed by PC, selecting into a local BHT of 2^hl
 *    two-bit counters;
 *  - meta: two-bit counters (same count as the gshare table) choosing
 *    between the two components, trained only when they disagree.
 */

#ifndef GALS_PREDICTOR_HYBRID_PREDICTOR_HH
#define GALS_PREDICTOR_HYBRID_PREDICTOR_HH

#include <cstdint>

#include "common/arena.hh"
#include "common/types.hh"
#include "timing/frequency_model.hh"

namespace gals
{

/** Two-bit saturating counter. */
class SaturatingCounter
{
  public:
    explicit SaturatingCounter(std::uint8_t initial = 1)
        : value_(initial)
    {}

    bool taken() const { return value_ >= 2; }

    void
    update(bool outcome)
    {
        if (outcome) {
            if (value_ < 3)
                ++value_;
        } else {
            if (value_ > 0)
                --value_;
        }
    }

    std::uint8_t raw() const { return value_; }

  private:
    std::uint8_t value_;
};

/** Prediction plus the state needed to train on the outcome. */
struct BranchPrediction
{
    bool taken;         //!< final (meta-selected) direction.
    bool gshare_taken;  //!< gshare component's direction.
    bool local_taken;   //!< local component's direction.
    bool used_local;    //!< which component the meta chose.
};

/** The hybrid predictor. */
class HybridPredictor
{
  public:
    explicit HybridPredictor(const PredictorOrg &org);

    /** Reconfigure to a new organization; all state is cleared. */
    void reconfigure(const PredictorOrg &org);

    /** Predict the direction of the branch at `pc`. */
    BranchPrediction predict(Addr pc) const;

    /**
     * Train on the resolved outcome and update the speculative
     * histories. Returns true when the prediction was correct.
     */
    bool update(Addr pc, const BranchPrediction &pred, bool outcome);

    const PredictorOrg &org() const { return org_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Zero the lookup/mispredict statistics (not the tables). */
    void resetStats();

  private:
    std::uint32_t gshareIndex(Addr pc) const;
    std::uint32_t metaIndex(Addr pc) const;
    std::uint32_t localPhtIndex(Addr pc) const;

    PredictorOrg org_;
    std::uint32_t global_history_ = 0;

    ArenaVector<SaturatingCounter> gshare_bht_;
    ArenaVector<SaturatingCounter> meta_;
    ArenaVector<std::uint32_t> local_pht_;
    ArenaVector<SaturatingCounter> local_bht_;

    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace gals

#endif // GALS_PREDICTOR_HYBRID_PREDICTOR_HH
