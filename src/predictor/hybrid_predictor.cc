#include "predictor/hybrid_predictor.hh"

#include "common/logging.hh"

namespace gals
{

HybridPredictor::HybridPredictor(const PredictorOrg &org)
{
    reconfigure(org);
}

namespace
{
/**
 * Re-size a counter table preserving trained state: the adaptive
 * predictor's tables are substructures of one physical array (the
 * paper's Table 2 organizations share their low-order entries), so
 * resizing keeps — or replicates — the overlapping entries instead
 * of cold-starting every branch after a reconfiguration.
 */
template <typename T>
ArenaVector<T>
resizeTable(const ArenaVector<T> &old, size_t new_size, T fallback)
{
    ArenaVector<T> fresh(new_size, fallback);
    if (!old.empty()) {
        size_t j = 0;
        for (size_t i = 0; i < new_size; ++i) {
            fresh[i] = old[j];
            if (++j == old.size())
                j = 0;
        }
    }
    return fresh;
}
} // namespace

void
HybridPredictor::reconfigure(const PredictorOrg &org)
{
    GALS_ASSERT(org.gshare_entries == (1 << org.gshare_hist_bits),
                "gshare table must be 2^hg entries");
    GALS_ASSERT(org.local_bht_entries == (1 << org.local_hist_bits),
                "local BHT must be 2^hl entries");
    org_ = org;
    gshare_bht_ = resizeTable(
        gshare_bht_, static_cast<size_t>(org.gshare_entries),
        SaturatingCounter(1));
    meta_ = resizeTable(meta_, static_cast<size_t>(org.meta_entries),
                        SaturatingCounter(1));
    local_pht_ = resizeTable(
        local_pht_, static_cast<size_t>(org.local_pht_entries), 0u);
    local_bht_ = resizeTable(
        local_bht_, static_cast<size_t>(org.local_bht_entries),
        SaturatingCounter(1));
    // Histories must fit the (possibly narrower) new widths.
    global_history_ &=
        (1u << static_cast<unsigned>(org.gshare_hist_bits)) - 1u;
    std::uint32_t hist_mask =
        (1u << static_cast<unsigned>(org.local_hist_bits)) - 1u;
    for (std::uint32_t &h : local_pht_)
        h &= hist_mask;
}

namespace
{
/**
 * Spread branch addresses across table indices. Synthetic branch
 * sites sit one per 64-byte line, so plain low-order PC bits would
 * stride through the tables and waste most entries; a multiplicative
 * hash restores the dense-index behavior of real branch addresses.
 */
std::uint32_t
pcHash(Addr pc)
{
    return static_cast<std::uint32_t>(pc >> 2) * 2654435761u;
}
} // namespace

std::uint32_t
HybridPredictor::gshareIndex(Addr pc) const
{
    std::uint32_t mask =
        static_cast<std::uint32_t>(org_.gshare_entries - 1);
    return (pcHash(pc) ^ global_history_) & mask;
}

std::uint32_t
HybridPredictor::metaIndex(Addr pc) const
{
    // The chooser is PC-indexed (McFarling TN-36): its decision is a
    // stable property of the branch, not of the path leading to it.
    std::uint32_t mask =
        static_cast<std::uint32_t>(org_.meta_entries - 1);
    return pcHash(pc) & mask;
}

std::uint32_t
HybridPredictor::localPhtIndex(Addr pc) const
{
    return pcHash(pc) %
           static_cast<std::uint32_t>(org_.local_pht_entries);
}

BranchPrediction
HybridPredictor::predict(Addr pc) const
{
    ++lookups_;
    BranchPrediction p{};
    p.gshare_taken = gshare_bht_[gshareIndex(pc)].taken();

    std::uint32_t hist = local_pht_[localPhtIndex(pc)];
    p.local_taken = local_bht_[hist].taken();

    p.used_local = meta_[metaIndex(pc)].taken();
    p.taken = p.used_local ? p.local_taken : p.gshare_taken;
    return p;
}

bool
HybridPredictor::update(Addr pc, const BranchPrediction &pred,
                        bool outcome)
{
    // Train the meta chooser only on disagreement: toward local when
    // local was right, toward gshare when gshare was right.
    if (pred.local_taken != pred.gshare_taken)
        meta_[metaIndex(pc)].update(pred.local_taken == outcome);

    gshare_bht_[gshareIndex(pc)].update(outcome);

    std::uint32_t pht_idx = localPhtIndex(pc);
    std::uint32_t hist = local_pht_[pht_idx];
    local_bht_[hist].update(outcome);

    std::uint32_t hist_mask =
        (1u << static_cast<unsigned>(org_.local_hist_bits)) - 1u;
    local_pht_[pht_idx] =
        ((hist << 1) | (outcome ? 1u : 0u)) & hist_mask;

    std::uint32_t ghist_mask =
        (1u << static_cast<unsigned>(org_.gshare_hist_bits)) - 1u;
    global_history_ =
        ((global_history_ << 1) | (outcome ? 1u : 0u)) & ghist_mask;

    bool correct = pred.taken == outcome;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
HybridPredictor::resetStats()
{
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace gals
