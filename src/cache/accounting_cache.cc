#include "cache/accounting_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gals
{

namespace
{
bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}
} // namespace

AccountingCache::AccountingCache(std::string name,
                                 std::uint64_t size_bytes, int ways,
                                 int line_bytes)
    : name_(std::move(name)), ways_(ways), line_bytes_(line_bytes),
      a_ways_(ways)
{
    GALS_ASSERT(ways_ >= 1, "cache needs at least one way");
    GALS_ASSERT(line_bytes_ > 0 && isPowerOfTwo(
                    static_cast<std::uint64_t>(line_bytes_)),
                "line size must be a power of two");
    std::uint64_t way_bytes = size_bytes / static_cast<unsigned>(ways_);
    GALS_ASSERT(way_bytes % static_cast<unsigned>(line_bytes_) == 0,
                "way size not a multiple of the line size");
    num_sets_ = static_cast<int>(way_bytes /
                                 static_cast<unsigned>(line_bytes_));
    GALS_ASSERT(num_sets_ > 0 && isPowerOfTwo(
                    static_cast<std::uint64_t>(num_sets_)),
                "set count must be a positive power of two");
    line_shift_ = 0;
    while ((1 << line_shift_) < line_bytes_)
        ++line_shift_;
    set_shift_ = 0;
    while ((1 << set_shift_) < num_sets_)
        ++set_shift_;

    size_t cells =
        static_cast<size_t>(num_sets_) * static_cast<size_t>(ways_);
    mru_.resize(cells);
    for (size_t i = 0; i < cells; i += static_cast<size_t>(ways_)) {
        for (int w = 0; w < ways_; ++w)
            mru_[i + static_cast<size_t>(w)] =
                static_cast<std::int8_t>(w);
    }
    tag_.assign(cells, 0);
    valid_.assign(cells, 0);
    interval_.mru_hits.assign(static_cast<size_t>(ways_), 0);
}

void
AccountingCache::setPartition(int a_ways, bool b_enabled)
{
    GALS_ASSERT(a_ways >= 1 && a_ways <= ways_,
                "A partition of %d ways outside [1, %d]", a_ways, ways_);
    a_ways_ = a_ways;
    b_enabled_ = b_enabled;
    if (!b_enabled_) {
        // Without a B partition, blocks beyond the A ways are not
        // retained; drop them so they cannot produce phantom hits.
        for (int s = 0; s < num_sets_; ++s) {
            size_t base = static_cast<size_t>(s) *
                          static_cast<size_t>(ways_);
            for (int k = a_ways_; k < ways_; ++k) {
                valid_[base + static_cast<size_t>(
                                  mru_[base + static_cast<size_t>(
                                                  k)])] = 0;
            }
        }
    }
}

int
AccountingCache::setIndex(Addr addr) const
{
    return static_cast<int>((addr >> line_shift_) &
                            static_cast<unsigned>(num_sets_ - 1));
}

Addr
AccountingCache::tagOf(Addr addr) const
{
    return addr >> (line_shift_ + set_shift_);
}

AccessOutcome
AccountingCache::access(Addr addr)
{
    size_t base = static_cast<size_t>(setIndex(addr)) *
                  static_cast<size_t>(ways_);
    std::int8_t *mru = &mru_[base];
    Addr *tags = &tag_[base];
    std::uint8_t *valid = &valid_[base];
    Addr tag = tagOf(addr);

    ++interval_.accesses;
    ++total_accesses_;

    int found_pos = -1;
    for (int k = 0; k < ways_; ++k) {
        int w = mru[k];
        if (valid[w] && tags[w] == tag) {
            found_pos = k;
            break;
        }
    }

    AccessOutcome out{};
    if (found_pos >= 0) {
        out.mru_pos = found_pos;
        if (found_pos < a_ways_) {
            out.where = HitWhere::APartition;
            ++total_a_hits_;
        } else {
            // Without a B partition this cannot happen: blocks beyond
            // the A ways were invalidated at reconfiguration time and
            // evicted on replacement since.
            GALS_ASSERT(b_enabled_, "B-partition hit with B disabled");
            out.where = HitWhere::BPartition;
            ++total_b_hits_;
        }
        ++interval_.mru_hits[static_cast<size_t>(found_pos)];

        // Move to MRU position 0 (this is the A/B swap when the block
        // was in B: the LRU block of A becomes the MRU block of B).
        std::int8_t way = mru[found_pos];
        for (int k = found_pos; k > 0; --k)
            mru[k] = mru[k - 1];
        mru[0] = way;
        return out;
    }

    out.where = HitWhere::Miss;
    out.mru_pos = ways_;
    ++interval_.misses;
    ++total_misses_;

    // Replace the LRU block when B is enabled; with B disabled only
    // the A partition exists, so replace the LRU block *of A* and
    // leave the (invalid) B positions untouched.
    int victim_pos = b_enabled_ ? ways_ - 1 : a_ways_ - 1;
    std::int8_t way = mru[victim_pos];
    tags[way] = tag;
    valid[way] = 1;
    for (int k = victim_pos; k > 0; --k)
        mru[k] = mru[k - 1];
    mru[0] = way;
    return out;
}

void
AccountingCache::invalidateAll()
{
    std::fill(valid_.begin(), valid_.end(), 0);
}

bool
AccountingCache::invalidate(Addr addr)
{
    size_t base = static_cast<size_t>(setIndex(addr)) *
                  static_cast<size_t>(ways_);
    Addr tag = tagOf(addr);
    for (int w = 0; w < ways_; ++w) {
        size_t i = base + static_cast<size_t>(w);
        if (valid_[i] && tag_[i] == tag) {
            valid_[i] = 0;
            return true;
        }
    }
    return false;
}

void
AccountingCache::resetInterval()
{
    std::fill(interval_.mru_hits.begin(), interval_.mru_hits.end(), 0);
    interval_.misses = 0;
    interval_.accesses = 0;
}

std::pair<std::uint64_t, std::uint64_t>
AccountingCache::reconstruct(const IntervalCounts &counts, int a_ways)
{
    std::uint64_t a_hits = 0;
    std::uint64_t b_hits = 0;
    for (size_t k = 0; k < counts.mru_hits.size(); ++k) {
        if (static_cast<int>(k) < a_ways)
            a_hits += counts.mru_hits[k];
        else
            b_hits += counts.mru_hits[k];
    }
    return {a_hits, b_hits};
}

} // namespace gals
