#include "cache/shared_l2.hh"

#include <algorithm>

#include "common/logging.hh"
#include "timing/frequency_model.hh"

namespace gals
{

SharedL2::SharedL2(const Params &p)
    : p_(p), cache_("l2", p.size_bytes, p.ways),
      memory_(kMemFirstChunkNs, kMemNextChunkNs, 64, 8),
      banks_(static_cast<size_t>(p.banks)),
      per_core_(static_cast<size_t>(p.cores)), row_(p.row)
{
    GALS_ASSERT(p.cores >= 1, "SharedL2 needs at least one core");
    GALS_ASSERT(p.banks >= 1, "SharedL2 needs at least one bank");
    GALS_ASSERT(p.bank_mshrs >= 0, "negative bank MSHR count");
    if ((p.banks & (p.banks - 1)) == 0)
        bank_mask_ = static_cast<Addr>(p.banks - 1);
    cache_.setPartition(p.a_ways, p.phase_adaptive);
    for (PerCore &pc : per_core_) {
        pc.interval.mru_hits.assign(static_cast<size_t>(p.ways), 0);
    }
    if (coherent()) {
        GALS_ASSERT(p.cores <= 16,
                    "directory sharer bitmask holds at most 16 cores");
        GALS_ASSERT(p.coh_delay_ps > 0,
                    "coherence delay must be positive");
        size_t lines = static_cast<size_t>(
            (p.shared_bytes + static_cast<std::uint64_t>(
                                  cache_.lineBytes()) - 1) /
            static_cast<std::uint64_t>(cache_.lineBytes()));
        directory_.resize(lines);
        inboxes_.resize(static_cast<size_t>(p.cores));
    }
}

void
SharedL2::resetInterval(int core)
{
    IntervalCounts &iv = per_core_[static_cast<size_t>(core)].interval;
    std::fill(iv.mru_hits.begin(), iv.mru_hits.end(), 0);
    iv.misses = 0;
    iv.accesses = 0;
}

Tick
SharedL2::nextFillCompletionAfter(Tick t) const
{
    Tick earliest = kTickMax;
    for (const Bank &b : banks_) {
        for (const Fill &f : b.fills) {
            if (f.done > t && f.done < earliest)
                earliest = f.done;
        }
    }
    return earliest;
}

AccessOutcome
SharedL2::access(int core, Addr addr)
{
    AccessOutcome out = cache_.access(addr);
    PerCore &pc = per_core_[static_cast<size_t>(core)];
    ++pc.accesses;
    ++pc.interval.accesses;
    if (out.where == HitWhere::Miss) {
        ++pc.misses;
        ++pc.interval.misses;
    } else {
        if (out.where == HitWhere::BPartition)
            ++pc.b_hits;
        ++pc.interval.mru_hits[static_cast<size_t>(out.mru_pos)];
    }
    return out;
}

} // namespace gals
