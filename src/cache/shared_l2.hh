/**
 * @file
 * The shared banked L2 of a chip multiprocessor: one accounting
 * cache (tag/MRU state shared by every core) in front of the shared
 * main-memory channel, split into address-interleaved banks with
 * per-bank in-flight fill (MSHR) tracking.
 *
 * This class is a *state container*: the cache contents, the bank
 * occupancy/fill state, and the per-core accounting mirrors live
 * here, but every timing decision that arbitrates between cores —
 * bank queuing, fill-slot waits, in-flight merges, and the cross-core
 * publication-order tripwire — is made exclusively by the
 * InterconnectPort (core/ports.hh), which is a friend of this class.
 * Keeping the mutable arbitration state private makes "publish or
 * wake around the port layer" a compile error for the shared L2, the
 * same confinement the grep gate enforces textually for the wake
 * primitives.
 *
 * Arbitration is cross-core only (the port's contract): a core is
 * never delayed behind its own requests, whose bandwidth the private
 * hierarchy already models with mem ports and MSHRs. A single-core
 * chip therefore produces bit-identical timing to the private
 * Processor hierarchy — the N=1 equivalence gate of the differential
 * suite.
 *
 * Accounting: the shared AccountingCache keeps chip-global MRU/tag
 * state (that is what "shared" means), while per-core access/miss/
 * B-hit totals and per-core IntervalCounts mirrors are maintained
 * from the access outcomes so that RunStats and each core's D-cache
 * phase controller see exactly the traffic that core generated.
 */

#ifndef GALS_CACHE_SHARED_L2_HH
#define GALS_CACHE_SHARED_L2_HH

#include <cstdint>
#include <vector>

#include "cache/accounting_cache.hh"
#include "cache/main_memory.hh"
#include "common/types.hh"

namespace gals
{

class InterconnectPort;

/** Shared banked L2 + memory channel state of a chip. */
class SharedL2
{
  public:
    struct Params
    {
        /** Cache geometry (mirrors the private L2 of the same
         * machine mode, so N=1 stays bit-identical). */
        std::uint64_t size_bytes = 2048 * 1024;
        int ways = 8;
        int a_ways = 8;
        /** B partition retained (phase-adaptive machines). */
        bool phase_adaptive = false;
        /** Initial (and, for non-adaptive machines, permanent)
         * D-cache configuration row — the latency table used for
         * every request. */
        int row = 0;

        int cores = 1;
        /** Address-interleaved banks (line-granular). */
        int banks = 4;
        /**
         * Per-bank in-flight fill slots arbitrated across cores; a
         * miss waits for a slot only while `bank_mshrs` fills from
         * *other* cores are outstanding in its bank. 0 = unbounded.
         */
        int bank_mshrs = 4;
        /** Bank busy window charged per request for cross-core
         * arbitration (ps). */
        Tick bank_occupancy_ps = 600;
    };

    explicit SharedL2(const Params &p);

    // ------------------------------------------------------------------
    // Passive views.
    // ------------------------------------------------------------------
    const Params &params() const { return p_; }
    const AccountingCache &cache() const { return cache_; }
    const MainMemory &memory() const { return memory_; }
    /** Active configuration row (owned by core 0's controller). */
    int row() const { return row_; }
    int banks() const { return static_cast<int>(banks_.size()); }
    int bankOf(Addr addr) const
    {
        // Power-of-two bank counts (every config the sweeps and
        // benches use) take the mask path: this sits on every L2
        // request, and the general modulo costs a hardware divide.
        Addr line = addr >> cache_.lineShift();
        if (bank_mask_ != 0 || banks_.size() == 1)
            return static_cast<int>(line & bank_mask_);
        return static_cast<int>(line % static_cast<Addr>(banks_.size()));
    }

    // ------------------------------------------------------------------
    // Per-core accounting (RunStats and the phase controllers).
    // ------------------------------------------------------------------
    std::uint64_t accesses(int core) const
    {
        return per_core_[static_cast<size_t>(core)].accesses;
    }
    std::uint64_t misses(int core) const
    {
        return per_core_[static_cast<size_t>(core)].misses;
    }
    std::uint64_t bHits(int core) const
    {
        return per_core_[static_cast<size_t>(core)].b_hits;
    }
    const IntervalCounts &interval(int core) const
    {
        return per_core_[static_cast<size_t>(core)].interval;
    }
    void resetInterval(int core);

    // ------------------------------------------------------------------
    // Chip-level interconnect statistics.
    // ------------------------------------------------------------------
    /** Requests delayed behind another core's bank occupancy. */
    std::uint64_t bankConflicts() const { return bank_conflicts_; }
    /** Misses that waited for a bank fill slot held by other cores. */
    std::uint64_t bankMshrWaits() const { return bank_mshr_waits_; }
    /** Hits on another core's in-flight line, held to the fill. */
    std::uint64_t fillMerges() const { return fill_merges_; }

    /**
     * Horizon input of the parallel chip stepper: the earliest
     * in-flight fill completing strictly after `t`, across every
     * bank (kTickMax when none). Completed fills are the only
     * carriers a cross-core publication can ride — bank occupancy
     * windows merely delay gated requests — so a round bounded by
     * this never needs a wake merged into its own window.
     */
    Tick nextFillCompletionAfter(Tick t) const;

  private:
    friend class InterconnectPort;

    /** One in-flight line fill (for merges and fill-slot pressure). */
    struct Fill
    {
        Addr line;
        Tick done;
        int core;
    };

    /** Per-bank arbitration state (mutated only by the port). */
    struct Bank
    {
        Tick busy_until = 0;
        int owner = -1;
        /** Cross-core publication-order tripwire (see the port). */
        Tick last_pub = 0;
        int last_pub_domain = -1;
        std::vector<Fill> fills;
    };

    struct PerCore
    {
        std::uint64_t accesses = 0;
        std::uint64_t b_hits = 0;
        std::uint64_t misses = 0;
        IntervalCounts interval;
    };

    /** Shared tag/MRU access plus the per-core mirrors (called only
     * by the port, which owns the surrounding arbitration). */
    AccessOutcome access(int core, Addr addr);

    Params p_;
    AccountingCache cache_;
    MainMemory memory_;
    std::vector<Bank> banks_;
    /** banks-1 when the bank count is a power of two, else 0. */
    Addr bank_mask_ = 0;
    std::vector<PerCore> per_core_;
    int row_;
    std::uint64_t bank_conflicts_ = 0;
    std::uint64_t bank_mshr_waits_ = 0;
    std::uint64_t fill_merges_ = 0;
};

} // namespace gals

#endif // GALS_CACHE_SHARED_L2_HH
