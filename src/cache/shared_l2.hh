/**
 * @file
 * The shared banked L2 of a chip multiprocessor: one accounting
 * cache (tag/MRU state shared by every core) in front of the shared
 * main-memory channel, split into address-interleaved banks with
 * per-bank in-flight fill (MSHR) tracking.
 *
 * This class is a *state container*: the cache contents, the bank
 * occupancy/fill state, and the per-core accounting mirrors live
 * here, but every timing decision that arbitrates between cores —
 * bank queuing, fill-slot waits, in-flight merges, and the cross-core
 * publication-order tripwire — is made exclusively by the
 * InterconnectPort (core/ports.hh), which is a friend of this class.
 * Keeping the mutable arbitration state private makes "publish or
 * wake around the port layer" a compile error for the shared L2, the
 * same confinement the grep gate enforces textually for the wake
 * primitives.
 *
 * Arbitration is cross-core only (the port's contract): a core is
 * never delayed behind its own requests, whose bandwidth the private
 * hierarchy already models with mem ports and MSHRs. A single-core
 * chip therefore produces bit-identical timing to the private
 * Processor hierarchy — the N=1 equivalence gate of the differential
 * suite.
 *
 * Accounting: the shared AccountingCache keeps chip-global MRU/tag
 * state (that is what "shared" means), while per-core access/miss/
 * B-hit totals and per-core IntervalCounts mirrors are maintained
 * from the access outcomes so that RunStats and each core's D-cache
 * phase controller see exactly the traffic that core generated.
 */

#ifndef GALS_CACHE_SHARED_L2_HH
#define GALS_CACHE_SHARED_L2_HH

#include <cstdint>
#include <vector>

#include "cache/accounting_cache.hh"
#include "cache/main_memory.hh"
#include "common/types.hh"

namespace gals
{

class InterconnectPort;

/** Shared banked L2 + memory channel state of a chip. */
class SharedL2
{
  public:
    struct Params
    {
        /** Cache geometry (mirrors the private L2 of the same
         * machine mode, so N=1 stays bit-identical). */
        std::uint64_t size_bytes = 2048 * 1024;
        int ways = 8;
        int a_ways = 8;
        /** B partition retained (phase-adaptive machines). */
        bool phase_adaptive = false;
        /** Initial (and, for non-adaptive machines, permanent)
         * D-cache configuration row — the latency table used for
         * every request. */
        int row = 0;

        int cores = 1;
        /** Address-interleaved banks (line-granular). */
        int banks = 4;
        /**
         * Per-bank in-flight fill slots arbitrated across cores; a
         * miss waits for a slot only while `bank_mshrs` fills from
         * *other* cores are outstanding in its bank. 0 = unbounded.
         */
        int bank_mshrs = 4;
        /** Bank busy window charged per request for cross-core
         * arbitration (ps). */
        Tick bank_occupancy_ps = 600;

        /**
         * Coherent shared region [shared_base, shared_base +
         * shared_bytes): lines here are tracked by the sharer/owner
         * directory and stores publish invalidations to remote L1s.
         * shared_bytes == 0 (the default) disables coherence
         * entirely — no directory, no traffic, no timing change.
         */
        Addr shared_base = 0;
        std::uint64_t shared_bytes = 0;
        /** Fixed cross-core invalidation/ownership-transfer latency
         * (ps): publication at t is visible remotely at t + delay. */
        Tick coh_delay_ps = 24'000;
    };

    explicit SharedL2(const Params &p);

    // ------------------------------------------------------------------
    // Passive views.
    // ------------------------------------------------------------------
    const Params &params() const { return p_; }
    const AccountingCache &cache() const { return cache_; }
    const MainMemory &memory() const { return memory_; }
    /** Active configuration row (owned by core 0's controller). */
    int row() const { return row_; }
    int banks() const { return static_cast<int>(banks_.size()); }
    int bankOf(Addr addr) const
    {
        // Power-of-two bank counts (every config the sweeps and
        // benches use) take the mask path: this sits on every L2
        // request, and the general modulo costs a hardware divide.
        Addr line = addr >> cache_.lineShift();
        if (bank_mask_ != 0 || banks_.size() == 1)
            return static_cast<int>(line & bank_mask_);
        return static_cast<int>(line % static_cast<Addr>(banks_.size()));
    }

    // ------------------------------------------------------------------
    // Per-core accounting (RunStats and the phase controllers).
    // ------------------------------------------------------------------
    std::uint64_t accesses(int core) const
    {
        return per_core_[static_cast<size_t>(core)].accesses;
    }
    std::uint64_t misses(int core) const
    {
        return per_core_[static_cast<size_t>(core)].misses;
    }
    std::uint64_t bHits(int core) const
    {
        return per_core_[static_cast<size_t>(core)].b_hits;
    }
    const IntervalCounts &interval(int core) const
    {
        return per_core_[static_cast<size_t>(core)].interval;
    }
    void resetInterval(int core);

    // ------------------------------------------------------------------
    // Chip-level interconnect statistics.
    // ------------------------------------------------------------------
    /** Requests delayed behind another core's bank occupancy. */
    std::uint64_t bankConflicts() const { return bank_conflicts_; }
    /** Misses that waited for a bank fill slot held by other cores. */
    std::uint64_t bankMshrWaits() const { return bank_mshr_waits_; }
    /** Hits on another core's in-flight line, held to the fill. */
    std::uint64_t fillMerges() const { return fill_merges_; }
    /** Coherence invalidations delivered to remote L1 sharers. */
    std::uint64_t invalidationsSent() const
    {
        return invalidations_sent_;
    }
    /** Shared-line accesses delayed behind another core's store
     * settling (ownership transfer). */
    std::uint64_t ownershipTransfers() const
    {
        return ownership_transfers_;
    }

    /** True when `addr` falls in the coherent shared region. */
    bool inShared(Addr addr) const
    {
        return addr >= p_.shared_base &&
               addr - p_.shared_base < p_.shared_bytes;
    }
    /** True when coherence traffic can exist on this chip at all. */
    bool coherent() const
    {
        return p_.shared_bytes != 0 && p_.cores > 1;
    }

    /**
     * Horizon input of the parallel chip stepper: the earliest
     * in-flight fill completing strictly after `t`, across every
     * bank (kTickMax when none). Completed fills are the only
     * carriers a cross-core publication can ride — bank occupancy
     * windows merely delay gated requests — so a round bounded by
     * this never needs a wake merged into its own window.
     */
    Tick nextFillCompletionAfter(Tick t) const;

  private:
    friend class InterconnectPort;

    /** One in-flight line fill (for merges and fill-slot pressure). */
    struct Fill
    {
        Addr line;
        Tick done;
        int core;
    };

    /** Per-bank arbitration state (mutated only by the port). */
    struct Bank
    {
        Tick busy_until = 0;
        int owner = -1;
        /** Cross-core publication-order tripwire (see the port). */
        Tick last_pub = 0;
        int last_pub_domain = -1;
        std::vector<Fill> fills;
    };

    struct PerCore
    {
        std::uint64_t accesses = 0;
        std::uint64_t b_hits = 0;
        std::uint64_t misses = 0;
        IntervalCounts interval;
    };

    /**
     * Directory entry for one line of the coherent shared region.
     * Sharer bits are a conservative superset of the lines actually
     * resident in each core's L1D (silent L1 evictions are not
     * reported, so a sharer may receive a spurious — deterministic,
     * and in real directories common — invalidation).
     */
    struct DirEntry
    {
        /** Bitmask of cores whose L1D may hold the line (wide
         * enough for kMaxCores = 16). */
        std::uint16_t sharers = 0;
        /** Core that last stored to the line (-1: none yet). */
        std::int8_t last_writer = -1;
        /** Until when the last store's ownership transfer is in
         * flight: other cores' loads/fills of the line are held to
         * this point. */
        Tick settle = 0;
    };

    /** One queued invalidation bound for a core's L1D. */
    struct CohMsg
    {
        Addr line_base;
        Tick deliver_at;
    };

    /**
     * Per-core invalidation inboxes. Appended in publication order
     * ((pub_tick, publisher) — the deferred-merge order), and since
     * coh_delay is a single fixed chip parameter the deliver_at
     * sequence per inbox is monotone: the LSU drains a simple FIFO.
     */
    struct Inbox
    {
        std::vector<CohMsg> msgs;
        size_t head = 0;
    };

    /** Shared tag/MRU access plus the per-core mirrors (called only
     * by the port, which owns the surrounding arbitration). */
    AccessOutcome access(int core, Addr addr);

    /** Directory slot of a shared-region line (entries are sized at
     * construction from shared_bytes; caller guarantees inShared). */
    DirEntry &dirEntry(Addr addr)
    {
        return directory_[static_cast<size_t>(
            (addr - p_.shared_base) >> cache_.lineShift())];
    }

    Params p_;
    AccountingCache cache_;
    MainMemory memory_;
    std::vector<Bank> banks_;
    /** banks-1 when the bank count is a power of two, else 0. */
    Addr bank_mask_ = 0;
    std::vector<PerCore> per_core_;
    /** One entry per shared-region line (empty when not coherent). */
    std::vector<DirEntry> directory_;
    /** Per-core pending invalidations (mutated only by the port). */
    std::vector<Inbox> inboxes_;
    int row_;
    std::uint64_t bank_conflicts_ = 0;
    std::uint64_t bank_mshr_waits_ = 0;
    std::uint64_t fill_merges_ = 0;
    std::uint64_t invalidations_sent_ = 0;
    std::uint64_t ownership_transfers_ = 0;
};

} // namespace gals

#endif // GALS_CACHE_SHARED_L2_HH
