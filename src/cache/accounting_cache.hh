/**
 * @file
 * The Accounting Cache (Dropsho et al., PACT 2002), as used by the
 * paper for every resizable cache.
 *
 * A W-way set-associative cache is partitioned by MRU position into an
 * A partition (the `a_ways` most-recently-used blocks of each set) and
 * a B partition (the rest). The A partition is accessed first; on an A
 * miss the B partition is probed and a hit there swaps the block into
 * A. Full MRU state is maintained over all W ways regardless of the
 * current partitioning, so simple per-MRU-position hit counters are
 * sufficient to reconstruct the exact number of A hits, B hits and
 * misses that *any* partitioning would have produced over the same
 * access stream — the property the phase controller exploits to pick
 * a configuration without exploration.
 *
 * When the B partition is disabled (fully synchronous baseline and
 * whole-program adaptive runs, per paper §3.1) only the A partition
 * exists physically: an A miss goes straight to the next level, and
 * blocks beyond `a_ways` are not retained.
 */

#ifndef GALS_CACHE_ACCOUNTING_CACHE_HH
#define GALS_CACHE_ACCOUNTING_CACHE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace gals
{

/** Where an access was satisfied. */
enum class HitWhere : std::uint8_t
{
    APartition,
    BPartition,
    Miss,
};

/** Outcome of one cache access. */
struct AccessOutcome
{
    HitWhere where;
    /** MRU position the block occupied before the access (W on miss). */
    int mru_pos;
};

/** Interval counters the phase controller reads and resets. */
struct IntervalCounts
{
    /** mru_hits[k]: hits whose block sat at MRU position k. */
    std::vector<std::uint64_t> mru_hits;
    /** Accesses that missed in all W ways. */
    std::uint64_t misses = 0;
    /** Total accesses in the interval. */
    std::uint64_t accesses = 0;
};

/** A/B-partitioned set-associative cache with MRU accounting. */
class AccountingCache
{
  public:
    /**
     * @param name       for stats/reporting.
     * @param size_bytes total capacity across all W ways.
     * @param ways       physical associativity W.
     * @param line_bytes cache line size.
     */
    AccountingCache(std::string name, std::uint64_t size_bytes, int ways,
                    int line_bytes = 64);

    /**
     * Set the partitioning. a_ways in [1, W]. With `b_enabled` false
     * the B partition does not retain blocks (see file comment).
     */
    void setPartition(int a_ways, bool b_enabled);

    /** Current A-partition size in ways. */
    int aWays() const { return a_ways_; }

    /** True when the B partition is active. */
    bool bEnabled() const { return b_enabled_; }

    /** Physical associativity W. */
    int ways() const { return ways_; }

    int numSets() const { return num_sets_; }
    int lineBytes() const { return line_bytes_; }
    /** log2(lineBytes()): line numbers are addr >> lineShift(). */
    int lineShift() const { return line_shift_; }
    const std::string &name() const { return name_; }

    /**
     * Perform one access (timing model only; no data storage).
     * Updates MRU state, interval counters and lifetime totals.
     */
    AccessOutcome access(Addr addr);

    /** Drop every block (used on reconfiguration in disabled-B mode). */
    void invalidateAll();

    /**
     * Drop the single block holding `addr`'s line, if present
     * (coherence invalidation). Leaves MRU order untouched: the
     * vacated way is refilled on the next miss to the set. Returns
     * whether the line was resident.
     */
    bool invalidate(Addr addr);

    /** Interval counters since the last resetInterval(). */
    const IntervalCounts &interval() const { return interval_; }

    /** Reset interval counters (end of a control interval). */
    void resetInterval();

    /** Lifetime totals. */
    std::uint64_t totalAccesses() const { return total_accesses_; }
    std::uint64_t totalAHits() const { return total_a_hits_; }
    std::uint64_t totalBHits() const { return total_b_hits_; }
    std::uint64_t totalMisses() const { return total_misses_; }

    /**
     * Reconstruct, from interval counters, the (A hits, B hits) any
     * partitioning `a_ways` would have seen. Misses are invariant.
     */
    static std::pair<std::uint64_t, std::uint64_t>
    reconstruct(const IntervalCounts &counts, int a_ways);

  private:
    int setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    std::string name_;
    int ways_;
    int line_bytes_;
    int num_sets_;
    /** log2 of line_bytes_ / num_sets_ (both asserted powers of
     * two): the per-access index math is shifts, not divisions. */
    int line_shift_ = 6;
    int set_shift_ = 0;
    int a_ways_;
    bool b_enabled_ = true;

    // Flat per-set state, stride = ways_. mru_[s*ways + k] is the way
    // index of the block at MRU position k of set s. Flat storage
    // keeps each set's metadata on one cache line and makes
    // construction three bulk fills instead of 3*num_sets vector
    // initializations per run.
    ArenaVector<std::int8_t> mru_;
    ArenaVector<Addr> tag_;
    ArenaVector<std::uint8_t> valid_;

    IntervalCounts interval_;
    std::uint64_t total_accesses_ = 0;
    std::uint64_t total_a_hits_ = 0;
    std::uint64_t total_b_hits_ = 0;
    std::uint64_t total_misses_ = 0;
};

} // namespace gals

#endif // GALS_CACHE_ACCOUNTING_CACHE_HH
