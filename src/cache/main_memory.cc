#include "cache/main_memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gals
{

MainMemory::MainMemory(double first_chunk_ns, double next_chunk_ns,
                       int line_bytes, int max_in_flight)
    : max_in_flight_(max_in_flight)
{
    GALS_ASSERT(line_bytes >= 8 && max_in_flight >= 1,
                "bad memory parameters");
    int chunks = line_bytes / 8;
    double ns = first_chunk_ns + next_chunk_ns * (chunks - 1);
    fill_ps_ = static_cast<Tick>(ns * kPsPerNs);
    busy_until_.assign(static_cast<size_t>(max_in_flight_), 0);
}

Tick
MainMemory::issueFill(Tick now)
{
    ++fills_;
    // Pick the channel slot that frees the earliest.
    size_t best = 0;
    for (size_t i = 1; i < busy_until_.size(); ++i) {
        if (busy_until_[i] < busy_until_[best])
            best = i;
    }
    Tick start = std::max(now, busy_until_[best]);
    if (start > now)
        ++contended_;
    Tick done = start + fill_ps_;
    busy_until_[best] = done;
    return done;
}

} // namespace gals
