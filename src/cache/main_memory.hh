/**
 * @file
 * Fixed-frequency main-memory model (the paper's non-adaptive fifth
 * domain): a full line fill costs 80 ns for the first 8-byte chunk
 * plus 2 ns for each subsequent chunk. An optional bounded number of
 * in-flight fills models channel contention.
 */

#ifndef GALS_CACHE_MAIN_MEMORY_HH
#define GALS_CACHE_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace gals
{

/** Main-memory latency/bandwidth model. */
class MainMemory
{
  public:
    /**
     * @param first_chunk_ns  latency of the first 8-byte chunk.
     * @param next_chunk_ns   latency of each subsequent chunk.
     * @param line_bytes      cache line size.
     * @param max_in_flight   concurrent fills the channel sustains.
     */
    MainMemory(double first_chunk_ns = 80.0, double next_chunk_ns = 2.0,
               int line_bytes = 64, int max_in_flight = 8);

    /**
     * Issue a line fill at `now`; returns its completion time. When
     * all channel slots are busy the fill queues behind the earliest
     * completing one.
     */
    Tick issueFill(Tick now);

    /** Latency of one uncontended line fill, in ps. */
    Tick lineFillPs() const { return fill_ps_; }

    std::uint64_t fills() const { return fills_; }

    /** Fills that had to queue behind a busy channel. */
    std::uint64_t contendedFills() const { return contended_; }

  private:
    Tick fill_ps_;
    int max_in_flight_;
    std::vector<Tick> busy_until_;
    std::uint64_t fills_ = 0;
    std::uint64_t contended_ = 0;
};

} // namespace gals

#endif // GALS_CACHE_MAIN_MEMORY_HH
