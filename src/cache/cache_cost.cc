#include "cache/cache_cost.hh"

namespace gals
{

Tick
accountingCost(const IntervalCounts &counts,
               const CacheCostParams &params)
{
    auto [a_hits, b_positions] =
        AccountingCache::reconstruct(counts, params.a_ways);

    std::uint64_t misses = counts.misses;
    std::uint64_t b_hits = 0;
    if (params.b_lat_cycles >= 0)
        b_hits = b_positions;
    else
        misses += b_positions;

    std::uint64_t a_lat = static_cast<std::uint64_t>(params.a_lat_cycles);
    std::uint64_t b_lat = params.b_lat_cycles >= 0
        ? static_cast<std::uint64_t>(params.b_lat_cycles) : 0;

    // A hits: latA. B hits: the failed A probe plus the B probe.
    // Misses: both probes (the lookup establishes the miss) plus the
    // next-level time.
    std::uint64_t cycles = a_hits * a_lat + b_hits * (a_lat + b_lat) +
                           misses * (a_lat + b_lat);
    return cycles * params.period_ps + misses * params.miss_extra_ps;
}

} // namespace gals
