/**
 * @file
 * Access-cost reconstruction for the accounting-cache controller.
 *
 * Given one interval's MRU-position counters, compute the total access
 * time (in picoseconds) each candidate configuration *would have*
 * spent on the same stream: A hits pay the A latency, B hits pay A
 * then B, misses additionally pay the next level. Latencies are cycle
 * counts at the candidate configuration's own clock, so the tradeoff
 * between a small fast A partition and a large slow one is evaluated
 * in absolute time, exactly as the paper's controller does.
 */

#ifndef GALS_CACHE_CACHE_COST_HH
#define GALS_CACHE_CACHE_COST_HH

#include <cstdint>

#include "cache/accounting_cache.hh"
#include "common/types.hh"

namespace gals
{

/** Latency description of one candidate cache configuration. */
struct CacheCostParams
{
    int a_ways;            //!< candidate A-partition size in ways.
    int a_lat_cycles;      //!< A access latency (cycles).
    int b_lat_cycles;      //!< B access latency (cycles); <0 => no B.
    Tick period_ps;        //!< clock period at this configuration.
    Tick miss_extra_ps;    //!< next-level time added to every miss.
};

/**
 * Total access time the candidate configuration would have spent on
 * the interval captured in `counts`, in picoseconds.
 *
 * With no B partition, B-position hits are charged as misses (the
 * blocks would not have been retained).
 */
Tick accountingCost(const IntervalCounts &counts,
                    const CacheCostParams &params);

} // namespace gals

#endif // GALS_CACHE_CACHE_COST_HH
