/**
 * @file
 * The benchmark suite: synthetic analogs of the 40 runs (32
 * applications) the paper evaluates — 16 MediaBench runs, 9 Olden
 * runs, and 15 SPEC2000 runs (Tables 6, 7, 8).
 *
 * Each descriptor's knobs are tuned to the application's published
 * character (see DESIGN.md §5): e.g. adpcm is a tiny high-ILP kernel,
 * em3d is a memory-bound pointer chaser, gcc has a large instruction
 * and data footprint, apsi alternates data working sets between
 * phases, art cycles through ILP-distance regimes.
 *
 * Simulation windows are scaled down ~1000x from the paper's (120K to
 * 260K measured instructions) so the full Figure 6 study runs on a
 * laptop; phase periods are scaled proportionally.
 */

#ifndef GALS_WORKLOAD_SUITE_HH
#define GALS_WORKLOAD_SUITE_HH

#include <string>
#include <vector>

#include "workload/params.hh"

namespace gals
{

/** All 40 benchmark runs, in the paper's Figure 6 order. */
const std::vector<WorkloadParams> &benchmarkSuite();

/** Look up one benchmark by name; fatal when unknown. */
const WorkloadParams &findBenchmark(const std::string &name);

/**
 * The per-core stream of `wl` on core `core` of a chip. Core 0 is
 * `wl` unchanged — a single-core chip replays the single-core stream
 * bit-exactly — while higher cores get an independently re-seeded
 * copy (tagged "#cN"), so two cores running the same benchmark do not
 * execute in artificial lockstep.
 */
WorkloadParams perCoreWorkload(const WorkloadParams &wl, int core);

/**
 * A multiprogrammed mix for an N-core chip: `cores` benchmarks taken
 * from `suite` round-robin starting at index `rotation`, each routed
 * through perCoreWorkload for its core. Rotating through the suite
 * gives every pairing a deterministic name without a combinatorial
 * sweep.
 */
std::vector<WorkloadParams>
multiprogrammedMix(const std::vector<WorkloadParams> &suite, int cores,
                   int rotation);

/**
 * A sharing mix for an N-core chip: every core runs `base` (routed
 * through perCoreWorkload, with a per-core addr_offset keeping the
 * private footprints disjoint in the shared L2) plus data traffic
 * into the common coherent window at kSharedBase. `kind` selects the
 * communication pattern:
 *  - "producer-consumer": core 0 writes the window heavily, the
 *    others mostly read it — a steady stream of invalidations from
 *    one writer to many sharers;
 *  - "migratory": every core reads and writes the window in turn —
 *    ownership bounces between cores (the classic migratory-line
 *    pattern);
 *  - "lock": all cores hammer a handful of hot lines with stores —
 *    maximal invalidation pressure on minimal footprint, as lock and
 *    barrier words behave.
 */
std::vector<WorkloadParams>
sharingMix(const WorkloadParams &base, int cores,
           const std::string &kind);

} // namespace gals

#endif // GALS_WORKLOAD_SUITE_HH
