/**
 * @file
 * Parameter blocks describing a synthetic benchmark.
 *
 * Each phase controls exactly the application properties the paper's
 * adaptive hardware responds to:
 *  - hot/total code footprint        -> I-cache configuration;
 *  - streamed + random data pools    -> D-cache/L2 configuration;
 *  - dependence-chain count/segment  -> issue-queue size (ILP
 *    distance: a window of W entries exposes ~min(chains, W/segment)
 *    ready chains);
 *  - branch pattern period + noise   -> predictor pressure;
 *  - int/fp mix                      -> which issue domain matters.
 */

#ifndef GALS_WORKLOAD_PARAMS_HH
#define GALS_WORKLOAD_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gals
{

/** Behavior of the instruction stream during one phase. */
struct PhaseParams
{
    /** Committed-instruction length of the phase (cycled). */
    std::uint64_t length_instrs = 1'000'000'000;

    /** Instructions per basic block (a branch ends each block). */
    int block_len = 16;

    /** Hot code footprint in bytes, walked as nested loop episodes. */
    std::uint64_t code_hot_bytes = 4 * 1024;
    /** Total code footprint reachable by excursions. */
    std::uint64_t code_total_bytes = 8 * 1024;
    /** Per-block probability of an excursion into cold code. */
    double excursion_frac = 0.01;
    /** Cold-code blocks executed per excursion. */
    int excursion_len = 8;
    /**
     * Inner-loop episode shape: a run of up to loop_lines_max code
     * lines is iterated up to loop_iters_max times before the walk
     * advances. Reuse distance across the hot footprint stays
     * code_hot_bytes (the capacity the I-cache must hold), while
     * short-range reuse keeps miss rates and active branch-site
     * counts realistic.
     */
    int loop_lines_max = 8;
    int loop_iters_max = 6;

    /** Interleaved dependence chains and ops per chain visit. */
    int num_chains = 4;
    int chain_segment_len = 4;
    /** Probability an op reads another chain's tail as src2. */
    double cross_chain_frac = 0.1;

    /** Instruction-mix fractions (remainder is ALU work). */
    double load_frac = 0.25;
    double store_frac = 0.10;
    /**
     * Fraction of loads whose result extends the dependence chain
     * (pointer chasing); the rest are off-chain (their latency is
     * hidden by independent work, as in most real code).
     */
    double load_chain_frac = 0.5;
    /**
     * Fraction of branches that test the chain tail (data-dependent
     * branches resolving late); the rest test an always-ready loop
     * counter.
     */
    double branch_dep_frac = 0.3;
    /** Fraction of chains doing floating-point work. */
    double fp_frac = 0.0;
    /** Among ALU ops: multiplies and divides. */
    double mul_frac = 0.05;
    double div_frac = 0.01;

    /** Streamed (strided) data region size in bytes. */
    std::uint64_t stream_bytes = 16 * 1024;
    /** Stream advance per access (word-granular, so a 64-byte line
     * serves several consecutive accesses before the walk leaves
     * it). */
    std::uint64_t stream_stride_bytes = 8;
    /** Randomly accessed pool size in bytes. */
    std::uint64_t rand_bytes = 16 * 1024;
    /** Fraction of data accesses that go to the random pool. */
    double rand_frac = 0.3;
    /**
     * Fraction of data accesses that go to the chip-shared window at
     * kSharedBase (drawn before the stream/random split). Only
     * meaningful on a multi-core chip whose WorkloadParams declares
     * shared_bytes > 0; otherwise no RNG draw is consumed and the
     * stream is bit-identical to a workload without the knob.
     */
    double shared_frac = 0.0;

    /**
     * Branch-site population: a loop-branch minority follows a
     * periodic taken-except-every-Pth pattern (learnable from local
     * history); the remaining sites are fixed-direction biased
     * branches (85% of them always-taken), which stay predictable
     * even under predictor-table aliasing — matching real branch
     * demographics.
     */
    double loop_site_frac = 0.25;
    /** Period P of each loop site's pattern. */
    int branch_pattern_len = 8;
    /** Fraction of branch outcomes replaced by coin flips. */
    double branch_noise = 0.02;
};

/** A complete synthetic benchmark: identity plus a phase schedule. */
struct WorkloadParams
{
    std::string name;
    /** "MediaBench", "Olden", "SPEC2000-Int" or "SPEC2000-Fp". */
    std::string suite;
    /** Measured window (committed instructions). */
    std::uint64_t sim_instrs = 120'000;
    /** Cache/predictor warmup before measurement. */
    std::uint64_t warmup_instrs = 12'000;
    /** RNG seed; fixed per benchmark for reproducibility. */
    std::uint64_t seed = 1;
    /** Phase schedule, cycled for the whole run. */
    std::vector<PhaseParams> phases;

    /**
     * Size of the chip-shared coherent window this workload touches
     * (0 = private workload; every phase's shared_frac is inert).
     * All sharers address the same window at kSharedBase.
     */
    std::uint64_t shared_bytes = 0;
    /**
     * Displacement added to the private regions (code stays put;
     * stream/random pools shift). Multiprogrammed mixes give each
     * core a distinct offset so private footprints never alias the
     * shared window or each other in the physically-shared L2.
     */
    Addr addr_offset = 0;

    /** The paper's original simulation window, for Tables 6-8. */
    std::string paper_window;
};

} // namespace gals

#endif // GALS_WORKLOAD_PARAMS_HH
