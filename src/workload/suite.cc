#include "workload/suite.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workload/generator.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

/** One-phase descriptor helper. */
WorkloadParams
make(const std::string &name, const std::string &suite,
     std::uint64_t seed, const PhaseParams &phase,
     const std::string &paper_window)
{
    WorkloadParams w;
    w.name = name;
    w.suite = suite;
    w.seed = seed;
    w.phases = {phase};
    w.paper_window = paper_window;
    return w;
}

std::vector<WorkloadParams>
buildSuite()
{
    std::vector<WorkloadParams> v;

    // ---------------------------------------------------------------
    // MediaBench (Table 6). Small kernels, mostly integer, small to
    // moderate working sets.
    // ---------------------------------------------------------------
    {
        // Tiny kernel, high ILP, tiny data: prefers the smallest /
        // fastest configuration everywhere.
        PhaseParams p;
        p.code_hot_bytes = 2 * KB;
        p.code_total_bytes = 4 * KB;
        p.num_chains = 6;
        p.chain_segment_len = 2;
        p.load_frac = 0.15;
        p.store_frac = 0.05;
        p.stream_bytes = 2 * KB;
        p.rand_bytes = 2 * KB;
        p.rand_frac = 0.2;
        p.branch_noise = 0.015;
        v.push_back(make("adpcm encode", "MediaBench", 101, p, "6.6M"));
        // The decoder's data-dependent branches are hard to predict.
        p.block_len = 8;
        p.branch_noise = 0.15;
        v.push_back(make("adpcm decode", "MediaBench", 102, p, "5.5M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 6 * KB;
        p.code_total_bytes = 12 * KB;
        p.fp_frac = 0.3;
        p.num_chains = 4;
        p.chain_segment_len = 5;
        p.stream_bytes = 48 * KB;
        p.rand_bytes = 16 * KB;
        p.rand_frac = 0.2;
        v.push_back(make("epic encode", "MediaBench", 103, p, "53M"));
        p.stream_bytes = 24 * KB;
        p.chain_segment_len = 3;
        v.push_back(make("epic decode", "MediaBench", 104, p, "6.7M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 20 * KB;
        p.code_total_bytes = 28 * KB;
        p.num_chains = 5;
        p.chain_segment_len = 3;
        p.stream_bytes = 24 * KB;
        p.rand_bytes = 8 * KB;
        p.rand_frac = 0.15;
        v.push_back(make("jpeg compress", "MediaBench", 105, p,
                         "15.5M"));
        // Decompression runs a larger kernel: the synchronous 64KB
        // direct-mapped I-cache is hard to beat (paper: -2.7% for
        // Program-Adaptive).
        p.code_hot_bytes = 40 * KB;
        p.code_total_bytes = 48 * KB;
        p.stream_bytes = 40 * KB;
        v.push_back(make("jpeg decompress", "MediaBench", 106, p,
                         "4.6M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 3 * KB;
        p.code_total_bytes = 6 * KB;
        p.num_chains = 3;
        p.chain_segment_len = 6;
        p.load_frac = 0.2;
        p.stream_bytes = 4 * KB;
        p.rand_bytes = 4 * KB;
        v.push_back(make("g721 encode", "MediaBench", 107, p, "0-200M"));
        p.chain_segment_len = 5;
        v.push_back(make("g721 decode", "MediaBench", 108, p, "0-200M"));
    }
    {
        // gsm needs the full 64KB 4-way I-cache (paper: similar
        // performance for all configurations with that cache).
        PhaseParams p;
        p.code_hot_bytes = 52 * KB;
        p.code_total_bytes = 60 * KB;
        p.num_chains = 4;
        p.chain_segment_len = 4;
        p.stream_bytes = 8 * KB;
        p.rand_bytes = 4 * KB;
        v.push_back(make("gsm encode", "MediaBench", 109, p, "0-200M"));
        p.code_hot_bytes = 30 * KB;
        p.code_total_bytes = 40 * KB;
        v.push_back(make("gsm decode", "MediaBench", 110, p, "0-74M"));
    }
    {
        // Large interpreter loop plus pointer-heavy data.
        PhaseParams p;
        p.code_hot_bytes = 60 * KB;
        p.code_total_bytes = 90 * KB;
        p.excursion_frac = 0.03;
        p.rand_bytes = 96 * KB;
        p.rand_frac = 0.28;
        p.stream_bytes = 16 * KB;
        p.branch_noise = 0.035;
        v.push_back(make("ghostscript", "MediaBench", 111, p, "0-200M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 48 * KB;
        p.code_total_bytes = 56 * KB;
        p.fp_frac = 0.5;
        p.num_chains = 2;
        p.chain_segment_len = 8;
        p.mul_frac = 0.15;
        p.div_frac = 0.03;
        p.stream_bytes = 64 * KB;
        p.rand_frac = 0.1;
        v.push_back(make("mesa mipmap", "MediaBench", 112, p, "44.7M"));
        p.code_hot_bytes = 24 * KB;
        p.code_total_bytes = 32 * KB;
        p.fp_frac = 0.45;
        p.stream_bytes = 48 * KB;
        p.chain_segment_len = 6;
        v.push_back(make("mesa osdemo", "MediaBench", 113, p, "7.6M"));
        p.code_hot_bytes = 16 * KB;
        p.code_total_bytes = 24 * KB;
        p.fp_frac = 0.5;
        p.stream_bytes = 96 * KB;
        p.num_chains = 4;
        p.chain_segment_len = 6;
        v.push_back(make("mesa texgen", "MediaBench", 114, p, "75.8M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 6 * KB;
        p.code_total_bytes = 10 * KB;
        p.num_chains = 8;
        p.chain_segment_len = 2;
        p.stream_bytes = 32 * KB;
        p.rand_frac = 0.1;
        v.push_back(make("mpeg2 encode", "MediaBench", 115, p,
                         "0-171M"));
        p.code_hot_bytes = 10 * KB;
        p.code_total_bytes = 16 * KB;
        p.num_chains = 5;
        p.chain_segment_len = 3;
        p.stream_bytes = 72 * KB;
        p.rand_frac = 0.2;
        v.push_back(make("mpeg2 decode", "MediaBench", 116, p,
                         "0-200M"));
    }

    // ---------------------------------------------------------------
    // Olden (Table 7). Pointer-chasing kernels, small code, data
    // working sets from moderate to far beyond the L2.
    // ---------------------------------------------------------------
    {
        PhaseParams p;
        p.code_hot_bytes = 8 * KB;
        p.code_total_bytes = 12 * KB;
        p.fp_frac = 0.4;
        p.num_chains = 2;
        p.chain_segment_len = 10;
        p.load_frac = 0.3;
        p.rand_bytes = 120 * KB;
        p.rand_frac = 0.55;
        p.stream_bytes = 8 * KB;
        p.load_chain_frac = 0.65;
        v.push_back(make("bh", "Olden", 201, p, "0-200M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 2 * KB;
        p.code_total_bytes = 4 * KB;
        p.num_chains = 1;
        p.chain_segment_len = 12;
        p.load_frac = 0.3;
        p.rand_bytes = 280 * KB;
        p.rand_frac = 0.5;
        p.stream_bytes = 4 * KB;
        p.load_chain_frac = 0.6;
        v.push_back(make("bisort", "Olden", 202, p, "entire (127M)"));
    }
    {
        // The paper's flagship memory-bound benchmark (+45%/+49%).
        PhaseParams p;
        p.code_hot_bytes = 2 * KB;
        p.code_total_bytes = 4 * KB;
        p.num_chains = 2;
        p.chain_segment_len = 8;
        p.load_frac = 0.35;
        p.store_frac = 0.08;
        p.rand_bytes = 600 * KB;
        p.rand_frac = 0.45;
        p.stream_bytes = 8 * KB;
        p.load_chain_frac = 0.6;
        v.push_back(make("em3d", "Olden", 203, p, "70M-178M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 4 * KB;
        p.code_total_bytes = 8 * KB;
        p.num_chains = 1;
        p.chain_segment_len = 10;
        p.load_frac = 0.3;
        p.store_frac = 0.15;
        p.rand_bytes = 320 * KB;
        p.rand_frac = 0.45;
        p.load_chain_frac = 0.6;
        v.push_back(make("health", "Olden", 204, p, "80M-127M"));
    }
    {
        // Periodic short bursts of cache conflicts: the phase
        // controller reacts one interval late and flip-flops
        // (paper 5.1).
        WorkloadParams w;
        w.name = "mst";
        w.suite = "Olden";
        w.seed = 205;
        w.paper_window = "70M-170M";
        PhaseParams calm;
        calm.code_hot_bytes = 3 * KB;
        calm.code_total_bytes = 6 * KB;
        calm.num_chains = 2;
        calm.chain_segment_len = 6;
        calm.load_frac = 0.3;
        calm.rand_bytes = 40 * KB;
        calm.rand_frac = 0.5;
        calm.length_instrs = 26'000;
        PhaseParams burst = calm;
        burst.rand_bytes = 280 * KB;
        burst.rand_frac = 0.7;
        burst.length_instrs = 9'000;
        w.phases = {calm, burst};
        v.push_back(w);
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 8 * KB;
        p.code_total_bytes = 12 * KB;
        p.num_chains = 2;
        p.chain_segment_len = 8;
        p.load_frac = 0.28;
        p.rand_bytes = 96 * KB;
        p.rand_frac = 0.5;
        v.push_back(make("perimeter", "Olden", 206, p, "0-200M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 4 * KB;
        p.code_total_bytes = 8 * KB;
        p.fp_frac = 0.5;
        p.num_chains = 4;
        p.chain_segment_len = 4;
        p.stream_bytes = 24 * KB;
        p.rand_bytes = 8 * KB;
        p.rand_frac = 0.2;
        v.push_back(make("power", "Olden", 207, p, "0-200M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 2 * KB;
        p.code_total_bytes = 4 * KB;
        p.num_chains = 1;
        p.chain_segment_len = 9;
        p.load_frac = 0.32;
        p.rand_bytes = 180 * KB;
        p.rand_frac = 0.55;
        p.load_chain_frac = 0.6;
        v.push_back(make("treeadd", "Olden", 208, p, "entire (189M)"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 6 * KB;
        p.code_total_bytes = 10 * KB;
        p.fp_frac = 0.2;
        p.num_chains = 2;
        p.chain_segment_len = 8;
        p.load_frac = 0.3;
        p.rand_bytes = 320 * KB;
        p.rand_frac = 0.38;
        p.stream_bytes = 16 * KB;
        p.load_chain_frac = 0.6;
        v.push_back(make("tsp", "Olden", 209, p, "0-200M"));
    }

    // ---------------------------------------------------------------
    // SPEC2000 integer (Table 8).
    // ---------------------------------------------------------------
    {
        // Needs both a mid-size I-cache and a mid-size D-cache; the
        // frequency cost of upsizing both exceeds the gains
        // (paper: -4.8% Program-Adaptive).
        PhaseParams p;
        p.code_hot_bytes = 44 * KB;
        p.code_total_bytes = 52 * KB;
        p.num_chains = 5;
        p.chain_segment_len = 3;
        p.block_len = 8;
        p.branch_noise = 0.05;
        p.stream_bytes = 36 * KB;
        p.rand_bytes = 80 * KB;
        p.rand_frac = 0.35;
        v.push_back(make("bzip2", "SPEC2000-Int", 301, p,
                         "1000M-1100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 56 * KB;
        p.code_total_bytes = 72 * KB;
        p.block_len = 8;
        p.branch_noise = 0.04;
        p.rand_bytes = 48 * KB;
        p.rand_frac = 0.5;
        p.num_chains = 4;
        p.chain_segment_len = 3;
        v.push_back(make("crafty", "SPEC2000-Int", 302, p,
                         "1000M-1100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 40 * KB;
        p.code_total_bytes = 48 * KB;
        p.fp_frac = 0.25;
        p.stream_bytes = 24 * KB;
        p.rand_bytes = 16 * KB;
        p.num_chains = 4;
        p.chain_segment_len = 4;
        v.push_back(make("eon", "SPEC2000-Int", 303, p, "1000M-1100M"));
    }
    {
        // Large instruction footprint and a data set that thrashes a
        // 256KB L2 but fits the adaptive 2MB (paper: +41.4%).
        PhaseParams p;
        p.code_hot_bytes = 60 * KB;
        p.code_total_bytes = 100 * KB;
        p.excursion_frac = 0.04;
        p.block_len = 8;
        p.branch_noise = 0.03;
        p.stream_bytes = 48 * KB;
        p.rand_bytes = 340 * KB;
        p.rand_frac = 0.22;
        p.num_chains = 3;
        p.chain_segment_len = 4;
        v.push_back(make("gcc", "SPEC2000-Int", 304, p, "2000M-2100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 6 * KB;
        p.code_total_bytes = 12 * KB;
        p.num_chains = 4;
        p.chain_segment_len = 3;
        p.stream_bytes = 32 * KB;
        p.rand_bytes = 64 * KB;
        p.rand_frac = 0.3;
        v.push_back(make("gzip", "SPEC2000-Int", 305, p,
                         "1000M-1100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 36 * KB;
        p.code_total_bytes = 48 * KB;
        p.block_len = 8;
        p.branch_noise = 0.035;
        p.rand_bytes = 90 * KB;
        p.rand_frac = 0.5;
        p.num_chains = 3;
        p.chain_segment_len = 4;
        v.push_back(make("parser", "SPEC2000-Int", 306, p,
                         "1000M-1100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 20 * KB;
        p.code_total_bytes = 28 * KB;
        p.branch_noise = 0.03;
        p.rand_bytes = 72 * KB;
        p.rand_frac = 0.6;
        p.num_chains = 2;
        p.chain_segment_len = 6;
        v.push_back(make("twolf", "SPEC2000-Int", 307, p,
                         "1000M-1100M"));
    }
    {
        // Big code plus store-heavy object traffic (paper: +33.1%).
        PhaseParams p;
        p.code_hot_bytes = 56 * KB;
        p.code_total_bytes = 84 * KB;
        p.excursion_frac = 0.03;
        p.stream_bytes = 32 * KB;
        p.rand_bytes = 240 * KB;
        p.rand_frac = 0.25;
        p.store_frac = 0.15;
        p.num_chains = 3;
        p.chain_segment_len = 4;
        v.push_back(make("vortex", "SPEC2000-Int", 308, p,
                         "1000M-1100M"));
    }
    {
        // Code slightly over 16KB and data slightly over 32KB: every
        // upsizing costs more frequency than it buys
        // (paper: -6.6% Program-Adaptive).
        PhaseParams p;
        p.code_hot_bytes = 24 * KB;
        p.code_total_bytes = 30 * KB;
        p.fp_frac = 0.15;
        p.branch_noise = 0.05;
        p.rand_bytes = 56 * KB;
        p.rand_frac = 0.55;
        p.num_chains = 2;
        p.chain_segment_len = 6;
        v.push_back(make("vpr", "SPEC2000-Int", 309, p, "1000M-1100M"));
    }

    // ---------------------------------------------------------------
    // SPEC2000 floating point (Table 8).
    // ---------------------------------------------------------------
    {
        // Strong periodic phases in data-cache needs (paper Fig. 7a).
        WorkloadParams w;
        w.name = "apsi";
        w.suite = "SPEC2000-Fp";
        w.seed = 401;
        w.paper_window = "1000M-1100M";
        PhaseParams small;
        small.code_hot_bytes = 12 * KB;
        small.code_total_bytes = 16 * KB;
        small.fp_frac = 0.45;
        small.num_chains = 4;
        small.chain_segment_len = 4;
        small.stream_bytes = 20 * KB;
        small.rand_bytes = 16 * KB;
        small.rand_frac = 0.3;
        small.length_instrs = 34'000;
        PhaseParams large = small;
        large.stream_bytes = 100 * KB;
        large.rand_bytes = 24 * KB;
        large.length_instrs = 26'000;
        w.phases = {small, large};
        v.push_back(w);
    }
    {
        // ILP-distance regimes cycle, driving the integer issue queue
        // through its four sizes (paper Fig. 7b); large data set
        // (paper: +32.2%).
        WorkloadParams w;
        w.name = "art";
        w.suite = "SPEC2000-Fp";
        w.seed = 402;
        w.paper_window = "300M-400M";
        PhaseParams base;
        base.code_hot_bytes = 6 * KB;
        base.code_total_bytes = 10 * KB;
        base.fp_frac = 0.35;
        base.load_frac = 0.3;
        base.stream_bytes = 100 * KB;
        base.rand_bytes = 280 * KB;
        base.rand_frac = 0.25;
        base.length_instrs = 25'000;
        PhaseParams p1 = base;   // serial: one long chain.
        p1.num_chains = 1;
        p1.chain_segment_len = 16;
        PhaseParams p2 = base;   // window 32 exposes a second chain.
        p2.num_chains = 2;
        p2.chain_segment_len = 12;
        PhaseParams p3 = base;   // window 48.
        p3.num_chains = 3;
        p3.chain_segment_len = 12;
        PhaseParams p4 = base;   // window 64.
        p4.num_chains = 4;
        p4.chain_segment_len = 12;
        w.phases = {p1, p2, p3, p4};
        v.push_back(w);
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 8 * KB;
        p.code_total_bytes = 12 * KB;
        p.fp_frac = 0.4;
        p.num_chains = 2;
        p.chain_segment_len = 10;
        p.load_frac = 0.3;
        p.rand_bytes = 200 * KB;
        p.rand_frac = 0.5;
        p.stream_bytes = 32 * KB;
        p.load_chain_frac = 0.65;
        v.push_back(make("equake", "SPEC2000-Fp", 403, p,
                         "1000M-1100M"));
    }
    {
        // Dense linear algebra: abundant but distant parallelism.
        PhaseParams p;
        p.code_hot_bytes = 10 * KB;
        p.code_total_bytes = 14 * KB;
        p.fp_frac = 0.6;
        p.num_chains = 5;
        p.chain_segment_len = 8;
        p.mul_frac = 0.2;
        p.stream_bytes = 48 * KB;
        p.rand_frac = 0.1;
        v.push_back(make("galgel", "SPEC2000-Fp", 404, p,
                         "1000M-1100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 40 * KB;
        p.code_total_bytes = 48 * KB;
        p.fp_frac = 0.4;
        p.num_chains = 3;
        p.chain_segment_len = 5;
        p.stream_bytes = 32 * KB;
        p.rand_bytes = 16 * KB;
        v.push_back(make("mesa", "SPEC2000-Fp", 405, p, "1000M-1100M"));
    }
    {
        PhaseParams p;
        p.code_hot_bytes = 8 * KB;
        p.code_total_bytes = 12 * KB;
        p.fp_frac = 0.5;
        p.num_chains = 3;
        p.chain_segment_len = 12;
        p.mul_frac = 0.15;
        p.stream_bytes = 80 * KB;
        p.rand_frac = 0.15;
        v.push_back(make("wupwise", "SPEC2000-Fp", 406, p,
                         "1000M-1100M"));
    }

    // ---------------------------------------------------------------
    // Scale each benchmark's window so capacity effects are visible:
    // several laps of the hot code loop and several touches of the
    // random data pool must fit in the measured window (the paper's
    // 100M+ windows satisfy this trivially; our scaled windows must
    // be sized per benchmark).
    // ---------------------------------------------------------------
    for (WorkloadParams &w : v) {
        std::uint64_t need = 120'000;
        for (const PhaseParams &p : w.phases) {
            std::uint64_t lap =
                (p.code_hot_bytes / 64) *
                static_cast<std::uint64_t>(p.block_len) *
                static_cast<std::uint64_t>(
                    (p.loop_iters_max + 1) / 2 + 1);
            need = std::max(need, 4 * lap);
            double data_rate = p.load_frac * p.rand_frac;
            if (data_rate > 0.01) {
                auto touches = static_cast<std::uint64_t>(
                    3.0 * (p.rand_bytes / 64) / data_rate);
                need = std::max(need, touches);
            }
        }
        w.sim_instrs = std::min<std::uint64_t>(need, 400'000);
        w.warmup_instrs = w.sim_instrs / 8;
    }
    return v;
}

} // namespace

const std::vector<WorkloadParams> &
benchmarkSuite()
{
    static const std::vector<WorkloadParams> suite = buildSuite();
    return suite;
}

const WorkloadParams &
findBenchmark(const std::string &name)
{
    for (const WorkloadParams &w : benchmarkSuite()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

WorkloadParams
perCoreWorkload(const WorkloadParams &wl, int core)
{
    if (core == 0)
        return wl;
    WorkloadParams out = wl;
    // Golden-ratio reseed: an independent Pcg32 stream per core, far
    // from the per-benchmark seeds, while core 0 stays untouched.
    out.seed = wl.seed ^ (0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(core));
    out.name = wl.name + "#c" + std::to_string(core);
    return out;
}

std::vector<WorkloadParams>
sharingMix(const WorkloadParams &base, int cores,
           const std::string &kind)
{
    GALS_ASSERT(cores >= 1, "sharing mix needs cores >= 1");
    std::vector<WorkloadParams> mix;
    mix.reserve(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c) {
        WorkloadParams wl = perCoreWorkload(base, c);
        // Disjoint private footprints, all below kSharedBase, so only
        // the shared window ever aliases across cores. Core 0 keeps
        // offset 0 (its private stream matches the single-core
        // layout); chips up to 4 cores keep the historical 64MB
        // spacing (their streams are pinned by existing goldens),
        // wider chips tighten to 32MB — at 64MB, core 12's streamed
        // region (kStreamBase + 12*64MB) would land exactly on
        // kSharedBase.
        const Addr spacing = cores <= 4 ? 0x0400'0000 : 0x0200'0000;
        wl.addr_offset = static_cast<Addr>(c) * spacing;
        GALS_ASSERT(kStreamBase + wl.addr_offset <
                        kSharedBase - 0x0200'0000,
                    "per-core private regions must stay below the "
                    "coherent shared window");
        wl.name += "+" + kind;
        if (kind == "producer-consumer") {
            wl.shared_bytes = 16 * KB;
            for (PhaseParams &p : wl.phases) {
                p.shared_frac = c == 0 ? 0.35 : 0.25;
                if (c == 0) {
                    p.store_frac = std::max(p.store_frac, 0.20);
                } else {
                    p.load_frac = std::max(p.load_frac, 0.30);
                    p.store_frac = std::min(p.store_frac, 0.02);
                }
            }
        } else if (kind == "migratory") {
            wl.shared_bytes = 8 * KB;
            for (PhaseParams &p : wl.phases) {
                p.shared_frac = 0.25;
                p.load_frac = std::max(p.load_frac, 0.25);
                p.store_frac = std::max(p.store_frac, 0.12);
            }
        } else if (kind == "lock") {
            // A handful of lines, hit hard by everyone's stores.
            wl.shared_bytes = 256;
            for (PhaseParams &p : wl.phases) {
                p.shared_frac = 0.30;
                p.store_frac = std::max(p.store_frac, 0.18);
            }
        } else {
            fatal("unknown sharing-mix kind '%s'", kind.c_str());
        }
        mix.push_back(std::move(wl));
    }
    return mix;
}

std::vector<WorkloadParams>
multiprogrammedMix(const std::vector<WorkloadParams> &suite, int cores,
                   int rotation)
{
    GALS_ASSERT(!suite.empty(), "multiprogrammed mix over an empty "
                                "suite");
    GALS_ASSERT(cores >= 1, "multiprogrammed mix needs cores >= 1");
    std::vector<WorkloadParams> mix;
    mix.reserve(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c) {
        const WorkloadParams &wl =
            suite[(static_cast<size_t>(rotation) +
                   static_cast<size_t>(c)) %
                  suite.size()];
        mix.push_back(perCoreWorkload(wl, c));
    }
    return mix;
}

} // namespace gals
