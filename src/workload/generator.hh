/**
 * @file
 * Deterministic synthetic instruction-stream generator.
 *
 * The generator walks a hot code loop (one basic block per step, with
 * occasional excursions into cold code), emits interleaved dependence
 * chains in segments, issues loads/stores against a streamed region
 * and a random pool, and ends every block with a conditional branch
 * whose outcome follows a per-site periodic pattern perturbed by
 * noise. All state advances from one Pcg32 stream, so a given
 * WorkloadParams always produces the identical instruction sequence.
 */

#ifndef GALS_WORKLOAD_GENERATOR_HH
#define GALS_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "common/arena.hh"
#include "common/random.hh"
#include "workload/params.hh"
#include "workload/uop.hh"

namespace gals
{

/**
 * Address-space layout of the synthetic program. Data lives at
 * kStreamBase: the streamed region first, then (padded by a few
 * lines) the random pool — contiguous, as a real heap would lay
 * them out, so small working sets do not suffer artificial
 * direct-mapped conflicts.
 */
constexpr Addr kCodeBase = 0x0001'0000;
constexpr Addr kStreamBase = 0x1000'0000;
/**
 * Base of the chip-shared coherent window. Every workload that
 * declares shared_bytes addresses the same lines here, far above any
 * private region (per-core addr_offsets are bounded well below it),
 * so the shared-L2 directory covers exactly [kSharedBase,
 * kSharedBase + shared_bytes).
 */
constexpr Addr kSharedBase = 0x4000'0000;

/** The synthetic benchmark instruction stream. */
class SyntheticWorkload
{
  public:
    explicit SyntheticWorkload(const WorkloadParams &params);

    // cur_phase_ points into this object's own params_; a copied or
    // moved instance would keep aiming at the source's storage.
    SyntheticWorkload(const SyntheticWorkload &) = delete;
    SyntheticWorkload &operator=(const SyntheticWorkload &) = delete;

    /** Generate the next micro-op in program order. */
    MicroOp next();

    /**
     * Generate the next `n` micro-ops in program order into `out` —
     * bit-exact with `n` successive next() calls (the generator is
     * open-loop: nothing it draws depends on simulation state, so
     * batching moves no RNG draw and changes no stream; the pinned
     * stream-hash goldens and the batch-equivalence test verify it).
     * The batch form is what lets each chip worker pre-generate its
     * own cores' ops inside its stepping rounds in one tight,
     * cache-hot loop instead of one call per fetch slot interleaved
     * with the whole simulator working set.
     */
    void nextBatch(MicroOp *out, int n);

    /** Number of ops generated so far. */
    std::uint64_t generated() const { return generated_; }

    /** Index into params().phases of the current phase. */
    int currentPhase() const { return phase_idx_; }

    const WorkloadParams &params() const { return params_; }

    /** Current phase's parameters. */
    const PhaseParams &phase() const;

  private:
    struct Chain
    {
        bool is_fp = false;
        std::int8_t tail = kZeroReg;
        Addr stream_pos = 0;
        /** Dedicated logical-register window (no cross-chain
         * aliasing: a chain's tail is never overwritten by another
         * chain's destinations). */
        int reg_base = 8;
        int reg_count = 1;
        int reg_next = 0;
    };

    void startPhase(int idx);
    void advanceBlock();
    std::int8_t allocReg(Chain &chain);
    bool branchOutcome();
    Addr dataAddress(Chain &chain);
    MicroOp makeBranch();
    MicroOp makeWork();

    /**
     * Per-phase constants hoisted off the per-op hot path (the
     * generator is ~10% of host time, and these divisions/maxima are
     * pure functions of the phase). Recomputed at startPhase; every
     * cached value is bit-exact with the inline expression it
     * replaces, and no RNG draw moves — the determinism goldens and
     * the pinned stream hashes (tests/test_workload.cc) verify the
     * stream is unchanged.
     */
    struct PhaseCache
    {
        /** Base of the streamed region (kStreamBase + addr_offset). */
        Addr stream_base = 0;
        /** Base of the random pool (after the streamed region). */
        Addr rand_base = 0;
        /** Shared-window size in lines; 0 disables shared draws (and
         * with them the extra RNG consumption) entirely. */
        std::uint32_t shared_lines = 0;
        /** Random-pool size in lines, clamped to 32 bits. */
        std::uint32_t rand_lines = 1;
        /** p.rand_bytes >= one line (pool draws enabled). */
        bool rand_pool = false;
        /** max(p.stream_bytes, line) / max(p.stream_stride_bytes, 1). */
        std::uint64_t stream_region = 1;
        std::uint64_t stream_stride = 1;
        /** p.cross_chain_frac > 0 and more than one chain. */
        bool cross_chain = false;
        /** p.load_frac + p.store_frac / p.div_frac + p.mul_frac. */
        double load_store_frac = 0.0;
        double div_mul_frac = 0.0;
        std::uint32_t pattern_len = 1;
    };

    WorkloadParams params_;
    Pcg32 rng_;
    /** Current phase (stable: params_.phases never resizes). */
    const PhaseParams *cur_phase_ = nullptr;
    PhaseCache pc_;

    int phase_idx_ = -1;
    std::uint64_t instrs_in_phase_ = 0;
    std::uint64_t generated_ = 0;

    // Code walk (loop episodes over the hot footprint).
    std::uint64_t hot_lines_ = 1;
    std::uint64_t total_lines_ = 1;
    std::uint64_t loop_start_ = 0;
    std::uint64_t loop_len_ = 1;
    int loop_iters_left_ = 1;
    std::uint64_t pos_in_loop_ = 0;
    std::uint64_t cur_line_ = 0;
    bool in_excursion_ = false;
    int excursion_left_ = 0;
    std::uint64_t excursion_pos_ = 0;
    int instr_in_block_ = 0;

    void newLoopEpisode();

    // Dependence chains.
    ArenaVector<Chain> chains_;
    size_t chain_idx_ = 0;
    int ops_in_segment_ = 0;

    // Per-branch-site iteration counters (indexed by hot line).
    ArenaVector<std::uint32_t> site_counter_;
    /** Per-site behavior: 0 unset, 1 loop, 2 taken, 3 not-taken. */
    ArenaVector<std::uint8_t> site_kind_;
};

} // namespace gals

#endif // GALS_WORKLOAD_GENERATOR_HH
