#include "workload/generator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gals
{

namespace
{
constexpr int kLineBytes = 64;
constexpr int kInstrBytes = 4;

std::uint64_t
linesOf(std::uint64_t bytes)
{
    return std::max<std::uint64_t>(1, bytes / kLineBytes);
}
} // namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params)
    : params_(params), rng_(params.seed, 0x2545f4914f6cdd1dULL)
{
    GALS_ASSERT(!params_.phases.empty(),
                "workload '%s' has no phases", params_.name.c_str());
    startPhase(0);
}

const PhaseParams &
SyntheticWorkload::phase() const
{
    return params_.phases[static_cast<size_t>(phase_idx_)];
}

void
SyntheticWorkload::startPhase(int idx)
{
    phase_idx_ = idx;
    instrs_in_phase_ = 0;
    cur_phase_ = &params_.phases[static_cast<size_t>(idx)];
    const PhaseParams &p = phase();

    GALS_ASSERT(p.block_len >= 2, "block_len must be at least 2");
    GALS_ASSERT(p.num_chains >= 1 && p.chain_segment_len >= 1,
                "chain parameters must be positive");

    hot_lines_ = linesOf(p.code_hot_bytes);
    total_lines_ = std::max(linesOf(p.code_total_bytes), hot_lines_);
    loop_start_ = loop_start_ % hot_lines_;
    newLoopEpisode();
    pos_in_loop_ = 0;
    cur_line_ = loop_start_;
    in_excursion_ = false;
    excursion_left_ = 0;
    instr_in_block_ = 0;

    // Keep per-site branch state across phases when the layout allows;
    // grow it to cover the whole footprint.
    if (site_counter_.size() < total_lines_) {
        site_counter_.resize(total_lines_, 0);
        site_kind_.resize(total_lines_, 0);
    }

    chains_.resize(static_cast<size_t>(p.num_chains));
    int window = std::max(1, (kNumIntRegs - 8) / p.num_chains);
    for (size_t i = 0; i < chains_.size(); ++i) {
        Chain &c = chains_[i];
        c.is_fp = rng_.chance(p.fp_frac);
        c.tail = kZeroReg;
        c.stream_pos = (i * 4096) % std::max<std::uint64_t>(
            p.stream_bytes, static_cast<std::uint64_t>(kLineBytes));
        c.reg_base = 8 + static_cast<int>(i) * window;
        c.reg_count = window;
        c.reg_next = 0;
    }
    chain_idx_ = 0;
    ops_in_segment_ = 0;

    // Hoist the phase-constant hot-path math (bit-exact: each cached
    // value is the very expression the per-op code used to evaluate).
    pc_.rand_pool = p.rand_bytes >= kLineBytes;
    pc_.stream_base = kStreamBase + params_.addr_offset;
    pc_.rand_base =
        pc_.stream_base +
        ((std::max<std::uint64_t>(p.stream_bytes, kLineBytes) +
          3 * kLineBytes) /
         kLineBytes) *
            kLineBytes;
    // Shared draws need both a declared window (workload-level) and a
    // nonzero per-phase fraction; either alone leaves the stream --
    // including its RNG consumption -- bit-identical to a workload
    // without the knobs.
    pc_.shared_lines =
        (p.shared_frac > 0.0 &&
         params_.shared_bytes >= static_cast<std::uint64_t>(kLineBytes))
            ? static_cast<std::uint32_t>(std::min<std::uint64_t>(
                  linesOf(params_.shared_bytes), 0xffffffffULL))
            : 0;
    pc_.rand_lines = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(linesOf(p.rand_bytes),
                                0xffffffffULL));
    pc_.stream_region = std::max<std::uint64_t>(
        p.stream_bytes, static_cast<std::uint64_t>(kLineBytes));
    pc_.stream_stride =
        std::max<std::uint64_t>(p.stream_stride_bytes, 1);
    pc_.cross_chain = p.cross_chain_frac > 0.0 && chains_.size() > 1;
    pc_.load_store_frac = p.load_frac + p.store_frac;
    pc_.div_mul_frac = p.div_frac + p.mul_frac;
    pc_.pattern_len =
        static_cast<std::uint32_t>(p.branch_pattern_len);
}

std::int8_t
SyntheticWorkload::allocReg(Chain &chain)
{
    int r = chain.reg_base + chain.reg_next;
    chain.reg_next = (chain.reg_next + 1) % chain.reg_count;
    if (chain.is_fp)
        r += kFirstFpReg;
    return static_cast<std::int8_t>(r);
}

bool
SyntheticWorkload::branchOutcome()
{
    const PhaseParams &p = *cur_phase_;
    // The walk keeps cur_line_ < total_lines_ (hot positions are
    // reduced mod hot_lines_, excursions stay in [hot, total)), so
    // the line *is* the site index.
    size_t site = static_cast<size_t>(cur_line_);
    std::uint32_t &counter = site_counter_[site];
    ++counter;

    std::uint8_t &kind = site_kind_[site];
    if (kind == 0) {
        // First execution decides the site's behavior.
        if (rng_.chance(p.loop_site_frac))
            kind = 1;
        else
            kind = rng_.chance(0.85) ? 2 : 3;
    }

    bool taken = true;
    switch (kind) {
      case 1:
        // Loop backedge: taken except every pattern_len-th run.
        taken = pc_.pattern_len <= 1 ||
                (counter % pc_.pattern_len) != 0;
        break;
      case 2:
        taken = true;
        break;
      default:
        taken = false;
        break;
    }
    if (p.branch_noise > 0.0 && rng_.chance(p.branch_noise))
        taken = rng_.chance(0.5);
    return taken;
}

void
SyntheticWorkload::newLoopEpisode()
{
    const PhaseParams &p = phase();
    std::uint64_t max_len = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(std::max(p.loop_lines_max, 1)),
        hot_lines_);
    loop_len_ = 1 + rng_.nextBounded(
        static_cast<std::uint32_t>(max_len));
    loop_iters_left_ =
        1 + static_cast<int>(rng_.nextBounded(static_cast<std::uint32_t>(
            std::max(p.loop_iters_max, 1))));
}

void
SyntheticWorkload::advanceBlock()
{
    const PhaseParams &p = phase();
    if (in_excursion_) {
        if (--excursion_left_ <= 0) {
            in_excursion_ = false;
            cur_line_ = (loop_start_ + pos_in_loop_) % hot_lines_;
        } else {
            excursion_pos_ = hot_lines_ +
                             (excursion_pos_ - hot_lines_ + 1) %
                                 (total_lines_ - hot_lines_);
            cur_line_ = excursion_pos_;
        }
        return;
    }
    if (total_lines_ > hot_lines_ && rng_.chance(p.excursion_frac)) {
        in_excursion_ = true;
        excursion_left_ = p.excursion_len;
        excursion_pos_ = hot_lines_ +
                         rng_.nextBounded(static_cast<std::uint32_t>(
                             total_lines_ - hot_lines_));
        cur_line_ = excursion_pos_;
        return;
    }

    // Advance within the current loop episode; iterate it; then move
    // the episode window onward through the hot footprint.
    ++pos_in_loop_;
    if (pos_in_loop_ >= loop_len_) {
        pos_in_loop_ = 0;
        if (--loop_iters_left_ <= 0) {
            loop_start_ = (loop_start_ + loop_len_) % hot_lines_;
            newLoopEpisode();
        }
    }
    cur_line_ = (loop_start_ + pos_in_loop_) % hot_lines_;
}

Addr
SyntheticWorkload::dataAddress(Chain &chain)
{
    const PhaseParams &p = *cur_phase_;
    if (pc_.shared_lines != 0 && rng_.chance(p.shared_frac)) {
        // Chip-shared window: every sharing core draws lines from the
        // same [kSharedBase, kSharedBase + shared_bytes) range, so
        // stores here are the (only) source of cross-core coherence
        // traffic.
        std::uint64_t line = rng_.nextBounded(pc_.shared_lines);
        return kSharedBase + line * kLineBytes;
    }
    if (pc_.rand_pool && rng_.chance(p.rand_frac)) {
        // The pool sits contiguously after the streamed region (as a
        // real heap would), so small working sets do not suffer
        // artificial direct-mapped conflicts.
        std::uint64_t line = rng_.nextBounded(pc_.rand_lines);
        return pc_.rand_base + line * kLineBytes;
    }
    // stream_pos stays < region, so one conditional reduction equals
    // the modulo.
    std::uint64_t pos = chain.stream_pos + pc_.stream_stride;
    if (pos >= pc_.stream_region)
        pos %= pc_.stream_region;
    chain.stream_pos = pos;
    return pc_.stream_base + pos;
}

MicroOp
SyntheticWorkload::makeBranch()
{
    MicroOp op;
    op.cls = OpClass::Branch;
    Chain &chain = chains_[chain_idx_];
    bool data_dep = !chain.is_fp &&
                    rng_.chance(cur_phase_->branch_dep_frac);
    op.src1 = data_dep ? chain.tail : kZeroReg;
    op.src2 = -1;
    op.dst = -1;
    op.taken = branchOutcome();
    return op;
}

MicroOp
SyntheticWorkload::makeWork()
{
    const PhaseParams &p = *cur_phase_;
    Chain &chain = chains_[chain_idx_];

    MicroOp op;
    op.src1 = chain.tail;
    op.src2 = kZeroReg;
    if (pc_.cross_chain && rng_.chance(p.cross_chain_frac)) {
        size_t other = rng_.nextBounded(
            static_cast<std::uint32_t>(chains_.size()));
        op.src2 = chains_[other].tail;
    }

    double roll = rng_.nextDouble();
    if (roll < p.load_frac) {
        op.cls = chain.is_fp ? OpClass::FpLoad : OpClass::Load;
        op.mem_addr = dataAddress(chain);
        op.dst = allocReg(chain);
        if (rng_.chance(p.load_chain_frac))
            chain.tail = op.dst;
    } else if (roll < pc_.load_store_frac) {
        op.cls = OpClass::Store;
        op.mem_addr = dataAddress(chain);
        op.src2 = chain.tail;
        op.dst = -1;
    } else {
        double alu = rng_.nextDouble();
        if (chain.is_fp) {
            op.cls = alu < p.div_frac ? OpClass::FpDiv
                     : alu < pc_.div_mul_frac ? OpClass::FpMul
                                              : OpClass::FpAlu;
        } else {
            op.cls = alu < p.div_frac ? OpClass::IntDiv
                     : alu < pc_.div_mul_frac ? OpClass::IntMul
                                              : OpClass::IntAlu;
        }
        op.dst = allocReg(chain);
        chain.tail = op.dst;
    }

    if (++ops_in_segment_ >= p.chain_segment_len) {
        ops_in_segment_ = 0;
        if (++chain_idx_ >= chains_.size())
            chain_idx_ = 0;
    }
    return op;
}

MicroOp
SyntheticWorkload::next()
{
    const PhaseParams &p = *cur_phase_;

    MicroOp op;
    bool end_of_block = instr_in_block_ == p.block_len - 1;
    op = end_of_block ? makeBranch() : makeWork();
    op.pc = kCodeBase + cur_line_ * kLineBytes +
            static_cast<Addr>((instr_in_block_ * kInstrBytes) %
                              kLineBytes);

    if (end_of_block) {
        instr_in_block_ = 0;
        advanceBlock();
    } else {
        ++instr_in_block_;
    }

    ++generated_;
    if (++instrs_in_phase_ >= p.length_instrs) {
        int next_phase =
            (phase_idx_ + 1) % static_cast<int>(params_.phases.size());
        startPhase(next_phase);
    }
    return op;
}

void
SyntheticWorkload::nextBatch(MicroOp *out, int n)
{
    // A plain loop over next() is the whole point: the generator's
    // state (RNG, chains, site tables) stays resident in L1 for the
    // full batch, where the per-op interleave evicted it against the
    // simulator's working set between every call. Bit-exactness is
    // by construction — the op sequence is the same function of the
    // same state either way.
    for (int i = 0; i < n; ++i)
        out[i] = next();
}

} // namespace gals
