/**
 * @file
 * The value-free micro-operation that flows from the workload
 * generator through the pipeline. Only the fields that affect timing
 * exist: operation class, logical registers, memory address, and the
 * oracle branch outcome. Semantics (actual values) are not simulated;
 * every result the paper reports is a timing result.
 */

#ifndef GALS_WORKLOAD_UOP_HH
#define GALS_WORKLOAD_UOP_HH

#include <cstdint>

#include "common/types.hh"

namespace gals
{

/** Operation classes with distinct timing behavior. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    FpLoad,
    Store,
    Branch,
};

/** Logical register file layout: 32 integer + 32 floating point. */
constexpr int kNumIntRegs = 32;
constexpr int kNumFpRegs = 32;
constexpr int kNumLogicalRegs = kNumIntRegs + kNumFpRegs;
/** Register 0 is a hard-wired always-ready zero register. */
constexpr int kZeroReg = 0;
/** First floating-point logical register. */
constexpr int kFirstFpReg = kNumIntRegs;

/** True for operations executed in the floating-point domain. */
constexpr bool
isFpOp(OpClass cls)
{
    return cls == OpClass::FpAlu || cls == OpClass::FpMul ||
           cls == OpClass::FpDiv;
}

/** True for memory operations (executed in the load/store domain). */
constexpr bool
isMemOp(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::FpLoad ||
           cls == OpClass::Store;
}

/** One micro-operation in program order. */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    Addr pc = 0;
    /** Logical source registers; -1 when unused. */
    std::int8_t src1 = -1;
    std::int8_t src2 = -1;
    /** Logical destination register; -1 when none. */
    std::int8_t dst = -1;
    /** Byte address for memory operations. */
    Addr mem_addr = 0;
    /** Oracle outcome for branches. */
    bool taken = false;
};

} // namespace gals

#endif // GALS_WORKLOAD_UOP_HH
