/**
 * @file
 * gem5-flavored status and error reporting.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is approximated; simulation continues.
 * inform() — plain status output.
 */

#ifndef GALS_COMMON_LOGGING_HH
#define GALS_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gals
{

/** Severity levels understood by the logger. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
};

namespace detail
{
/** Shared printf-style sink; adds the level prefix and a newline. */
void logVa(LogLevel level, const char *fmt, std::va_list ap);
} // namespace detail

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal modeling concern. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and sweeps). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool quiet();

/** printf-style std::string formatter used across the project. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace gals

/**
 * Assert a simulator invariant with a formatted message.
 * Kept as a macro so the condition text appears in the report.
 */
#define GALS_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::gals::panic("assertion '%s' failed at %s:%d: %s", #cond,    \
                          __FILE__, __LINE__,                             \
                          ::gals::csprintf(__VA_ARGS__).c_str());         \
        }                                                                 \
    } while (0)

#endif // GALS_COMMON_LOGGING_HH
