#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gals
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    count_ = 0;
}

Distribution::Distribution(std::string name, double lo, double hi,
                           int buckets)
    : name_(std::move(name)), lo_(lo), hi_(hi)
{
    GALS_ASSERT(hi > lo && buckets > 0,
                "bad distribution bounds [%f, %f) x %d", lo, hi, buckets);
    counts_.assign(static_cast<size_t>(buckets), 0);
    width_ = (hi_ - lo_) / buckets;
}

void
Distribution::sample(double v, std::uint64_t count)
{
    samples_ += count;
    sum_ += v * count;
    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<size_t>((v - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
        counts_[idx] += count;
    }
}

void
Distribution::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0.0;
}

std::uint64_t
Distribution::bucketCount(int i) const
{
    GALS_ASSERT(i >= 0 && i < numBuckets(), "bucket %d out of range", i);
    return counts_[static_cast<size_t>(i)];
}

std::string
Distribution::toString() const
{
    std::string out = name_ + ": [";
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            out += ' ';
        out += std::to_string(counts_[i]);
    }
    out += csprintf("] under=%llu over=%llu mean=%.3f",
                    static_cast<unsigned long long>(underflow_),
                    static_cast<unsigned long long>(overflow_), mean());
    return out;
}

StatGroup::~StatGroup()
{
    for (Counter *c : counters_)
        delete c;
}

Counter &
StatGroup::addCounter(const std::string &name)
{
    counters_.push_back(new Counter(name));
    return *counters_.back();
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    for (const Counter *c : counters_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
}

std::string
StatGroup::dump() const
{
    std::string out;
    for (const Counter *c : counters_) {
        out += csprintf("%s.%s %llu\n", name_.c_str(), c->name().c_str(),
                        static_cast<unsigned long long>(c->value()));
    }
    return out;
}

} // namespace gals
