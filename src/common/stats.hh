/**
 * @file
 * Lightweight statistics primitives: named scalar counters, averages,
 * and fixed-bucket distributions, with a group container that can
 * render itself as text. Modeled loosely on gem5's Stats package but
 * kept intentionally small.
 */

#ifndef GALS_COMMON_STATS_HH
#define GALS_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gals
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(std::uint64_t amount = 1) { value_ += amount; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over double-valued samples. */
class Average
{
  public:
    Average() = default;
    explicit Average(std::string name) : name_(std::move(name)) {}

    void sample(double v);
    void reset();

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Histogram over [lo, hi) with equal-width buckets plus overflow. */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(std::string name, double lo, double hi, int buckets);

    void sample(double v, std::uint64_t count = 1);
    void reset();

    std::uint64_t bucketCount(int i) const;
    int numBuckets() const { return static_cast<int>(counts_.size()); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    const std::string &name() const { return name_; }

    /** One-line textual rendering ("name: [c0 c1 ...] mean=x"). */
    std::string toString() const;

  private:
    std::string name_;
    double lo_ = 0.0;
    double hi_ = 1.0;
    double width_ = 1.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of counters, used by simulator components to
 * expose their statistics uniformly for reports and tests.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register and return a new counter; pointers stay stable. */
    Counter &addCounter(const std::string &name);

    /** Find a counter by name; nullptr when missing. */
    const Counter *findCounter(const std::string &name) const;

    /** Zero all registered counters. */
    void resetAll();

    /** Multi-line "group.counter value" rendering. */
    std::string dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    // Deque-like stability without <deque>: store unique_ptr-free via
    // a vector of heap nodes.
    std::vector<Counter *> counters_;

  public:
    ~StatGroup();
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;
};

} // namespace gals

#endif // GALS_COMMON_STATS_HH
