#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace gals
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    GALS_ASSERT(header_.empty() || row.size() == header_.size(),
                "row width %zu != header width %zu", row.size(),
                header_.size());
    rows_.push_back(Row{false, std::move(row)});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{true, {}});
}

std::string
TextTable::render() const
{
    size_t cols = header_.size();
    for (const Row &r : rows_)
        cols = std::max(cols, r.cells.size());

    std::vector<size_t> width(cols, 0);
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = std::max(width[c], header_[c].size());
    for (const Row &r : rows_) {
        for (size_t c = 0; c < r.cells.size(); ++c)
            width[c] = std::max(width[c], r.cells[c].size());
    }

    auto renderCells = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < cols; ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            line += ' ';
            line += cell;
            line.append(width[c] - cell.size(), ' ');
            line += " |";
        }
        return line;
    };

    std::string rule = "+";
    for (size_t c = 0; c < cols; ++c) {
        rule.append(width[c] + 2, '-');
        rule += '+';
    }

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    out += rule + "\n";
    if (!header_.empty()) {
        out += renderCells(header_) + "\n";
        out += rule + "\n";
    }
    for (const Row &r : rows_) {
        if (r.rule)
            out += rule + "\n";
        else
            out += renderCells(r.cells) + "\n";
    }
    out += rule + "\n";
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
renderBarChart(const std::string &title,
               const std::vector<std::string> &labels,
               const std::vector<double> &values, double scale_max,
               int width, const std::string &unit)
{
    GALS_ASSERT(labels.size() == values.size(),
                "labels/values size mismatch: %zu vs %zu", labels.size(),
                values.size());
    double max_v = scale_max;
    if (max_v <= 0.0) {
        for (double v : values)
            max_v = std::max(max_v, v);
        if (max_v <= 0.0)
            max_v = 1.0;
    }
    size_t label_w = 0;
    for (const auto &l : labels)
        label_w = std::max(label_w, l.size());

    std::string out;
    if (!title.empty())
        out += title + "\n";
    for (size_t i = 0; i < labels.size(); ++i) {
        std::string line = "  " + labels[i];
        line.append(label_w - labels[i].size(), ' ');
        line += " |";
        double v = std::max(values[i], 0.0);
        int bar = static_cast<int>(v / max_v * width + 0.5);
        bar = std::min(bar, width);
        line.append(static_cast<size_t>(bar), '#');
        line += csprintf(" %.3f%s", values[i], unit.c_str());
        out += line + "\n";
    }
    return out;
}

} // namespace gals
