/**
 * @file
 * Thread-local recycling arena for the simulator's hot containers.
 *
 * A design-space sweep constructs and destroys hundreds of Processor
 * instances per worker thread, each allocating the same-shaped ROB,
 * LSQ, FIFO, regfile, cache and workload buffers. The arena keeps
 * freed blocks in per-size-class free lists instead of returning them
 * to the system allocator, so from the second run on a thread onward
 * the simulator allocates nothing from the heap.
 *
 * Blocks are bucketed by power-of-two size. Frees may come from a
 * different thread than the matching allocation (each thread simply
 * adopts the block into its own lists), which is safe because every
 * block originates from ::operator new. Everything a thread holds is
 * released when the thread exits.
 */

#ifndef GALS_COMMON_ARENA_HH
#define GALS_COMMON_ARENA_HH

#include <array>
#include <cstddef>
#include <deque>
#include <new>
#include <unordered_map>
#include <vector>

namespace gals
{

/** Per-thread block recycler backing ArenaAlloc. */
class ThreadArena
{
  public:
    static ThreadArena &
    local()
    {
        thread_local ThreadArena arena;
        return arena;
    }

    void *
    allocate(std::size_t bytes)
    {
        int b = bucket(bytes);
        if (b < 0)
            return ::operator new(bytes);
        FreeBlock *&head = free_[static_cast<std::size_t>(b)];
        if (head != nullptr) {
            FreeBlock *block = head;
            head = block->next;
            return block;
        }
        return ::operator new(std::size_t{1} << b);
    }

    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        int b = bucket(bytes);
        if (b < 0) {
            ::operator delete(p);
            return;
        }
        auto *block = static_cast<FreeBlock *>(p);
        block->next = free_[static_cast<std::size_t>(b)];
        free_[static_cast<std::size_t>(b)] = block;
    }

    ThreadArena(const ThreadArena &) = delete;
    ThreadArena &operator=(const ThreadArena &) = delete;

  private:
    struct FreeBlock
    {
        FreeBlock *next;
    };

    /** Smallest bucket holds a free-list pointer; largest is 1 MiB. */
    static constexpr int kMinShift = 4;
    static constexpr int kMaxShift = 20;

    /** Bucket shift for a request, or -1 for pass-through sizes. */
    static int
    bucket(std::size_t bytes)
    {
        if (bytes > (std::size_t{1} << kMaxShift))
            return -1;
        int shift = kMinShift;
        while ((std::size_t{1} << shift) < bytes)
            ++shift;
        return shift;
    }

    ThreadArena() = default;

    ~ThreadArena()
    {
        for (FreeBlock *head : free_) {
            while (head != nullptr) {
                FreeBlock *next = head->next;
                ::operator delete(head);
                head = next;
            }
        }
    }

    std::array<FreeBlock *, kMaxShift + 1> free_{};
};

/**
 * Standard-allocator adaptor over the thread-local arena. Stateless:
 * all instances compare equal, so containers may exchange memory
 * freely.
 */
template <typename T>
struct ArenaAlloc
{
    using value_type = T;

    ArenaAlloc() noexcept = default;
    template <typename U>
    ArenaAlloc(const ArenaAlloc<U> &) noexcept
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ThreadArena::local().allocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        ThreadArena::local().deallocate(p, n * sizeof(T));
    }

    template <typename U>
    bool operator==(const ArenaAlloc<U> &) const noexcept
    {
        return true;
    }
};

/** Containers of the simulator hot path, backed by the arena. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAlloc<T>>;

template <typename T>
using ArenaDeque = std::deque<T, ArenaAlloc<T>>;

template <typename K, typename V, typename Hash = std::hash<K>>
using ArenaUnorderedMap =
    std::unordered_map<K, V, Hash, std::equal_to<K>,
                       ArenaAlloc<std::pair<const K, V>>>;

} // namespace gals

#endif // GALS_COMMON_ARENA_HH
