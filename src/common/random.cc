#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace gals
{

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    GALS_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int
Pcg32::nextRange(int lo, int hi)
{
    GALS_ASSERT(lo <= hi, "nextRange lo=%d > hi=%d", lo, hi);
    std::uint32_t span = static_cast<std::uint32_t>(hi - lo) + 1u;
    return lo + static_cast<int>(nextBounded(span));
}

double
Pcg32::nextGaussian(double mean, double sigma)
{
    // Box-Muller; draw u1 away from zero to keep log() finite.
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-12);
    double u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + sigma * mag * std::cos(2.0 * M_PI * u2);
}

} // namespace gals
