/**
 * @file
 * ASCII table rendering for experiment reports. Every bench binary
 * prints its paper table/figure through this formatter so outputs have
 * a uniform, diffable layout.
 */

#ifndef GALS_COMMON_TABLE_HH
#define GALS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace gals
{

/** Column-aligned ASCII table with a title and a header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a separator rule between row groups. */
    void addRule();

    /** Render the table with column alignment. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    struct Row
    {
        bool rule = false;
        std::vector<std::string> cells;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/**
 * Render a horizontal ASCII bar chart (used for the "figure" benches:
 * one labeled bar per series point).
 */
std::string renderBarChart(const std::string &title,
                           const std::vector<std::string> &labels,
                           const std::vector<double> &values,
                           double scale_max, int width,
                           const std::string &unit);

} // namespace gals

#endif // GALS_COMMON_TABLE_HH
