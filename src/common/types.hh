/**
 * @file
 * Fundamental scalar types shared by every module.
 *
 * All simulated time is kept in integral picoseconds so that clock-edge
 * arithmetic across domains with unrelated frequencies stays exact.
 */

#ifndef GALS_COMMON_TYPES_HH
#define GALS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace gals
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Cycle count within one clock domain. */
using Cycle = std::uint64_t;

/** Global instruction sequence number (program order). */
using SeqNum = std::uint64_t;

/** Byte address in the synthetic address space. */
using Addr = std::uint64_t;

/** Picoseconds per nanosecond / microsecond, for readability. */
constexpr Tick kPsPerNs = 1000;
constexpr Tick kPsPerUs = 1000 * 1000;

/** Convert a frequency in GHz to a clock period in ps (rounded). */
constexpr Tick
periodPsFromGHz(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz + 0.5);
}

/** Convert a period in ps back to GHz. */
constexpr double
ghzFromPeriodPs(Tick ps)
{
    return 1000.0 / static_cast<double>(ps);
}

/** The four adaptive clock domains of the MCD processor. */
enum class DomainId : std::uint8_t
{
    FrontEnd = 0,
    Integer = 1,
    FloatingPoint = 2,
    LoadStore = 3,
    NumDomains = 4,
    /** Fixed-frequency main memory, modeled as a fifth, non-adaptive
     * domain. */
    External = 4,
};

constexpr int kNumDomains = 4;

/** Printable domain name. */
const char *domainName(DomainId id);

} // namespace gals

#endif // GALS_COMMON_TYPES_HH
