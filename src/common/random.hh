/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (clock jitter, PLL lock
 * times, synthetic workloads) draws from an explicitly seeded Pcg32
 * stream so that runs are exactly reproducible and independent streams
 * never perturb one another.
 */

#ifndef GALS_COMMON_RANDOM_HH
#define GALS_COMMON_RANDOM_HH

#include <cstdint>

namespace gals
{

/**
 * PCG-XSH-RR 64/32 generator (O'Neill). Small state, good statistical
 * quality, and cheap enough to sit on the workload generation fast path.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional independent stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** @return the next raw 32-bit draw. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** @return an unbiased draw in [0, bound). bound must be > 0. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** @return a draw in [lo, hi] inclusive. */
    int nextRange(int lo, int hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble() { return next() * (1.0 / 4294967296.0); }

    /** @return true with the given probability (clamped to [0,1]). */
    bool
    chance(double probability)
    {
        if (probability <= 0.0)
            return false;
        if (probability >= 1.0)
            return true;
        return nextDouble() < probability;
    }

    /**
     * A normal draw via Box-Muller (no cached spare: deterministic
     * stream position regardless of call interleaving).
     */
    double nextGaussian(double mean, double sigma);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace gals

#endif // GALS_COMMON_RANDOM_HH
