#include "common/types.hh"

namespace gals
{

const char *
domainName(DomainId id)
{
    switch (id) {
      case DomainId::FrontEnd:      return "front-end";
      case DomainId::Integer:       return "integer";
      case DomainId::FloatingPoint: return "floating-point";
      case DomainId::LoadStore:     return "load-store";
      case DomainId::External:      return "external";
      default:                      return "unknown";
    }
}

} // namespace gals
