#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace gals
{

namespace
{
bool quiet_flag = false;

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:  return "panic: ";
      case LogLevel::Fatal:  return "fatal: ";
      case LogLevel::Warn:   return "warn: ";
      case LogLevel::Inform: return "info: ";
    }
    return "";
}
} // namespace

namespace detail
{

void
logVa(LogLevel level, const char *fmt, std::va_list ap)
{
    if (quiet_flag &&
        (level == LogLevel::Warn || level == LogLevel::Inform)) {
        return;
    }
    std::FILE *out =
        (level == LogLevel::Inform) ? stdout : stderr;
    std::fputs(prefix(level), out);
    std::vfprintf(out, fmt, ap);
    std::fputc('\n', out);
    std::fflush(out);
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    detail::logVa(LogLevel::Panic, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    detail::logVa(LogLevel::Fatal, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    detail::logVa(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    detail::logVa(LogLevel::Inform, fmt, ap);
    va_end(ap);
}

void
setQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
quiet()
{
    return quiet_flag;
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return {};
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace gals
