/**
 * @file
 * A clock for one GALS domain.
 *
 * The clock owns a period (ps), the absolute time of its next rising
 * edge, and an optional Gaussian edge jitter. Frequency changes are
 * applied at an edge boundary so cycles never overlap. The MCD
 * simulator advances whichever domain clock has the earliest next
 * edge; synchronizers query nextEdgeAfter() to decide when data
 * produced in another domain becomes visible here.
 */

#ifndef GALS_CLOCK_CLOCK_HH
#define GALS_CLOCK_CLOCK_HH

#include "common/random.hh"
#include "common/types.hh"

namespace gals
{

/** One domain clock: period, edge position, jitter, cycle count. */
class Clock
{
  public:
    /**
     * @param period_ps   initial clock period in picoseconds.
     * @param first_edge  absolute time of the first rising edge.
     * @param jitter_sigma_ps standard deviation of per-edge jitter;
     *                    0 disables jitter.
     * @param seed        RNG seed for the jitter stream.
     */
    explicit Clock(Tick period_ps, Tick first_edge = 0,
                   double jitter_sigma_ps = 0.0,
                   std::uint64_t seed = 1);

    /** Absolute time of the next rising edge. */
    Tick nextEdge() const { return next_edge_; }

    /** Current period in ps. */
    Tick period() const { return period_ps_; }

    /** Current frequency in GHz. */
    double freqGHz() const { return ghzFromPeriodPs(period_ps_); }

    /** Number of edges delivered so far. */
    Cycle cycle() const { return cycle_; }

    /**
     * Consume the pending edge: the domain has executed its cycle at
     * nextEdge(). Applies any pending period change and jitter.
     */
    void advance();

    /**
     * First edge strictly after time t, extrapolated on the nominal
     * grid from the current edge position. Used by synchronizers.
     */
    Tick nextEdgeAfter(Tick t) const;

    /**
     * Schedule a period change; it takes effect at the first edge at
     * or after `when` (the PLL re-lock completion time).
     */
    void setPeriod(Tick new_period_ps, Tick when);

    /** True when a period change is scheduled but not yet applied. */
    bool changePending() const { return pending_period_ != 0; }

  private:
    Tick period_ps_;
    /** Jitter-free edge grid; jitter wobbles each edge around it. */
    Tick nominal_next_;
    Tick next_edge_;
    Cycle cycle_ = 0;

    Tick pending_period_ = 0;
    Tick pending_when_ = 0;

    double jitter_sigma_ps_;
    Pcg32 rng_;
};

} // namespace gals

#endif // GALS_CLOCK_CLOCK_HH
