/**
 * @file
 * A clock for one GALS domain.
 *
 * The clock owns a period (ps), the absolute time of its next rising
 * edge, and an optional Gaussian edge jitter. Frequency changes are
 * applied at an edge boundary so cycles never overlap. The MCD
 * simulator advances whichever domain clock has the earliest next
 * edge; synchronizers query nextEdgeAfter() to decide when data
 * produced in another domain becomes visible here.
 */

#ifndef GALS_CLOCK_CLOCK_HH
#define GALS_CLOCK_CLOCK_HH

#include <algorithm>

#include "common/random.hh"
#include "common/types.hh"

namespace gals
{

/** One domain clock: period, edge position, jitter, cycle count. */
class Clock
{
  public:
    /**
     * @param period_ps   initial clock period in picoseconds.
     * @param first_edge  absolute time of the first rising edge.
     * @param jitter_sigma_ps standard deviation of per-edge jitter;
     *                    0 disables jitter.
     * @param seed        RNG seed for the jitter stream.
     */
    explicit Clock(Tick period_ps, Tick first_edge = 0,
                   double jitter_sigma_ps = 0.0,
                   std::uint64_t seed = 1);

    /** Absolute time of the next rising edge. */
    Tick nextEdge() const { return next_edge_; }

    /** Current period in ps. */
    Tick period() const { return period_ps_; }

    /** Current frequency in GHz. */
    double freqGHz() const { return ghzFromPeriodPs(period_ps_); }

    /** Number of edges delivered so far. */
    Cycle cycle() const { return cycle_; }

    /**
     * Consume the pending edge: the domain has executed its cycle at
     * nextEdge(). Applies any pending period change and jitter.
     */
    void
    advance()
    {
        ++cycle_;

        if (pending_period_ != 0 && nominal_next_ >= pending_when_) {
            period_ps_ = pending_period_;
            pending_period_ = 0;
            ++period_changes_;
        }

        // The nominal grid is jitter-free; each delivered edge
        // wobbles around its nominal position by a bounded,
        // zero-mean draw, so jitter never accumulates into the grid.
        nominal_next_ += period_ps_;
        next_edge_ = nominal_next_;
        if (jitter_sigma_ps_ > 0.0)
            applyJitter();
    }

    /**
     * Consume every edge strictly before `t` without delivering them
     * (the caller has proven the domain does nothing at those edges).
     * Equivalent to calling advance() while nextEdge() < t, but jumps
     * arithmetically when the grid is clean (no jitter, no pending
     * period change); with jitter or a scheduled period change it
     * steps edge by edge so the RNG stream and the change-application
     * edge stay identical to the unskipped execution.
     */
    void advanceWhileBelow(Tick t);

    /**
     * First edge strictly after time t, extrapolated on the nominal
     * grid from the current edge position. Used by synchronizers.
     * Hot path: most queries land on the current or next edge, so the
     * division is skipped for them.
     */
    Tick
    nextEdgeAfter(Tick t) const
    {
        if (t < nominal_next_)
            return nominal_next_;
        Tick delta = t - nominal_next_;
        if (delta < period_ps_)
            return nominal_next_ + period_ps_;
        Tick steps = delta / period_ps_ + 1;
        return nominal_next_ + steps * period_ps_;
    }

    /**
     * Schedule a period change; it takes effect at the first edge at
     * or after `when` (the PLL re-lock completion time).
     */
    void setPeriod(Tick new_period_ps, Tick when);

    /** True when a period change is scheduled but not yet applied. */
    bool changePending() const { return pending_period_ != 0; }

    /**
     * Earliest time the pending change can land (it applies at the
     * first consumed edge whose nominal position is at or after
     * this). Only meaningful while changePending().
     */
    Tick changeDue() const { return pending_when_; }

    /**
     * Number of period changes applied so far. Consumers that memoize
     * grid extrapolations (nextEdgeAfter results) use this as an
     * invalidation epoch: a memo is valid only while no clock's grid
     * has changed.
     */
    std::uint64_t periodChanges() const { return period_changes_; }

  private:
    /** Wobble next_edge_ around the nominal grid (cold path). */
    void applyJitter();

    Tick period_ps_;
    /** Jitter-free edge grid; jitter wobbles each edge around it. */
    Tick nominal_next_;
    Tick next_edge_;
    Cycle cycle_ = 0;

    Tick pending_period_ = 0;
    Tick pending_when_ = 0;
    std::uint64_t period_changes_ = 0;

    double jitter_sigma_ps_;
    Pcg32 rng_;
};

} // namespace gals

#endif // GALS_CLOCK_CLOCK_HH
