#include "clock/pll.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gals
{

Pll::Pll(const PllParams &params, std::uint64_t seed)
    : params_(params), rng_(seed, 0xb5297a4d3e0aa1c3ULL)
{
    GALS_ASSERT(params_.min_us > 0 && params_.max_us >= params_.min_us,
                "bad PLL lock-time bounds [%f, %f]", params_.min_us,
                params_.max_us);
}

Tick
Pll::startRelock(Tick now)
{
    GALS_ASSERT(!busy(now), "PLL re-lock requested while locking");
    double us = rng_.nextGaussian(params_.mean_us, params_.sigma_us);
    us = std::clamp(us, params_.min_us, params_.max_us);
    lock_done_ = now + static_cast<Tick>(us * kPsPerUs);
    ++relocks_;
    return lock_done_;
}

} // namespace gals
