/**
 * @file
 * Inter-domain synchronization timing (Sjogren & Myers, as modeled by
 * the MCD simulator): data produced at time t in one domain becomes
 * visible in a consumer domain at the first consumer edge after t —
 * plus one additional consumer cycle whenever the producing time and
 * that consumer edge are within 30% of the faster clock's period
 * (the synchronizer cannot guarantee a stable sample).
 */

#ifndef GALS_CLOCK_SYNCHRONIZER_HH
#define GALS_CLOCK_SYNCHRONIZER_HH

#include <algorithm>

#include "clock/clock.hh"
#include "common/types.hh"

namespace gals
{

/** Fraction of the faster period within which an extra cycle is paid. */
constexpr double kSyncGuardFraction = 0.30;

/**
 * Earliest consumer-domain edge at which data produced at
 * `produced_at` can be consumed.
 *
 * @param produced_at time the producer latched the data.
 * @param producer    producing domain's clock.
 * @param consumer    consuming domain's clock.
 * @param same_domain true when producer and consumer share a clock
 *                    (fully synchronous mode or intra-domain queues);
 *                    then only the next-edge latch applies.
 */
inline Tick
syncVisibleAt(Tick produced_at, const Clock &producer,
              const Clock &consumer, bool same_domain)
{
    Tick edge = consumer.nextEdgeAfter(produced_at);
    Tick margin = consumer.period() / 4;
    if (same_domain)
        return edge - std::min(margin, edge);

    Tick faster = std::min(producer.period(), consumer.period());
    Tick guard = static_cast<Tick>(kSyncGuardFraction *
                                   static_cast<double>(faster));
    if (edge - produced_at < guard)
        edge += consumer.period();
    // Report visibility a quarter period before the edge: consumer
    // edges carry bounded jitter, and an edge arriving a few ps
    // before the nominal grid must still be able to consume the data
    // (otherwise every such wobble costs a spurious full cycle).
    return edge - std::min(margin, edge);
}

/**
 * Visibility of a value bypassed within one clock domain: usable at
 * the first consumer edge at or after production, reported a quarter
 * period early to absorb bounded edge jitter (the anti-wobble margin).
 *
 * The margin never rewinds past the previous consumer edge; in
 * particular an early first edge (edge < period) reports the edge
 * itself rather than tick 0, which would have made the value
 * consumable a full cycle before it was produced.
 */
inline Tick
bypassVisibleAt(Tick produced, const Clock &consumer)
{
    if (produced == 0)
        return 0;
    Tick edge = consumer.nextEdgeAfter(produced - 1);
    Tick margin = consumer.period() / 4;
    // Clamp the rewind at the previous edge: an edge earlier than one
    // period has no predecessor, so it gets no margin at all instead
    // of collapsing to tick 0.
    Tick prev = edge >= consumer.period() ? edge - consumer.period()
                                          : edge;
    return edge - std::min(margin, edge - prev);
}

} // namespace gals

#endif // GALS_CLOCK_SYNCHRONIZER_HH
