/**
 * @file
 * Inter-domain synchronization timing (Sjogren & Myers, as modeled by
 * the MCD simulator): data produced at time t in one domain becomes
 * visible in a consumer domain at the first consumer edge after t —
 * plus one additional consumer cycle whenever the producing time and
 * that consumer edge are within 30% of the faster clock's period
 * (the synchronizer cannot guarantee a stable sample).
 */

#ifndef GALS_CLOCK_SYNCHRONIZER_HH
#define GALS_CLOCK_SYNCHRONIZER_HH

#include "clock/clock.hh"
#include "common/types.hh"

namespace gals
{

/** Fraction of the faster period within which an extra cycle is paid. */
constexpr double kSyncGuardFraction = 0.30;

/**
 * Earliest consumer-domain edge at which data produced at
 * `produced_at` can be consumed.
 *
 * @param produced_at time the producer latched the data.
 * @param producer    producing domain's clock.
 * @param consumer    consuming domain's clock.
 * @param same_domain true when producer and consumer share a clock
 *                    (fully synchronous mode or intra-domain queues);
 *                    then only the next-edge latch applies.
 */
Tick syncVisibleAt(Tick produced_at, const Clock &producer,
                   const Clock &consumer, bool same_domain);

} // namespace gals

#endif // GALS_CLOCK_SYNCHRONIZER_HH
