/**
 * @file
 * PLL re-lock model for dynamic frequency changes.
 *
 * Per the paper (following the XScale clocking circuits): a frequency
 * change requires the PLL to re-lock for a normally distributed time
 * with mean 15us, clamped to 10-20us, and the domain keeps operating
 * through the change. Structure resizing is ordered against the lock
 * window by the caller: downsize at lock start when speeding up,
 * upsize at lock end when slowing down.
 */

#ifndef GALS_CLOCK_PLL_HH
#define GALS_CLOCK_PLL_HH

#include "common/random.hh"
#include "common/types.hh"

namespace gals
{

/** Parameters of the PLL lock-time distribution. */
struct PllParams
{
    double mean_us = 15.0;  //!< mean lock time.
    double sigma_us = 1.7;  //!< standard deviation.
    double min_us = 10.0;   //!< lower clamp.
    double max_us = 20.0;   //!< upper clamp.
};

/** Lock-time generator and busy state for one domain's PLL. */
class Pll
{
  public:
    explicit Pll(const PllParams &params = {}, std::uint64_t seed = 7);

    /** True while a re-lock is in flight at time `now`. */
    bool busy(Tick now) const { return now < lock_done_; }

    /** Completion time of the current (or last) re-lock. */
    Tick lockDone() const { return lock_done_; }

    /**
     * Begin a re-lock at `now`; returns its completion time. Must not
     * be called while busy.
     */
    Tick startRelock(Tick now);

    /** Number of re-locks performed. */
    std::uint64_t relocks() const { return relocks_; }

  private:
    PllParams params_;
    Pcg32 rng_;
    Tick lock_done_ = 0;
    std::uint64_t relocks_ = 0;
};

} // namespace gals

#endif // GALS_CLOCK_PLL_HH
