/**
 * @file
 * A bounded FIFO crossing a clock-domain boundary.
 *
 * Entries carry the absolute time at which they become visible to the
 * consumer (computed with syncVisibleAt at push time). The consumer
 * pops entries only at edges at or after their visibility time, in
 * order. Branch flushes squash entries by predicate.
 *
 * Capacity is fixed at construction, so storage is a flat ring: no
 * per-push allocation and O(1) head access with plain index
 * arithmetic (unlike std::deque's block map).
 */

#ifndef GALS_CLOCK_SYNC_FIFO_HH
#define GALS_CLOCK_SYNC_FIFO_HH

#include <utility>

#include "common/arena.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace gals
{

/** Bounded cross-domain FIFO with per-entry visibility times. */
template <typename T>
class SyncFifo
{
  public:
    explicit SyncFifo(size_t capacity)
        : capacity_(capacity), slots_(capacity)
    {}

    /** True when another entry can be accepted. */
    bool canPush() const { return count_ < capacity_; }

    /** Entries that can still be accepted (batched producers hoist
     * this once and count down locally). */
    size_t freeSlots() const { return capacity_ - count_; }

    /** Number of queued entries (visible or not). */
    size_t size() const { return count_; }

    bool empty() const { return count_ == 0; }

    size_t capacity() const { return capacity_; }

    /** Enqueue an entry that becomes consumable at `visible_at`. */
    void
    push(T value, Tick visible_at)
    {
        GALS_ASSERT(canPush(), "push into full SyncFifo");
        slots_[wrap(head_ + count_)] =
            Entry{visible_at, std::move(value)};
        ++count_;
    }

    /** True when the head entry exists and is visible at `now`. */
    bool
    frontReady(Tick now) const
    {
        return count_ != 0 && slots_[head_].visible_at <= now;
    }

    /** Head entry; only valid when !empty(). */
    T &front() { return slots_[head_].value; }
    const T &front() const { return slots_[head_].value; }

    /**
     * Visibility time of the head entry (the only gate the consumer
     * waits on; later entries cannot be consumed before it). Only
     * valid when !empty(). Used by the event kernel to compute how
     * long the consuming domain may sleep.
     */
    Tick frontVisibleAt() const { return slots_[head_].visible_at; }

    /** Remove the head entry. */
    void
    pop()
    {
        GALS_ASSERT(count_ != 0, "pop from empty SyncFifo");
        head_ = wrap(head_ + 1);
        --count_;
    }

    /** Remove every entry matching the predicate (branch squash). */
    template <typename Pred>
    size_t
    squash(Pred pred)
    {
        size_t removed = 0;
        size_t write = head_;
        size_t n = count_;
        for (size_t i = 0; i < n; ++i) {
            size_t read = wrap(head_ + i);
            if (pred(slots_[read].value)) {
                ++removed;
                continue;
            }
            if (write != read)
                slots_[write] = std::move(slots_[read]);
            write = wrap(write + 1);
        }
        count_ -= removed;
        return removed;
    }

    /** Drop everything. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    struct Entry
    {
        Tick visible_at = 0;
        T value{};
    };

    size_t
    wrap(size_t pos) const
    {
        return pos >= capacity_ ? pos - capacity_ : pos;
    }

    size_t capacity_;
    ArenaVector<Entry> slots_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace gals

#endif // GALS_CLOCK_SYNC_FIFO_HH
