/**
 * @file
 * A bounded FIFO crossing a clock-domain boundary.
 *
 * Entries carry the absolute time at which they become visible to the
 * consumer (computed with syncVisibleAt at push time). The consumer
 * pops entries only at edges at or after their visibility time, in
 * order. Branch flushes squash entries by predicate.
 */

#ifndef GALS_CLOCK_SYNC_FIFO_HH
#define GALS_CLOCK_SYNC_FIFO_HH

#include <deque>

#include "common/logging.hh"
#include "common/types.hh"

namespace gals
{

/** Bounded cross-domain FIFO with per-entry visibility times. */
template <typename T>
class SyncFifo
{
  public:
    explicit SyncFifo(size_t capacity) : capacity_(capacity) {}

    /** True when another entry can be accepted. */
    bool canPush() const { return entries_.size() < capacity_; }

    /** Number of queued entries (visible or not). */
    size_t size() const { return entries_.size(); }

    bool empty() const { return entries_.empty(); }

    size_t capacity() const { return capacity_; }

    /** Enqueue an entry that becomes consumable at `visible_at`. */
    void
    push(T value, Tick visible_at)
    {
        GALS_ASSERT(canPush(), "push into full SyncFifo");
        entries_.push_back(Entry{visible_at, std::move(value)});
    }

    /** True when the head entry exists and is visible at `now`. */
    bool
    frontReady(Tick now) const
    {
        return !entries_.empty() && entries_.front().visible_at <= now;
    }

    /** Head entry; only valid when frontReady(). */
    T &front() { return entries_.front().value; }
    const T &front() const { return entries_.front().value; }

    /** Remove the head entry. */
    void
    pop()
    {
        GALS_ASSERT(!entries_.empty(), "pop from empty SyncFifo");
        entries_.pop_front();
    }

    /** Remove every entry matching the predicate (branch squash). */
    template <typename Pred>
    size_t
    squash(Pred pred)
    {
        size_t removed = 0;
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (pred(it->value)) {
                it = entries_.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
        return removed;
    }

    /** Drop everything. */
    void clear() { entries_.clear(); }

  private:
    struct Entry
    {
        Tick visible_at;
        T value;
    };

    size_t capacity_;
    std::deque<Entry> entries_;
};

} // namespace gals

#endif // GALS_CLOCK_SYNC_FIFO_HH
