#include "clock/clock.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gals
{

Clock::Clock(Tick period_ps, Tick first_edge, double jitter_sigma_ps,
             std::uint64_t seed)
    : period_ps_(period_ps), nominal_next_(first_edge),
      next_edge_(first_edge), jitter_sigma_ps_(jitter_sigma_ps),
      rng_(seed, 0x9e3779b97f4a7c15ULL)
{
    GALS_ASSERT(period_ps > 0, "clock period must be positive");
}

void
Clock::applyJitter()
{
    double j = rng_.nextGaussian(0.0, jitter_sigma_ps_);
    double limit = 0.1 * static_cast<double>(period_ps_);
    j = std::clamp(j, -limit, limit);
    auto offset = static_cast<std::int64_t>(j >= 0 ? j + 0.5
                                                   : j - 0.5);
    if (offset < 0 && static_cast<Tick>(-offset) > nominal_next_)
        offset = 0;
    next_edge_ = static_cast<Tick>(
        static_cast<std::int64_t>(nominal_next_) + offset);
}

void
Clock::advanceWhileBelow(Tick t)
{
    while (next_edge_ < t) {
        if (pending_period_ != 0 && nominal_next_ >= pending_when_) {
            // The pending change lands on this edge. Jitter can
            // deliver the landing edge *below* the caller's skip
            // target even though its nominal position is at/after
            // the change-due time the wake bounds were clamped to —
            // so the landing is not skippable: it must be consumed
            // by a real scheduler step (which broadcasts the epoch
            // bump). Stop and leave it pending.
            return;
        }
        if (jitter_sigma_ps_ == 0.0 && pending_period_ == 0) {
            // Clean grid: every skipped edge is one period apart, so
            // the whole stretch collapses to one jump. nominal_next_
            // < t here, so delta >= 0 and k >= 1.
            Tick delta = t - 1 - nominal_next_;
            Tick k = delta / period_ps_ + 1;
            cycle_ += k;
            nominal_next_ += k * period_ps_;
            next_edge_ = nominal_next_;
            return;
        }
        // Jitter draws must happen exactly as they would have
        // without skipping.
        advance();
    }
}

void
Clock::setPeriod(Tick new_period_ps, Tick when)
{
    GALS_ASSERT(new_period_ps > 0, "clock period must be positive");
    if (new_period_ps == period_ps_ && pending_period_ == 0)
        return;
    pending_period_ = new_period_ps;
    pending_when_ = when;
}

} // namespace gals
