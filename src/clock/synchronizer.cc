#include "clock/synchronizer.hh"

#include <algorithm>

namespace gals
{

Tick
syncVisibleAt(Tick produced_at, const Clock &producer,
              const Clock &consumer, bool same_domain)
{
    Tick edge = consumer.nextEdgeAfter(produced_at);
    Tick margin = consumer.period() / 4;
    if (same_domain)
        return edge - std::min(margin, edge);

    Tick faster = std::min(producer.period(), consumer.period());
    Tick guard = static_cast<Tick>(kSyncGuardFraction *
                                   static_cast<double>(faster));
    if (edge - produced_at < guard)
        edge += consumer.period();
    // Report visibility a quarter period before the edge: consumer
    // edges carry bounded jitter, and an edge arriving a few ps
    // before the nominal grid must still be able to consume the data
    // (otherwise every such wobble costs a spurious full cycle).
    return edge - std::min(margin, edge);
}

} // namespace gals
