#include "obs/metrics.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace gals
{

namespace obs
{

MetricsRegistry &
MetricsRegistry::instance()
{
    // Intentionally immortal (never destroyed): the tracer's at-exit
    // exporter publishes obs.trace.* counters here, and atexit/static
    // destructor interleaving would otherwise let that write land in
    // a destroyed registry.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

void
MetricsRegistry::add(std::string_view name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end())
        it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.is_double = false;
    it->second.u += delta;
}

void
MetricsRegistry::set(std::string_view name, std::uint64_t value)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end())
        it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.is_double = false;
    it->second.u = value;
}

void
MetricsRegistry::setDouble(std::string_view name, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end())
        it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.is_double = true;
    it->second.d = value;
}

std::uint64_t
MetricsRegistry::value(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end())
        return 0;
    return it->second.is_double
               ? static_cast<std::uint64_t>(it->second.d)
               : it->second.u;
}

bool
MetricsRegistry::has(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_.find(name) != metrics_.end();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.clear();
}

std::string
MetricsRegistry::json() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\n  \"schema\": \"gals-metrics-v1\",\n"
                      "  \"metrics\": {\n";
    bool first = true;
    for (const auto &[name, e] : metrics_) {
        if (!first)
            out += ",\n";
        first = false;
        if (e.is_double) {
            out += csprintf("    \"%s\": %.6g", name.c_str(), e.d);
        } else {
            out += csprintf("    \"%s\": %llu", name.c_str(),
                            static_cast<unsigned long long>(e.u));
        }
    }
    out += "\n  }\n}\n";
    return out;
}

bool
MetricsRegistry::writeTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write metrics '%s'", path.c_str());
        return false;
    }
    const std::string doc = json();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    if (std::fclose(f) != 0 || !ok) {
        warn("cannot write metrics '%s'", path.c_str());
        return false;
    }
    return true;
}

void
MetricsRegistry::configureFromEnv()
{
    const char *env = std::getenv("GALS_METRICS");
    if (env == nullptr || *env == '\0') {
        exit_path_.clear();
        return;
    }
    // Probe now so a mistyped path warns at startup, not silently at
    // exit (the threadCountFromEnv logged-fallback contract).
    std::FILE *f = std::fopen(env, "w");
    if (f == nullptr) {
        warn("GALS_METRICS path '%s' is not writable; metrics "
             "output disabled",
             env);
        return;
    }
    std::fclose(f);
    exit_path_ = env;
    if (!exit_hook_registered_) {
        exit_hook_registered_ = true;
        std::atexit([]() {
            MetricsRegistry &m = MetricsRegistry::instance();
            if (!m.exitPath().empty())
                m.writeTo(m.exitPath());
        });
    }
}

} // namespace obs

} // namespace gals
