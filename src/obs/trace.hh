/**
 * @file
 * Deterministic dual-lane event tracer (docs/observability.md).
 *
 * Two clock lanes:
 *  - the *simulated* lane, timestamped in picosecond ticks: domain
 *    step spans, PLL relocks and epoch bumps, reconfiguration
 *    decisions, coherence invalidation/delivery messages, L2 bank
 *    conflicts and fills, and parallel-round horizon boundaries;
 *  - the *host* lane, timestamped in nanoseconds of wall time since
 *    the tracer was armed: per-worker round and barrier-wait spans,
 *    interconnect gate-spin time, and work-stealing claims.
 *
 * Events land in per-track append buffers — one track per (core,
 * domain) plus a chip-level track in the simulated lane, two per
 * worker in the host lane — and are exported as Chrome trace-event
 * JSON loadable in Perfetto / chrome://tracing.
 *
 * The tracer is strictly observation-only. It is off by default and
 * armed by `GALS_TRACE=<path>` (the result-store opt-in pattern:
 * an unusable path degrades to one warn() and tracing stays
 * disabled, never a crash) or `--trace-out`. When disabled, the only
 * cost on any hot path is the single `obs::tracing()` branch — a
 * thread-local bool that is false everywhere. When enabled, every
 * record call appends to a buffer and touches no simulated state, no
 * RNG stream and no timing decision, so traced runs are bit-identical
 * to untraced runs (tests/test_obs.cc pins this differentially).
 *
 * Publication-order contract: every track's timestamps are
 * nondecreasing in record order, asserted at record time (the same
 * spirit as the port layer's publication-order tripwires). The
 * instrumentation sites guarantee it structurally — each simulated
 * track is written only from its own core's steps (worker-exclusive
 * within a parallel round, rounds ordered by the barrier) or from
 * single-threaded round boundaries, and each host track is written
 * only by its own worker.
 */

#ifndef GALS_OBS_TRACE_HH
#define GALS_OBS_TRACE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gals
{

namespace obs
{

/** One worker slot per supported core (mirrors kMaxChipWorkers /
 * kMaxCores in sim/parallel.hh and core/ports.hh; static_asserts in
 * trace.cc keep them in step without an include cycle). */
constexpr int kTraceMaxWorkers = 16;

/** Traced-run cap: a process tracing more runs than this (a sweep
 * under GALS_TRACE) keeps the first kTraceMaxRuns and counts the
 * rest as skipped, reported in the export's otherData. */
constexpr int kTraceMaxRuns = 16;

/** Per-track event cap; overflow increments the track's drop
 * counter (early events — the first invalidation, the first
 * reconfiguration — always survive). */
constexpr std::size_t kTraceMaxEventsPerTrack = std::size_t{1} << 18;

/** Event taxonomy, both lanes (docs/observability.md lists the
 * emitted name, category, and argument schema of each). */
enum class Ev : std::uint8_t
{
    // Simulated lane.
    DomainRun,      //!< merged busy span of consecutive domain steps
    EpochBump,      //!< a period change landed (grid epoch broadcast)
    PllRelock,      //!< reconfig started a PLL relock window
    Reconfig,       //!< accepted structure-change decision
    CohInvalidate,  //!< invalidation published to a remote sharer
    CohDeliver,     //!< invalidations delivered into an L1D
    OwnershipWait,  //!< read delayed to an ownership-transfer settle
    BankConflict,   //!< request delayed behind another core's bank use
    MshrWait,       //!< miss waited for a bank fill slot
    L2Fill,         //!< miss issued a memory fill
    FillMerge,      //!< hit merged with another core's in-flight fill
    Round,          //!< parallel-round window boundary (chip track)
    // Host lane.
    WorkerRound,    //!< worker span from claim phase to barrier arrive
    BarrierWait,    //!< worker span from barrier arrive to release
    GateSpin,       //!< interconnect gate spin-wait span
    StealClaim,     //!< worker claimed a core off the round worklist
};

/** One recorded event. `ts`/`dur` are picoseconds on the simulated
 * lane and host nanoseconds on the host lane; dur == 0 is an
 * instant. */
struct TraceRecord
{
    Tick ts = 0;
    Tick dur = 0;
    Ev kind = Ev::DomainRun;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

namespace detail
{

/** True while the calling thread belongs to the traced run. This is
 * the single branch every instrumentation site pays when tracing is
 * off (and for every thread outside the traced run when it is on). */
extern thread_local bool t_recording;

} // namespace detail

/** The hot-path check: false for every thread unless the process
 * tracer is armed AND this thread is executing the traced run. */
inline bool
tracing()
{
    return detail::t_recording;
}

class Tracer
{
  public:
    static Tracer &instance();

    /**
     * Arm the tracer on `path` (the export target). The strict
     * logged-fallback contract of threadCountFromEnv: an unusable
     * path (empty, unwritable, missing directory) leaves tracing
     * disabled after one warn() and never crashes. Returns enabled().
     */
    bool configure(const std::string &path);

    /** Re-read GALS_TRACE and configure from it (tests). Unset or
     * empty disables silently; an unusable path warns, see above. */
    bool configureFromEnv();

    /** Disarm and drop all recorded runs (tests). */
    void disable();

    bool enabled() const { return enabled_; }
    const std::string &path() const { return path_; }

    // ------------------------------------------------------------------
    // Run lifecycle.
    // ------------------------------------------------------------------

    /**
     * Claim the tracer for one run of `ncores` cores and mark the
     * calling thread as recording. Returns false (run untraced) when
     * the tracer is disabled, another run currently holds it, or the
     * run cap is reached. The caller must pass a true return to
     * endRun() when the run completes.
     */
    bool beginRun(const char *label, int ncores);

    /** Record the parallel worker count of the current run. */
    void setRunWorkers(int nworkers);

    /** Release the claim taken by a successful beginRun(). */
    void endRun();

    /** Join (true) or leave (false) the traced run from a chip
     * worker thread. Purely a thread-local flag flip; the spawn and
     * join edges of the worker pool order it against beginRun. */
    static void adoptThread(bool on);

    // ------------------------------------------------------------------
    // Simulated lane (timestamps in picosecond ticks). Callers must
    // check obs::tracing() first; these also no-op defensively.
    // ------------------------------------------------------------------

    /** A domain step at `edge` on global domain `gd`: merged into
     * the previous DomainRun span when contiguous, so sleep shows as
     * gaps between spans. */
    void domainStep(int gd, Tick edge, Tick period);

    /** An instant on global domain `gd`'s track. */
    void sim(int gd, Ev kind, Tick ts, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0);

    /** An instant on the chip-level track (round boundaries); only
     * ever called single-threaded. */
    void chip(Ev kind, Tick ts, std::uint64_t a0 = 0);

    // ------------------------------------------------------------------
    // Host lane (timestamps in nanoseconds from hostNow()).
    // ------------------------------------------------------------------

    /** Monotonic host nanoseconds since the tracer was armed. */
    std::uint64_t hostNow() const;

    /** CPU nanoseconds consumed by the calling thread. */
    static std::uint64_t hostThreadCpuNs();

    /** Span on worker `w`'s main track (rounds, barrier waits). */
    void hostSpan(int w, Ev kind, std::uint64_t begin,
                  std::uint64_t end, std::uint64_t a0 = 0,
                  std::uint64_t a1 = 0);

    /** Span on worker `w`'s waits track (gate spins). */
    void hostWaitSpan(int w, Ev kind, std::uint64_t begin,
                      std::uint64_t end, std::uint64_t a0 = 0);

    /** Instant on worker `w`'s waits track (steal claims). */
    void hostWait(int w, Ev kind, std::uint64_t ts,
                  std::uint64_t a0 = 0);

    // ------------------------------------------------------------------
    // Export and introspection.
    // ------------------------------------------------------------------

    /** Write Chrome trace-event JSON to the configured path. Returns
     * false (after a warn) when the file cannot be written. */
    bool write() const;

    /** Same, to an explicit path. */
    bool writeTo(const std::string &path) const;

    /** Drop every recorded run, keep the armed/disarmed state. */
    void reset();

    /** Flat view of one track for tests. */
    struct TrackView
    {
        std::string name;    //!< e.g. "core0/ls", "chip", "worker1"
        int run = 0;         //!< run index within the process
        bool host = false;   //!< host lane?
        const std::vector<TraceRecord> *events = nullptr;
    };
    /** Every non-empty track of every recorded run. Call only while
     * no traced run is in flight. */
    std::vector<TrackView> trackViews() const;

    std::uint64_t runsRecorded() const { return runs_.size(); }
    std::uint64_t runsSkipped() const { return skipped_runs_; }
    std::uint64_t eventsRecorded() const;
    std::uint64_t eventsDropped() const;

  private:
    Tracer() = default;

    struct Track
    {
        std::vector<TraceRecord> events;
        Tick last_ts = 0;
        std::uint64_t dropped = 0;
    };

    struct RunTrace
    {
        std::string label;
        int ncores = 0;
        int nworkers = 0;
        /** ncores * kNumDomains domain tracks + one chip track. */
        std::vector<Track> sim;
        /** Two tracks per worker: [2w] rounds/barriers, [2w+1]
         * gate spins and steal claims. */
        std::array<Track, 2 * kTraceMaxWorkers> host;
    };

    void record(Track &t, Ev kind, Tick ts, Tick dur,
                std::uint64_t a0, std::uint64_t a1);

    bool enabled_ = false;
    std::string path_;
    bool exit_hook_registered_ = false;
    std::vector<std::unique_ptr<RunTrace>> runs_;
    RunTrace *cur_ = nullptr;
    std::atomic<bool> run_active_{false};
    std::uint64_t skipped_runs_ = 0;
    std::uint64_t host_epoch_ns_ = 0;
};

/**
 * One-time process observability init: arms the tracer from
 * GALS_TRACE and the metrics registry from GALS_METRICS (both with
 * the logged-fallback contract) and registers the at-exit exporters.
 * Called from every run entry point; after the first call it is a
 * single atomic load.
 */
void ensureInitFromEnv();

} // namespace obs

} // namespace gals

#endif // GALS_OBS_TRACE_HH
