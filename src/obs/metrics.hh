/**
 * @file
 * Process-wide metrics registry: named counters and gauges that
 * units publish into, serialized as one deterministic JSON document
 * (docs/observability.md). This is the machine-readable telemetry
 * surface — the result store's stderr stats line and the chip's
 * worker_claims / parallel_rounds telemetry all fold into it — while
 * human-facing stderr lines stay as they are.
 *
 * Opt-in output: `GALS_METRICS=<path>` writes the registry at
 * process exit; `sweep_cli --metrics-out FILE` writes it explicitly.
 * Publishing into the registry is always allowed (cheap: one mutex
 * and a map touch, far off every simulated hot path) and perturbs no
 * simulated state, so traced/metered runs stay bit-identical.
 */

#ifndef GALS_OBS_METRICS_HH
#define GALS_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace gals
{

namespace obs
{

class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Bump counter `name` by `delta` (created at 0). */
    void add(std::string_view name, std::uint64_t delta);

    /** Set gauge `name` to an absolute integer value. */
    void set(std::string_view name, std::uint64_t value);

    /** Set gauge `name` to an absolute floating-point value. */
    void setDouble(std::string_view name, double value);

    /** Current value of an integer metric (0 when absent; tests). */
    std::uint64_t value(std::string_view name) const;

    /** True when `name` has been published (tests). */
    bool has(std::string_view name) const;

    /** Drop every metric (tests). */
    void clear();

    /** Deterministic JSON document: metrics sorted by name. */
    std::string json() const;

    /**
     * Write json() to `path`. The strict logged-fallback contract:
     * an unwritable path costs one warn() and returns false, never
     * a crash.
     */
    bool writeTo(const std::string &path) const;

    /** Read GALS_METRICS and register the at-exit writer on its
     * path (unusable path: one warn(), no writer). Idempotent per
     * distinct configuration; ensureInitFromEnv() is the caller. */
    void configureFromEnv();

    const std::string &exitPath() const { return exit_path_; }

  private:
    MetricsRegistry() = default;

    struct Entry
    {
        bool is_double = false;
        std::uint64_t u = 0;
        double d = 0.0;
    };

    mutable std::mutex mu_;
    std::map<std::string, Entry, std::less<>> metrics_;
    std::string exit_path_;
    bool exit_hook_registered_ = false;
};

} // namespace obs

} // namespace gals

#endif // GALS_OBS_METRICS_HH
