#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "common/logging.hh"
#include "control/reconfig_trace.hh"
#include "core/ports.hh"
#include "obs/metrics.hh"
#include "sim/parallel.hh"

namespace gals
{

namespace obs
{

// The obs layer redeclares the worker/core ceilings to stay
// include-acyclic under the port and parallel layers; these keep the
// copies honest.
static_assert(kTraceMaxWorkers ==
                  static_cast<int>(kMaxChipWorkers),
              "tracer worker ceiling out of step with the chip pool");
static_assert(kTraceMaxWorkers >= kMaxCores,
              "tracer worker ceiling below the supported core count");

namespace detail
{

thread_local bool t_recording = false;

} // namespace detail

namespace
{

/** Core-local domain track suffixes, DomainId order. */
const char *const kDomainSuffix[kNumDomains] = {"fe", "int", "fp",
                                                "ls"};

struct EvInfo
{
    const char *name;
    const char *cat;
};

const EvInfo &
evInfo(Ev kind)
{
    static const EvInfo table[] = {
        {"run", "domain"},              // DomainRun
        {"epoch_bump", "clock"},        // EpochBump
        {"pll_relock", "clock"},        // PllRelock
        {"reconfig", "reconfig"},       // Reconfig
        {"coh_invalidate", "coherence"}, // CohInvalidate
        {"coh_deliver", "coherence"},   // CohDeliver
        {"ownership_wait", "coherence"}, // OwnershipWait
        {"bank_conflict", "l2"},        // BankConflict
        {"mshr_wait", "l2"},            // MshrWait
        {"l2_fill", "l2"},              // L2Fill
        {"fill_merge", "l2"},           // FillMerge
        {"round", "chip"},              // Round
        {"worker_round", "host"},       // WorkerRound
        {"barrier_wait", "host"},       // BarrierWait
        {"gate_spin", "host"},          // GateSpin
        {"steal_claim", "host"},        // StealClaim
    };
    return table[static_cast<size_t>(kind)];
}

/** Event-specific argument JSON ("{}" when none apply). */
std::string
evArgs(const TraceRecord &e)
{
    switch (e.kind) {
      case Ev::DomainRun:
        return csprintf("{\"steps\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::EpochBump:
        return csprintf("{\"period_ps\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::PllRelock:
        return csprintf("{\"lock_ps\": %llu, \"domain\": %llu}",
                        static_cast<unsigned long long>(e.a0),
                        static_cast<unsigned long long>(e.a1));
      case Ev::Reconfig:
        return csprintf("{\"structure\": \"%s\", \"from\": %llu, "
                        "\"to\": %llu}",
                        structureName(
                            static_cast<Structure>(e.a0)),
                        static_cast<unsigned long long>(e.a1 >> 8),
                        static_cast<unsigned long long>(e.a1 & 0xff));
      case Ev::CohInvalidate:
        return csprintf("{\"target_core\": %llu, \"line\": %llu}",
                        static_cast<unsigned long long>(e.a0),
                        static_cast<unsigned long long>(e.a1));
      case Ev::CohDeliver:
        return csprintf("{\"count\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::OwnershipWait:
        return csprintf("{\"settle_ps\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::BankConflict:
      case Ev::MshrWait:
      case Ev::FillMerge:
        return csprintf("{\"bank\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::L2Fill:
        return csprintf("{\"bank\": %llu, \"done_ps\": %llu}",
                        static_cast<unsigned long long>(e.a0),
                        static_cast<unsigned long long>(e.a1));
      case Ev::Round:
        return csprintf("{\"horizon_ps\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::WorkerRound:
        return csprintf("{\"claims\": %llu, \"cpu_ns\": %llu}",
                        static_cast<unsigned long long>(e.a0),
                        static_cast<unsigned long long>(e.a1));
      case Ev::GateSpin:
        return csprintf("{\"spins\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::StealClaim:
        return csprintf("{\"core\": %llu}",
                        static_cast<unsigned long long>(e.a0));
      case Ev::BarrierWait:
        break;
    }
    return "{}";
}

void
emitMeta(std::FILE *f, bool &first, int pid, int tid,
         const char *what, const std::string &name)
{
    std::fprintf(f,
                 "%s    {\"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                 "\"name\": \"%s\", \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", pid, tid, what, name.c_str());
    first = false;
}

void
emitEvent(std::FILE *f, bool &first, int pid, int tid,
          const TraceRecord &e, bool host)
{
    // Simulated ticks are ps, host stamps are ns; Chrome trace ts is
    // microseconds. Both conversions are exact in decimal text.
    const double scale = host ? 1e-3 : 1e-6;
    const int prec = host ? 3 : 6;
    const EvInfo &info = evInfo(e.kind);
    const std::string args = evArgs(e);
    if (e.dur > 0) {
        std::fprintf(f,
                     "%s    {\"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
                     "\"name\": \"%s\", \"cat\": \"%s\", "
                     "\"ts\": %.*f, \"dur\": %.*f, \"args\": %s}",
                     first ? "" : ",\n", pid, tid, info.name,
                     info.cat, prec,
                     static_cast<double>(e.ts) * scale, prec,
                     static_cast<double>(e.dur) * scale,
                     args.c_str());
    } else {
        std::fprintf(f,
                     "%s    {\"ph\": \"i\", \"pid\": %d, \"tid\": %d, "
                     "\"name\": \"%s\", \"cat\": \"%s\", "
                     "\"ts\": %.*f, \"s\": \"t\", \"args\": %s}",
                     first ? "" : ",\n", pid, tid, info.name,
                     info.cat, prec,
                     static_cast<double>(e.ts) * scale,
                     args.c_str());
    }
    first = false;
}

std::string
simTrackName(int gd, int ndomaintracks)
{
    if (gd == ndomaintracks)
        return "chip";
    return csprintf("core%d/%s", gd / kNumDomains,
                    kDomainSuffix[gd % kNumDomains]);
}

std::string
hostTrackName(int slot)
{
    const int w = slot / 2;
    return (slot & 1) ? csprintf("worker%d/waits", w)
                      : csprintf("worker%d", w);
}

std::once_flag g_env_init_once;

} // namespace

Tracer &
Tracer::instance()
{
    // Intentionally immortal (never destroyed): the at-exit exporter
    // and late worker-thread teardown may touch the tracer after
    // static destruction would have run.
    static Tracer *tracer = new Tracer;
    return *tracer;
}

bool
Tracer::configure(const std::string &path)
{
    // Reconfiguration drops prior state; the previous path's runs do
    // not leak into the new export target.
    reset();
    enabled_ = false;
    path_.clear();
    if (path.empty()) {
        warn("GALS_TRACE is empty; tracing disabled");
        return false;
    }
    // Probe the path now (the export happens at process exit, far
    // from whoever mistyped the option): an unusable target costs
    // one warning up front and tracing stays off.
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("trace path '%s' is not writable; tracing disabled",
             path.c_str());
        return false;
    }
    std::fclose(f);
    path_ = path;
    enabled_ = true;
    host_epoch_ns_ = 0;
    host_epoch_ns_ = hostNow();
    if (!exit_hook_registered_) {
        exit_hook_registered_ = true;
        std::atexit([]() {
            Tracer &t = Tracer::instance();
            if (t.enabled())
                t.write();
        });
    }
    return true;
}

bool
Tracer::configureFromEnv()
{
    const char *env = std::getenv("GALS_TRACE");
    if (env == nullptr || *env == '\0') {
        disable();
        return false;
    }
    return configure(env);
}

void
Tracer::disable()
{
    reset();
    enabled_ = false;
    path_.clear();
}

bool
Tracer::beginRun(const char *label, int ncores)
{
    if (!enabled_)
        return false;
    bool expected = false;
    if (!run_active_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        // Another run (a concurrent sweep worker) holds the tracer:
        // this run proceeds untraced.
        ++skipped_runs_;
        return false;
    }
    if (runs_.size() >= kTraceMaxRuns) {
        run_active_.store(false, std::memory_order_release);
        ++skipped_runs_;
        return false;
    }
    auto rt = std::make_unique<RunTrace>();
    rt->label = label;
    rt->ncores = ncores;
    rt->sim.resize(static_cast<size_t>(ncores) * kNumDomains + 1);
    cur_ = rt.get();
    runs_.push_back(std::move(rt));
    detail::t_recording = true;
    return true;
}

void
Tracer::setRunWorkers(int nworkers)
{
    if (cur_ != nullptr)
        cur_->nworkers = nworkers;
}

void
Tracer::endRun()
{
    detail::t_recording = false;
    cur_ = nullptr;
    run_active_.store(false, std::memory_order_release);
}

void
Tracer::adoptThread(bool on)
{
    detail::t_recording = on;
}

void
Tracer::record(Track &t, Ev kind, Tick ts, Tick dur, std::uint64_t a0,
               std::uint64_t a1)
{
    // The per-track publication-order tripwire: a timestamp below
    // the track's high-water mark means an event was recorded out of
    // its lane's publication order (tests/test_obs.cc death test).
    GALS_ASSERT(ts >= t.last_ts,
                "trace publication-order violation: event '%s' at "
                "ts=%llu recorded after the track reached ts=%llu",
                evInfo(kind).name,
                static_cast<unsigned long long>(ts),
                static_cast<unsigned long long>(t.last_ts));
    t.last_ts = ts;
    if (t.events.size() >= kTraceMaxEventsPerTrack) {
        ++t.dropped;
        return;
    }
    t.events.push_back(TraceRecord{ts, dur, kind, a0, a1});
}

void
Tracer::domainStep(int gd, Tick edge, Tick period)
{
    RunTrace *rt = cur_;
    if (!detail::t_recording || rt == nullptr)
        return;
    Track &t = rt->sim[static_cast<size_t>(gd)];
    // Contiguous (or overlapping, under jitter wobble) steps merge
    // into one busy span; sleep is the gap between spans.
    if (!t.events.empty()) {
        TraceRecord &last = t.events.back();
        if (last.kind == Ev::DomainRun && edge >= last.ts &&
            edge <= last.ts + last.dur) {
            Tick end = edge + period;
            if (end > last.ts + last.dur)
                last.dur = end - last.ts;
            ++last.a0;
            t.last_ts = edge;
            return;
        }
    }
    record(t, Ev::DomainRun, edge, period, 1, 0);
}

void
Tracer::sim(int gd, Ev kind, Tick ts, std::uint64_t a0,
            std::uint64_t a1)
{
    RunTrace *rt = cur_;
    if (!detail::t_recording || rt == nullptr)
        return;
    record(rt->sim[static_cast<size_t>(gd)], kind, ts, 0, a0, a1);
}

void
Tracer::chip(Ev kind, Tick ts, std::uint64_t a0)
{
    RunTrace *rt = cur_;
    if (!detail::t_recording || rt == nullptr)
        return;
    record(rt->sim.back(), kind, ts, 0, a0, 0);
}

std::uint64_t
Tracer::hostNow() const
{
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
    return ns - host_epoch_ns_;
}

std::uint64_t
Tracer::hostThreadCpuNs()
{
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

void
Tracer::hostSpan(int w, Ev kind, std::uint64_t begin,
                 std::uint64_t end, std::uint64_t a0, std::uint64_t a1)
{
    RunTrace *rt = cur_;
    if (!detail::t_recording || rt == nullptr)
        return;
    record(rt->host[static_cast<size_t>(2 * w)], kind, begin,
           end > begin ? end - begin : 1, a0, a1);
}

void
Tracer::hostWaitSpan(int w, Ev kind, std::uint64_t begin,
                     std::uint64_t end, std::uint64_t a0)
{
    RunTrace *rt = cur_;
    if (!detail::t_recording || rt == nullptr)
        return;
    record(rt->host[static_cast<size_t>(2 * w + 1)], kind, begin,
           end > begin ? end - begin : 1, a0, 0);
}

void
Tracer::hostWait(int w, Ev kind, std::uint64_t ts, std::uint64_t a0)
{
    RunTrace *rt = cur_;
    if (!detail::t_recording || rt == nullptr)
        return;
    record(rt->host[static_cast<size_t>(2 * w + 1)], kind, ts, 0, a0,
           0);
}

bool
Tracer::write() const
{
    return writeTo(path_);
}

bool
Tracer::writeTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write trace '%s'", path.c_str());
        return false;
    }
    const std::uint64_t dropped = eventsDropped();
    if (dropped > 0) {
        warn("trace dropped %llu events past the per-track cap",
             static_cast<unsigned long long>(dropped));
    }
    std::fprintf(f, "{\n  \"displayTimeUnit\": \"ns\",\n");
    std::fprintf(f,
                 "  \"otherData\": {\"schema\": \"gals-trace-v1\", "
                 "\"runs\": %zu, \"skipped_runs\": %llu, "
                 "\"dropped_events\": %llu},\n",
                 runs_.size(),
                 static_cast<unsigned long long>(skipped_runs_),
                 static_cast<unsigned long long>(dropped));
    std::fprintf(f, "  \"traceEvents\": [\n");
    bool first = true;
    for (size_t i = 0; i < runs_.size(); ++i) {
        const RunTrace &rt = *runs_[i];
        const int sim_pid = static_cast<int>(2 * i + 1);
        const int host_pid = static_cast<int>(2 * i + 2);
        const int ndomaintracks =
            static_cast<int>(rt.sim.size()) - 1;
        emitMeta(f, first, sim_pid, 0, "process_name",
                 csprintf("sim run%zu: %s", i, rt.label.c_str()));
        for (int tid = 0; tid < static_cast<int>(rt.sim.size());
             ++tid) {
            if (rt.sim[static_cast<size_t>(tid)].events.empty())
                continue;
            emitMeta(f, first, sim_pid, tid, "thread_name",
                     simTrackName(tid, ndomaintracks));
        }
        bool any_host = false;
        for (size_t s = 0; s < rt.host.size(); ++s) {
            if (rt.host[s].events.empty())
                continue;
            if (!any_host) {
                any_host = true;
                emitMeta(f, first, host_pid, 0, "process_name",
                         csprintf("host run%zu: %s (%d workers)", i,
                                  rt.label.c_str(), rt.nworkers));
            }
            emitMeta(f, first, host_pid, static_cast<int>(s),
                     "thread_name",
                     hostTrackName(static_cast<int>(s)));
        }
        for (int tid = 0; tid < static_cast<int>(rt.sim.size());
             ++tid) {
            for (const TraceRecord &e :
                 rt.sim[static_cast<size_t>(tid)].events) {
                emitEvent(f, first, sim_pid, tid, e, false);
            }
        }
        for (size_t s = 0; s < rt.host.size(); ++s) {
            for (const TraceRecord &e : rt.host[s].events) {
                emitEvent(f, first, host_pid, static_cast<int>(s), e,
                          true);
            }
        }
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (!ok)
        warn("cannot write trace '%s'", path.c_str());
    MetricsRegistry &m = MetricsRegistry::instance();
    m.set("obs.trace.runs", runs_.size());
    m.set("obs.trace.runs_skipped", skipped_runs_);
    m.set("obs.trace.events", eventsRecorded());
    m.set("obs.trace.events_dropped", dropped);
    return ok;
}

void
Tracer::reset()
{
    GALS_ASSERT(!run_active_.load(std::memory_order_acquire),
                "tracer reset while a traced run is in flight");
    runs_.clear();
    cur_ = nullptr;
    skipped_runs_ = 0;
}

std::vector<Tracer::TrackView>
Tracer::trackViews() const
{
    std::vector<TrackView> out;
    for (size_t i = 0; i < runs_.size(); ++i) {
        const RunTrace &rt = *runs_[i];
        const int ndomaintracks =
            static_cast<int>(rt.sim.size()) - 1;
        for (int tid = 0; tid < static_cast<int>(rt.sim.size());
             ++tid) {
            const Track &t = rt.sim[static_cast<size_t>(tid)];
            if (t.events.empty())
                continue;
            out.push_back(TrackView{
                simTrackName(tid, ndomaintracks),
                static_cast<int>(i), false, &t.events});
        }
        for (size_t s = 0; s < rt.host.size(); ++s) {
            if (rt.host[s].events.empty())
                continue;
            out.push_back(TrackView{
                hostTrackName(static_cast<int>(s)),
                static_cast<int>(i), true, &rt.host[s].events});
        }
    }
    return out;
}

std::uint64_t
Tracer::eventsRecorded() const
{
    std::uint64_t n = 0;
    for (const auto &rt : runs_) {
        for (const Track &t : rt->sim)
            n += t.events.size();
        for (const Track &t : rt->host)
            n += t.events.size();
    }
    return n;
}

std::uint64_t
Tracer::eventsDropped() const
{
    std::uint64_t n = 0;
    for (const auto &rt : runs_) {
        for (const Track &t : rt->sim)
            n += t.dropped;
        for (const Track &t : rt->host)
            n += t.dropped;
    }
    return n;
}

void
ensureInitFromEnv()
{
    std::call_once(g_env_init_once, []() {
        const char *env = std::getenv("GALS_TRACE");
        if (env != nullptr && *env != '\0')
            Tracer::instance().configure(env);
        MetricsRegistry::instance().configureFromEnv();
    });
}

} // namespace obs

} // namespace gals
