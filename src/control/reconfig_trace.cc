#include "control/reconfig_trace.hh"

namespace gals
{

const char *
structureName(Structure s)
{
    switch (s) {
      case Structure::ICache:        return "I-cache";
      case Structure::DCachePair:    return "D/L2-cache";
      case Structure::IntIssueQueue: return "int-IQ";
      case Structure::FpIssueQueue:  return "fp-IQ";
    }
    return "unknown";
}

std::vector<ReconfigEvent>
ReconfigTrace::eventsFor(Structure s) const
{
    std::vector<ReconfigEvent> out;
    for (const ReconfigEvent &e : events_) {
        if (e.structure == s)
            out.push_back(e);
    }
    return out;
}

std::uint64_t
ReconfigTrace::countFor(Structure s) const
{
    std::uint64_t n = 0;
    for (const ReconfigEvent &e : events_) {
        if (e.structure == s)
            ++n;
    }
    return n;
}

} // namespace gals
