/**
 * @file
 * Accounting-cache phase controllers (paper §3.1).
 *
 * Every 15K-instruction interval the controller reconstructs, from
 * the MRU-position counters, the total access time each of the four
 * candidate configurations would have spent on the interval just
 * ended — A hits at the A latency, B hits at A+B, misses at A+B plus
 * the next level — each at the candidate's own clock period. It picks
 * the minimum. The L1D/L2 pair is evaluated jointly (their
 * configurations are locked together); the I-cache controller charges
 * misses with the cross-domain L2 round trip.
 */

#ifndef GALS_CONTROL_CACHE_CONTROLLER_HH
#define GALS_CONTROL_CACHE_CONTROLLER_HH

#include <array>

#include "cache/accounting_cache.hh"
#include "common/types.hh"

namespace gals
{

/** One cache-configuration decision with per-candidate costs (ps). */
struct CacheDecision
{
    int best_index;
    std::array<Tick, 4> cost_ps;
};

/**
 * Joint decision for the L1 data / L2 pair.
 *
 * @param l1 interval counters of the L1 D-cache (8-way MRU state).
 * @param l2 interval counters of the L2 (8-way MRU state).
 * @param mem_fill_ps main-memory time charged to every L2 miss.
 */
CacheDecision chooseDCachePair(const IntervalCounts &l1,
                               const IntervalCounts &l2,
                               Tick mem_fill_ps);

/**
 * Decision for the I-cache (the matched branch predictor follows).
 *
 * @param l1i interval counters of the I-cache (4-way MRU state).
 * @param miss_extra_ps time charged to every I-cache miss (the
 *        synchronized round trip to the L2 in the load/store domain).
 */
CacheDecision chooseICache(const IntervalCounts &l1i,
                           Tick miss_extra_ps);

/** Cycles the decision hardware needs (paper: ~32; Table 4). */
int cacheDecisionCycles();

/**
 * True when a decision's best candidate beats the current
 * configuration by more than the hysteresis margin (the shared
 * act-on-it test of the per-domain cache controllers).
 */
inline bool
cacheClearlyBetter(const CacheDecision &d, int cur, double hysteresis)
{
    double best = static_cast<double>(
        d.cost_ps[static_cast<size_t>(d.best_index)]);
    double cur_cost =
        static_cast<double>(d.cost_ps[static_cast<size_t>(cur)]);
    return best < cur_cost * (1.0 - hysteresis);
}

} // namespace gals

#endif // GALS_CONTROL_CACHE_CONTROLLER_HH
