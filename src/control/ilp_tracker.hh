/**
 * @file
 * Hardware ILP tracker for issue-queue sizing (paper §3.2).
 *
 * At rename, every op's destination timestamp becomes
 * max(timestamps of its sources) + 1 (unit latency assumed), and the
 * running maximum M is recorded. Four trackers run simultaneously,
 * one per candidate queue size N in {16, 32, 48, 64}; tracker N stops
 * once N integer ops *or* N floating-point ops have been renamed
 * (stifling consideration of queue sizes the less dominant type could
 * never fill). The application's inherent ILP at window N is N/M_N.
 *
 * Hardware faithfulness: per-register timestamps saturate at the bit
 * widths the paper budgets (4 bits for N=16, 5 for 32, 6 for 48/64),
 * and each tracker keeps its own 64-entry timestamp table.
 */

#ifndef GALS_CONTROL_ILP_TRACKER_HH
#define GALS_CONTROL_ILP_TRACKER_HH

#include <array>
#include <cstdint>

#include "workload/uop.hh"

namespace gals
{

/** One completed tracking interval: max-timestamp per window size. */
struct IlpSample
{
    /** M_N for the integer stream, per window size index. */
    std::array<std::uint32_t, 4> m_int;
    /** M_N for the floating-point stream. */
    std::array<std::uint32_t, 4> m_fp;
    /** Integer/FP ops seen by each tracker when it stopped. */
    std::array<std::uint32_t, 4> n_int;
    std::array<std::uint32_t, 4> n_fp;
};

/** The four-window dependence-timestamp tracker. */
class IlpTracker
{
  public:
    IlpTracker();

    /** Observe one op at rename. */
    void onRename(const MicroOp &op);

    /** True when all four windows have completed their interval. */
    bool sampleReady() const;

    /** Retrieve the sample and restart all four trackers. */
    IlpSample takeSample();

    /** Number of completed samples so far. */
    std::uint64_t samples() const { return samples_; }

  private:
    struct Window
    {
        std::uint32_t n_limit;
        std::uint32_t ts_bits;
        std::uint32_t ts_max;
        std::array<std::uint8_t, kNumLogicalRegs> ts;
        std::uint32_t n_int = 0;
        std::uint32_t n_fp = 0;
        std::uint32_t m_int = 0;
        std::uint32_t m_fp = 0;
        bool done = false;

        void reset();
        void observe(const MicroOp &op);
    };

    std::array<Window, 4> windows_;
    std::uint64_t samples_ = 0;
};

} // namespace gals

#endif // GALS_CONTROL_ILP_TRACKER_HH
