#include "control/cache_controller.hh"

#include "cache/cache_cost.hh"
#include "common/types.hh"
#include "timing/frequency_model.hh"
#include "timing/gate_cost.hh"

namespace gals
{

CacheDecision
chooseDCachePair(const IntervalCounts &l1, const IntervalCounts &l2,
                 Tick mem_fill_ps)
{
    CacheDecision d{};
    d.best_index = 0;
    Tick best = kTickMax;
    for (int c = 0; c < kNumAdaptiveConfigs; ++c) {
        const DCachePairConfig &cfg = dcachePairConfig(c);
        Tick period = periodPsFromGHz(loadStoreFreqAdaptive(c));

        CacheCostParams l1p{};
        l1p.a_ways = cfg.l1_adapt.assoc;
        l1p.a_lat_cycles = cfg.l1_a_lat;
        l1p.b_lat_cycles = cfg.l1_b_lat;
        l1p.period_ps = period;
        l1p.miss_extra_ps = 0; // L2 time accounted below.

        CacheCostParams l2p{};
        l2p.a_ways = cfg.l2_adapt.assoc;
        l2p.a_lat_cycles = cfg.l2_a_lat;
        l2p.b_lat_cycles = cfg.l2_b_lat;
        l2p.period_ps = period;
        l2p.miss_extra_ps = mem_fill_ps;

        Tick cost = accountingCost(l1, l1p) + accountingCost(l2, l2p);
        d.cost_ps[static_cast<size_t>(c)] = cost;
        if (cost < best) {
            best = cost;
            d.best_index = c;
        }
    }
    return d;
}

CacheDecision
chooseICache(const IntervalCounts &l1i, Tick miss_extra_ps)
{
    CacheDecision d{};
    d.best_index = 0;
    Tick best = kTickMax;
    for (int c = 0; c < kNumAdaptiveConfigs; ++c) {
        const ICacheConfig &cfg = icacheConfig(c);
        Tick period = periodPsFromGHz(frontEndFreqAdaptive(c));

        CacheCostParams p{};
        p.a_ways = cfg.org.assoc;
        p.a_lat_cycles = cfg.a_lat;
        p.b_lat_cycles = cfg.b_lat;
        p.period_ps = period;
        p.miss_extra_ps = miss_extra_ps;

        Tick cost = accountingCost(l1i, p);
        d.cost_ps[static_cast<size_t>(c)] = cost;
        if (cost < best) {
            best = cost;
            d.best_index = c;
        }
    }
    return d;
}

int
cacheDecisionCycles()
{
    static const int cycles = GateCostModel().decisionCycles();
    return cycles;
}

} // namespace gals
