/**
 * @file
 * Issue-queue size selection from ILP-tracker samples (paper §3.2).
 *
 * For each candidate size N the effective throughput is the inherent
 * ILP over a window of N instructions, N/M_N, scaled by the clock
 * frequency f_N the queue supports. The controller picks
 * argmax_N (N/M_N) * f_N. No search, no local minima: every candidate
 * is evaluated from the same interval's measurements.
 */

#ifndef GALS_CONTROL_QUEUE_CONTROLLER_HH
#define GALS_CONTROL_QUEUE_CONTROLLER_HH

#include <array>
#include <cstdint>

#include "control/ilp_tracker.hh"

namespace gals
{

/** One queue-size decision with its per-candidate scores. */
struct QueueDecision
{
    int best_index;                  //!< chosen size index 0..3.
    std::array<double, 4> score;     //!< (N/M_N) * f_N per candidate.
};

/** Picks issue-queue sizes for one domain (integer or FP). */
class QueueController
{
  public:
    /**
     * @param use_fp evaluate the floating-point stream's chains when
     *               true, the integer stream's otherwise.
     */
    explicit QueueController(bool use_fp) : use_fp_(use_fp) {}

    /**
     * Evaluate a tracker sample. When a window saw no
     * register-writing ops of this type, its score is zero — the
     * smallest adequate queue wins by frequency.
     */
    QueueDecision decide(const IlpSample &sample) const;

  private:
    bool use_fp_;
};

} // namespace gals

#endif // GALS_CONTROL_QUEUE_CONTROLLER_HH
