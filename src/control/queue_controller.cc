#include "control/queue_controller.hh"

#include "timing/frequency_model.hh"

namespace gals
{

QueueDecision
QueueController::decide(const IlpSample &sample) const
{
    QueueDecision d{};
    d.best_index = 0;
    double best = -1.0;
    for (int k = 0; k < 4; ++k) {
        auto m = use_fp_ ? sample.m_fp[static_cast<size_t>(k)]
                         : sample.m_int[static_cast<size_t>(k)];
        auto n = use_fp_ ? sample.n_fp[static_cast<size_t>(k)]
                         : sample.n_int[static_cast<size_t>(k)];
        double score = 0.0;
        if (m > 0 && n > 0) {
            double ilp = static_cast<double>(n) / m;
            score = ilp * issueQueueFreqGHz(k);
        }
        d.score[static_cast<size_t>(k)] = score;
        // Strict improvement required: ties go to the smaller, faster
        // queue.
        if (score > best + 1e-12) {
            best = score;
            d.best_index = k;
        }
    }
    return d;
}

} // namespace gals
