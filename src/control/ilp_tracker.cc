#include "control/ilp_tracker.hh"

#include <algorithm>

#include "common/logging.hh"
#include "timing/frequency_model.hh"

namespace gals
{

IlpTracker::IlpTracker()
{
    // Bit budgets from the paper: 4 bits per register for ILP16,
    // 5 bits for ILP32, 6 bits each for ILP48 and ILP64.
    const std::uint32_t bits[4] = {4, 5, 6, 6};
    for (int k = 0; k < 4; ++k) {
        windows_[static_cast<size_t>(k)].n_limit =
            static_cast<std::uint32_t>(kIssueQueueSizes[k]);
        windows_[static_cast<size_t>(k)].ts_bits = bits[k];
        windows_[static_cast<size_t>(k)].ts_max =
            (1u << bits[k]) - 1u;
        windows_[static_cast<size_t>(k)].reset();
    }
}

void
IlpTracker::Window::reset()
{
    ts.fill(0);
    n_int = 0;
    n_fp = 0;
    m_int = 0;
    m_fp = 0;
    done = false;
}

void
IlpTracker::Window::observe(const MicroOp &op)
{
    if (done)
        return;

    bool fp = isFpOp(op.cls) || op.cls == OpClass::FpLoad;
    if (fp)
        ++n_fp;
    else
        ++n_int;

    if (op.dst >= 0) {
        std::uint32_t t = 0;
        if (op.src1 > 0)
            t = ts[static_cast<size_t>(op.src1)];
        if (op.src2 > 0)
            t = std::max(t,
                         static_cast<std::uint32_t>(
                             ts[static_cast<size_t>(op.src2)]));
        t = std::min(t + 1, ts_max);
        ts[static_cast<size_t>(op.dst)] = static_cast<std::uint8_t>(t);
        if (fp)
            m_fp = std::max(m_fp, t);
        else
            m_int = std::max(m_int, t);
    }

    if (n_int >= n_limit || n_fp >= n_limit)
        done = true;
}

void
IlpTracker::onRename(const MicroOp &op)
{
    for (Window &w : windows_)
        w.observe(op);
}

bool
IlpTracker::sampleReady() const
{
    for (const Window &w : windows_) {
        if (!w.done)
            return false;
    }
    return true;
}

IlpSample
IlpTracker::takeSample()
{
    GALS_ASSERT(sampleReady(), "takeSample before all windows done");
    IlpSample s{};
    for (size_t k = 0; k < windows_.size(); ++k) {
        Window &w = windows_[k];
        // A window with no register-writing ops of a type reports
        // M = 0; the controller treats that as "no evidence".
        s.m_int[k] = w.m_int;
        s.m_fp[k] = w.m_fp;
        s.n_int[k] = w.n_int;
        s.n_fp[k] = w.n_fp;
        w.reset();
    }
    ++samples_;
    return s;
}

} // namespace gals
