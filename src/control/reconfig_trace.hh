/**
 * @file
 * Reconfiguration event log. The phase-adaptive processor records
 * every structure change here; the Figure 7 bench replays the log as
 * a configuration-versus-instructions trace.
 */

#ifndef GALS_CONTROL_RECONFIG_TRACE_HH
#define GALS_CONTROL_RECONFIG_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gals
{

/** Which adaptive structure changed. */
enum class Structure : std::uint8_t
{
    ICache,
    DCachePair,
    IntIssueQueue,
    FpIssueQueue,
};

/** Printable structure name. */
const char *structureName(Structure s);

/** One reconfiguration event. */
struct ReconfigEvent
{
    std::uint64_t committed_instrs;
    Structure structure;
    int from_index;
    int to_index;
};

/** Append-only log of reconfiguration events. */
class ReconfigTrace
{
  public:
    void
    record(std::uint64_t committed, Structure s, int from, int to)
    {
        events_.push_back(ReconfigEvent{committed, s, from, to});
    }

    const std::vector<ReconfigEvent> &events() const { return events_; }

    /** Events for one structure only. */
    std::vector<ReconfigEvent> eventsFor(Structure s) const;

    /** Count of events for one structure. */
    std::uint64_t countFor(Structure s) const;

    void clear() { events_.clear(); }

  private:
    std::vector<ReconfigEvent> events_;
};

} // namespace gals

#endif // GALS_CONTROL_RECONFIG_TRACE_HH
