#include "cmp/core.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace gals
{

std::array<Clock, 4>
makeCoreClocks(const MachineConfig &cfg, int core_index)
{
    auto make = [&](DomainId d) {
        Tick period =
            periodPsFromGHz(cfg.domainFreqGHz(d, cfg.adaptive));
        double jitter = cfg.mode == ClockingMode::MCD
                            ? cfg.jitter_sigma_ps : 0.0;
        // Stagger MCD first edges so domains do not start artificially
        // aligned; synchronous domains share one grid. The jitter
        // stream is keyed by the *global* domain index so every core
        // of a chip draws independently, and core 0 reproduces the
        // standalone Processor's clocks exactly.
        int idx = static_cast<int>(d);
        int global = core_index * kNumDomains + idx;
        Tick first = cfg.mode == ClockingMode::MCD
                         ? period + (period * static_cast<Tick>(idx)) / 5
                         : period;
        return Clock(period, first, jitter,
                     cfg.seed + 0x9e37 * static_cast<Tick>(global));
    };
    return {make(DomainId::FrontEnd), make(DomainId::Integer),
            make(DomainId::FloatingPoint), make(DomainId::LoadStore)};
}

Core::Core(const MachineConfig &config, const WorkloadParams &wl,
           WakeFabric &fabric, Clock *clocks, int core_index,
           InterconnectPort *icp)
    : cfg_(config), wl_params_(wl), cur_cfg_(config.adaptive),
      core_index_(core_index),
      timing_(clocks, config.mode == ClockingMode::Synchronous),
      hub_(fabric, core_index * kNumDomains, kNumDomains),
      fe_(cfg_, cur_cfg_, timing_, wl_params_, stats_),
      int_cluster_(DomainId::Integer, cfg_, timing_, fe_.rob(),
                   fe_.regs(), cur_cfg_.iq_int),
      fp_cluster_(DomainId::FloatingPoint, cfg_, timing_, fe_.rob(),
                  fe_.regs(), cur_cfg_.iq_fp),
      lsu_(cfg_, cur_cfg_, timing_, fe_.rob(), icp, core_index),
      ports_(hub_, timing_, cfg_, fe_.regs(), int_cluster_.iq(),
             fp_cluster_.iq(), fe_.rob(), lsu_.lsq()),
      epoch_port_(hub_, timing_),
      reconfig_(cfg_, cur_cfg_, timing_, ports_.reclock),
      domain_table_{&fe_, &int_cluster_, &fp_cluster_, &lsu_}
{
    // Wire the port layer and shared services into the domain units.
    fe_.wire(ports_, int_cluster_, fp_cluster_, lsu_, reconfig_);
    int_cluster_.wire(ports_, reconfig_);
    fp_cluster_.wire(ports_, reconfig_);
    lsu_.wire(ports_, reconfig_);
    reconfig_.attachDomains(fe_, int_cluster_, fp_cluster_, lsu_);
    reconfig_.setTraceBase(core_index_ * kNumDomains);
    for (Domain *d : domain_table_)
        d->attachPending(&reconfig_.pending(d->id()));
    fe_.onMeasureStart([this](Tick now) { snapshotBaselines(now); });

    if (wl_params_.warmup_instrs == 0)
        fe_.beginMeasurementAtZero();
}

void
Core::setInvariantCheckInterval(std::uint32_t every)
{
    fe_.setInvariantCheck([this]() { validateInvariants(); }, every);
}

void
Core::snapshotBaselines(Tick)
{
    base_.l1i_acc = fe_.l1i().totalAccesses();
    base_.l1i_miss = fe_.l1i().totalMisses();
    base_.l1i_b = fe_.l1i().totalBHits();
    base_.l1d_acc = lsu_.l1d().totalAccesses();
    base_.l1d_miss = lsu_.l1d().totalMisses();
    base_.l1d_b = lsu_.l1d().totalBHits();
    base_.l2_acc = lsu_.l2TotalAccesses();
    base_.l2_miss = lsu_.l2TotalMisses();
    base_.l2_b = lsu_.l2TotalBHits();
    base_.bp_lookups = fe_.predictor().lookups();
    base_.bp_miss = fe_.predictor().mispredicts();
    base_.flushes = fe_.flushes();
    base_.relocks = reconfig_.relocks();
}

void
Core::finalizeStats(RunStats &stats) const
{
    stats.benchmark = wl_params_.name;
    stats.config =
        cfg_.mode == ClockingMode::Synchronous
            ? csprintf("sync(%s,D%d,Qi%d,Qf%d)",
                       optICacheConfig(cfg_.sync_icache_opt).name
                           .c_str(),
                       cfg_.adaptive.dcache, cfg_.adaptive.iq_int,
                       cfg_.adaptive.iq_fp)
            : csprintf("%s(%s)",
                       cfg_.phase_adaptive ? "phase" : "mcd",
                       cfg_.adaptive.str().c_str());

    stats.committed = fe_.committed() - fe_.measureCommittedBase();
    stats.time_ps = fe_.lastCommitTime() - fe_.measureStart();

    stats.l1i_accesses = fe_.l1i().totalAccesses() - base_.l1i_acc;
    stats.l1i_misses = fe_.l1i().totalMisses() - base_.l1i_miss;
    stats.l1i_b_hits = fe_.l1i().totalBHits() - base_.l1i_b;
    stats.l1d_accesses = lsu_.l1d().totalAccesses() - base_.l1d_acc;
    stats.l1d_misses = lsu_.l1d().totalMisses() - base_.l1d_miss;
    stats.l1d_b_hits = lsu_.l1d().totalBHits() - base_.l1d_b;
    stats.l2_accesses = lsu_.l2TotalAccesses() - base_.l2_acc;
    stats.l2_misses = lsu_.l2TotalMisses() - base_.l2_miss;
    stats.l2_b_hits = lsu_.l2TotalBHits() - base_.l2_b;
    stats.branches = fe_.predictor().lookups() - base_.bp_lookups;
    stats.mispredicts =
        fe_.predictor().mispredicts() - base_.bp_miss;
    stats.flushes = fe_.flushes() - base_.flushes;
    stats.relocks = reconfig_.relocks() - base_.relocks;
    stats.trace = reconfig_.trace();
}

CoreProgress
Core::progressStop() const
{
    return CoreProgress{&committedRef(), targetInstrs()};
}

RunStats
Core::collectStats()
{
    finalizeStats(stats_);
    return stats_;
}

void
Core::validateInvariants() const
{
    const RegisterFiles &regs = fe_.regs();
    const Rob &rob = fe_.rob();
    const Lsq &lsq = lsu_.lsq();

    // Rename state: the map is a subset of the free-list complement.
    GALS_ASSERT(regs.checkConsistent(),
                "rename map / free-list inconsistency");

    // ROB: sequence numbers strictly ascend from head to tail.
    const size_t n = rob.size();
    for (size_t i = 1; i < n; ++i) {
        GALS_ASSERT(rob[rob.indexAt(i - 1)].seq <
                        rob[rob.indexAt(i)].seq,
                    "ROB age order violated at position %llu",
                    static_cast<unsigned long long>(i));
    }

    // Fetch queue: group accounting matches occupancy and capacity.
    GALS_ASSERT(fe_.fetchQueue().checkConsistent(),
                "fetch-group queue accounting inconsistent");

    // LSQ: the store index and waiting-load list address only
    // in-queue entries, in age order, with matching entry kinds.
    const std::uint64_t first = lsq.firstId();
    const std::uint64_t past = first + lsq.size();
    std::uint64_t prev = 0;
    bool have_prev = false;
    lsq.forEachStore([&](const Lsq::StoreRec &rec) {
        GALS_ASSERT(rec.id >= first && rec.id < past,
                    "LSQ store index references a popped entry");
        GALS_ASSERT(!have_prev || rec.id > prev,
                    "LSQ store index out of age order");
        GALS_ASSERT(lsq.byId(rec.id).is_store,
                    "LSQ store index references a load");
        prev = rec.id;
        have_prev = true;
    });
    have_prev = false;
    for (std::uint64_t id : lsq.pendingStores()) {
        GALS_ASSERT(id >= first && id < past,
                    "LSQ pending-store list references a popped "
                    "entry");
        GALS_ASSERT(!have_prev || id > prev,
                    "LSQ pending-store list out of age order");
        const LsqEntry &e = lsq.byId(id);
        GALS_ASSERT(e.is_store && !e.data_ready,
                    "LSQ pending-store list references a non-pending "
                    "entry");
        prev = id;
        have_prev = true;
    }
    have_prev = false;
    prev = 0;
    for (std::uint64_t id : lsq.waitingLoads()) {
        GALS_ASSERT(id >= first && id < past,
                    "LSQ waiting-load list references a popped entry");
        GALS_ASSERT(!have_prev || id > prev,
                    "LSQ waiting-load list out of age order");
        const LsqEntry &e = lsq.byId(id);
        GALS_ASSERT(!e.is_store && !e.issued,
                    "LSQ waiting-load list references a non-waiting "
                    "entry");
        prev = id;
        have_prev = true;
    }

    // Blocked-load chains: every chained load is an in-queue,
    // unissued, kind-3 load younger than its (data-pending) store,
    // chained exactly once; and every kind-3 load is on some chain.
    {
        std::vector<std::uint64_t> chained;
        lsq.forEachStore([&](const Lsq::StoreRec &rec) {
            const LsqEntry &store = lsq.byId(rec.id);
            std::uint64_t node = store.blocked_head;
            GALS_ASSERT(node == kLsqNoId || !store.data_ready,
                        "LSQ blocked-load chain on a data-ready "
                        "store");
            while (node != kLsqNoId) {
                GALS_ASSERT(node >= first && node < past,
                            "LSQ blocked-load chain references a "
                            "popped entry");
                GALS_ASSERT(node > rec.id,
                            "LSQ blocked-load chain holds a load "
                            "older than its store");
                const LsqEntry &load = lsq.byId(node);
                GALS_ASSERT(!load.is_store && !load.issued &&
                                load.wait_kind == 3,
                            "LSQ blocked-load chain references a "
                            "non-blocked entry");
                chained.push_back(node);
                node = load.next_blocked;
            }
        });
        std::sort(chained.begin(), chained.end());
        for (size_t i = 1; i < chained.size(); ++i) {
            GALS_ASSERT(chained[i - 1] != chained[i],
                        "LSQ load chained twice");
        }
        for (std::uint64_t id : lsq.waitingLoads()) {
            if (lsq.byId(id).wait_kind != 3)
                continue;
            GALS_ASSERT(std::binary_search(chained.begin(),
                                           chained.end(), id),
                        "LSQ kind-3 load on no blocked chain");
        }
    }

    // Issue queues: every live slot mirrors a ROB op that is actually
    // marked in-queue (the slot-local ready-list state shadows the
    // ROB record; a desync would evaluate stale registers), sits in
    // exactly one wakeup structure, and every chained waiter really
    // waits on a scoreboard-pending register.
    for (const IssueQueue *iq :
         {&int_cluster_.iq(), &fp_cluster_.iq()}) {
        size_t live = 0;
        size_t chained = 0;
        iq->forEachLive([&](std::int32_t, const IqSlot &slot) {
            ++live;
            GALS_ASSERT(slot.rob_idx < rob.capacity(),
                        "issue-queue slot references an invalid ROB "
                        "index");
            const InFlightOp &op = rob[slot.rob_idx];
            GALS_ASSERT(op.in_queue,
                        "issue-queue slot references an op not "
                        "marked in-queue");
            GALS_ASSERT(op.seq == slot.seq,
                        "issue-queue slot age desynced from its ROB "
                        "op");
            bool in_chain = slot.next_wait[0] != kIqNotChained ||
                            slot.next_wait[1] != kIqNotChained;
            if (in_chain)
                ++chained;
            GALS_ASSERT(slot.in_cand || slot.in_timed || in_chain,
                        "issue-queue slot in no wakeup structure");
            GALS_ASSERT(!(slot.in_cand && slot.in_timed),
                        "issue-queue slot in both rings");
        });
        GALS_ASSERT(live == iq->size(),
                    "issue-queue live count out of sync");
        size_t chain_nodes = 0;
        iq->forEachWaiter([&](bool fp, int reg, std::int32_t id,
                              int si) {
            ++chain_nodes;
            const IqSlot &slot = iq->slot(id);
            GALS_ASSERT(slot.live,
                        "issue-queue waiter chain references a freed "
                        "slot");
            PhysRef src = si == 0 ? slot.psrc1 : slot.psrc2;
            GALS_ASSERT(src.fp == fp && src.index == reg,
                        "issue-queue waiter chained on the wrong "
                        "register");
            GALS_ASSERT(
                regs.state(PhysRef{static_cast<std::int16_t>(reg),
                                   fp})
                    .pending,
                "issue-queue waiter on a completed register");
        });
        GALS_ASSERT(chain_nodes >= chained,
                    "issue-queue chain membership undercounted");
    }

    // Dispatch and store-buffer occupancy bounds.
    GALS_ASSERT(ports_.disp_int.size() <= ports_.disp_int.capacity() &&
                    ports_.disp_fp.size() <=
                        ports_.disp_fp.capacity() &&
                    ports_.disp_ls.size() <= ports_.disp_ls.capacity(),
                "dispatch FIFO over capacity");
    GALS_ASSERT(ports_.store_buffer.size() <=
                    ports_.store_buffer.capacity(),
                "store buffer over capacity");
}

} // namespace gals
