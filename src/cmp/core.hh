/**
 * @file
 * One core of the GALS chip: the per-core composition unit extracted
 * from the original Processor monolith.
 *
 * A Core owns the four domain units (front end, integer cluster,
 * floating-point cluster, load/store unit), their typed port set, the
 * per-core clock fabric view (CoreTiming + WakeHub window into the
 * chip's WakeFabric) and the PLL reconfiguration unit. It does *not*
 * own clocks or the step loop: the composition root (Processor for
 * one core, Chip for several) owns the flat clock array, the
 * WakeFabric and the DomainScheduler, and registers each core's
 * domain units and epoch port with them.
 *
 * In a chip, core `c`'s domains occupy global indices
 * [c*kNumDomains, (c+1)*kNumDomains) — core-major, local order
 * preserved — which is exactly what makes the publication-order rule
 * compose across cores (see core/ports.hh).
 */

#ifndef GALS_CMP_CORE_HH
#define GALS_CMP_CORE_HH

#include <array>

#include "clock/clock.hh"
#include "core/domain.hh"
#include "core/front_end.hh"
#include "core/issue_cluster.hh"
#include "core/lsu.hh"
#include "core/machine_config.hh"
#include "core/ports.hh"
#include "core/reconfig.hh"
#include "core/run_stats.hh"
#include "core/scheduler.hh"

namespace gals
{

/** Per-domain clocks for one configured core. `core_index` keys the
 * jitter streams (global domain index), so every core of a chip gets
 * an independent stream while core 0 reproduces the standalone
 * Processor's clocks exactly. */
std::array<Clock, 4> makeCoreClocks(const MachineConfig &cfg,
                                    int core_index);

/** One core executing one synthetic benchmark. */
class Core
{
  public:
    /**
     * @param config     the machine description (copied).
     * @param wl         this core's workload (copied).
     * @param fabric     the chip-level wake fabric.
     * @param clocks     this core's four clocks (owned by the root,
     *                   contiguous at global base core_index*4).
     * @param core_index position in the chip (0 for a Processor).
     * @param icp        the shared-L2 interconnect (chip
     *                   compositions; null = private hierarchy).
     */
    Core(const MachineConfig &config, const WorkloadParams &wl,
         WakeFabric &fabric, Clock *clocks, int core_index,
         InterconnectPort *icp = nullptr);

    // ------------------------------------------------------------------
    // Composition-root wiring.
    // ------------------------------------------------------------------
    Domain *domainUnit(int local)
    {
        return domain_table_[static_cast<size_t>(local)];
    }
    EpochBumpPort &epochPort() { return epoch_port_; }

    // ------------------------------------------------------------------
    // Progress, measurement, results.
    // ------------------------------------------------------------------
    /** Stable reference the scheduler's stop condition polls. */
    const std::uint64_t &committedRef() const
    {
        return fe_.committedRef();
    }
    std::uint64_t targetInstrs() const
    {
        return wl_params_.warmup_instrs + wl_params_.sim_instrs;
    }
    /** The scheduler stop condition for this core's window — the
     * unit both the sequential interleave and a horizon-parallel
     * worker group step to completion. */
    CoreProgress progressStop() const;

    /** Measured-window statistics (after a run). */
    RunStats collectStats();

    /** Current structure configuration (changes in phase mode). */
    const AdaptiveConfig &currentConfig() const { return cur_cfg_; }

    /** See Processor::setInvariantCheckInterval. */
    void setInvariantCheckInterval(std::uint32_t every);

    /** Panics with a description on any violated invariant. */
    void validateInvariants() const;

  private:
    void snapshotBaselines(Tick now);
    void finalizeStats(RunStats &stats) const;

    MachineConfig cfg_;
    WorkloadParams wl_params_;
    AdaptiveConfig cur_cfg_;
    int core_index_;

    CoreTiming timing_;
    WakeHub hub_;
    RunStats stats_;

    // Domain units (each owns its structures and controllers).
    FrontEnd fe_;
    IssueCluster int_cluster_;
    IssueCluster fp_cluster_;
    LoadStoreUnit lsu_;

    // Cross-domain port layer and shared services.
    CorePorts ports_;
    EpochBumpPort epoch_port_;
    ReconfigUnit reconfig_;

    std::array<Domain *, 4> domain_table_;

    struct Baseline
    {
        std::uint64_t l1i_acc = 0, l1i_miss = 0, l1i_b = 0;
        std::uint64_t l1d_acc = 0, l1d_miss = 0, l1d_b = 0;
        std::uint64_t l2_acc = 0, l2_miss = 0, l2_b = 0;
        std::uint64_t bp_lookups = 0, bp_miss = 0;
        std::uint64_t flushes = 0;
        std::uint64_t relocks = 0;
    } base_;
};

} // namespace gals

#endif // GALS_CMP_CORE_HH
