/**
 * @file
 * The GALS chip multiprocessor: N cores (1..kMaxCores), each
 * contributing its four domain units to one shared domain table with
 * per-core independent clocks, jitter streams and PLL
 * reconfiguration, composed around a shared banked L2 behind the
 * cross-core interconnect port.
 *
 * The chip is the multi-core composition root over exactly the
 * pieces the Processor uses for one core: a flat clock array (global
 * domain index = core * kNumDomains + local), one WakeFabric, one
 * DomainScheduler stepping all 4N domains in the reference tie-break
 * order (time, then lowest global index), and per-core EpochBumpPorts
 * (grid epochs are per core — a PLL re-lock stales only the landing
 * core's memoized extrapolations; the shared L2/memory level is
 * analytic in raw picoseconds and grid-free).
 *
 * With one core the chip routes through the same shared-L2 code but
 * arbitrates nothing (the interconnect is cross-core only), so its
 * RunStats are bit-identical to the standalone Processor — the N=1
 * equivalence gate the differential suite enforces.
 *
 * Multiprogrammed runs give each core its own workload (and its own
 * RNG streams: workload, clocks-jitter and PLL draws are all keyed so
 * core 0 reproduces the single-core streams exactly); a finished core
 * halts while the others complete their windows.
 */

#ifndef GALS_CMP_CHIP_HH
#define GALS_CMP_CHIP_HH

#include <memory>
#include <vector>

#include "cache/shared_l2.hh"
#include "clock/clock.hh"
#include "cmp/core.hh"
#include "core/processor.hh"
#include "core/scheduler.hh"

namespace gals
{

/** Chip description: the per-core machine plus the shared level. */
struct ChipConfig
{
    /** Machine description every core is built from. */
    MachineConfig machine;
    /** Cores on the chip (1..kMaxCores). */
    int cores = 1;
    /** Shared-L2 banking (line-interleaved). */
    int l2_banks = 4;
    /** Per-bank in-flight fill slots arbitrated across cores
     * (0 = unbounded). */
    int l2_bank_mshrs = 4;
    /** Bank busy window per request for cross-core arbitration. */
    Tick l2_bank_occupancy_ps = 600;
    /** Cross-core coherence latency: an invalidation published at t
     * delivers (and an ownership transfer settles) at t + this.
     * Active only when some workload declares a shared region. */
    Tick coh_delay_ps = 24'000;
};

/** Results of one chip run: per-core windows + chip-level totals. */
struct ChipRunStats
{
    /** Per-core measured-window statistics (suite order). */
    std::vector<RunStats> cores;

    // Chip-level aggregation.
    std::uint64_t total_committed = 0;
    /** Longest per-core window (the multiprogrammed makespan). */
    Tick makespan_ps = 0;
    /** Shared-L2 traffic over the whole run (all cores, lifetime). */
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_misses = 0;
    // Interconnect behavior (lifetime).
    std::uint64_t bank_conflicts = 0;
    std::uint64_t bank_mshr_waits = 0;
    std::uint64_t fill_merges = 0;
    // Coherence traffic (lifetime).
    std::uint64_t invalidations = 0;
    std::uint64_t ownership_transfers = 0;

    /**
     * Horizon-parallel stepper telemetry — empty/zero after
     * sequential, reference, or single-worker runs. Deliberately
     * excluded from the bit-identity comparisons (which worker steps
     * a core is scheduling, not simulation) and from the result-store
     * payload (a cached row is partition-free by definition).
     */
    /** Cores claimed by each worker, summed across rounds. */
    std::vector<std::uint64_t> worker_claims;
    /** Barrier-separated stepping rounds the run took. */
    std::uint64_t parallel_rounds = 0;

    /** Chip throughput: committed instructions per makespan ns. */
    double
    throughputInstrsPerNs() const
    {
        return makespan_ps
                   ? static_cast<double>(total_committed) /
                         (static_cast<double>(makespan_ps) / 1000.0)
                   : 0.0;
    }
};

/** One configured chip executing one workload per core. */
class Chip
{
  public:
    /** `workloads.size()` must equal `config.cores`; use
     * multiprogrammedMix (workload/suite.hh) to build mixes whose
     * per-core RNG streams are independent. */
    Chip(const ChipConfig &config,
         const std::vector<WorkloadParams> &workloads);

    /** Run every core's warmup + measured window; return per-core and
     * chip-level statistics. */
    ChipRunStats run();

    /** Force a specific scheduler (tests; overrides GALS_KERNEL). */
    void setKernel(Processor::Kernel k) { kernel_ = k; }

    /** Deep structural invariant checks on every core (see
     * Processor::setInvariantCheckInterval). */
    void setInvariantCheckInterval(std::uint32_t every);

    int coreCount() const { return cfg_.cores; }
    Core &core(int i) { return *cores_[static_cast<size_t>(i)]; }
    const SharedL2 &sharedL2() const { return l2_; }
    /** The chip's interconnect port (tests assert the deferred-wake
     * channel genuinely carried traffic). */
    const InterconnectPort &interconnect() const { return icp_; }

    /**
     * End of the parallel round starting at `from`: the earliest
     * tick a cross-core publication could first need consuming. A
     * chip with no in-flight interconnect traffic gets a full
     * epoch-length window; otherwise the earliest in-flight fill
     * completing after `from` bounds the round (completed fills are
     * the only carriers a cross-core wake can ride, and one landing
     * exactly at the returned horizon is merged at the barrier
     * before any core steps at or past it). Exposed for the
     * horizon-safety tests.
     */
    Tick computeHorizon(Tick from) const;

  private:
    /** Horizon-parallel event kernel: `nworkers` co-scheduled
     * threads claim cores per round through an atomic cursor
     * (work-stealing) and step between barrier-separated sync
     * horizons (see docs/kernel.md). Bit-identical to runEvent. */
    void runEventParallel(const CoreProgress *progress, int nworkers);

    // Telemetry of the last parallel run (copied into ChipRunStats).
    std::vector<std::uint64_t> worker_claims_;
    std::uint64_t parallel_rounds_ = 0;

    ChipConfig cfg_;
    std::vector<Clock> clocks_;
    WakeFabric fabric_;
    SharedL2 l2_;
    InterconnectPort icp_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Domain *> domain_table_;
    std::vector<EpochBumpPort *> epoch_table_;
    DomainScheduler scheduler_;

    Processor::Kernel kernel_;
};

} // namespace gals

#endif // GALS_CMP_CHIP_HH
