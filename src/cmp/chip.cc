#include "cmp/chip.hh"

#include <algorithm>
#include <array>
#include <barrier>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/parallel.hh"
#include "timing/frequency_model.hh"
#include "workload/generator.hh"

namespace gals
{

namespace
{

constexpr std::uint64_t KB = 1024;

// GALS_CHIP_THREADS validation clamps to kMaxChipWorkers; a chip can
// usefully employ one worker per core, so the two bounds move in step.
static_assert(kMaxChipWorkers >= static_cast<unsigned>(kMaxCores),
              "chip worker ceiling below the supported core count");

/** Round cap when no cross-core traffic is in flight: a full
 * epoch-length window (~a controller interval of simulated time), so
 * an uncontended chip pays barriers at a negligible cadence. */
constexpr Tick kChipEpochHorizonPs = 1'000'000;

/** All cores' clocks, flat in global domain index order. */
std::vector<Clock>
buildClocks(const ChipConfig &cfg)
{
    std::vector<Clock> clocks;
    clocks.reserve(static_cast<size_t>(cfg.cores) * kNumDomains);
    for (int c = 0; c < cfg.cores; ++c) {
        std::array<Clock, 4> four = makeCoreClocks(cfg.machine, c);
        for (Clock &k : four)
            clocks.push_back(k);
    }
    return clocks;
}

/** Shared-L2 geometry mirroring the private L2 of the same machine
 * mode (what makes the N=1 chip bit-identical to the Processor). */
SharedL2::Params
sharedL2Params(const ChipConfig &cfg,
               const std::vector<WorkloadParams> &workloads)
{
    const MachineConfig &m = cfg.machine;
    const DCachePairConfig &dc = dcachePairConfig(m.adaptive.dcache);
    SharedL2::Params p;
    if (m.mode == ClockingMode::MCD) {
        p.size_bytes = 2048 * KB;
        p.ways = 8;
        p.a_ways = dc.l2_adapt.assoc;
        p.phase_adaptive = m.phase_adaptive;
    } else {
        p.size_bytes = dc.l2_opt.size_bytes;
        p.ways = dc.l2_opt.assoc;
        p.a_ways = dc.l2_opt.assoc;
        p.phase_adaptive = false;
    }
    p.row = m.adaptive.dcache;
    p.cores = cfg.cores;
    p.banks = cfg.l2_banks;
    p.bank_mshrs = cfg.l2_bank_mshrs;
    p.bank_occupancy_ps = cfg.l2_bank_occupancy_ps;
    // The coherent shared region spans the largest region any
    // workload of the mix declares (they all address the same window
    // at kSharedBase). No workload sharing anything leaves
    // shared_bytes at 0: coherence fully disabled, as on every
    // pre-existing mix.
    p.shared_base = kSharedBase;
    for (const WorkloadParams &wl : workloads)
        p.shared_bytes = std::max(p.shared_bytes, wl.shared_bytes);
    p.coh_delay_ps = cfg.coh_delay_ps;
    return p;
}

/** Build and wire the cores (one per workload). */
std::vector<std::unique_ptr<Core>>
buildCores(const ChipConfig &cfg,
           const std::vector<WorkloadParams> &workloads,
           WakeFabric &fabric, std::vector<Clock> &clocks,
           InterconnectPort &icp)
{
    GALS_ASSERT(cfg.cores >= 1 && cfg.cores <= kMaxCores,
                "chip core count out of range");
    GALS_ASSERT(workloads.size() == static_cast<size_t>(cfg.cores),
                "chip needs exactly one workload per core");
    std::vector<std::unique_ptr<Core>> cores;
    cores.reserve(static_cast<size_t>(cfg.cores));
    for (int c = 0; c < cfg.cores; ++c) {
        cores.push_back(std::make_unique<Core>(
            cfg.machine, workloads[static_cast<size_t>(c)], fabric,
            clocks.data() + static_cast<size_t>(c) * kNumDomains, c,
            &icp));
    }
    return cores;
}

/** Flat domain table, global (core-major) index order. */
std::vector<Domain *>
buildDomainTable(const std::vector<std::unique_ptr<Core>> &cores)
{
    std::vector<Domain *> table;
    table.reserve(cores.size() * kNumDomains);
    for (const auto &core : cores) {
        for (int d = 0; d < kNumDomains; ++d)
            table.push_back(core->domainUnit(d));
    }
    return table;
}

/** Per-domain epoch-port table (each core's port, repeated). */
std::vector<EpochBumpPort *>
buildEpochTable(const std::vector<std::unique_ptr<Core>> &cores)
{
    std::vector<EpochBumpPort *> table;
    table.reserve(cores.size() * kNumDomains);
    for (const auto &core : cores) {
        for (int d = 0; d < kNumDomains; ++d)
            table.push_back(&core->epochPort());
    }
    return table;
}

} // namespace

Chip::Chip(const ChipConfig &config,
           const std::vector<WorkloadParams> &workloads)
    : cfg_(config), clocks_(buildClocks(config)),
      fabric_(clocks_.data(), config.cores * kNumDomains),
      l2_(sharedL2Params(config, workloads)),
      icp_(l2_, config.cores),
      cores_(buildCores(cfg_, workloads, fabric_, clocks_, icp_)),
      domain_table_(buildDomainTable(cores_)),
      epoch_table_(buildEpochTable(cores_)),
      scheduler_(domain_table_.data(), clocks_.data(),
                 cfg_.cores * kNumDomains, fabric_,
                 epoch_table_.data()),
      kernel_(Processor::kernelFromEnv())
{
    // Sequential-mode coherence wakes deliver through the chip's
    // fabric; the parallel stepper overrides this path with the
    // deferred queue.
    icp_.attachFabric(&fabric_);
}

void
Chip::setInvariantCheckInterval(std::uint32_t every)
{
    for (auto &core : cores_)
        core->setInvariantCheckInterval(every);
}

ChipRunStats
Chip::run()
{
    std::array<CoreProgress, kMaxCores> progress{};
    for (int c = 0; c < cfg_.cores; ++c) {
        progress[static_cast<size_t>(c)] =
            cores_[static_cast<size_t>(c)]->progressStop();
    }

    worker_claims_.clear();
    parallel_rounds_ = 0;

    obs::ensureInitFromEnv();
    const bool traced =
        obs::Tracer::instance().beginRun("chip", cfg_.cores);

    if (kernel_ == Processor::Kernel::Reference) {
        // The oracle stays sequential: it defines the order the
        // parallel kernel must reproduce.
        scheduler_.runReference(progress.data(), cfg_.cores);
    } else {
        unsigned threads = std::min<unsigned>(
            chipThreads(), static_cast<unsigned>(cfg_.cores));
        if (threads <= 1 || onPoolWorker())
            scheduler_.runEvent(progress.data(), cfg_.cores);
        else
            runEventParallel(progress.data(),
                             static_cast<int>(threads));
    }

    if (traced)
        obs::Tracer::instance().endRun();

    ChipRunStats out;
    out.cores.reserve(cores_.size());
    for (int c = 0; c < cfg_.cores; ++c) {
        RunStats s = cores_[static_cast<size_t>(c)]->collectStats();
        out.total_committed += s.committed;
        out.makespan_ps = std::max(out.makespan_ps, s.time_ps);
        out.cores.push_back(std::move(s));
        out.l2_accesses += l2_.accesses(c);
        out.l2_misses += l2_.misses(c);
    }
    out.bank_conflicts = l2_.bankConflicts();
    out.bank_mshr_waits = l2_.bankMshrWaits();
    out.fill_merges = l2_.fillMerges();
    out.invalidations = l2_.invalidationsSent();
    out.ownership_transfers = l2_.ownershipTransfers();
    out.worker_claims = worker_claims_;
    out.parallel_rounds = parallel_rounds_;

    // Chip telemetry folds into the metrics registry (the
    // machine-readable mirror of the ChipRunStats telemetry fields;
    // counters accumulate across the process's chip runs). Purely
    // observational — nothing here feeds back into a simulation.
    obs::MetricsRegistry &m = obs::MetricsRegistry::instance();
    m.add("chip.runs", 1);
    m.add("chip.parallel_rounds", parallel_rounds_);
    m.add("chip.total_committed", out.total_committed);
    m.add("chip.l2.accesses", out.l2_accesses);
    m.add("chip.l2.misses", out.l2_misses);
    m.add("chip.l2.bank_conflicts", out.bank_conflicts);
    m.add("chip.l2.bank_mshr_waits", out.bank_mshr_waits);
    m.add("chip.l2.fill_merges", out.fill_merges);
    m.add("chip.coh.invalidations", out.invalidations);
    m.add("chip.coh.ownership_transfers", out.ownership_transfers);
    for (size_t w = 0; w < worker_claims_.size(); ++w) {
        m.add(csprintf("chip.worker_claims.w%zu", w),
              worker_claims_[w]);
    }
    return out;
}

Tick
Chip::computeHorizon(Tick from) const
{
    Tick fill = l2_.nextFillCompletionAfter(from);
    Tick cap = from + kChipEpochHorizonPs;
    // A coherent chip can publish an invalidation from any step in
    // the round, delivered coh_delay later; capping the window at
    // from + coh_delay guarantees every such wake lands at or after
    // the window's end (the drain's horizon tripwire).
    if (l2_.coherent())
        cap = std::min(cap, from + l2_.params().coh_delay_ps);
    return fill < cap ? fill : cap;
}

void
Chip::runEventParallel(const CoreProgress *progress, int nworkers)
{
    fabric_.setEventMode(true);
    fabric_.beginEventRun();

    ChipSyncState sync;
    sync.nworkers = nworkers;

    // Chip-level per-core done flags: the per-round groups are
    // rebuilt from these at every claim phase. Written mid-round
    // only by the core's owning worker and read only at/after the
    // barrier, so no two threads ever race on an entry.
    std::array<bool, kMaxCores> core_done{};
    for (int c = 0; c < cfg_.cores; ++c) {
        bool fin = *progress[c].progress >= progress[c].target;
        core_done[static_cast<size_t>(c)] = fin;
        if (fin) {
            for (int k = c * kNumDomains; k < (c + 1) * kNumDomains;
                 ++k) {
                fabric_.park(k);
            }
        }
    }

    // Work-stealing round state: the round's live cores (ascending)
    // plus the atomic cursor workers race on after each barrier. The
    // cursor hands each live core to exactly one worker; since the
    // worklist is ascending and a worker's claims are a subsequence
    // of it, every group's members stay sorted by core index — which
    // keeps the group-head tie-break (lowest global index) equal to
    // the reference kernel's.
    std::array<int, kMaxCores> round_cores{};
    int nclaim = 0;
    std::atomic<int> claim_next{0};

    std::array<GroupRun, kMaxChipWorkers> groups{};
    worker_claims_.assign(static_cast<size_t>(nworkers), 0);
    parallel_rounds_ = 0;

    // Settle one round boundary: merge the deferred cross-core
    // wakes, rebuild the live-core worklist, zero every front (order
    // point 0 precedes every real point, so all gates conservatively
    // block until each worker has claimed its cores and published a
    // genuine front), and open the next window. Runs single-threaded
    // — at init and inside the barrier's completion step, which the
    // barrier orders against all workers.
    Tick horizon = 0;
    Tick window_start = 0;
    bool stop = false;
    auto settleRound = [&]() noexcept {
        icp_.drainDeferred(fabric_, window_start, horizon);
        Tick from = kTickMax;
        nclaim = 0;
        for (int c = 0; c < cfg_.cores; ++c) {
            if (core_done[static_cast<size_t>(c)])
                continue;
            round_cores[static_cast<size_t>(nclaim++)] = c;
            for (int k = c * kNumDomains; k < (c + 1) * kNumDomains;
                 ++k) {
                Tick key = fabric_.key(k);
                if (key < from)
                    from = key;
            }
        }
        if (nclaim == 0) {
            stop = true;
            return;
        }
        GALS_ASSERT(from != kTickMax,
                    "event kernel: every domain parked across all "
                    "workers with no deferred wake (missing wakeup "
                    "port)");
        window_start = from;
        horizon = computeHorizon(from);
        claim_next.store(0, std::memory_order_relaxed);
        for (int w = 0; w < nworkers; ++w) {
            sync.fronts[static_cast<size_t>(w)].v.store(
                0, std::memory_order_release);
        }
        ++parallel_rounds_;
        // Round boundary on the chip-level trace track: recorded
        // single-threaded (init / barrier completion step), with the
        // nondecreasing window starts as timestamps.
        if (obs::tracing()) {
            obs::Tracer::instance().chip(obs::Ev::Round, window_start,
                                         horizon);
        }
    };
    settleRound();
    if (stop)
        return;

    icp_.beginParallel(&sync);
    std::barrier bar(nworkers, settleRound);
    // The caller is the thread that claimed the tracer (if any);
    // workers join the traced run for the duration of the stepping.
    const bool traced = obs::tracing();
    if (traced)
        obs::Tracer::instance().setRunWorkers(nworkers);
    chipParallelRun(static_cast<size_t>(nworkers), [&](size_t w) {
        if (traced)
            obs::Tracer::adoptThread(true);
        obs::Tracer &tr = obs::Tracer::instance();
        GroupRun &g = groups[w];
        for (;;) {
            std::uint64_t t_start = 0;
            std::uint64_t cpu_start = 0;
            if (traced) {
                t_start = tr.hostNow();
                cpu_start = obs::Tracer::hostThreadCpuNs();
            }
            // Claim phase: race the cursor over this round's live
            // cores. worker_of_core is written by the claiming
            // worker and read only by that worker's own gates this
            // round; cross-round handoffs are ordered by the
            // barrier. Which worker wins a core cannot change
            // results — the interconnect gates and the deferred
            // merge order every shared-state touch by global step
            // order regardless of the partition.
            g.nmembers = 0;
            g.active = 0;
            g.steps = 0;
            g.last_progress = 0;
            for (;;) {
                int i = claim_next.fetch_add(
                    1, std::memory_order_relaxed);
                if (i >= nclaim)
                    break;
                int c = round_cores[static_cast<size_t>(i)];
                sync.worker_of_core[static_cast<size_t>(c)] =
                    static_cast<int>(w);
                g.members[static_cast<size_t>(g.nmembers)] = c;
                g.done[static_cast<size_t>(g.nmembers)] = false;
                ++g.nmembers;
                ++g.active;
                g.last_progress += *progress[c].progress;
                if (traced) {
                    tr.hostWait(static_cast<int>(w),
                                obs::Ev::StealClaim, tr.hostNow(),
                                static_cast<std::uint64_t>(c));
                }
            }
            worker_claims_[w] +=
                static_cast<std::uint64_t>(g.nmembers);
            // Publishes the group's real front before its first step
            // (kDone immediately when this worker claimed nothing).
            scheduler_.stepGroupUntil(g, progress, horizon, &sync,
                                      static_cast<int>(w));
            for (int mi = 0; mi < g.nmembers; ++mi) {
                if (g.done[static_cast<size_t>(mi)]) {
                    core_done[static_cast<size_t>(
                        g.members[static_cast<size_t>(mi)])] = true;
                }
            }
            if (traced) {
                const std::uint64_t t_arrive = tr.hostNow();
                tr.hostSpan(
                    static_cast<int>(w), obs::Ev::WorkerRound,
                    t_start, t_arrive,
                    static_cast<std::uint64_t>(g.nmembers),
                    obs::Tracer::hostThreadCpuNs() - cpu_start);
                bar.arrive_and_wait();
                tr.hostSpan(static_cast<int>(w), obs::Ev::BarrierWait,
                            t_arrive, tr.hostNow());
            } else {
                bar.arrive_and_wait();
            }
            if (stop)
                break;
        }
        if (traced)
            obs::Tracer::adoptThread(false);
    });
    icp_.endParallel();
}

} // namespace gals
