/** @file Unit tests for the deterministic Pcg32 generator. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"

using namespace gals;

TEST(Random, DeterministicForSameSeed)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Random, StreamsAreIndependent)
{
    Pcg32 a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Random, BoundedStaysInBounds)
{
    Pcg32 rng(7);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Random, BoundedIsRoughlyUniform)
{
    Pcg32 rng(11);
    int counts[8] = {0};
    const int n = 80'000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(8)];
    for (int c : counts) {
        EXPECT_GT(c, n / 8 - n / 80);
        EXPECT_LT(c, n / 8 + n / 80);
    }
}

TEST(Random, RangeInclusive)
{
    Pcg32 rng(3);
    bool lo_seen = false, hi_seen = false;
    for (int i = 0; i < 2000; ++i) {
        int v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo_seen |= v == -2;
        hi_seen |= v == 2;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Random, DoubleInUnitInterval)
{
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Pcg32 rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Random, ChanceMatchesProbability)
{
    Pcg32 rng(13);
    int hits = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.3))
            ++hits;
    }
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Random, GaussianMoments)
{
    Pcg32 rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}
