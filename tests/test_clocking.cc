/**
 * @file
 * Tests for the clocking substrate: domain clocks (edges, frequency
 * changes, jitter bounds), the PLL lock model, the Sjogren-Myers
 * synchronizer rule, and the cross-domain FIFO.
 */

#include <gtest/gtest.h>

#include "clock/clock.hh"
#include "clock/pll.hh"
#include "clock/sync_fifo.hh"
#include "clock/synchronizer.hh"

using namespace gals;

TEST(Clock, EdgesAdvanceByPeriod)
{
    Clock c(100, 100);
    EXPECT_EQ(c.nextEdge(), 100u);
    c.advance();
    EXPECT_EQ(c.nextEdge(), 200u);
    c.advance();
    EXPECT_EQ(c.nextEdge(), 300u);
    EXPECT_EQ(c.cycle(), 2u);
    EXPECT_DOUBLE_EQ(c.freqGHz(), 10.0);
}

TEST(Clock, NextEdgeAfterExtrapolates)
{
    Clock c(100, 100);
    EXPECT_EQ(c.nextEdgeAfter(0), 100u);
    EXPECT_EQ(c.nextEdgeAfter(99), 100u);
    EXPECT_EQ(c.nextEdgeAfter(100), 200u); // strictly after.
    EXPECT_EQ(c.nextEdgeAfter(1050), 1100u);
}

TEST(Clock, PeriodChangeAppliesAtScheduledEdge)
{
    Clock c(100, 100);
    c.setPeriod(250, 350);
    EXPECT_TRUE(c.changePending());
    c.advance();                       // edge 100 -> next 200.
    EXPECT_EQ(c.nextEdge(), 200u);
    c.advance();                       // edge 200 -> next 300.
    EXPECT_EQ(c.nextEdge(), 300u);
    c.advance();                       // edge 300 -> next 400 (old p).
    EXPECT_EQ(c.nextEdge(), 400u);
    c.advance();                       // edge 400 >= 350: new period.
    EXPECT_EQ(c.nextEdge(), 650u);
    EXPECT_EQ(c.period(), 250u);
    EXPECT_FALSE(c.changePending());
}

TEST(Clock, JitterBoundedAndGridStable)
{
    Clock jittered(100, 100, 3.0, 5);
    Clock clean(100, 100, 0.0, 5);
    for (int i = 0; i < 10'000; ++i) {
        jittered.advance();
        clean.advance();
        // The jittered edge wobbles around the clean grid, bounded by
        // 10% of the period; the grid itself never drifts.
        Tick nominal = clean.nextEdge();
        Tick actual = jittered.nextEdge();
        Tick diff = actual > nominal ? actual - nominal
                                     : nominal - actual;
        EXPECT_LE(diff, 10u);
    }
}

TEST(Clock, JitterZeroMatchesNominal)
{
    Clock a(137, 137, 0.0, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.nextEdge(), 137u * (i + 1));
        a.advance();
    }
}

TEST(Pll, LockTimeWithinPaperBounds)
{
    // Paper: normal with mean 15us, range 10-20us.
    Pll pll(PllParams{15.0, 1.7, 10.0, 20.0}, 3);
    Tick prev_done = 0;
    double sum = 0.0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        Tick now = prev_done;
        Tick done = pll.startRelock(now);
        Tick lock = done - now;
        EXPECT_GE(lock, 10 * kPsPerUs);
        EXPECT_LE(lock, 20 * kPsPerUs);
        sum += static_cast<double>(lock) / kPsPerUs;
        prev_done = done;
    }
    EXPECT_NEAR(sum / n, 15.0, 0.5);
    EXPECT_EQ(pll.relocks(), static_cast<std::uint64_t>(n));
}

TEST(Pll, BusyDuringLock)
{
    Pll pll({}, 4);
    Tick done = pll.startRelock(1000);
    EXPECT_TRUE(pll.busy(1000));
    EXPECT_TRUE(pll.busy(done - 1));
    EXPECT_FALSE(pll.busy(done));
}

// ---------------------------------------------------------------------
// Synchronizer rule.
// ---------------------------------------------------------------------

TEST(Synchronizer, SameDomainIsNextEdgeLatch)
{
    Clock c(100, 100);
    // Produced at 100 -> consumable around edge 200 (minus the
    // settling margin).
    Tick v = syncVisibleAt(100, c, c, true);
    EXPECT_GT(v, 100u);
    EXPECT_LE(v, 200u);
    EXPECT_GE(v, 200u - 25u);
}

TEST(Synchronizer, GuardBandAddsACycle)
{
    Clock prod(100, 100);
    Clock cons(100, 130); // consumer edges at 130, 230, ...
    // Produced at 105: next consumer edge 130, gap 25 < 30 (guard =
    // 30% of 100) -> pushed to 230.
    Tick v = syncVisibleAt(105, prod, cons, false);
    EXPECT_GT(v, 200u);
    EXPECT_LE(v, 230u);
    // Produced at 95: gap 35 >= 30 -> visible at 130.
    Tick v2 = syncVisibleAt(95, prod, cons, false);
    EXPECT_LE(v2, 130u);
    EXPECT_GT(v2, 100u);
}

TEST(Synchronizer, VisibilityNeverBeforeProduction)
{
    Clock prod(73, 73);
    Clock cons(131, 57);
    for (Tick t = 1; t < 3000; t += 13) {
        Tick v = syncVisibleAt(t, prod, cons, false);
        EXPECT_GT(v + cons.period() / 4 + 1, t);
    }
}

/** Property sweep: the guard rule holds for arbitrary phase pairs. */
class SynchronizerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SynchronizerSweep, GuardRuleHolds)
{
    auto [prod_period, cons_phase] = GetParam();
    Clock prod(static_cast<Tick>(prod_period), 50);
    Clock cons(100, static_cast<Tick>(cons_phase));
    Tick guard = static_cast<Tick>(
        0.3 * std::min<Tick>(prod_period, 100));
    for (Tick t = 1; t < 2000; t += 7) {
        Tick v = syncVisibleAt(t, prod, cons, false);
        // Undo the settling margin to recover the edge.
        Tick edge = v + cons.period() / 4;
        EXPECT_GT(edge, t);
        // The chosen edge is never inside the guard band.
        EXPECT_GE(edge - t, guard);
        // And never more than one period beyond the first candidate.
        Tick first = cons.nextEdgeAfter(t);
        EXPECT_LE(edge, first + cons.period());
    }
}

INSTANTIATE_TEST_SUITE_P(
    PhasePairs, SynchronizerSweep,
    ::testing::Combine(::testing::Values(61, 100, 137, 211),
                       ::testing::Values(0, 13, 50, 99)));

// ---------------------------------------------------------------------
// SyncFifo.
// ---------------------------------------------------------------------

TEST(SyncFifo, VisibilityGatesConsumption)
{
    SyncFifo<int> f(4);
    f.push(1, 100);
    f.push(2, 200);
    EXPECT_FALSE(f.frontReady(99));
    EXPECT_TRUE(f.frontReady(100));
    EXPECT_EQ(f.front(), 1);
    f.pop();
    EXPECT_FALSE(f.frontReady(150));
    EXPECT_TRUE(f.frontReady(250));
    EXPECT_EQ(f.front(), 2);
}

TEST(SyncFifo, CapacityEnforced)
{
    SyncFifo<int> f(2);
    EXPECT_TRUE(f.canPush());
    f.push(1, 0);
    f.push(2, 0);
    EXPECT_FALSE(f.canPush());
    f.pop();
    EXPECT_TRUE(f.canPush());
}

TEST(SyncFifo, WrapAroundAtDomainPeriodBoundaries)
{
    // Steady producer/consumer cycling far past the ring capacity:
    // the head index wraps repeatedly while per-entry visibility
    // times (one domain period downstream) keep gating consumption.
    const Tick period = 100;
    SyncFifo<int> f(4);
    int produced = 0;
    int consumed = 0;
    for (int cycle = 1; cycle <= 40; ++cycle) {
        Tick now = static_cast<Tick>(cycle) * period;
        // Consume everything visible at this edge, in order.
        while (f.frontReady(now)) {
            EXPECT_EQ(f.front(), consumed);
            EXPECT_LE(f.frontVisibleAt(), now);
            f.pop();
            ++consumed;
        }
        // Refill; entries become visible exactly one period later.
        while (f.canPush())
            f.push(produced++, now + period);
    }
    // The ring wrapped many times and nothing was lost or reordered.
    EXPECT_GT(produced, 4 * 10);
    EXPECT_EQ(static_cast<size_t>(produced - consumed), f.size());
}

TEST(SyncFifo, WrapAroundBoundaryVisibility)
{
    // An entry pushed into the physical slot just before the wrap and
    // one just after must keep distinct visibility times.
    SyncFifo<int> f(3);
    f.push(0, 10);
    f.push(1, 20);
    f.pop(); // head -> slot 1.
    f.pop(); // head -> slot 2.
    f.push(2, 30);  // slot 2 (last physical slot).
    f.push(3, 40);  // slot 0 (wrapped).
    f.push(4, 50);  // slot 1.
    EXPECT_FALSE(f.canPush());
    EXPECT_EQ(f.frontVisibleAt(), 30u);
    EXPECT_FALSE(f.frontReady(29));
    EXPECT_TRUE(f.frontReady(30));
    f.pop();
    EXPECT_EQ(f.front(), 3);
    EXPECT_EQ(f.frontVisibleAt(), 40u);
    f.pop();
    EXPECT_EQ(f.front(), 4);
    EXPECT_EQ(f.frontVisibleAt(), 50u);
}

TEST(SyncFifo, SquashAcrossWrapBoundary)
{
    SyncFifo<int> f(4);
    f.push(0, 0);
    f.push(1, 0);
    f.pop();
    f.pop(); // head at slot 2.
    for (int v = 2; v <= 5; ++v)
        f.push(v, 0); // occupies slots 2,3,0,1: wraps.
    size_t removed = f.squash([](int v) { return v % 2 == 1; });
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.front(), 2);
    f.pop();
    EXPECT_EQ(f.front(), 4);
    f.pop();
    EXPECT_TRUE(f.empty());
}

TEST(SyncFifo, FreeSlotsTracksOccupancy)
{
    SyncFifo<int> f(3);
    EXPECT_EQ(f.freeSlots(), 3u);
    f.push(1, 0);
    f.push(2, 0);
    EXPECT_EQ(f.freeSlots(), 1u);
    f.pop();
    EXPECT_EQ(f.freeSlots(), 2u);
}

TEST(SyncFifo, OrderPreservedAndSquash)
{
    SyncFifo<int> f(8);
    for (int i = 0; i < 6; ++i)
        f.push(i, 0);
    size_t removed = f.squash([](int v) { return v % 2 == 1; });
    EXPECT_EQ(removed, 3u);
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.front(), 0);
    f.pop();
    EXPECT_EQ(f.front(), 2);
    f.clear();
    EXPECT_TRUE(f.empty());
}

// ---------------------------------------------------------------------
// Event-kernel clock machinery.
// ---------------------------------------------------------------------

TEST(Clock, AdvanceWhileBelowMatchesSteppedAdvance)
{
    Clock fast(100, 100);
    Clock stepped(100, 100);
    fast.advanceWhileBelow(1'050);
    while (stepped.nextEdge() < 1'050)
        stepped.advance();
    EXPECT_EQ(fast.nextEdge(), stepped.nextEdge());
    EXPECT_EQ(fast.cycle(), stepped.cycle());

    // Already at or past the bound: no edges consumed.
    Tick before = fast.nextEdge();
    fast.advanceWhileBelow(before);
    EXPECT_EQ(fast.nextEdge(), before);
}

TEST(Clock, AdvanceWhileBelowStopsAtPendingPeriodChange)
{
    // The landing edge of a period change is never skippable: jitter
    // can deliver it below the skip target even though its nominal
    // position is past the change-due time, and the scheduler must
    // consume it with a real step anyway (the epoch bump broadcasts
    // there). The skip stops just before the landing; delivering it
    // and resuming matches edge-by-edge execution exactly.
    Clock fast(100, 100);
    Clock stepped(100, 100);
    fast.setPeriod(250, 550);
    stepped.setPeriod(250, 550);
    fast.advanceWhileBelow(3'000);
    EXPECT_EQ(fast.nextEdge(), 600u);
    EXPECT_TRUE(fast.changePending());
    fast.advance(); // the scheduler's real step at the landing edge
    EXPECT_EQ(fast.periodChanges(), 1u);
    EXPECT_EQ(fast.period(), 250u);
    fast.advanceWhileBelow(3'000);
    while (stepped.nextEdge() < 3'000)
        stepped.advance();
    EXPECT_EQ(fast.nextEdge(), stepped.nextEdge());
    EXPECT_EQ(fast.cycle(), stepped.cycle());
}

TEST(Clock, AdvanceWhileBelowPreservesJitterStream)
{
    Clock fast(100, 100, 5.0, 99);
    Clock stepped(100, 100, 5.0, 99);
    fast.advanceWhileBelow(2'000);
    while (stepped.nextEdge() < 2'000)
        stepped.advance();
    EXPECT_EQ(fast.nextEdge(), stepped.nextEdge());
    EXPECT_EQ(fast.cycle(), stepped.cycle());
}

TEST(Synchronizer, BypassVisibleAtAppliesMargin)
{
    Clock c(100, 100);
    // Production mid-cycle latches at the next edge, reported a
    // quarter period early (the anti-wobble margin).
    EXPECT_EQ(bypassVisibleAt(95, c), 100u - 25u);
    EXPECT_EQ(bypassVisibleAt(101, c), 200u - 25u);
    // On-edge production is consumable at that edge.
    EXPECT_EQ(bypassVisibleAt(100, c), 100u - 25u);
    // Production time zero is the "always ready" sentinel.
    EXPECT_EQ(bypassVisibleAt(0, c), 0u);
}

TEST(Synchronizer, BypassVisibleAtClampsMarginAtEarlyEdges)
{
    // Seed bug: an edge earlier than the margin reported visibility
    // at tick 0 — a full cycle before production. The margin may not
    // rewind past the previous edge; a first edge earlier than one
    // period has no predecessor and gets no rewind at all.
    Clock early(100, 10);
    EXPECT_EQ(bypassVisibleAt(5, early), 10u);
    Clock tiny(100, 60);
    EXPECT_EQ(bypassVisibleAt(50, tiny), 60u);
}
