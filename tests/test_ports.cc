/**
 * @file
 * Port-layer unit tests: the publication-order rule lives in
 * core/ports.hh and nowhere else, so these tests pin its semantics
 * directly — a publication at tick t is consumable by a
 * higher-indexed domain at t and by a lower-indexed domain strictly
 * after t, and a deliberately mis-ordered explicit wake is rejected
 * (asserted) by the port rather than silently delivered. The FIFO
 * and store-buffer ports must wake their producer exactly on the
 * pop-from-full transition.
 */

#include <gtest/gtest.h>

#include <array>

#include "clock/clock.hh"
#include "core/domain.hh"
#include "core/ports.hh"

using namespace gals;

namespace
{

/** Four identical 1 GHz clocks on a clean grid. */
std::array<Clock, 4>
testClocks()
{
    return {Clock(1000, 1000), Clock(1000, 1000), Clock(1000, 1000),
            Clock(1000, 1000)};
}

} // namespace

TEST(Ports, PublishRespectsPublicationOrder)
{
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    fabric.beginEventRun();
    // Park everything so the recorded wake bounds are visible.
    for (int d = 0; d < kNumDomains; ++d)
        fabric.setBound(d, kTickMax);

    // Load/store (3) publishing to the front end (0): the front
    // end's step at t already ran, so the wake lands strictly after.
    WakePort up(hub, DomainId::LoadStore, DomainId::FrontEnd);
    up.publish(5000);
    EXPECT_EQ(fabric.bound(0), 5001u);

    // Front end (0) publishing to the load/store unit (3): the
    // consumer steps after the producer on equal ticks, so the wake
    // lands at t itself.
    WakePort down(hub, DomainId::FrontEnd, DomainId::LoadStore);
    down.publish(5000);
    EXPECT_EQ(fabric.bound(3), 5000u);

    // Self-publication is consumable at the same tick (the reference
    // kernel's next step of this domain is after t).
    WakePort self(hub, DomainId::Integer, DomainId::Integer);
    self.publish(7000);
    EXPECT_EQ(fabric.bound(1), 7000u);
}

TEST(Ports, PublishAtAcceptsRuleRespectingTimes)
{
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    for (int d = 0; d < kNumDomains; ++d)
        fabric.setBound(d, kTickMax);

    WakePort up(hub, DomainId::Integer, DomainId::FrontEnd);
    up.publishAt(4000, 4001); // earliest legal tick.
    EXPECT_EQ(fabric.bound(0), 4001u);

    WakePort down(hub, DomainId::FrontEnd, DomainId::Integer);
    down.publishAt(4000, 4000); // equal tick legal for dst > src.
    EXPECT_EQ(fabric.bound(1), 4000u);

    // Wakes never move a bound later (monotone min).
    up.publishAt(4000, 9000);
    EXPECT_EQ(fabric.bound(0), 4001u);
}

TEST(PortsDeathTest, MisorderedPublicationIsRejected)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);

    // A wake at t toward a lower-indexed domain claims the consumer
    // can observe state its step at t provably did not see — exactly
    // the divergence class the rule exists to prevent. The port must
    // reject it, not deliver it.
    WakePort up(hub, DomainId::LoadStore, DomainId::FrontEnd);
    EXPECT_DEATH(up.publishAt(5000, 5000), "publication order");
    EXPECT_DEATH(up.publishAt(5000, 4999), "publication order");

    // Same rule for the re-lock landing channel.
    ReclockPort reclock(hub);
    EXPECT_DEATH(reclock.schedule(DomainId::FrontEnd, 0, 5000),
                 "publication");
}

TEST(Ports, DispatchPortWakesProducerOnlyOnPopFromFull)
{
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    for (int d = 0; d < kNumDomains; ++d)
        fabric.setBound(d, kTickMax);

    DispatchPort port(hub, DomainId::FrontEnd, DomainId::Integer, 2);
    port.push(7, 2000, 1000);
    // The consumer is woken for the entry's visibility time.
    EXPECT_EQ(fabric.bound(1), 2000u);

    // Pop while the FIFO was not full: rename was not blocked on it,
    // so the producer must NOT be woken.
    port.consume(2000, [](size_t) { return true; });
    EXPECT_EQ(fabric.bound(0), kTickMax);

    // Fill it, then pop: the producer wakes strictly after the
    // consuming step's tick (Integer > FrontEnd).
    port.push(8, 3000, 2500);
    port.push(9, 3000, 2500);
    EXPECT_EQ(port.freeSlots(), 0u);
    port.consume(3000, [](size_t) { return true; });
    EXPECT_EQ(fabric.bound(0), 3001u);
}

TEST(Ports, StoreBufferPortWakesFrontEndOnPopFromFull)
{
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    for (int d = 0; d < kNumDomains; ++d)
        fabric.setBound(d, kTickMax);

    Lsq lsq(8);
    StoreBufferPort sb(hub, lsq, 2);
    sb.push(0x10, 1000);
    EXPECT_EQ(fabric.bound(3), 1000u); // drain side woken at push tick.

    sb.pop(2000); // was not full: retire was not blocked.
    EXPECT_EQ(fabric.bound(0), kTickMax);

    sb.push(0x11, 3000);
    sb.push(0x12, 3000);
    EXPECT_TRUE(sb.full());
    sb.pop(4000); // pop-from-full unblocks retire, strictly after.
    EXPECT_EQ(fabric.bound(0), 4001u);
}

TEST(Ports, StoreBufferPushWakesMatchingMshrWaitersOnly)
{
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    for (int d = 0; d < kNumDomains; ++d)
        fabric.setBound(d, kTickMax);

    // Two MSHR-waiting (kind-2) loads on distinct lines.
    Lsq lsq(8);
    std::uint64_t a = lsq.allocate(0, false, 0x10);
    std::uint64_t b = lsq.allocate(1, false, 0x20);
    lsq.byId(a).wait_kind = 2;
    lsq.addMshrWaiter(a);
    lsq.byId(b).wait_kind = 2;
    lsq.addMshrWaiter(b);
    ASSERT_EQ(lsq.mshrWaiterCount(), 2u);
    std::uint32_t wakes = lsq.wakeEvents();

    StoreBufferPort sb(hub, lsq, 4);

    // A push of an unrelated line wakes nobody: the walk summary's
    // wake snapshot stays valid, so the sleeping domain is not forced
    // through a full queue re-walk.
    sb.push(0x30, 1000);
    EXPECT_EQ(lsq.wakeEvents(), wakes);
    EXPECT_EQ(lsq.byId(a).wait_kind, 2);
    EXPECT_EQ(lsq.byId(b).wait_kind, 2);
    EXPECT_EQ(lsq.mshrWaiterCount(), 2u);

    // A matching-line push clears exactly that waiter's memo and
    // bumps the wake counter once.
    sb.push(0x10, 2000);
    EXPECT_EQ(lsq.wakeEvents(), wakes + 1);
    EXPECT_EQ(lsq.byId(a).wait_kind, 0);
    EXPECT_EQ(lsq.byId(b).wait_kind, 2);
    EXPECT_EQ(lsq.mshrWaiterCount(), 1u);

    // The swap-removal kept the survivor's slot memo coherent: an
    // explicit removal (the wait_until expiry path) still finds it.
    lsq.removeMshrWaiter(lsq.byId(b));
    EXPECT_EQ(lsq.mshrWaiterCount(), 0u);
}

TEST(Ports, EpochBumpBroadcastFollowsReferenceOrder)
{
    std::array<Clock, 4> clocks = testClocks();
    CoreTiming timing(clocks.data(), false);
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    for (int d = 0; d < kNumDomains; ++d)
        fabric.setBound(d, kTickMax);

    EpochBumpPort port(hub, timing);
    std::uint32_t before = timing.epoch();
    // Domain 2's period change lands at t: lower-indexed sleepers
    // already stepped at t under the old grid and re-derive strictly
    // after; higher-indexed ones step at t itself.
    port.broadcast(2, 8000);
    EXPECT_EQ(timing.epoch(), before + 1);
    EXPECT_EQ(fabric.bound(0), 8001u);
    EXPECT_EQ(fabric.bound(1), 8001u);
    EXPECT_EQ(fabric.bound(2), kTickMax); // the changed domain itself.
    EXPECT_EQ(fabric.bound(3), 8000u);
}

TEST(Ports, WakeHubHeadPrefersEarliestThenLowestIndex)
{
    std::array<Clock, 4> clocks = testClocks();
    WakeFabric fabric(clocks.data(), kNumDomains);
    WakeHub hub(fabric, 0, kNumDomains);
    fabric.setKey(0, 5000);
    fabric.setKey(1, 4000);
    fabric.setKey(2, 4000);
    fabric.setKey(3, 6000);
    EXPECT_EQ(fabric.head(), 1); // earliest wins; ties to lowest index.
    fabric.park(1);
    EXPECT_EQ(fabric.head(), 2);
}
