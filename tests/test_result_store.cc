/**
 * @file
 * Content-addressed result store tests (sim/result_store.hh). The
 * contract under test is "recompute, never trust": truncated,
 * bit-flipped, stale-version and hash-colliding records all degrade
 * to misses with correct recomputed results; writes are atomic under
 * concurrent writers (threads and separate processes); and a
 * warm-cache sweep rerun is byte-identical to the cache-off run
 * while being several times faster — the property the whole store
 * exists for.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "harness.hh"
#include "sim/report.hh"
#include "sim/result_store.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace gals;
using harness::expectSameStats;
namespace fs = std::filesystem;

namespace
{

/** Fresh temp cache dir per test; global store disabled on exit so
 * later tests (and the rest of the suite) stay cache-off. */
class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gals_rs_test_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        configureResultStore("");
        fs::remove_all(dir_);
    }

    std::string dir_;
};

/** A cheap single-core point for store round trips. */
WorkloadParams
tinyWorkload()
{
    WorkloadParams wl = findBenchmark("gzip");
    wl.sim_instrs = 1'200;
    wl.warmup_instrs = 200;
    return wl;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST_F(ResultStoreTest, KeyIsStableAndFieldSensitive)
{
    MachineConfig m = MachineConfig::mcdProgram({1, 2, 3, 0});
    WorkloadParams wl = tinyWorkload();

    const std::string base = resultKey(m, wl);
    EXPECT_EQ(base, resultKey(m, wl)); // deterministic.

    // Any semantic field change must move the key.
    {
        WorkloadParams t = wl;
        t.seed += 1;
        EXPECT_NE(base, resultKey(m, t));
    }
    {
        WorkloadParams t = wl;
        t.sim_instrs += 1;
        EXPECT_NE(base, resultKey(m, t));
    }
    {
        WorkloadParams t = wl;
        t.phases.front().load_frac += 1e-9;
        EXPECT_NE(base, resultKey(m, t));
    }
    {
        MachineConfig t = m;
        t.adaptive.dcache = 3;
        EXPECT_NE(base, resultKey(t, wl));
    }
    {
        MachineConfig t = m;
        t.jitter_sigma_ps = 1.0;
        EXPECT_NE(base, resultKey(t, wl));
    }

    // Chip keys: distinct from single-core keys and sensitive to the
    // chip-level knobs and every per-core workload.
    ChipConfig cc;
    cc.machine = m;
    cc.cores = 2;
    std::vector<WorkloadParams> mix{perCoreWorkload(wl, 0),
                                    perCoreWorkload(wl, 1)};
    const std::string chip = resultKey(cc, mix);
    EXPECT_NE(chip, base);
    {
        ChipConfig t = cc;
        t.coh_delay_ps += 1;
        EXPECT_NE(chip, resultKey(t, mix));
    }
    {
        auto t = mix;
        t[1].seed += 1;
        EXPECT_NE(chip, resultKey(cc, t));
    }
}

TEST_F(ResultStoreTest, RunStatsSerializationRoundTripsExactly)
{
    // A phase-adaptive run exercises every field: residency spread,
    // relocks and a nonempty reconfiguration trace.
    MachineConfig m = MachineConfig::mcdPhaseAdaptive();
    WorkloadParams wl = tinyWorkload();
    wl.sim_instrs = 6'000;
    RunStats fresh = simulate(m, wl);

    RunStats back;
    ASSERT_TRUE(deserializeRunStats(serializeRunStats(fresh), back));
    expectSameStats(fresh, back);
    EXPECT_EQ(fresh.benchmark, back.benchmark);
    EXPECT_EQ(fresh.config, back.config);
    ASSERT_EQ(fresh.trace.events().size(), back.trace.events().size());
    for (size_t i = 0; i < fresh.trace.events().size(); ++i) {
        const ReconfigEvent &a = fresh.trace.events()[i];
        const ReconfigEvent &b = back.trace.events()[i];
        EXPECT_EQ(a.committed_instrs, b.committed_instrs);
        EXPECT_EQ(a.structure, b.structure);
        EXPECT_EQ(a.from_index, b.from_index);
        EXPECT_EQ(a.to_index, b.to_index);
    }

    // Malformed payloads must fail cleanly, never crash.
    std::string bytes = serializeRunStats(fresh);
    RunStats scratch;
    EXPECT_FALSE(deserializeRunStats("", scratch));
    EXPECT_FALSE(deserializeRunStats(
        bytes.substr(0, bytes.size() / 2), scratch));
    EXPECT_FALSE(deserializeRunStats(bytes + "x", scratch));
}

TEST_F(ResultStoreTest, ChipRunStatsSerializationRoundTripsExactly)
{
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = 2;
    std::vector<WorkloadParams> mix{
        perCoreWorkload(tinyWorkload(), 0),
        perCoreWorkload(tinyWorkload(), 1)};
    Chip chip(cc, mix);
    ChipRunStats fresh = chip.run();

    ChipRunStats back;
    ASSERT_TRUE(deserializeChipRunStats(
        serializeChipRunStats(fresh), back));
    ASSERT_EQ(fresh.cores.size(), back.cores.size());
    for (size_t c = 0; c < fresh.cores.size(); ++c)
        expectSameStats(fresh.cores[c], back.cores[c]);
    EXPECT_EQ(fresh.total_committed, back.total_committed);
    EXPECT_EQ(fresh.makespan_ps, back.makespan_ps);
    EXPECT_EQ(fresh.l2_accesses, back.l2_accesses);
    EXPECT_EQ(fresh.l2_misses, back.l2_misses);
    EXPECT_EQ(fresh.bank_conflicts, back.bank_conflicts);
    EXPECT_EQ(fresh.bank_mshr_waits, back.bank_mshr_waits);
    EXPECT_EQ(fresh.fill_merges, back.fill_merges);
    EXPECT_EQ(fresh.invalidations, back.invalidations);
    EXPECT_EQ(fresh.ownership_transfers, back.ownership_transfers);
}

TEST_F(ResultStoreTest, CachedSimulateHitsAfterMiss)
{
    configureResultStore(dir_);
    ASSERT_TRUE(resultStore().enabled());

    MachineConfig m = MachineConfig::bestSynchronous();
    WorkloadParams wl = tinyWorkload();
    RunStats live = simulate(m, wl);

    RunStats cold = cachedSimulate(m, wl);
    expectSameStats(live, cold);
    ResultStore::Counters c = resultStore().counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.stores, 1u);

    RunStats warm = cachedSimulate(m, wl);
    expectSameStats(live, warm);
    EXPECT_EQ(warm.benchmark, live.benchmark);
    EXPECT_EQ(warm.config, live.config);
    c = resultStore().counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.rejects, 0u);
}

TEST_F(ResultStoreTest, DisabledStoreIsInertAndTouchesNothing)
{
    // No configure: the default store must be disabled (the env var
    // is not set in the test environment).
    ASSERT_FALSE(resultStore().enabled());
    MachineConfig m = MachineConfig::bestSynchronous();
    WorkloadParams wl = tinyWorkload();
    expectSameStats(simulate(m, wl), cachedSimulate(m, wl));
    std::string payload;
    EXPECT_FALSE(resultStore().lookup("anything", payload));
    resultStore().store("anything", "bytes"); // no-op, no crash.
    EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(ResultStoreTest, TruncatedRecordDegradesToMiss)
{
    configureResultStore(dir_);
    MachineConfig m = MachineConfig::bestSynchronous();
    WorkloadParams wl = tinyWorkload();
    RunStats live = cachedSimulate(m, wl);

    std::string key = resultKey(m, wl);
    std::string path = resultStore().recordPath(key);
    std::string good = fileBytes(path);
    ASSERT_GT(good.size(), 16u);

    // Every truncation point — including an empty file — must reject
    // and then recompute the exact result.
    for (size_t keep : {size_t{0}, size_t{7}, good.size() / 2,
                        good.size() - 1}) {
        SCOPED_TRACE(keep);
        writeBytes(path, good.substr(0, keep));
        std::string payload;
        EXPECT_FALSE(resultStore().lookup(key, payload));
        expectSameStats(live, cachedSimulate(m, wl)); // recomputed...
        std::string again;
        EXPECT_TRUE(resultStore().lookup(key, again)); // ...restored.
    }
    EXPECT_GT(resultStore().counters().rejects, 0u);
}

TEST_F(ResultStoreTest, FlippedByteDegradesToMiss)
{
    configureResultStore(dir_);
    MachineConfig m = MachineConfig::bestSynchronous();
    WorkloadParams wl = tinyWorkload();
    RunStats live = cachedSimulate(m, wl);

    std::string key = resultKey(m, wl);
    std::string path = resultStore().recordPath(key);
    std::string good = fileBytes(path);

    // Flip one byte in every region of the record: magic, header,
    // middle (payload), and the checksum itself.
    for (size_t at : {size_t{0}, size_t{9}, good.size() / 2,
                      good.size() - 3}) {
        SCOPED_TRACE(at);
        std::string bad = good;
        bad[at] = static_cast<char>(bad[at] ^ 0x40);
        writeBytes(path, bad);
        std::string payload;
        EXPECT_FALSE(resultStore().lookup(key, payload));
        expectSameStats(live, cachedSimulate(m, wl));
    }
}

TEST_F(ResultStoreTest, StaleCodeVersionTagDegradesToMiss)
{
    MachineConfig m = MachineConfig::bestSynchronous();
    WorkloadParams wl = tinyWorkload();
    std::string key = resultKey(m, wl);

    // A record written by an older simulator version...
    ResultStore old_version;
    ASSERT_TRUE(old_version.open(dir_, "gals-results-v0:ancient"));
    old_version.store(key, "payload from an older simulator");
    std::string payload;
    ASSERT_TRUE(old_version.lookup(key, payload));

    // ...is structurally intact but must be rejected by the current
    // version and transparently recomputed.
    configureResultStore(dir_);
    EXPECT_FALSE(resultStore().lookup(key, payload));
    EXPECT_EQ(resultStore().counters().rejects, 1u);
    expectSameStats(simulate(m, wl), cachedSimulate(m, wl));
    EXPECT_TRUE(resultStore().lookup(key, payload));
}

TEST_F(ResultStoreTest, ForeignRecordAtCollidingPathDegradesToMiss)
{
    // Simulate a 128-bit hash collision: a checksum-valid record for
    // key A sitting at key B's path. The full-key comparison inside
    // the record must reject it.
    configureResultStore(dir_);
    resultStore().store("key-A", "payload-A");
    std::string a_path = resultStore().recordPath("key-A");
    std::string b_path = resultStore().recordPath("key-B");
    fs::copy_file(a_path, b_path);

    std::string payload;
    EXPECT_FALSE(resultStore().lookup("key-B", payload));
    EXPECT_EQ(resultStore().counters().rejects, 1u);
    EXPECT_TRUE(resultStore().lookup("key-A", payload));
    EXPECT_EQ(payload, "payload-A");
}

TEST_F(ResultStoreTest, UnusableDirectoryDisablesWithFallback)
{
    // A path that cannot be a directory (parent is a file): open must
    // warn and leave the store disabled — never crash (the
    // threadCountFromEnv logged-fallback contract).
    fs::create_directories(dir_);
    std::string file = dir_ + "/plain_file";
    writeBytes(file, "not a directory");

    ResultStore store;
    EXPECT_FALSE(store.open(file + "/subdir"));
    EXPECT_FALSE(store.enabled());

    // And the global configure path degrades the same way: caching
    // off, simulation still correct.
    configureResultStore(file + "/subdir");
    EXPECT_FALSE(resultStore().enabled());
    MachineConfig m = MachineConfig::bestSynchronous();
    WorkloadParams wl = tinyWorkload();
    expectSameStats(simulate(m, wl), cachedSimulate(m, wl));
}

TEST_F(ResultStoreTest, ConcurrentThreadWritersStayCorrect)
{
    configureResultStore(dir_);
    constexpr int kThreads = 4;
    constexpr int kKeys = 8;

    // All threads hammer the same small key set; readers must only
    // ever observe a miss or the exact expected payload.
    std::vector<std::thread> threads;
    std::atomic<int> bad{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 50; ++round) {
                int k = (t + round) % kKeys;
                std::string key = "shared-key-" + std::to_string(k);
                std::string expect = "payload-" + std::to_string(k);
                resultStore().store(key, expect);
                std::string got;
                if (resultStore().lookup(key, got) && got != expect)
                    bad.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    for (int k = 0; k < kKeys; ++k) {
        std::string got;
        ASSERT_TRUE(resultStore().lookup(
            "shared-key-" + std::to_string(k), got));
        EXPECT_EQ(got, "payload-" + std::to_string(k));
    }
}

TEST_F(ResultStoreTest, ConcurrentProcessWritersStayCorrect)
{
    // Two child processes race writes of the same keys into one cache
    // dir (the sweep_shard.py topology). Atomic temp+rename plus
    // deterministic payloads make last-wins harmless; afterwards every
    // record must be intact and exact.
    configureResultStore(dir_);
    constexpr int kKeys = 16;
    auto key_of = [](int k) { return "proc-key-" + std::to_string(k); };
    auto payload_of = [](int k) {
        return std::string("proc-payload-") + std::to_string(k) +
               std::string(1000, static_cast<char>('a' + k % 26));
    };

    pid_t pids[2];
    for (int child = 0; child < 2; ++child) {
        pids[child] = ::fork();
        ASSERT_GE(pids[child], 0);
        if (pids[child] == 0) {
            // Child: write every key many times, opposite orders so
            // the two processes collide on the same names.
            for (int round = 0; round < 25; ++round) {
                for (int i = 0; i < kKeys; ++i) {
                    int k = child == 0 ? i : kKeys - 1 - i;
                    resultStore().store(key_of(k), payload_of(k));
                }
            }
            ::_exit(0);
        }
    }
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    for (int k = 0; k < kKeys; ++k) {
        std::string got;
        ASSERT_TRUE(resultStore().lookup(key_of(k), got)) << k;
        EXPECT_EQ(got, payload_of(k)) << k;
    }
    // No abandoned temp files (every write published or cleaned up).
    for (const auto &entry : fs::directory_iterator(dir_)) {
        EXPECT_EQ(entry.path().extension(), ".grs")
            << entry.path().string();
    }
}

TEST_F(ResultStoreTest, ShardResumeAssemblesFreshAndCachedRows)
{
    // A killed shard run resumes from the store: shard 0/2 completes
    // (cold), then the full sweep reruns — half hits, half fresh —
    // and the result is byte-identical to a cache-off sweep.
    WorkloadParams wl = tinyWorkload();
    wl.sim_instrs = 400;
    wl.warmup_instrs = 100;

    std::string off_json = adaptiveSweepShardJson(
        sweepAdaptiveRaw(wl, ShardSpec{}), wl.name, ShardSpec{});

    configureResultStore(dir_);
    sweepAdaptiveRaw(wl, ShardSpec{0, 2}); // the "killed" run's half.
    ResultStore::Counters c = resultStore().counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, 128u);

    std::string resumed_json = adaptiveSweepShardJson(
        sweepAdaptiveRaw(wl, ShardSpec{}), wl.name, ShardSpec{});
    c = resultStore().counters();
    EXPECT_EQ(c.hits, 128u);   // shard 0's rows came from the store,
    EXPECT_EQ(c.misses, 256u); // shard 1's 128 were computed fresh.
    EXPECT_EQ(resumed_json, off_json);
}

TEST_F(ResultStoreTest, WarmSweepIsByteIdenticalAndFaster)
{
    // The acceptance gate: a >=64-point sweep rerun warm must be >=5x
    // faster wall-clock than the cold run and byte-identical to the
    // cache-off output. The window is sized so the cold run does real
    // work (~100s of ms) while the warm run is pure record reads.
    WorkloadParams wl = tinyWorkload();
    wl.sim_instrs = 4'000;
    wl.warmup_instrs = 800;

    std::string off_json = adaptiveSweepShardJson(
        sweepAdaptiveRaw(wl, ShardSpec{}), wl.name, ShardSpec{});

    using clock = std::chrono::steady_clock;
    configureResultStore(dir_);

    auto t0 = clock::now();
    sweepAdaptiveRaw(wl, ShardSpec{});
    auto t1 = clock::now();
    std::string warm_json = adaptiveSweepShardJson(
        sweepAdaptiveRaw(wl, ShardSpec{}), wl.name, ShardSpec{});
    auto t2 = clock::now();

    EXPECT_EQ(warm_json, off_json);
    ResultStore::Counters c = resultStore().counters();
    EXPECT_EQ(c.misses, 256u);
    EXPECT_EQ(c.hits, 256u);
    EXPECT_EQ(c.rejects, 0u);

    double cold_s = std::chrono::duration<double>(t1 - t0).count();
    double warm_s = std::chrono::duration<double>(t2 - t1).count();
    EXPECT_GE(cold_s, warm_s * 5.0)
        << "cold " << cold_s << "s vs warm " << warm_s << "s";
}
