/** @file Unit tests for counters, distributions and table rendering. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gals;

TEST(Counter, IncrementAndReset)
{
    Counter c("ops");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.name(), "ops");
}

TEST(Average, Moments)
{
    Average a("lat");
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsAndOverflow)
{
    Distribution d("d", 0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(0.0);
    d.sample(1.9);
    d.sample(2.0);
    d.sample(9.99);
    d.sample(10.0);
    d.sample(100.0, 2);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 3u);
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.samples(), 8u);
    EXPECT_FALSE(d.toString().empty());
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
}

TEST(StatGroup, RegisterFindDump)
{
    StatGroup g("core");
    Counter &a = g.addCounter("fetches");
    Counter &b = g.addCounter("retires");
    a.inc(5);
    b.inc(3);
    EXPECT_EQ(g.findCounter("fetches")->value(), 5u);
    EXPECT_EQ(g.findCounter("missing"), nullptr);
    std::string dump = g.dump();
    EXPECT_NE(dump.find("core.fetches 5"), std::string::npos);
    EXPECT_NE(dump.find("core.retires 3"), std::string::npos);
    g.resetAll();
    EXPECT_EQ(g.findCounter("fetches")->value(), 0u);
}

TEST(TextTable, AlignedRendering)
{
    TextTable t("Title");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRule();
    t.addRow({"long-name", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("| a "), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    // Every data line must have the same width.
    size_t first = s.find("\n+");
    ASSERT_NE(first, std::string::npos);
}

TEST(BarChart, ScalesAndLabels)
{
    std::string s = renderBarChart("chart", {"x", "yy"}, {1.0, 2.0},
                                   2.0, 10, "u");
    EXPECT_NE(s.find("chart"), std::string::npos);
    EXPECT_NE(s.find("##########"), std::string::npos); // full bar.
    EXPECT_NE(s.find("2.000u"), std::string::npos);
}

TEST(Logging, Csprintf)
{
    EXPECT_EQ(csprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(csprintf("%05.1f", 2.25), "002.2");
}
