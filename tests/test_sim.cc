/** @file Tests for the sweep, study and report layers. */

#include <gtest/gtest.h>

#include <set>

#include "sim/parallel.hh"
#include "sim/report.hh"
#include "sim/simulation.hh"
#include "sim/study.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{
WorkloadParams
shrunk(const char *name, std::uint64_t instrs = 12'000)
{
    WorkloadParams w = findBenchmark(name);
    w.sim_instrs = instrs;
    w.warmup_instrs = 3'000;
    return w;
}
} // namespace

TEST(Parallel, CoversAllIndicesOnce)
{
    std::vector<int> hits(500, 0);
    parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Parallel, SingleThreadFallback)
{
    int sum = 0;
    parallelFor(10, [&](size_t i) { sum += static_cast<int>(i); }, 1);
    EXPECT_EQ(sum, 45);
}

TEST(Sweep, All256AdaptiveConfigsUnique)
{
    auto configs = allAdaptiveConfigs();
    EXPECT_EQ(configs.size(), 256u);
    std::set<std::string> seen;
    for (const AdaptiveConfig &c : configs)
        EXPECT_TRUE(seen.insert(c.str()).second);
}

TEST(Sweep, ModeFromEnv)
{
    unsetenv("GALS_SWEEP");
    EXPECT_EQ(sweepModeFromEnv(), SweepMode::Staged);
    setenv("GALS_SWEEP", "exhaustive", 1);
    EXPECT_EQ(sweepModeFromEnv(), SweepMode::Exhaustive);
    setenv("GALS_SWEEP", "staged", 1);
    EXPECT_EQ(sweepModeFromEnv(), SweepMode::Staged);
    unsetenv("GALS_SWEEP");
}

TEST(Sweep, StagedSearchImprovesOnBase)
{
    WorkloadParams w = shrunk("em3d");
    RunStats base = simulate(MachineConfig::mcdProgram({}), w);
    ProgramAdaptiveResult r = findBestAdaptive(w, SweepMode::Staged);
    EXPECT_LE(runtimeNs(r.best_stats), runtimeNs(base) + 1.0);
    EXPECT_GE(r.runs_performed, 13u);
    // em3d is memory-bound: the search must upsize the cache pair.
    EXPECT_GT(r.best.dcache, 0);
}

TEST(Sweep, SynchronousSweepRanksAndNormalizes)
{
    std::vector<WorkloadParams> suite = {shrunk("adpcm encode"),
                                         shrunk("gsm decode")};
    auto points = sweepSynchronous(suite, false);
    EXPECT_EQ(points.size(), 64u);
    EXPECT_DOUBLE_EQ(points.front().norm_runtime, 1.0);
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_GE(points[i].norm_runtime, points[i - 1].norm_runtime);
}

TEST(Study, TwoBenchmarkStudyIsCoherent)
{
    // em3d keeps its full (auto-scaled) window: its memory-bound
    // character needs several passes over the data pool.
    std::vector<WorkloadParams> suite = {findBenchmark("em3d"),
                                         shrunk("adpcm encode")};
    StudyResult r = runStudy(suite, SweepMode::Staged, false);
    ASSERT_EQ(r.benchmarks.size(), 2u);
    for (const BenchmarkResult &b : r.benchmarks) {
        EXPECT_GT(b.sync_ns, 0.0);
        EXPECT_GT(b.program_ns, 0.0);
        EXPECT_GT(b.phase_ns, 0.0);
        // Improvement formulae are consistent with the times.
        EXPECT_NEAR(b.programImprovement(),
                    b.sync_ns / b.program_ns - 1.0, 1e-12);
    }
    // em3d (memory-bound) must show a large Program-Adaptive gain.
    EXPECT_GT(r.benchmarks[0].programImprovement(), 0.2);
    // Averages are the arithmetic mean.
    EXPECT_NEAR(r.avgProgramImprovement(),
                (r.benchmarks[0].programImprovement() +
                 r.benchmarks[1].programImprovement()) / 2.0,
                1e-12);
    // Table 9 distributions count all benchmarks.
    auto d = r.distDcache();
    EXPECT_EQ(d[0] + d[1] + d[2] + d[3], 2);
}

TEST(Report, Figure6Rendering)
{
    std::vector<WorkloadParams> suite = {shrunk("adpcm encode", 8000)};
    StudyResult r = runStudy(suite, SweepMode::Staged, false);
    std::string fig = renderFigure6(r);
    EXPECT_NE(fig.find("Figure 6"), std::string::npos);
    EXPECT_NE(fig.find("adpcm encode"), std::string::npos);
    EXPECT_NE(fig.find("AVERAGE"), std::string::npos);
    std::string t9 = renderTable9(r);
    EXPECT_NE(t9.find("Table 9"), std::string::npos);
    EXPECT_NE(t9.find("32k1W/256k1W"), std::string::npos);
    EXPECT_NE(t9.find("100%"), std::string::npos);
}

TEST(Report, ReconfigTraceRendering)
{
    ReconfigTrace trace;
    trace.record(10'000, Structure::DCachePair, 0, 2);
    trace.record(50'000, Structure::DCachePair, 2, 0);
    std::string s = renderReconfigTrace(
        "apsi D/L2 cache configurations", trace,
        Structure::DCachePair, 0, 100'000,
        {"32k1W/256k1W", "64k2W/512k2W", "128k4W/1024k4W",
         "256k8W/2048k8W"});
    EXPECT_NE(s.find("apsi"), std::string::npos);
    EXPECT_NE(s.find("128k4W/1024k4W"), std::string::npos);
    EXPECT_NE(s.find("2 reconfigurations"), std::string::npos);
    // Both levels appear as drawn rows.
    EXPECT_NE(s.find('#'), std::string::npos);
}
