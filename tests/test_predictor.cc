/** @file Tests for the McFarling hybrid branch predictor. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/hybrid_predictor.hh"
#include "timing/frequency_model.hh"

using namespace gals;

namespace
{
/** Train/evaluate one site pattern; returns accuracy in [0,1]. */
double
accuracy(HybridPredictor &bp, Addr pc,
         const std::vector<bool> &pattern, int train_rounds,
         int eval_rounds)
{
    size_t pos = 0;
    for (int i = 0; i < train_rounds; ++i) {
        bool outcome = pattern[pos];
        pos = (pos + 1) % pattern.size();
        auto p = bp.predict(pc);
        bp.update(pc, p, outcome);
    }
    int correct = 0;
    for (int i = 0; i < eval_rounds; ++i) {
        bool outcome = pattern[pos];
        pos = (pos + 1) % pattern.size();
        auto p = bp.predict(pc);
        if (bp.update(pc, p, outcome))
            ++correct;
    }
    return correct / static_cast<double>(eval_rounds);
}
} // namespace

TEST(Predictor, LearnsAlwaysTaken)
{
    HybridPredictor bp(icacheConfig(0).predictor);
    EXPECT_GT(accuracy(bp, 0x1000, {true}, 50, 200), 0.99);
}

TEST(Predictor, LearnsAlwaysNotTaken)
{
    HybridPredictor bp(icacheConfig(0).predictor);
    EXPECT_GT(accuracy(bp, 0x1000, {false}, 50, 200), 0.99);
}

TEST(Predictor, LearnsLoopPattern)
{
    // Taken 7x then not taken, repeating: local history nails it.
    HybridPredictor bp(icacheConfig(0).predictor);
    std::vector<bool> loop(8, true);
    loop[7] = false;
    EXPECT_GT(accuracy(bp, 0x2040, loop, 400, 800), 0.98);
}

TEST(Predictor, LearnsAlternation)
{
    HybridPredictor bp(icacheConfig(0).predictor);
    EXPECT_GT(accuracy(bp, 0x30c0, {true, false}, 100, 400), 0.98);
}

TEST(Predictor, ManySitesSimultaneously)
{
    HybridPredictor bp(icacheConfig(3).predictor);
    // 64 interleaved sites with period-6 loop patterns.
    std::vector<std::uint32_t> counter(64, 0);
    auto outcome = [&](int s) {
        return (++counter[static_cast<size_t>(s)] % 6) != 0;
    };
    std::uint64_t miss = 0, total = 0;
    for (int round = 0; round < 3000; ++round) {
        for (int s = 0; s < 64; ++s) {
            Addr pc = 0x10000 + static_cast<Addr>(s) * 64 + 60;
            auto p = bp.predict(pc);
            bool ok = bp.update(pc, p, outcome(s));
            if (round > 1000) {
                ++total;
                if (!ok)
                    ++miss;
            }
        }
    }
    EXPECT_LT(static_cast<double>(miss) / total, 0.02);
}

TEST(Predictor, RandomOutcomesNearChance)
{
    HybridPredictor bp(icacheConfig(0).predictor);
    Pcg32 rng(99);
    std::uint64_t correct = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        bool outcome = rng.chance(0.5);
        auto p = bp.predict(0x5000);
        if (bp.update(0x5000, p, outcome))
            ++correct;
    }
    EXPECT_NEAR(correct / static_cast<double>(n), 0.5, 0.05);
}

TEST(Predictor, ReconfigureResizesAndKeepsWarmState)
{
    HybridPredictor bp(icacheConfig(0).predictor);
    accuracy(bp, 0x1000, {true}, 100, 1);
    std::uint64_t lookups = bp.lookups();
    EXPECT_GT(lookups, 0u);

    bp.reconfigure(icacheConfig(3).predictor);
    EXPECT_EQ(bp.org().gshare_entries, 1 << 16);
    EXPECT_EQ(bp.org().local_bht_entries, 1 << 13);
    // Statistics are preserved across reconfiguration (they are
    // architectural counters, not predictor state).
    EXPECT_EQ(bp.lookups(), lookups);

    // Trained state survives resizing (the tables share their
    // low-order substructure): a branch trained before the resize is
    // still predicted correctly right after it.
    HybridPredictor warm(icacheConfig(0).predictor);
    accuracy(warm, 0x2000, {true}, 200, 1);
    warm.reconfigure(icacheConfig(1).predictor);
    double acc = accuracy(warm, 0x2000, {true}, 0, 50);
    EXPECT_GT(acc, 0.9);
}

TEST(Predictor, StatsCountMispredicts)
{
    HybridPredictor bp(icacheConfig(0).predictor);
    bp.resetStats();
    // Cold predictor on an always-taken branch: the first few
    // predictions miss (counters start weakly not-taken).
    auto p = bp.predict(0x7777);
    bp.update(0x7777, p, true);
    EXPECT_EQ(bp.lookups(), 1u);
    EXPECT_GE(bp.mispredicts(), 0u);
}

TEST(Predictor, MetaPrefersBetterComponent)
{
    // A short alternating pattern: local history learns it; gshare
    // (with a long scrambled global history from a noise branch)
    // struggles. The meta must converge to the local component.
    HybridPredictor bp(icacheConfig(0).predictor);
    Pcg32 rng(5);
    std::uint64_t correct = 0, total = 0;
    std::uint32_t c = 0;
    for (int i = 0; i < 30'000; ++i) {
        // Noise site scrambling the global history.
        auto pn = bp.predict(0x9000);
        bp.update(0x9000, pn, rng.chance(0.5));
        // Patterned site.
        bool outcome = (++c % 4) != 0;
        auto p = bp.predict(0xa000);
        bool ok = bp.update(0xa000, p, outcome);
        if (i > 10'000) {
            ++total;
            if (ok)
                ++correct;
        }
    }
    EXPECT_GT(correct / static_cast<double>(total), 0.95);
}
