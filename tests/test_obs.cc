/**
 * @file
 * Observability-layer tests (src/obs/, docs/observability.md).
 *
 * The tracer's contract has three legs, each pinned here:
 *
 *  - *Zero perturbation*: a traced run is bit-identical to an
 *    untraced run — differentially checked over randomized machines
 *    and randomized chips (serial and horizon-parallel), the same
 *    spirit as the kernel-equivalence gates.
 *  - *Logged fallback*: GALS_TRACE / configure() follow the
 *    threadCountFromEnv contract — an unusable path is one warn()
 *    and tracing stays off, never a crash.
 *  - *Publication order*: every track's timestamps are nondecreasing
 *    in record order, asserted at record time (death test) and
 *    verified over every recorded track of a real traced run.
 *
 * The metrics registry side covers the counter surface, the JSON
 * document, and the folds from chip telemetry and the result store.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "harness.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/result_store.hh"
#include "sim/simulation.hh"
#include "workload/suite.hh"

using namespace gals;
using namespace gals::harness;
namespace fs = std::filesystem;

namespace
{

/** Fresh trace target per test; tracer disarmed on exit so the rest
 * of the suite (and the process-exit exporter) stays trace-off. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gals_obs_test_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        trace_path_ = dir_ + "/trace.json";
    }

    void
    TearDown() override
    {
        obs::Tracer::instance().disable();
        ::unsetenv("GALS_TRACE");
        ::unsetenv("GALS_CHIP_THREADS");
        fs::remove_all(dir_);
    }

    std::string dir_;
    std::string trace_path_;
};

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Chip-stats equality including the scheduling telemetry that must
 * not move under tracing (worker_claims excluded: its split depends
 * on the steal race, not on the tracer). */
void
expectSameChipStats(const ChipRunStats &a, const ChipRunStats &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t c = 0; c < a.cores.size(); ++c) {
        SCOPED_TRACE("core " + std::to_string(c));
        expectSameStats(a.cores[c], b.cores[c]);
    }
    EXPECT_EQ(a.total_committed, b.total_committed);
    EXPECT_EQ(a.makespan_ps, b.makespan_ps);
    EXPECT_EQ(a.l2_accesses, b.l2_accesses);
    EXPECT_EQ(a.l2_misses, b.l2_misses);
    EXPECT_EQ(a.bank_conflicts, b.bank_conflicts);
    EXPECT_EQ(a.bank_mshr_waits, b.bank_mshr_waits);
    EXPECT_EQ(a.fill_merges, b.fill_merges);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.ownership_transfers, b.ownership_transfers);
}

/** Nondecreasing timestamps on every recorded track. */
void
expectTracksMonotonic(const obs::Tracer &tracer)
{
    for (const obs::Tracer::TrackView &tv : tracer.trackViews()) {
        SCOPED_TRACE("run " + std::to_string(tv.run) + " track " +
                     tv.name);
        Tick last = 0;
        for (const obs::TraceRecord &e : *tv.events) {
            EXPECT_GE(e.ts, last);
            last = e.ts;
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 1: strict logged-fallback GALS_TRACE parsing.
// ---------------------------------------------------------------------

TEST_F(ObsTest, ConfigureAcceptsWritablePath)
{
    obs::Tracer &tr = obs::Tracer::instance();
    EXPECT_TRUE(tr.configure(trace_path_));
    EXPECT_TRUE(tr.enabled());
    EXPECT_EQ(tr.path(), trace_path_);
}

TEST_F(ObsTest, ConfigureUnwritablePathWarnsAndDisables)
{
    obs::Tracer &tr = obs::Tracer::instance();
    // A path under a nonexistent directory cannot be opened: the
    // logged-fallback contract says one warn(), disabled, no crash.
    EXPECT_FALSE(tr.configure(dir_ + "/no_such_dir/trace.json"));
    EXPECT_FALSE(tr.enabled());
    // A directory is not a writable file either.
    EXPECT_FALSE(tr.configure(dir_));
    EXPECT_FALSE(tr.enabled());
    // Empty path: explicitly disabled with a warning.
    EXPECT_FALSE(tr.configure(""));
    EXPECT_FALSE(tr.enabled());
}

TEST_F(ObsTest, ConfigureFromEnvFollowsEnvContract)
{
    obs::Tracer &tr = obs::Tracer::instance();
    ::unsetenv("GALS_TRACE");
    EXPECT_FALSE(tr.configureFromEnv()); // unset: silently off.
    ::setenv("GALS_TRACE", "", 1);
    EXPECT_FALSE(tr.configureFromEnv()); // empty: silently off.
    ::setenv("GALS_TRACE", (dir_ + "/missing/t.json").c_str(), 1);
    EXPECT_FALSE(tr.configureFromEnv()); // unusable: warn + off.
    EXPECT_FALSE(tr.enabled());
    ::setenv("GALS_TRACE", trace_path_.c_str(), 1);
    EXPECT_TRUE(tr.configureFromEnv());
    EXPECT_TRUE(tr.enabled());
}

TEST_F(ObsTest, DisabledTracerRecordsNothing)
{
    obs::Tracer &tr = obs::Tracer::instance();
    tr.disable();
    EXPECT_FALSE(obs::tracing());
    EXPECT_FALSE(tr.beginRun("nope", 2));
    tr.sim(0, obs::Ev::EpochBump, 1'000); // defensively a no-op.
    EXPECT_EQ(tr.eventsRecorded(), 0u);
    EXPECT_EQ(tr.runsRecorded(), 0u);
}

// ---------------------------------------------------------------------
// Tentpole: traced runs are bit-identical to untraced runs.
// ---------------------------------------------------------------------

TEST_F(ObsTest, TracedProcessorRunsBitIdentical)
{
    Pcg32 rng(0x0B5E0B5E, 11);
    obs::Tracer &tr = obs::Tracer::instance();
    for (int i = 0; i < 10; ++i) {
        MachineConfig m = randomMachine(rng);
        WorkloadParams wl = randomWorkload(rng);
        SCOPED_TRACE("case " + std::to_string(i) + ": " +
                     describe(m, wl));
        tr.disable();
        RunStats plain = simulate(m, wl);
        ASSERT_TRUE(tr.configure(trace_path_)); // resets prior runs.
        RunStats traced = simulate(m, wl);
        EXPECT_EQ(tr.runsRecorded(), 1u);
        EXPECT_GT(tr.eventsRecorded(), 0u);
        expectSameStats(plain, traced);
    }
}

TEST_F(ObsTest, TracedChipRunsBitIdentical)
{
    Pcg32 rng(0xC41B0B5E, 13);
    obs::Tracer &tr = obs::Tracer::instance();
    for (int i = 0; i < 5; ++i) {
        int cores = rng.nextRange(2, 4);
        ChipConfig cc = randomChipConfig(rng, cores);
        std::vector<WorkloadParams> mix =
            randomChipWorkloads(rng, cores);
        SCOPED_TRACE("case " + std::to_string(i) + " cores=" +
                     std::to_string(cores));
        // Odd cases run the horizon-parallel kernel so the traced
        // worker/gate paths are differentially covered too.
        if (i & 1)
            ::setenv("GALS_CHIP_THREADS",
                     std::to_string(cores).c_str(), 1);
        else
            ::unsetenv("GALS_CHIP_THREADS");
        tr.disable();
        Chip plain_chip(cc, mix);
        ChipRunStats plain = plain_chip.run();
        ASSERT_TRUE(tr.configure(trace_path_));
        Chip traced_chip(cc, mix);
        ChipRunStats traced = traced_chip.run();
        EXPECT_EQ(tr.runsRecorded(), 1u);
        expectSameChipStats(plain, traced);
        expectTracksMonotonic(tr);
        EXPECT_EQ(traced.parallel_rounds, plain.parallel_rounds);
    }
    ::unsetenv("GALS_CHIP_THREADS");
}

// ---------------------------------------------------------------------
// The acceptance configuration: a traced 2-core sharing mix on the
// phase-adaptive machine carries every event family and every track.
// ---------------------------------------------------------------------

TEST_F(ObsTest, SharingMixTraceCarriesAllLanes)
{
    obs::Tracer &tr = obs::Tracer::instance();
    ASSERT_TRUE(tr.configure(trace_path_));

    ChipConfig cc;
    cc.machine = MachineConfig::mcdPhaseAdaptive();
    cc.cores = 2;
    std::vector<WorkloadParams> mix =
        sharingMix(benchmarkSuite().front(), 2, "producer-consumer");
    for (WorkloadParams &wl : mix) {
        wl.sim_instrs = 30'000;
        wl.warmup_instrs = 3'000;
    }
    ::setenv("GALS_CHIP_THREADS", "2", 1);
    Chip chip(cc, mix);
    ChipRunStats s = chip.run();
    ::unsetenv("GALS_CHIP_THREADS");
    EXPECT_GT(s.invalidations, 0u);

    // Every (core, domain) track, the chip track, and both lanes of
    // both workers must have recorded events.
    std::vector<obs::Tracer::TrackView> tracks = tr.trackViews();
    auto track = [&](const std::string &name)
        -> const std::vector<obs::TraceRecord> * {
        for (const obs::Tracer::TrackView &tv : tracks) {
            if (tv.name == name)
                return tv.events;
        }
        return nullptr;
    };
    for (const char *name :
         {"core0/fe", "core0/int", "core0/fp", "core0/ls", "core1/fe",
          "core1/int", "core1/fp", "core1/ls", "chip", "worker0",
          "worker1"}) {
        SCOPED_TRACE(name);
        const auto *events = track(name);
        ASSERT_NE(events, nullptr);
        EXPECT_FALSE(events->empty());
    }

    // The acceptance event families: at least one coherence
    // invalidation and one reconfiguration decision.
    std::uint64_t invals = 0, reconfigs = 0, rounds = 0;
    for (const obs::Tracer::TrackView &tv : tracks) {
        for (const obs::TraceRecord &e : *tv.events) {
            invals += e.kind == obs::Ev::CohInvalidate;
            reconfigs += e.kind == obs::Ev::Reconfig;
            rounds += e.kind == obs::Ev::Round;
        }
    }
    EXPECT_GE(invals, 1u);
    EXPECT_GE(reconfigs, 1u);
    EXPECT_EQ(rounds, s.parallel_rounds);
    expectTracksMonotonic(tr);

    // The export is valid Chrome trace-event JSON shape-wise: one
    // object with the schema marker and a traceEvents array.
    ASSERT_TRUE(tr.writeTo(trace_path_));
    std::string doc = fileBytes(trace_path_);
    EXPECT_NE(doc.find("\"gals-trace-v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"coh_invalidate\""), std::string::npos);
    EXPECT_NE(doc.find("\"reconfig\""), std::string::npos);
    EXPECT_NE(doc.find("\"core1/ls\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Satellite 3: publication-order tripwire (death test).
// ---------------------------------------------------------------------

using ObsDeathTest = ObsTest;

TEST_F(ObsDeathTest, OutOfOrderEventTripsAssert)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto out_of_order = [this]() {
        obs::Tracer &tr = obs::Tracer::instance();
        tr.configure(trace_path_);
        tr.beginRun("death", 1);
        tr.sim(0, obs::Ev::EpochBump, 1'000);
        tr.sim(0, obs::Ev::EpochBump, 500); // rewinds the track.
    };
    EXPECT_DEATH(out_of_order(), "publication-order violation");
}

// ---------------------------------------------------------------------
// Satellite 2: the metrics registry and its folds.
// ---------------------------------------------------------------------

TEST_F(ObsTest, MetricsRegistryCountersAndJson)
{
    obs::MetricsRegistry &m = obs::MetricsRegistry::instance();
    m.clear();
    EXPECT_FALSE(m.has("t.count"));
    m.add("t.count", 2);
    m.add("t.count", 3);
    m.set("t.gauge", 7);
    m.setDouble("t.ratio", 0.25);
    EXPECT_EQ(m.value("t.count"), 5u);
    EXPECT_EQ(m.value("t.gauge"), 7u);
    EXPECT_TRUE(m.has("t.ratio"));

    std::string doc = m.json();
    EXPECT_NE(doc.find("\"gals-metrics-v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"t.count\": 5"), std::string::npos);
    EXPECT_NE(doc.find("\"t.ratio\": 0.25"), std::string::npos);

    // writeTo follows the logged-fallback contract.
    EXPECT_FALSE(m.writeTo(dir_ + "/missing/metrics.json"));
    std::string path = dir_ + "/metrics.json";
    EXPECT_TRUE(m.writeTo(path));
    EXPECT_EQ(fileBytes(path), doc);
    m.clear();
}

TEST_F(ObsTest, ChipTelemetryFoldsIntoMetrics)
{
    obs::MetricsRegistry &m = obs::MetricsRegistry::instance();
    m.clear();
    ChipConfig cc;
    cc.machine = MachineConfig::mcdProgram({});
    cc.cores = 2;
    std::vector<WorkloadParams> mix;
    for (int c = 0; c < 2; ++c) {
        WorkloadParams wl = goldenWorkload("gzip");
        wl.sim_instrs = 2'000;
        wl.warmup_instrs = 200;
        mix.push_back(perCoreWorkload(wl, c));
    }
    Chip chip(cc, mix);
    ChipRunStats s = chip.run();
    EXPECT_EQ(m.value("chip.runs"), 1u);
    EXPECT_EQ(m.value("chip.total_committed"), s.total_committed);
    EXPECT_EQ(m.value("chip.parallel_rounds"), s.parallel_rounds);
    EXPECT_EQ(m.value("chip.l2.accesses"), s.l2_accesses);
    EXPECT_EQ(m.value("chip.coh.invalidations"), s.invalidations);
    // One claim counter per live worker, summing to the core claims.
    std::uint64_t claims = 0;
    for (size_t w = 0; w < s.worker_claims.size(); ++w) {
        claims += m.value(
            csprintf("chip.worker_claims.w%zu", w));
    }
    std::uint64_t expect = 0;
    for (std::uint64_t c : s.worker_claims)
        expect += c;
    EXPECT_EQ(claims, expect);
    m.clear();
}

TEST_F(ObsTest, ResultStoreStatsFoldIntoMetrics)
{
    obs::MetricsRegistry &m = obs::MetricsRegistry::instance();
    m.clear();
    std::string cache_dir = dir_ + "/cache";
    configureResultStore(cache_dir);
    ASSERT_TRUE(resultStore().enabled());

    MachineConfig mc = goldenMachine("mcd");
    WorkloadParams wl = goldenWorkload("gzip");
    wl.sim_instrs = 1'200;
    wl.warmup_instrs = 200;
    RunStats cold = cachedSimulate(mc, wl);  // miss + store.
    RunStats warm = cachedSimulate(mc, wl);  // hit.
    expectSameStats(cold, warm);

    // The stderr stats line and the registry share one source.
    std::string line = resultStore().statsLine();
    EXPECT_NE(line.find("1 hits"), std::string::npos);
    EXPECT_EQ(m.value("result_store.enabled"), 1u);
    EXPECT_EQ(m.value("result_store.hits"), 1u);
    EXPECT_EQ(m.value("result_store.misses"), 1u);
    EXPECT_EQ(m.value("result_store.stores"), 1u);
    configureResultStore("");
    m.clear();
}

TEST_F(ObsTest, MetricsEnvFollowsLoggedFallback)
{
    obs::MetricsRegistry &m = obs::MetricsRegistry::instance();
    // An unusable GALS_METRICS target warns and leaves the at-exit
    // path unset instead of crashing at exit.
    ::setenv("GALS_METRICS",
             (dir_ + "/missing/metrics.json").c_str(), 1);
    m.configureFromEnv();
    EXPECT_TRUE(m.exitPath().empty());
    std::string good = dir_ + "/metrics_env.json";
    ::setenv("GALS_METRICS", good.c_str(), 1);
    m.configureFromEnv();
    EXPECT_EQ(m.exitPath(), good);
    // Unsetting the variable clears the at-exit target again (and
    // keeps the exporter from chasing this test's deleted tmp dir).
    ::unsetenv("GALS_METRICS");
    m.configureFromEnv();
    EXPECT_TRUE(m.exitPath().empty());
}

// ---------------------------------------------------------------------
// Tracer bookkeeping: run claims, caps, reset semantics.
// ---------------------------------------------------------------------

TEST_F(ObsTest, ConcurrentRunClaimSkipsSecondRun)
{
    obs::Tracer &tr = obs::Tracer::instance();
    ASSERT_TRUE(tr.configure(trace_path_));
    ASSERT_TRUE(tr.beginRun("first", 1));
    // A second claim while the first run is in flight is refused and
    // counted — that run simply proceeds untraced.
    EXPECT_FALSE(tr.beginRun("second", 1));
    tr.endRun();
    EXPECT_EQ(tr.runsRecorded(), 1u);
    EXPECT_EQ(tr.runsSkipped(), 1u);
    EXPECT_FALSE(obs::tracing());
}

TEST_F(ObsTest, DomainStepsMergeIntoSpans)
{
    obs::Tracer &tr = obs::Tracer::instance();
    ASSERT_TRUE(tr.configure(trace_path_));
    ASSERT_TRUE(tr.beginRun("merge", 1));
    // Three contiguous 100 ps steps merge into one 300 ps span; the
    // fourth, after a gap, opens a new span.
    tr.domainStep(0, 0, 100);
    tr.domainStep(0, 100, 100);
    tr.domainStep(0, 200, 100);
    tr.domainStep(0, 1'000, 100);
    tr.endRun();
    std::vector<obs::Tracer::TrackView> tracks = tr.trackViews();
    ASSERT_EQ(tracks.size(), 1u);
    ASSERT_EQ(tracks[0].events->size(), 2u);
    const obs::TraceRecord &span = (*tracks[0].events)[0];
    EXPECT_EQ(span.ts, 0u);
    EXPECT_EQ(span.dur, 300u);
    EXPECT_EQ(span.a0, 3u); // step count.
    EXPECT_EQ((*tracks[0].events)[1].ts, 1'000u);
}

} // namespace
