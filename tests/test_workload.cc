/** @file Tests for the synthetic workload generator and the suite. */

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>

#include "workload/generator.hh"
#include "workload/suite.hh"

using namespace gals;

namespace
{
WorkloadParams
tiny()
{
    WorkloadParams w;
    w.name = "tiny";
    w.suite = "test";
    w.seed = 77;
    w.phases = {PhaseParams{}};
    return w;
}
} // namespace

TEST(Workload, DeterministicForSameSeed)
{
    SyntheticWorkload a(tiny()), b(tiny());
    for (int i = 0; i < 20'000; ++i) {
        MicroOp x = a.next();
        MicroOp y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        ASSERT_EQ(x.mem_addr, y.mem_addr);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.src1, y.src1);
        ASSERT_EQ(x.dst, y.dst);
    }
}

TEST(Workload, DifferentSeedsDiffer)
{
    WorkloadParams w2 = tiny();
    w2.seed = 78;
    SyntheticWorkload a(tiny()), b(w2);
    int diff = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next().mem_addr != b.next().mem_addr)
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(Workload, BranchEveryBlock)
{
    WorkloadParams w = tiny();
    w.phases[0].block_len = 8;
    SyntheticWorkload g(w);
    int branches = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        MicroOp op = g.next();
        if (op.cls == OpClass::Branch) {
            ++branches;
            // The branch is the last instruction of its block.
            EXPECT_EQ((op.pc / 4) % 16 % 8, 7u);
        }
    }
    EXPECT_EQ(branches, n / 8);
}

TEST(Workload, InstructionMixMatchesFractions)
{
    WorkloadParams w = tiny();
    w.phases[0].load_frac = 0.3;
    w.phases[0].store_frac = 0.15;
    SyntheticWorkload g(w);
    std::map<OpClass, int> mix;
    const int n = 60'000;
    int work_ops = 0;
    for (int i = 0; i < n; ++i) {
        MicroOp op = g.next();
        ++mix[op.cls];
        if (op.cls != OpClass::Branch)
            ++work_ops;
    }
    double loads = (mix[OpClass::Load] + mix[OpClass::FpLoad]) /
                   static_cast<double>(work_ops);
    double stores = mix[OpClass::Store] /
                    static_cast<double>(work_ops);
    EXPECT_NEAR(loads, 0.3, 0.02);
    EXPECT_NEAR(stores, 0.15, 0.02);
}

TEST(Workload, CodeStaysInFootprint)
{
    WorkloadParams w = tiny();
    w.phases[0].code_hot_bytes = 4096;
    w.phases[0].code_total_bytes = 8192;
    SyntheticWorkload g(w);
    for (int i = 0; i < 50'000; ++i) {
        MicroOp op = g.next();
        EXPECT_GE(op.pc, kCodeBase);
        EXPECT_LT(op.pc, kCodeBase + 8192);
    }
}

TEST(Workload, HotCodeDominates)
{
    WorkloadParams w = tiny();
    w.phases[0].code_hot_bytes = 4096;
    w.phases[0].code_total_bytes = 64 * 1024;
    w.phases[0].excursion_frac = 0.01;
    SyntheticWorkload g(w);
    int hot = 0, total = 0;
    for (int i = 0; i < 50'000; ++i) {
        MicroOp op = g.next();
        ++total;
        if (op.pc < kCodeBase + 4096)
            ++hot;
    }
    EXPECT_GT(hot / static_cast<double>(total), 0.85);
}

TEST(Workload, DataAddressesInRegions)
{
    WorkloadParams w = tiny();
    w.phases[0].stream_bytes = 32 * 1024;
    w.phases[0].rand_bytes = 64 * 1024;
    w.phases[0].rand_frac = 0.5;
    SyntheticWorkload g(w);
    // The pool follows the stream region with a 3-line pad.
    Addr rand_base = kStreamBase + 32 * 1024 + 3 * 64;
    bool saw_stream = false, saw_rand = false;
    for (int i = 0; i < 50'000; ++i) {
        MicroOp op = g.next();
        if (!isMemOp(op.cls))
            continue;
        EXPECT_GE(op.mem_addr, kStreamBase);
        EXPECT_LT(op.mem_addr, rand_base + 64 * 1024);
        if (op.mem_addr >= rand_base)
            saw_rand = true;
        else if (op.mem_addr < kStreamBase + 32 * 1024)
            saw_stream = true;
    }
    EXPECT_TRUE(saw_stream);
    EXPECT_TRUE(saw_rand);
}

TEST(Workload, PhasesCycleOnSchedule)
{
    WorkloadParams w = tiny();
    PhaseParams p1;
    p1.length_instrs = 1000;
    p1.fp_frac = 0.0;
    PhaseParams p2 = p1;
    p2.fp_frac = 1.0;
    w.phases = {p1, p2};
    SyntheticWorkload g(w);
    EXPECT_EQ(g.currentPhase(), 0);
    for (int i = 0; i < 1000; ++i)
        g.next();
    EXPECT_EQ(g.currentPhase(), 1);
    for (int i = 0; i < 1000; ++i)
        g.next();
    EXPECT_EQ(g.currentPhase(), 0);
}

TEST(Workload, FpFractionControlsFpOps)
{
    WorkloadParams w = tiny();
    w.phases[0].fp_frac = 1.0;
    w.phases[0].load_frac = 0.0;
    w.phases[0].store_frac = 0.0;
    SyntheticWorkload g(w);
    for (int i = 0; i < 2000; ++i) {
        MicroOp op = g.next();
        if (op.cls == OpClass::Branch)
            continue;
        EXPECT_TRUE(isFpOp(op.cls));
    }
}

TEST(Workload, DependenciesReferenceRecentDests)
{
    SyntheticWorkload g(tiny());
    std::set<int> live{kZeroReg, kFirstFpReg};
    for (int i = 0; i < 10'000; ++i) {
        MicroOp op = g.next();
        if (op.src1 >= 0 && op.src1 != kZeroReg &&
            op.src1 != kFirstFpReg) {
            EXPECT_TRUE(live.count(op.src1))
                << "src1 " << int(op.src1) << " never written";
        }
        if (op.dst >= 0)
            live.insert(op.dst);
    }
}

TEST(Suite, FortyRunsInPaperOrder)
{
    const auto &suite = benchmarkSuite();
    EXPECT_EQ(suite.size(), 40u);
    int media = 0, olden = 0, spec = 0;
    for (const WorkloadParams &w : suite) {
        EXPECT_FALSE(w.phases.empty()) << w.name;
        EXPECT_GT(w.sim_instrs, 0u) << w.name;
        if (w.suite == "MediaBench")
            ++media;
        else if (w.suite == "Olden")
            ++olden;
        else
            ++spec;
    }
    EXPECT_EQ(media, 16);
    EXPECT_EQ(olden, 9);
    EXPECT_EQ(spec, 15);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(findBenchmark("em3d").suite, "Olden");
    EXPECT_EQ(findBenchmark("gcc").suite, "SPEC2000-Int");
    EXPECT_GE(findBenchmark("apsi").phases.size(), 2u);
    EXPECT_GE(findBenchmark("art").phases.size(), 4u);
    EXPECT_GE(findBenchmark("mst").phases.size(), 2u);
}

TEST(Suite, SeedsAreUnique)
{
    std::set<std::uint64_t> seeds;
    for (const WorkloadParams &w : benchmarkSuite())
        EXPECT_TRUE(seeds.insert(w.seed).second) << w.name;
}

namespace
{

/** FNV-1a over every field of the first `n` ops of `wl`'s stream. */
std::uint64_t
streamHash(const WorkloadParams &wl, std::uint64_t n)
{
    SyntheticWorkload w(wl);
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (std::uint64_t i = 0; i < n; ++i) {
        MicroOp op = w.next();
        mix(static_cast<std::uint64_t>(op.cls));
        mix(op.pc);
        mix(op.mem_addr);
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint8_t>(op.src1)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint8_t>(op.src2)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint8_t>(op.dst)));
        mix(op.taken ? 1 : 0);
    }
    return h;
}

} // namespace

/**
 * The generator's RNG stream is load-bearing: the determinism goldens
 * and every paper table depend on the exact op sequence, so any
 * generator fast-path change must preserve it bit-exactly. These
 * hashes were captured before the phase-cache optimization and pin
 * 50k ops of five representative benchmarks (multi-phase, fp,
 * pointer-chasing, streaming).
 */
TEST(Generator, StreamHashesArePinned)
{
    const struct
    {
        const char *name;
        std::uint64_t hash;
    } kGolden[] = {
        {"gzip", 0x90c9a47ecdb4ad00ULL},
        {"mst", 0x84add5227e072731ULL},
        {"art", 0x2b1dcad5a49cb967ULL},
        {"apsi", 0x528d9cc013030823ULL},
        {"em3d", 0x2dc54ea0721b977fULL},
    };
    for (const auto &g : kGolden)
        EXPECT_EQ(streamHash(findBenchmark(g.name), 50'000), g.hash)
            << g.name;
}

TEST(Generator, NextBatchMatchesPerOpGeneration)
{
    // nextBatch is the in-worker refill path of the chip's front
    // ends; it must be bit-exact with n successive next() calls for
    // any batch-boundary placement, including batches spanning a
    // phase switch.
    WorkloadParams wl = findBenchmark("gzip");
    SyntheticWorkload per_op(wl);
    SyntheticWorkload batched(wl);
    std::array<MicroOp, 37> buf{};
    std::uint64_t checked = 0;
    while (checked < 60'000) {
        int n = static_cast<int>(buf.size());
        batched.nextBatch(buf.data(), n);
        for (int i = 0; i < n; ++i) {
            MicroOp a = per_op.next();
            const MicroOp &b = buf[static_cast<size_t>(i)];
            ASSERT_EQ(static_cast<int>(a.cls),
                      static_cast<int>(b.cls));
            ASSERT_EQ(a.pc, b.pc);
            ASSERT_EQ(a.mem_addr, b.mem_addr);
            ASSERT_EQ(a.src1, b.src1);
            ASSERT_EQ(a.src2, b.src2);
            ASSERT_EQ(a.dst, b.dst);
            ASSERT_EQ(a.taken, b.taken);
        }
        checked += static_cast<std::uint64_t>(n);
    }
}

/**
 * Per-core streams on the scaled-up chip: a 16-core sharing mix puts
 * cores >= 4 in the tightened 32MB-spaced private regions (chips of
 * <= 4 cores keep the legacy 64MB spacing, whose streams the
 * single-core goldens above pin via core 0), and the golden-ratio
 * reseed must keep every core's stream stable. Captured when
 * kMaxCores grew to 16.
 */
TEST(Generator, PerCoreStreamHashesArePinnedOnWideChips)
{
    std::vector<WorkloadParams> mix =
        sharingMix(findBenchmark("gzip"), 16, "migratory");
    const struct
    {
        int core;
        std::uint64_t hash;
    } kGolden[] = {
        {4, 0x8c2fd26aa82768c5ULL},
        {9, 0x97524ea04f52e09dULL},
        {15, 0x406a49e7f5905771ULL},
    };
    for (const auto &g : kGolden) {
        EXPECT_EQ(streamHash(mix[static_cast<size_t>(g.core)],
                             50'000),
                  g.hash)
            << "core " << g.core;
    }
}
