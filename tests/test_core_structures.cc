/** @file Tests for ROB, issue queue, LSQ, store buffer, FUs, rename,
 * and the batched fetch-group queue. */

#include <gtest/gtest.h>

#include "core/fetch_group.hh"
#include "core/machine_config.hh"
#include "core/regfile.hh"
#include "core/structures.hh"

using namespace gals;

namespace
{

FetchedOp
opAt(Addr pc)
{
    FetchedOp f;
    f.uop.pc = pc;
    return f;
}

} // namespace

TEST(FetchGroupQueue, GroupsSharePushTimeVisibility)
{
    FetchGroupQueue q(8);
    EXPECT_TRUE(q.empty());
    // One fetch group: three ops pushed with one visibility time.
    q.push(opAt(1), 100);
    q.push(opAt(2), 100);
    q.push(opAt(3), 100);
    // A later group at a later edge.
    q.push(opAt(4), 200);
    q.push(opAt(5), 200);
    EXPECT_EQ(q.size(), 5u);
    EXPECT_EQ(q.groupCount(), 2u);
    EXPECT_TRUE(q.checkConsistent());

    // Visibility gates per group, and the visible prefix counts whole
    // groups only.
    EXPECT_EQ(q.visibleOps(99, 100), 0u);
    EXPECT_EQ(q.visibleOps(100, 100), 3u);
    EXPECT_EQ(q.visibleOps(199, 100), 3u);
    EXPECT_EQ(q.visibleOps(200, 100), 5u);
    EXPECT_FALSE(q.frontReady(99));
    EXPECT_TRUE(q.frontReady(100));

    EXPECT_EQ(q.front().uop.pc, 1u);
    q.pop();
    q.pop();
    q.pop();
    EXPECT_EQ(q.groupCount(), 1u);
    EXPECT_EQ(q.frontVisibleAt(), 200u);
    EXPECT_EQ(q.front().uop.pc, 4u);
    EXPECT_TRUE(q.checkConsistent());
}

TEST(FetchGroupQueue, WrapAroundKeepsGroupAccounting)
{
    FetchGroupQueue q(4);
    Tick t = 100;
    Addr pc = 0;
    Addr expect = 0;
    // Cycle far past capacity with two-op groups so both rings wrap.
    for (int round = 0; round < 25; ++round) {
        while (q.canPush())
            q.push(opAt(pc++), t);
        EXPECT_EQ(q.freeOps(), 0u);
        ASSERT_TRUE(q.checkConsistent());
        q.pop();
        q.pop();
        EXPECT_EQ(q.front().uop.pc, expect + 2);
        expect += 2;
        t += 100;
    }
    EXPECT_GT(pc, 4u * 10u);
}

TEST(FetchGroupQueue, CapacityEnforced)
{
    FetchGroupQueue q(2);
    EXPECT_EQ(q.freeOps(), 2u);
    q.push(opAt(1), 10);
    q.push(opAt(2), 20); // separate group (different visibility).
    EXPECT_FALSE(q.canPush());
    EXPECT_EQ(q.groupCount(), 2u);
    q.pop();
    EXPECT_TRUE(q.canPush());
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.groupCount(), 0u);
    EXPECT_TRUE(q.checkConsistent());
}

TEST(Rob, CapacityAndAgePositions)
{
    Rob rob(4);
    EXPECT_EQ(rob.capacity(), 4u);
    EXPECT_EQ(rob.freeSlots(), 4u);
    size_t a = rob.alloc();
    size_t b = rob.alloc();
    rob[a].seq = 10;
    rob[b].seq = 11;
    EXPECT_EQ(rob.freeSlots(), 2u);
    EXPECT_EQ(rob.indexAt(0), a);
    EXPECT_EQ(rob.indexAt(1), b);
    rob.retireHead();
    // Wrap: allocate past the physical end of the ring.
    size_t c = rob.alloc();
    size_t d = rob.alloc();
    size_t e = rob.alloc();
    rob[c].seq = 12;
    rob[d].seq = 13;
    rob[e].seq = 14;
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.indexAt(0), b);
    EXPECT_EQ(rob[rob.indexAt(3)].seq, 14u);
}

TEST(Rob, CircularAllocation)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    size_t a = rob.alloc();
    size_t b = rob.alloc();
    rob[a].seq = 1;
    rob[b].seq = 2;
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_EQ(rob[rob.headIndex()].seq, 1u);
    rob.retireHead();
    EXPECT_EQ(rob[rob.headIndex()].seq, 2u);
    rob.alloc();
    rob.alloc();
    rob.alloc();
    EXPECT_TRUE(rob.full());
}

namespace
{

/** Allocate a candidate slot with the given age and ROB index. */
std::int32_t
allocCandidate(IssueQueue &iq, SeqNum seq, std::uint32_t rob_idx)
{
    std::int32_t id = iq.alloc();
    iq.slot(id).seq = seq;
    iq.slot(id).rob_idx = rob_idx;
    iq.pushCandidate(id, true);
    return id;
}

/** Take the oldest candidate off the ring (kept live in the pool). */
std::int32_t
popOldest(IssueQueue &iq)
{
    std::int32_t got = -1;
    iq.walkCandidates([&](std::int32_t id) {
        if (got != -1)
            return IssueQueue::CandAction::Stop;
        got = id;
        return IssueQueue::CandAction::Drop;
    });
    return got;
}

} // namespace

TEST(IssueQueue, CapacityAndResize)
{
    IssueQueue iq(2);
    allocCandidate(iq, 1, 10);
    allocCandidate(iq, 2, 11);
    EXPECT_TRUE(iq.full());
    iq.setCapacity(4);
    EXPECT_FALSE(iq.full());
    allocCandidate(iq, 3, 12);
    // Shrinking below occupancy is legal; it only blocks new pushes.
    iq.setCapacity(2);
    EXPECT_TRUE(iq.full());
    EXPECT_EQ(iq.size(), 3u);
    // Selection pops candidates oldest-first regardless of capacity.
    std::int32_t id = popOldest(iq);
    EXPECT_EQ(iq.slot(id).rob_idx, 10u);
    iq.freeSlot(id);
    EXPECT_EQ(iq.size(), 2u);
    EXPECT_TRUE(iq.full()); // occupancy drained exactly to capacity.
}

TEST(IssueQueue, CandidatePopsFollowAgeOrder)
{
    IssueQueue iq(8);
    // Push out of age order; pops must come back oldest-first.
    allocCandidate(iq, 7, 107);
    allocCandidate(iq, 3, 103);
    allocCandidate(iq, 5, 105);
    allocCandidate(iq, 1, 101);
    SeqNum prev = 0;
    while (iq.hasCandidates()) {
        std::int32_t id = popOldest(iq);
        EXPECT_GT(iq.slot(id).seq, prev);
        prev = iq.slot(id).seq;
        iq.freeSlot(id);
    }
    EXPECT_EQ(prev, 7u);
    EXPECT_EQ(iq.size(), 0u);
}

TEST(IssueQueue, ReadyRingWrapAroundRecyclesSlots)
{
    // The slot pool and both rings must survive churn far past
    // capacity: ids recycle through the free list while the heaps
    // keep age order.
    IssueQueue iq(4);
    SeqNum seq = 1;
    SeqNum expect_pop = 1;
    for (int round = 0; round < 100; ++round) {
        while (!iq.full())
            allocCandidate(iq, seq++, 0);
        // Retire the two oldest, keep the rest: pops must follow
        // global age order across every wrap of the slot pool.
        for (int k = 0; k < 2; ++k) {
            ASSERT_TRUE(iq.hasCandidates());
            std::int32_t id = popOldest(iq);
            ASSERT_EQ(iq.slot(id).seq, expect_pop++);
            iq.freeSlot(id);
        }
    }
    EXPECT_EQ(iq.size(), 2u);
    EXPECT_GT(seq, 100u);
}

TEST(IssueQueue, WaiterChainsWakeExactlyTheirRegister)
{
    IssueQueue iq(8);
    iq.initWaiterIndex(96, 96);
    std::int32_t a = iq.alloc();
    iq.slot(a).seq = 1;
    std::int32_t b = iq.alloc();
    iq.slot(b).seq = 2;

    PhysRef r5{5, false};
    PhysRef r9{9, true};
    iq.addWaiter(r5, a, 0);
    iq.addWaiter(r9, a, 1); // a waits on both files.
    iq.addWaiter(r5, b, 0);

    // Completing an unrelated register wakes nobody.
    EXPECT_FALSE(iq.wakeWaiters(PhysRef{6, false}));
    EXPECT_FALSE(iq.hasCandidates());

    // Completing r5 wakes both waiters; a stays chained on r9.
    EXPECT_TRUE(iq.wakeWaiters(r5));
    EXPECT_EQ(iq.candCount(), 2u);
    EXPECT_NE(iq.slot(a).next_wait[1], kIqNotChained);
    EXPECT_EQ(iq.slot(a).next_wait[0], kIqNotChained);

    // A second completion of the same register is a no-op chain walk.
    EXPECT_FALSE(iq.wakeWaiters(r5));

    // The r9 chain still wakes a (dedup keeps it a single candidate).
    EXPECT_TRUE(iq.wakeWaiters(r9));
    EXPECT_EQ(iq.candCount(), 2u);
    EXPECT_EQ(popOldest(iq), a);
    EXPECT_EQ(popOldest(iq), b);
}

TEST(IssueQueue, TimedPromotionAndEpochInvalidation)
{
    IssueQueue iq(8);
    std::int32_t a = iq.alloc();
    iq.slot(a).seq = 1;
    iq.slot(a).ready_at = 500;
    std::int32_t b = iq.alloc();
    iq.slot(b).seq = 2;
    iq.slot(b).ready_at = 300;
    iq.pushTimed(a);
    iq.pushTimed(b);
    EXPECT_EQ(iq.minTimed(), 300u);

    // Nothing due yet: the ring is untouched.
    iq.promoteDue(299);
    EXPECT_FALSE(iq.hasCandidates());

    // b matures first; it arrives as a no-reevaluation candidate.
    iq.promoteDue(300);
    EXPECT_EQ(iq.candCount(), 1u);
    EXPECT_EQ(iq.minTimed(), 500u);
    std::int32_t id = popOldest(iq);
    EXPECT_EQ(id, b);
    EXPECT_FALSE(iq.slot(b).needs_eval);
    iq.pushCandidate(b, false);

    // An epoch bump stales every memoized time: the timer ring
    // drains into the candidate ring and everything re-evaluates.
    iq.invalidateTimes();
    EXPECT_EQ(iq.minTimed(), kTickMax);
    EXPECT_EQ(iq.candCount(), 2u);
    EXPECT_TRUE(iq.slot(a).needs_eval);
    EXPECT_TRUE(iq.slot(b).needs_eval);
}

TEST(Lsq, ProgramOrderAndArrivals)
{
    Lsq lsq(4);
    lsq.allocate(0, false, 100);
    lsq.allocate(1, true, 101);
    lsq.allocate(2, false, 100);
    lsq.markArrived(50);
    lsq.markArrived(60);
    EXPECT_EQ(lsq.at(0).arrived_at, 50u);
    EXPECT_EQ(lsq.at(1).arrived_at, 60u);
    EXPECT_EQ(lsq.at(2).arrived_at, kTickMax);
    EXPECT_EQ(lsq.front().rob_idx, 0u);
    lsq.popFront();
    EXPECT_TRUE(lsq.front().is_store);
    EXPECT_EQ(lsq.size(), 2u);
}

TEST(StoreBuffer, ForwardingLookup)
{
    StoreBuffer sb(2);
    sb.push(42, 100);
    EXPECT_TRUE(sb.hasLine(42));
    EXPECT_FALSE(sb.hasLine(43));
    sb.push(43, 200);
    EXPECT_TRUE(sb.full());
    sb.pop();
    EXPECT_FALSE(sb.hasLine(42));
}

TEST(FuPool, AluWidthEnforced)
{
    FuPool fu;
    fu.alus = 2;
    fu.newCycle();
    EXPECT_TRUE(fu.claim(OpClass::IntAlu, 100, 101));
    EXPECT_TRUE(fu.claim(OpClass::Branch, 100, 101));
    EXPECT_FALSE(fu.claim(OpClass::IntAlu, 100, 101));
    fu.newCycle();
    EXPECT_TRUE(fu.claim(OpClass::IntAlu, 200, 201));
}

TEST(FuPool, DivideOccupiesUnit)
{
    FuPool fu;
    fu.newCycle();
    EXPECT_TRUE(fu.claim(OpClass::IntDiv, 100, 2100));
    fu.newCycle();
    // Pipelined multiply cannot start while the divide occupies the
    // shared unit.
    EXPECT_FALSE(fu.claim(OpClass::IntMul, 200, 500));
    fu.newCycle();
    EXPECT_TRUE(fu.claim(OpClass::IntMul, 2100, 2400));
}

TEST(FuPool, MultipliesArePipelinedOnePerCycle)
{
    FuPool fu;
    fu.newCycle();
    EXPECT_TRUE(fu.claim(OpClass::FpMul, 100, 500));
    EXPECT_FALSE(fu.claim(OpClass::FpMul, 100, 500));
    fu.newCycle();
    EXPECT_TRUE(fu.claim(OpClass::FpMul, 200, 600));
}

TEST(OpLatency, AlphaFlavoredLatencies)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1);
    EXPECT_EQ(opLatency(OpClass::Branch), 1);
    EXPECT_GT(opLatency(OpClass::IntDiv), opLatency(OpClass::IntMul));
    EXPECT_GT(opLatency(OpClass::FpDiv), opLatency(OpClass::FpMul));
}

TEST(ExecDomain, ClassesRouteToDomains)
{
    EXPECT_EQ(execDomain(OpClass::IntAlu), DomainId::Integer);
    EXPECT_EQ(execDomain(OpClass::Branch), DomainId::Integer);
    EXPECT_EQ(execDomain(OpClass::FpMul), DomainId::FloatingPoint);
    EXPECT_EQ(execDomain(OpClass::Load), DomainId::LoadStore);
    EXPECT_EQ(execDomain(OpClass::FpLoad), DomainId::LoadStore);
    EXPECT_EQ(execDomain(OpClass::Store), DomainId::LoadStore);
}

// ---------------------------------------------------------------------
// Register files.
// ---------------------------------------------------------------------

TEST(RegisterFiles, RenameReleaseCycle)
{
    RegisterFiles rf(96, 96);
    EXPECT_EQ(rf.freeIntRegs(), 64);
    auto [fresh, old] = rf.renameDest(5);
    EXPECT_EQ(rf.freeIntRegs(), 63);
    EXPECT_EQ(old.index, 5);
    EXPECT_EQ(rf.lookup(5).index, fresh.index);
    rf.release(old);
    EXPECT_EQ(rf.freeIntRegs(), 64);
}

TEST(RegisterFiles, FpRegsUseSeparateFile)
{
    RegisterFiles rf(96, 96);
    auto [fresh, old] = rf.renameDest(kFirstFpReg + 3);
    EXPECT_TRUE(fresh.fp);
    EXPECT_TRUE(old.fp);
    EXPECT_EQ(rf.freeFpRegs(), 63);
    EXPECT_EQ(rf.freeIntRegs(), 64);
}

TEST(RegisterFiles, ExhaustionReported)
{
    RegisterFiles rf(40, 40);
    // 8 free int regs (40 - 32 logical).
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(rf.canAlloc(false));
        rf.renameDest(8 + i);
    }
    EXPECT_FALSE(rf.canAlloc(false));
    EXPECT_TRUE(rf.canAlloc(true));
}

TEST(RegisterFiles, ScoreboardTracksCompletion)
{
    RegisterFiles rf(96, 96);
    auto [fresh, old] = rf.renameDest(9);
    rf.markPending(fresh);
    EXPECT_TRUE(rf.state(fresh).pending);
    rf.complete(fresh, 12345, DomainId::LoadStore);
    EXPECT_FALSE(rf.state(fresh).pending);
    EXPECT_EQ(rf.state(fresh).ready_at, 12345u);
    EXPECT_EQ(rf.state(fresh).producer, DomainId::LoadStore);
}

TEST(RegisterFiles, ConsistencyHoldsThroughRenameCycles)
{
    RegisterFiles rf(40, 40);
    EXPECT_TRUE(rf.checkConsistent());
    // Churn the map: rename the same logical registers repeatedly,
    // releasing the displaced mappings as a retire would.
    for (int round = 0; round < 100; ++round) {
        int logical = 1 + round % 8;
        if (!rf.canAlloc(false))
            break;
        auto [fresh, old] = rf.renameDest(logical);
        rf.markPending(fresh);
        rf.complete(fresh, static_cast<Tick>(round), DomainId::Integer);
        rf.release(old);
        ASSERT_TRUE(rf.checkConsistent()) << round;
    }
    EXPECT_TRUE(rf.checkConsistent());
}

TEST(RegisterFiles, ZeroRegistersAlwaysReady)
{
    RegisterFiles rf(96, 96);
    PhysRef zero{-1, false};
    EXPECT_FALSE(rf.state(zero).pending);
    EXPECT_EQ(rf.state(zero).ready_at, 0u);
    EXPECT_EQ(rf.lookup(kZeroReg).index, -1);
    EXPECT_EQ(rf.lookup(kFirstFpReg).index, -1);
}

// ---------------------------------------------------------------------
// Machine configuration.
// ---------------------------------------------------------------------

TEST(MachineConfig, PenaltiesPerMode)
{
    MachineConfig sync = MachineConfig::bestSynchronous();
    EXPECT_EQ(sync.feDepth(), 9);
    EXPECT_EQ(sync.dispatchDepth(), 7);
    MachineConfig mcd = MachineConfig::mcdProgram({});
    EXPECT_EQ(mcd.feDepth(), 10);
    EXPECT_EQ(mcd.dispatchDepth(), 9);
}

TEST(MachineConfig, BestSynchronousMatchesPaper)
{
    MachineConfig c = MachineConfig::bestSynchronous();
    EXPECT_EQ(c.sync_icache_opt, 4); // 64KB direct-mapped.
    EXPECT_EQ(c.adaptive.dcache, 0); // 32KB/256KB direct-mapped.
    EXPECT_EQ(c.adaptive.iq_int, 0); // 16-entry queues.
    EXPECT_EQ(c.adaptive.iq_fp, 0);
    EXPECT_NEAR(c.synchronousFreqGHz(), 1.275, 0.02);
}

TEST(MachineConfig, DomainFrequenciesFollowConfig)
{
    MachineConfig mcd = MachineConfig::mcdProgram({1, 2, 3, 0});
    EXPECT_DOUBLE_EQ(mcd.domainFreqGHz(DomainId::FrontEnd,
                                       mcd.adaptive),
                     frontEndFreqAdaptive(1));
    EXPECT_DOUBLE_EQ(mcd.domainFreqGHz(DomainId::LoadStore,
                                       mcd.adaptive),
                     loadStoreFreqAdaptive(2));
    EXPECT_DOUBLE_EQ(mcd.domainFreqGHz(DomainId::Integer,
                                       mcd.adaptive),
                     issueQueueFreqGHz(3));
}

TEST(MachineConfig, ForceFreqOverridesEverything)
{
    MachineConfig mcd = MachineConfig::mcdProgram({});
    mcd.force_freq_ghz = 1.0;
    for (int d = 0; d < kNumDomains; ++d) {
        EXPECT_DOUBLE_EQ(mcd.domainFreqGHz(static_cast<DomainId>(d),
                                           mcd.adaptive),
                         1.0);
    }
}

TEST(MachineConfig, AdaptiveConfigPrinting)
{
    AdaptiveConfig c{1, 2, 3, 0};
    EXPECT_EQ(c.str(), "I1 D2 Qi3 Qf0");
    EXPECT_EQ(c, (AdaptiveConfig{1, 2, 3, 0}));
    EXPECT_FALSE((c == AdaptiveConfig{}));
}
