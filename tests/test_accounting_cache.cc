/**
 * @file
 * Tests for the Accounting Cache, including the property at the heart
 * of the paper's controller: one interval of MRU-position counters
 * reconstructs exactly the A/B hit counts that *every* partitioning
 * would have produced on the same access stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/accounting_cache.hh"
#include "common/random.hh"

using namespace gals;

namespace
{
constexpr std::uint64_t KB = 1024;

/** Synthesize a mixed stream: strided sweeps plus random pool. */
std::vector<Addr>
mixedStream(std::uint64_t seed, size_t n, std::uint64_t pool_bytes,
            double rand_frac)
{
    Pcg32 rng(seed);
    std::vector<Addr> out;
    out.reserve(n);
    Addr stream_pos = 0;
    std::uint64_t lines = pool_bytes / 64;
    for (size_t i = 0; i < n; ++i) {
        if (rng.chance(rand_frac)) {
            out.push_back(0x4000'0000 +
                          rng.nextBounded(static_cast<std::uint32_t>(
                              lines)) * 64);
        } else {
            stream_pos = (stream_pos + 64) % pool_bytes;
            out.push_back(0x1000'0000 + stream_pos);
        }
    }
    return out;
}
} // namespace

TEST(AccountingCache, Geometry)
{
    AccountingCache c("c", 256 * KB, 8);
    EXPECT_EQ(c.numSets(), 512);
    EXPECT_EQ(c.ways(), 8);
    EXPECT_EQ(c.lineBytes(), 64);
    EXPECT_EQ(c.aWays(), 8);
}

TEST(AccountingCache, HitsAfterFill)
{
    AccountingCache c("c", 8 * KB, 4);
    c.setPartition(4, true);
    Addr a = 0x1000;
    EXPECT_EQ(c.access(a).where, HitWhere::Miss);
    EXPECT_EQ(c.access(a).where, HitWhere::APartition);
    EXPECT_EQ(c.access(a).where, HitWhere::APartition);
    EXPECT_EQ(c.totalMisses(), 1u);
    EXPECT_EQ(c.totalAHits(), 2u);
}

TEST(AccountingCache, BPartitionHitAndSwap)
{
    AccountingCache c("c", 8 * KB, 4);
    c.setPartition(1, true);
    // Four lines mapping to the same set (set stride = 32 lines).
    Addr set_stride = 32 * 64;
    Addr a0 = 0, a1 = set_stride, a2 = 2 * set_stride;
    c.access(a0);
    c.access(a1); // a0 pushed to MRU pos 1 (B partition).
    EXPECT_EQ(c.access(a0).where, HitWhere::BPartition);
    // The swap made a0 MRU again.
    EXPECT_EQ(c.access(a0).where, HitWhere::APartition);
    EXPECT_EQ(c.access(a1).where, HitWhere::BPartition);
    c.access(a2);
    EXPECT_EQ(c.totalBHits(), 2u);
}

TEST(AccountingCache, NoBHitsWhenDisabled)
{
    AccountingCache c("c", 8 * KB, 4);
    c.setPartition(1, false);
    Addr set_stride = 32 * 64;
    c.access(0);
    c.access(set_stride);          // evicts line 0 (A is 1 way).
    EXPECT_EQ(c.access(0).where, HitWhere::Miss);
    EXPECT_EQ(c.totalBHits(), 0u);
}

TEST(AccountingCache, DisablingBInvalidatesRetainedBlocks)
{
    AccountingCache c("c", 8 * KB, 4);
    c.setPartition(4, true);
    Addr set_stride = 32 * 64;
    for (int i = 0; i < 4; ++i)
        c.access(static_cast<Addr>(i) * set_stride);
    // All four resident; now shrink A to 1 without B.
    c.setPartition(1, false);
    // Only the MRU block (i=3) survives.
    EXPECT_EQ(c.access(3 * set_stride).where, HitWhere::APartition);
    EXPECT_EQ(c.access(0 * set_stride).where, HitWhere::Miss);
}

TEST(AccountingCache, IntervalCountersResettable)
{
    AccountingCache c("c", 8 * KB, 4);
    c.access(0);
    c.access(0);
    EXPECT_EQ(c.interval().accesses, 2u);
    EXPECT_EQ(c.interval().misses, 1u);
    EXPECT_EQ(c.interval().mru_hits[0], 1u);
    c.resetInterval();
    EXPECT_EQ(c.interval().accesses, 0u);
    EXPECT_EQ(c.interval().misses, 0u);
    // Lifetime totals survive the interval reset.
    EXPECT_EQ(c.totalAccesses(), 2u);
}

TEST(AccountingCache, ReconstructSplitsByPosition)
{
    IntervalCounts counts;
    counts.mru_hits = {10, 20, 30, 40};
    counts.misses = 5;
    auto [a1, b1] = AccountingCache::reconstruct(counts, 1);
    EXPECT_EQ(a1, 10u);
    EXPECT_EQ(b1, 90u);
    auto [a3, b3] = AccountingCache::reconstruct(counts, 3);
    EXPECT_EQ(a3, 60u);
    EXPECT_EQ(b3, 40u);
    auto [a4, b4] = AccountingCache::reconstruct(counts, 4);
    EXPECT_EQ(a4, 100u);
    EXPECT_EQ(b4, 0u);
}

/**
 * The central Accounting Cache property (paper §3.1): run the same
 * stream through (a) one fully-enabled cache collecting MRU counters
 * and (b) reference caches fixed at each candidate A size with B
 * enabled; the reconstruction from (a) must match the actual A/B/miss
 * counts of every (b) exactly.
 */
class AccountingReconstruction
    : public ::testing::TestWithParam<
          std::tuple<int, std::uint64_t, double>>
{};

TEST_P(AccountingReconstruction, MatchesReferenceCaches)
{
    auto [ways, pool_kb, rand_frac] = GetParam();
    const std::uint64_t size = 64 * KB;
    auto stream = mixedStream(ways * 1000 + pool_kb, 30'000,
                              pool_kb * KB, rand_frac);

    AccountingCache observer("obs", size, ways);
    observer.setPartition(ways, true);
    for (Addr a : stream)
        observer.access(a);

    for (int a_ways = 1; a_ways <= ways; ++a_ways) {
        AccountingCache ref("ref", size, ways);
        ref.setPartition(a_ways, true);
        std::uint64_t a_hits = 0, b_hits = 0, misses = 0;
        for (Addr a : stream) {
            switch (ref.access(a).where) {
              case HitWhere::APartition: ++a_hits; break;
              case HitWhere::BPartition: ++b_hits; break;
              default: ++misses; break;
            }
        }
        auto [ra, rb] = AccountingCache::reconstruct(
            observer.interval(), a_ways);
        EXPECT_EQ(ra, a_hits) << "A hits at a_ways=" << a_ways;
        EXPECT_EQ(rb, b_hits) << "B hits at a_ways=" << a_ways;
        EXPECT_EQ(observer.interval().misses, misses)
            << "misses at a_ways=" << a_ways;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, AccountingReconstruction,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(16u, 96u, 512u),
                       ::testing::Values(0.1, 0.5, 0.9)));
